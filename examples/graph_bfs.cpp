// Graph analytics example (the paper's Gunrock motivation).
//
// Frontier-based BFS where each frontier vertex allocates its out-edge
// scratch dynamically with device-side malloc, instead of the classic
// workaround the paper calls out: pre-allocating a worst-case upper-bound
// array on the host (which wastes memory and caps the dataset size), or a
// two-phase "count then fill" refactor.
//
// The graph is a synthetic power-law-ish digraph in CSR form. Each BFS
// level: every frontier vertex (one thread) mallocs a buffer for its
// still-unvisited neighbours, filters into it, then publishes the buffer
// into the next frontier's slot; a host-side pass concatenates slots and
// frees the buffers (the pattern a real pipeline would fuse into a second
// kernel).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "alloc/alloc.hpp"
#include "gpusim/gpusim.hpp"
#include "util/prng.hpp"

namespace {

struct Csr {
  std::vector<std::uint32_t> row_ptr;
  std::vector<std::uint32_t> col_idx;
  std::uint32_t num_vertices() const {
    return static_cast<std::uint32_t>(row_ptr.size() - 1);
  }
};

// Synthetic digraph: vertex degrees follow a truncated power law, with a
// few hubs, so frontier sizes vary wildly — the case where upper-bound
// preallocation hurts most.
Csr make_graph(std::uint32_t n, std::uint32_t avg_degree,
               std::uint64_t seed) {
  toma::util::Xorshift rng(seed);
  Csr g;
  g.row_ptr.resize(n + 1, 0);
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    // Degree in [0, 4*avg) with a heavy-ish tail.
    std::uint32_t deg = static_cast<std::uint32_t>(
        rng.next_below(avg_degree * 2));
    if (rng.next_below(100) < 2) deg *= 8;  // hubs
    adj[v].reserve(deg);
    for (std::uint32_t e = 0; e < deg; ++e) {
      adj[v].push_back(static_cast<std::uint32_t>(rng.next_below(n)));
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    g.row_ptr[v + 1] = g.row_ptr[v] + static_cast<std::uint32_t>(
        adj[v].size());
  }
  g.col_idx.reserve(g.row_ptr[n]);
  for (auto& a : adj) {
    g.col_idx.insert(g.col_idx.end(), a.begin(), a.end());
  }
  return g;
}

struct FrontierSlot {
  std::uint32_t* buf = nullptr;
  std::uint32_t count = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace toma;
  const std::uint32_t n = argc > 1
                              ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                              : 20000;
  const Csr g = make_graph(n, /*avg_degree=*/8, /*seed=*/42);

  gpu::Device dev(gpu::DeviceConfig{});
  alloc::GpuAllocator allocator(alloc::HeapConfig{
      .pool_bytes = 128 * 1024 * 1024, .num_arenas = dev.num_sms()});

  std::vector<std::uint32_t> dist(n, ~0u);
  std::vector<std::uint32_t> frontier = {0};
  dist[0] = 0;
  std::uint32_t level = 0;
  std::uint64_t edges_relaxed = 0;

  std::vector<std::atomic<std::uint32_t>> visited(n);
  for (auto& v : visited) v.store(0);
  visited[0].store(1);

  while (!frontier.empty()) {
    std::vector<FrontierSlot> slots(frontier.size());
    const std::uint32_t next_level = level + 1;

    dev.launch_linear(frontier.size(), 128, [&](gpu::ThreadCtx& t) {
      if (t.global_rank() >= frontier.size()) return;
      const std::uint32_t v = frontier[t.global_rank()];
      const std::uint32_t begin = g.row_ptr[v];
      const std::uint32_t end = g.row_ptr[v + 1];
      const std::uint32_t deg = end - begin;
      if (deg == 0) return;

      // Dynamic allocation sized to THIS vertex's degree — no host-side
      // upper-bound array, no counting pre-pass.
      auto* out = static_cast<std::uint32_t*>(
          allocator.malloc(deg * sizeof(std::uint32_t)));
      if (out == nullptr) return;  // OOM: skip expansion (graph demo)
      std::uint32_t cnt = 0;
      for (std::uint32_t e = begin; e < end; ++e) {
        const std::uint32_t w = g.col_idx[e];
        std::uint32_t expect = 0;
        if (visited[w].compare_exchange_strong(expect, 1)) {
          out[cnt++] = w;
        }
      }
      if (cnt == 0) {
        allocator.free(out);
        return;
      }
      slots[t.global_rank()] = FrontierSlot{out, cnt};
    });

    // Host-side concatenate + free (stands in for a compaction kernel).
    std::vector<std::uint32_t> next;
    for (const FrontierSlot& s : slots) {
      if (s.buf == nullptr) continue;
      for (std::uint32_t i = 0; i < s.count; ++i) {
        dist[s.buf[i]] = next_level;
        next.push_back(s.buf[i]);
      }
      edges_relaxed += s.count;
      allocator.free(s.buf);
    }
    frontier = std::move(next);
    ++level;
  }

  std::uint32_t reached = 0;
  for (std::uint32_t d : dist) {
    if (d != ~0u) ++reached;
  }
  const auto st = allocator.stats();
  std::printf("BFS over %u vertices, %zu edges\n", n, g.col_idx.size());
  std::printf("levels:          %u\n", level);
  std::printf("vertices reached: %u (%.1f%%)\n", reached,
              100.0 * reached / n);
  std::printf("device mallocs:  %llu (failed %llu)\n",
              static_cast<unsigned long long>(st.mallocs),
              static_cast<unsigned long long>(st.failed_mallocs));
  std::printf("consistent:      %s\n",
              allocator.check_consistency() ? "yes" : "NO");
  return 0;
}
