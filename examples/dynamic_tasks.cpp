// Irregular-parallelism example: a device-side work-stealing-style task
// expansion, where tasks spawn child tasks with dynamically allocated
// payloads (the pattern behind adaptive mesh refinement, tree builds and
// sparse solvers that the paper's intro groups under "two-phase
// workarounds").
//
// Each task carries a payload buffer sized at spawn time. Workers pop
// tasks from a global stack, process them, and push children — every node
// of the irregular task tree is a device-side malloc/free pair.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "alloc/alloc.hpp"
#include "gpusim/gpusim.hpp"
#include "sync/spin_mutex.hpp"

namespace {

struct Task {
  Task* next;         // intrusive stack link
  std::uint32_t depth;
  std::uint32_t payload_words;
  std::uint32_t payload[];  // flexible tail, sized at malloc time
};

// A mutex-protected stack: tasks are freed right after popping, so a
// lock-free Treiber stack would face ABA/use-after-free on the popped
// node's `next` — a classic interaction between lock-free structures and
// eager reclamation (the very problem the allocator's RCU lists solve for
// its own metadata). A short critical section is the honest choice here.
class TaskStack {
 public:
  void push(Task* t) {
    toma::sync::LockGuard<toma::sync::SpinMutex> g(mu_);
    t->next = head_;
    head_ = t;
  }

  Task* pop() {
    toma::sync::LockGuard<toma::sync::SpinMutex> g(mu_);
    Task* t = head_;
    if (t != nullptr) head_ = t->next;
    return t;
  }

 private:
  toma::sync::SpinMutex mu_;
  Task* head_ = nullptr;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace toma;
  const std::uint32_t max_depth =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 9;

  gpu::Device dev(gpu::DeviceConfig{});
  alloc::GpuAllocator allocator(alloc::HeapConfig{
      .pool_bytes = 128 * 1024 * 1024, .num_arenas = dev.num_sms()});

  TaskStack stack;
  std::atomic<std::uint64_t> live_tasks{0};
  std::atomic<std::uint64_t> processed{0};
  std::atomic<std::uint64_t> oom{0};
  std::atomic<std::uint64_t> payload_sum{0};

  auto spawn = [&](std::uint32_t depth, std::uint32_t words,
                   std::uint32_t seed) -> bool {
    auto* t = static_cast<Task*>(
        allocator.malloc(sizeof(Task) + words * sizeof(std::uint32_t)));
    if (t == nullptr) {
      oom.fetch_add(1);
      return false;
    }
    t->depth = depth;
    t->payload_words = words;
    for (std::uint32_t i = 0; i < words; ++i) t->payload[i] = seed + i;
    live_tasks.fetch_add(1, std::memory_order_acq_rel);
    stack.push(t);
    return true;
  };

  // Seed the root tasks.
  for (std::uint32_t i = 0; i < 64; ++i) spawn(0, 4 + i % 8, i);

  // Persistent-worker kernel: every thread loops popping tasks until the
  // task pool drains. Binary fan-out with depth-dependent payload sizes.
  dev.launch_linear(4096, 256, [&](gpu::ThreadCtx& t) {
    for (;;) {
      Task* task = stack.pop();
      if (task == nullptr) {
        if (live_tasks.load(std::memory_order_acquire) == 0) return;
        t.yield();
        continue;
      }
      // "Process": fold the payload.
      std::uint64_t sum = 0;
      for (std::uint32_t i = 0; i < task->payload_words; ++i) {
        sum += task->payload[i];
      }
      payload_sum.fetch_add(sum, std::memory_order_relaxed);
      processed.fetch_add(1, std::memory_order_relaxed);

      if (task->depth < max_depth) {
        // Children's payloads grow with depth: irregular sizes by design.
        const std::uint32_t words = 4 + (task->depth * 7) % 29;
        spawn(task->depth + 1, words,
              static_cast<std::uint32_t>(sum & 0xffff));
        spawn(task->depth + 1, words * 2,
              static_cast<std::uint32_t>((sum >> 8) & 0xffff));
      }
      const std::uint32_t d = task->depth;
      allocator.free(task);
      (void)d;
      live_tasks.fetch_sub(1, std::memory_order_acq_rel);
    }
  });

  const std::uint64_t expected = 64ull * ((1ull << (max_depth + 1)) - 1);
  const auto st = allocator.stats();
  std::printf("task tree: 64 roots, binary fan-out to depth %u\n", max_depth);
  std::printf("tasks processed: %llu (expected %llu, oom-skipped %llu)\n",
              static_cast<unsigned long long>(processed.load()),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(oom.load()));
  std::printf("device mallocs:  %llu (failed %llu)\n",
              static_cast<unsigned long long>(st.mallocs),
              static_cast<unsigned long long>(st.failed_mallocs));
  std::printf("payload checksum: %llu\n",
              static_cast<unsigned long long>(payload_sum.load()));
  std::printf("consistent:      %s\n",
              allocator.check_consistency() ? "yes" : "NO");
  const bool ok = oom.load() == 0 ? processed.load() == expected
                                  : processed.load() <= expected;
  return ok ? 0 : 1;
}
