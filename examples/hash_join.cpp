// Data-analytics example (the paper's RAPIDS/databases motivation).
//
// Hash join of two relations on the GPU: the build phase inserts R's rows
// into a chained hash table whose nodes come from device-side malloc — no
// host-side sizing pass, no upper-bound preallocation — and the probe
// phase streams S against the table, counting matches and emitting joined
// pairs into per-thread dynamically allocated output runs.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "alloc/alloc.hpp"
#include "gpusim/gpusim.hpp"
#include "util/prng.hpp"

namespace {

struct Row {
  std::uint32_t key;
  std::uint32_t payload;
};

struct Node {
  Node* next;
  Row row;
};

struct OutRun {
  std::uint64_t* pairs = nullptr;  // (r.payload << 32) | s.payload
  std::uint32_t count = 0;
};

std::vector<Row> make_relation(std::uint32_t rows, std::uint32_t key_space,
                               std::uint64_t seed) {
  toma::util::Xorshift rng(seed);
  std::vector<Row> rel(rows);
  for (std::uint32_t i = 0; i < rows; ++i) {
    rel[i].key = static_cast<std::uint32_t>(rng.next_below(key_space));
    rel[i].payload = i;
  }
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace toma;
  const std::uint32_t r_rows =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 40000;
  const std::uint32_t s_rows = r_rows * 2;
  const std::uint32_t key_space = r_rows / 2;  // ~2 matches per probe key

  const std::vector<Row> r = make_relation(r_rows, key_space, 7);
  const std::vector<Row> s = make_relation(s_rows, key_space, 13);

  gpu::Device dev(gpu::DeviceConfig{});
  alloc::GpuAllocator allocator(alloc::HeapConfig{
      .pool_bytes = 256 * 1024 * 1024, .num_arenas = dev.num_sms()});

  // Bucket heads live in a host array (stands in for a device array);
  // chain nodes come from the device allocator.
  const std::uint32_t num_buckets = key_space;
  std::vector<std::atomic<Node*>> buckets(num_buckets);
  for (auto& b : buckets) b.store(nullptr);

  // ---- build phase --------------------------------------------------------
  std::atomic<std::uint64_t> build_oom{0};
  dev.launch_linear(r_rows, 256, [&](gpu::ThreadCtx& t) {
    if (t.global_rank() >= r_rows) return;
    const Row row = r[t.global_rank()];
    auto* node = static_cast<Node*>(allocator.malloc(sizeof(Node)));
    if (node == nullptr) {
      build_oom.fetch_add(1);
      return;
    }
    node->row = row;
    auto& head = buckets[row.key % num_buckets];
    Node* cur = head.load(std::memory_order_relaxed);
    do {
      node->next = cur;
    } while (!head.compare_exchange_weak(cur, node,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
  });

  // ---- probe phase --------------------------------------------------------
  std::vector<OutRun> runs(s_rows);
  std::atomic<std::uint64_t> matches{0}, probe_oom{0};
  dev.launch_linear(s_rows, 256, [&](gpu::ThreadCtx& t) {
    if (t.global_rank() >= s_rows) return;
    const Row probe = s[t.global_rank()];
    // First pass over the chain to size the output run, then allocate
    // exactly — the allocator is fast enough that exact sizing beats
    // worst-case preallocation (the paper's point).
    std::uint32_t n = 0;
    for (Node* cur = buckets[probe.key % num_buckets].load(
             std::memory_order_acquire);
         cur != nullptr; cur = cur->next) {
      if (cur->row.key == probe.key) ++n;
    }
    if (n == 0) return;
    auto* out = static_cast<std::uint64_t*>(
        allocator.malloc(n * sizeof(std::uint64_t)));
    if (out == nullptr) {
      probe_oom.fetch_add(1);
      return;
    }
    std::uint32_t w = 0;
    for (Node* cur = buckets[probe.key % num_buckets].load(
             std::memory_order_acquire);
         cur != nullptr && w < n; cur = cur->next) {
      if (cur->row.key == probe.key) {
        out[w++] = (std::uint64_t{cur->row.payload} << 32) | probe.payload;
      }
    }
    runs[t.global_rank()] = OutRun{out, w};
    matches.fetch_add(w, std::memory_order_relaxed);
  });

  // ---- host-side validation + cleanup -------------------------------------
  // Reference join cardinality.
  std::vector<std::uint32_t> key_count(key_space, 0);
  for (const Row& row : r) ++key_count[row.key];
  std::uint64_t expected = 0;
  for (const Row& row : s) expected += key_count[row.key];

  std::uint64_t emitted = 0;
  for (OutRun& run : runs) {
    emitted += run.count;
    if (run.pairs != nullptr) allocator.free(run.pairs);
  }
  dev.launch_linear(num_buckets, 256, [&](gpu::ThreadCtx& t) {
    if (t.global_rank() >= num_buckets) return;
    Node* cur = buckets[t.global_rank()].exchange(nullptr);
    while (cur != nullptr) {
      Node* next = cur->next;
      allocator.free(cur);
      cur = next;
    }
  });

  const auto st = allocator.stats();
  std::printf("hash join: |R|=%u |S|=%u buckets=%u\n", r_rows, s_rows,
              num_buckets);
  std::printf("matches:        %llu (expected %llu)%s\n",
              static_cast<unsigned long long>(matches.load()),
              static_cast<unsigned long long>(expected),
              matches.load() == expected ? "" : "  <-- MISMATCH");
  std::printf("emitted pairs:  %llu\n",
              static_cast<unsigned long long>(emitted));
  std::printf("device mallocs: %llu (failed %llu)\n",
              static_cast<unsigned long long>(st.mallocs),
              static_cast<unsigned long long>(st.failed_mallocs +
                                              build_oom.load() * 0));
  std::printf("consistent:     %s\n",
              allocator.check_consistency() ? "yes" : "NO");
  return matches.load() == expected ? 0 : 1;
}
