/* Multi-tenant pools through the stable C facade.
 *
 * This example deliberately includes ONLY <toma/toma.h> (plus libc): it
 * is the API-hygiene canary — if it stops compiling against the public
 * header alone, the facade leaked an internal dependency. CI builds it
 * both ways: linked into the normal example set, and syntax-only with
 * -Iinclude as the single include path (see .github/workflows/ci.yml).
 *
 * Story: two tenants share a device. "render" gets a 1 MiB byte quota;
 * "physics" is unbounded. Render hits its quota (TOMA_ERR_QUOTA, not
 * OOM — the pool itself has plenty of room) while physics keeps
 * allocating at full speed. Then a stream-ordered batch: frees parked
 * with toma_free_async cost nothing until toma_stream_sync drains the
 * whole batch through the allocator at once.
 */
#include <stdio.h>
#include <stdlib.h>

#include <toma/toma.h>

#define CHECK(cond)                                                \
  do {                                                             \
    if (!(cond)) {                                                 \
      fprintf(stderr, "FAILED at line %d: %s\n", __LINE__, #cond); \
      exit(1);                                                     \
    }                                                              \
  } while (0)

int main(void) {
  /* --- two tenants, one quota --------------------------------------- */
  toma_pool_config_t render_cfg = toma_pool_config_default();
  render_cfg.pool_bytes = 8u << 20;
  render_cfg.quota_bytes = 1u << 20; /* 1 MiB budget */

  toma_pool_config_t physics_cfg = toma_pool_config_default();
  physics_cfg.pool_bytes = 8u << 20;

  toma_pool_t render = NULL;
  toma_pool_t physics = NULL;
  CHECK(toma_pool_create("render", &render_cfg, &render) == TOMA_OK);
  CHECK(toma_pool_create("physics", &physics_cfg, &physics) == TOMA_OK);

  /* Render allocates until its quota rejects. */
  enum { kBlock = 4096, kMax = 1024 };
  void* held[kMax];
  size_t n_held = 0;
  toma_status_t st = TOMA_OK;
  for (;;) {
    void* p = toma_malloc(render, kBlock, &st);
    if (p == NULL) break;
    CHECK(n_held < kMax);
    held[n_held++] = p;
  }
  printf("render: %zu x %d B allocated, then %s (in use: %zu B)\n", n_held,
         kBlock, toma_status_str(st), toma_pool_bytes_in_use(render));
  CHECK(st == TOMA_ERR_QUOTA); /* quota, not OOM: the pool has room */

  /* Physics is unaffected by its neighbour's quota exhaustion. */
  void* q = toma_malloc(physics, kBlock, &st);
  CHECK(q != NULL && st == TOMA_OK);
  printf("physics: allocation still %s while render is at quota\n",
         toma_status_str(st));
  toma_free(physics, q);

  while (n_held > 0) toma_free(render, held[--n_held]);

  /* --- stream-ordered batching --------------------------------------- */
  toma_stream_t stream = toma_stream_create();
  CHECK(stream != NULL);

  enum { kBatch = 256 };
  void* batch[kBatch];
  for (int i = 0; i < kBatch; ++i) {
    batch[i] = toma_malloc_async(physics, 256, stream, NULL);
    CHECK(batch[i] != NULL);
  }
  for (int i = 0; i < kBatch; ++i) {
    toma_free_async(physics, batch[i], stream); /* O(1): parked */
  }
  /* The blocks are still charged — they are pending, not freed. */
  CHECK(toma_pool_bytes_in_use(physics) == (size_t)kBatch * 256);
  size_t drained = toma_stream_sync(stream);
  printf("stream sync drained %zu deferred frees in one batch\n", drained);
  CHECK(toma_pool_bytes_in_use(physics) == 0);

  /* Same-stream reuse: a pending free satisfies the next malloc_async
   * without an allocator round trip. */
  void* a = toma_malloc_async(physics, 512, stream, NULL);
  toma_free_async(physics, a, stream);
  void* b = toma_malloc_async(physics, 512, stream, NULL);
  CHECK(b == a);
  printf("same-stream reuse returned the pending block directly\n");
  toma_free_async(physics, b, stream);
  toma_stream_sync(stream);

  /* --- teardown ------------------------------------------------------- */
  toma_trim(physics);
  toma_stream_destroy(stream);
  CHECK(toma_pool_destroy(render) == TOMA_OK);
  CHECK(toma_pool_destroy(physics) == TOMA_OK);
  printf("ok\n");
  return 0;
}
