// Quickstart: the smallest complete program using the library.
//
//  1. create a simulated GPU device;
//  2. create a GpuAllocator over a memory pool (the cudaMalloc analogue);
//  3. launch a kernel whose threads call malloc/free concurrently;
//  4. print allocator statistics.
//
// Build: part of the default build; run ./build/examples/quickstart
#include <atomic>
#include <cstdio>
#include <cstring>

#include "alloc/alloc.hpp"
#include "gpusim/gpusim.hpp"

int main() {
  using namespace toma;

  // A modest device: 8 SMs x 2048 resident threads (Volta-like shape).
  gpu::Device dev(gpu::DeviceConfig{});

  // 64 MB pool, one arena per SM (the paper's configuration).
  alloc::GpuAllocator allocator(alloc::HeapConfig{
      .pool_bytes = 64 * 1024 * 1024, .num_arenas = dev.num_sms()});

  constexpr std::uint64_t kThreads = 100000;
  std::atomic<std::uint64_t> checksum{0};
  std::atomic<std::uint64_t> failures{0};

  dev.launch_linear(kThreads, 256, [&](gpu::ThreadCtx& t) {
    if (t.global_rank() >= kThreads) return;

    // Every thread allocates a private scratch buffer, uses it, frees it.
    const std::size_t size = 16 << (t.global_rank() % 6);  // 16 B .. 512 B
    auto* buf = static_cast<std::uint8_t*>(allocator.malloc(size));
    if (buf == nullptr) {
      failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::memset(buf, static_cast<int>(t.global_rank() & 0xff), size);
    t.yield();  // pretend to do other work; allocator state stays valid
    checksum.fetch_add(buf[size / 2], std::memory_order_relaxed);
    allocator.free(buf);
  });

  const auto st = allocator.stats();
  std::printf("threads:          %llu\n",
              static_cast<unsigned long long>(kThreads));
  std::printf("mallocs:          %llu (%llu failed)\n",
              static_cast<unsigned long long>(st.mallocs),
              static_cast<unsigned long long>(st.failed_mallocs));
  std::printf("frees:            %llu\n",
              static_cast<unsigned long long>(st.frees));
  std::printf("bins created:     %llu (retired %llu)\n",
              static_cast<unsigned long long>(st.ualloc.bins_created),
              static_cast<unsigned long long>(st.ualloc.bins_retired));
  std::printf("chunks created:   %llu (retired %llu)\n",
              static_cast<unsigned long long>(st.ualloc.chunks_created),
              static_cast<unsigned long long>(st.ualloc.chunks_retired));
  std::printf("checksum:         %llu\n",
              static_cast<unsigned long long>(checksum.load()));
  std::printf("consistent:       %s\n",
              allocator.check_consistency() ? "yes" : "NO");
  return failures.load() == 0 ? 0 : 1;
}
