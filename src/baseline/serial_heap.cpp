#include "baseline/serial_heap.hpp"

#include <cstdio>

#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace toma::baseline {

SerialHeapAllocator::SerialHeapAllocator(void* pool, std::size_t pool_bytes)
    : pool_(static_cast<char*>(pool)), pool_bytes_(pool_bytes) {
  TOMA_ASSERT(pool != nullptr);
  TOMA_ASSERT(util::is_aligned(pool, kAlign));
  TOMA_ASSERT(pool_bytes >= kMinBlock);
  free_head_.next_free = &free_head_;
  free_head_.prev_free = &free_head_;
  auto* first = reinterpret_cast<Block*>(pool_);
  first->set(pool_bytes, false);
  first->prev_phys = nullptr;
  insert_free(first);
}

void SerialHeapAllocator::insert_free(Block* b) {
  // Address-ordered insertion (first-fit then behaves like best-effort
  // low-address placement, the common textbook policy).
  Block* cur = free_head_.next_free;
  while (cur != &free_head_ && cur < b) cur = cur->next_free;
  b->next_free = cur;
  b->prev_free = cur->prev_free;
  cur->prev_free->next_free = b;
  cur->prev_free = b;
}

void SerialHeapAllocator::remove_free(Block* b) {
  b->prev_free->next_free = b->next_free;
  b->next_free->prev_free = b->prev_free;
}

SerialHeapAllocator::Block* SerialHeapAllocator::next_phys(Block* b) const {
  char* n = reinterpret_cast<char*>(b) + b->bytes();
  if (n >= pool_ + pool_bytes_) return nullptr;
  return reinterpret_cast<Block*>(n);
}

void SerialHeapAllocator::hold_lock_latency() const {
  for (unsigned i = 0; i < latency_; ++i) gpu::this_thread::yield();
}

void* SerialHeapAllocator::malloc(std::size_t size) {
  if (size == 0) return nullptr;
  const std::size_t need =
      util::align_up(size, kAlign) + kHeader;

  mu_.lock();
  hold_lock_latency();
  Block* b = free_head_.next_free;
  while (b != &free_head_ && b->bytes() < need) b = b->next_free;
  if (b == &free_head_) {
    mu_.unlock();
    st_failed_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  remove_free(b);
  if (b->bytes() >= need + kMinBlock) {
    // Split: keep the front for the caller, return the rest to the list.
    auto* rest = reinterpret_cast<Block*>(reinterpret_cast<char*>(b) + need);
    rest->set(b->bytes() - need, false);
    rest->prev_phys = b;
    if (Block* after = next_phys(rest)) after->prev_phys = rest;
    b->set(need, true);
    insert_free(rest);
  } else {
    b->set(b->bytes(), true);
  }
  mu_.unlock();
  st_allocs_.fetch_add(1, std::memory_order_relaxed);
  return reinterpret_cast<char*>(b) + kHeader;
}

void SerialHeapAllocator::free(void* p) {
  if (p == nullptr) return;
  auto* b = reinterpret_cast<Block*>(static_cast<char*>(p) - kHeader);
  mu_.lock();
  hold_lock_latency();
  TOMA_ASSERT_MSG(b->used(), "double free in SerialHeapAllocator");
  b->set(b->bytes(), false);

  // Coalesce with physical neighbours.
  if (Block* nxt = next_phys(b); nxt != nullptr && !nxt->used()) {
    remove_free(nxt);
    b->set(b->bytes() + nxt->bytes(), false);
    if (Block* after = next_phys(b)) after->prev_phys = b;
  }
  if (Block* prv = b->prev_phys; prv != nullptr && !prv->used()) {
    remove_free(prv);
    prv->set(prv->bytes() + b->bytes(), false);
    if (Block* after = next_phys(prv)) after->prev_phys = prv;
    b = prv;
  }
  insert_free(b);
  mu_.unlock();
  st_frees_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t SerialHeapAllocator::free_bytes() const {
  sync::LockGuard<sync::SpinMutex> g(mu_);
  std::size_t total = 0;
  for (Block* b = free_head_.next_free; b != &free_head_; b = b->next_free) {
    total += b->bytes() - kHeader;
  }
  return total;
}

std::size_t SerialHeapAllocator::largest_free_block() const {
  sync::LockGuard<sync::SpinMutex> g(mu_);
  std::size_t best = 0;
  for (Block* b = free_head_.next_free; b != &free_head_; b = b->next_free) {
    if (b->bytes() - kHeader > best) best = b->bytes() - kHeader;
  }
  return best;
}

SerialHeapStats SerialHeapAllocator::stats() const {
  SerialHeapStats s;
  s.allocs = st_allocs_.load(std::memory_order_relaxed);
  s.frees = st_frees_.load(std::memory_order_relaxed);
  s.failed_allocs = st_failed_.load(std::memory_order_relaxed);
  return s;
}

bool SerialHeapAllocator::check_consistency() const {
  sync::LockGuard<sync::SpinMutex> g(mu_);
  bool ok = true;
  // Physical walk: blocks tile the pool; prev_phys links agree.
  std::size_t covered = 0;
  Block* prev = nullptr;
  auto* b = reinterpret_cast<Block*>(pool_);
  while (b != nullptr) {
    if (b->prev_phys != prev) {
      std::fprintf(stderr, "SerialHeap: bad prev_phys at %p\n",
                   static_cast<void*>(b));
      ok = false;
    }
    if (b->bytes() < kHeader || covered + b->bytes() > pool_bytes_) {
      std::fprintf(stderr, "SerialHeap: bad block size at %p\n",
                   static_cast<void*>(b));
      return false;
    }
    covered += b->bytes();
    prev = b;
    b = next_phys(b);
  }
  if (covered != pool_bytes_) {
    std::fprintf(stderr, "SerialHeap: blocks cover %zu of %zu bytes\n",
                 covered, pool_bytes_);
    ok = false;
  }
  // Free-list walk: every entry is a free block, address ordered.
  Block* f = free_head_.next_free;
  Block* last = nullptr;
  while (f != &free_head_) {
    if (f->used()) {
      std::fprintf(stderr, "SerialHeap: used block on free list\n");
      ok = false;
    }
    if (last != nullptr && last >= f) {
      std::fprintf(stderr, "SerialHeap: free list not address ordered\n");
      ok = false;
    }
    last = f;
    f = f->next_free;
  }
  return ok;
}

}  // namespace toma::baseline
