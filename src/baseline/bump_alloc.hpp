// BumpAllocator: the register-efficient "incrementing free pointer"
// allocator of Vinkler & Havran (paper §2.2), kept as an ablation
// baseline. Allocation is a single fetch_add — the fastest possible
// coarse-grained allocator — but free() can only reclaim memory when
// everything has been freed, so fragmentation is catastrophic under churn.
// bench/abl_buddy_vs_bump quantifies exactly the trade-off that made the
// paper choose a buddy system instead.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/bitops.hpp"

namespace toma::baseline {

class BumpAllocator {
 public:
  BumpAllocator(void* pool, std::size_t pool_bytes)
      : pool_(static_cast<char*>(pool)), pool_bytes_(pool_bytes) {}

  BumpAllocator(const BumpAllocator&) = delete;
  BumpAllocator& operator=(const BumpAllocator&) = delete;

  void* malloc(std::size_t size) {
    if (size == 0) return nullptr;
    const std::size_t need = util::align_up(size, 16);
    const std::size_t off =
        cursor_.fetch_add(need, std::memory_order_relaxed);
    if (off + need > pool_bytes_) {
      cursor_.fetch_sub(need, std::memory_order_relaxed);
      failed_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    live_.fetch_add(1, std::memory_order_acq_rel);
    return pool_ + off;
  }

  /// Frees reclaim nothing individually; when the last live allocation is
  /// released the whole pool resets (the allocator's only recycling).
  void free(void* p) {
    if (p == nullptr) return;
    if (live_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      cursor_.store(0, std::memory_order_release);
    }
  }

  std::size_t used_bytes() const {
    return cursor_.load(std::memory_order_acquire);
  }
  std::size_t free_bytes() const { return pool_bytes_ - used_bytes(); }
  std::size_t largest_free_block() const { return free_bytes(); }
  std::uint64_t failed_allocs() const {
    return failed_.load(std::memory_order_relaxed);
  }

 private:
  char* pool_;
  std::size_t pool_bytes_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::int64_t> live_{0};
  std::atomic<std::uint64_t> failed_{0};
};

}  // namespace toma::baseline
