#include "baseline/scatter_alloc.hpp"

#include <cstdio>

#include "gpusim/this_thread.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/prng.hpp"

namespace toma::baseline {

ScatterAllocLite::ScatterAllocLite(void* pool, std::size_t pool_bytes)
    : pool_(static_cast<char*>(pool)), pool_bytes_(pool_bytes) {
  TOMA_ASSERT(pool != nullptr);
  TOMA_ASSERT(util::is_aligned(pool, kPageSize));
  TOMA_ASSERT(pool_bytes >= kPageSize && pool_bytes % kPageSize == 0);
  num_pages_ = pool_bytes / kPageSize;
  page_table_.assign(num_pages_, kFreeWord);
}

std::uint8_t ScatterAllocLite::class_of_size(std::size_t size) {
  const std::size_t rounded =
      util::round_up_pow2(size < kMinAlloc ? kMinAlloc : size);
  return static_cast<std::uint8_t>(util::log2_floor(rounded) -
                                   util::log2_floor(kMinAlloc));
}

std::size_t ScatterAllocLite::payload_offset(std::uint8_t cls) {
  const std::size_t s = class_size(cls);
  if (s >= kPageSize) return 0;  // whole-page class: no bitmap needed
  // 64 bytes of bitmap cover up to 512 blocks; round up to the block
  // size so payload stays naturally aligned.
  return util::align_up(64, s);
}

std::uint32_t ScatterAllocLite::class_capacity(std::uint8_t cls) {
  const std::size_t s = class_size(cls);
  if (s >= kPageSize) return 1;
  return static_cast<std::uint32_t>((kPageSize - payload_offset(cls)) / s);
}

void* ScatterAllocLite::try_allocate_in_page(std::size_t page,
                                             std::uint8_t cls) {
  std::atomic_ref<std::uint32_t> entry(page_table_[page]);
  std::uint32_t w = entry.load(std::memory_order_acquire);
  const std::uint32_t cap = class_capacity(cls);
  for (;;) {
    if (w == kFreeWord) {
      // Claim the free page for this class (fill = 1 for our block).
      if (!entry.compare_exchange_weak(w, pack(cls, 1),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        continue;  // re-inspect the new word
      }
      st_activations_.fetch_add(1, std::memory_order_relaxed);
      if (cap == 1) return page_base(page);
      util::AtomicBitmapRef bm(page_bitmap(page), cap);
      bm.reset();
      const std::uint32_t idx =
          bm.claim_clear_bit(gpu::this_thread::scatter_seed());
      TOMA_DASSERT(idx != util::AtomicBitmapRef::kNone);
      return page_base(page) + payload_offset(cls) +
             static_cast<std::size_t>(idx) * class_size(cls);
    }
    if (cls_of(w) != cls || fill_of(w) >= cap) return nullptr;
    // Reserve a slot by bumping the fill count, then claim a bit.
    if (!entry.compare_exchange_weak(w, pack(cls, fill_of(w) + 1),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      continue;
    }
    if (cap == 1) return page_base(page);
    util::AtomicBitmapRef bm(page_bitmap(page), cap);
    std::uint32_t idx;
    while ((idx = bm.claim_clear_bit(gpu::this_thread::scatter_seed())) ==
           util::AtomicBitmapRef::kNone) {
      // Fill count reserved a bit; transient misses resolve as concurrent
      // frees/claims settle.
      gpu::this_thread::yield();
    }
    return page_base(page) + payload_offset(cls) +
           static_cast<std::size_t>(idx) * class_size(cls);
  }
}

void* ScatterAllocLite::malloc(std::size_t size) {
  if (size == 0 || size > kMaxAlloc) {
    if (size != 0) st_failed_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const std::uint8_t cls = class_of_size(size);
  // Scatter: hash the caller identity to a start page; probe linearly.
  const std::size_t start = static_cast<std::size_t>(
      util::hash64(gpu::this_thread::scatter_seed()) % num_pages_);
  for (std::size_t k = 0; k < num_pages_; ++k) {
    const std::size_t page = (start + k) % num_pages_;
    st_probes_.fetch_add(1, std::memory_order_relaxed);
    if (void* p = try_allocate_in_page(page, cls)) {
      st_allocs_.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  st_failed_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ScatterAllocLite::free(void* p) {
  if (p == nullptr) return;
  const auto off = static_cast<std::size_t>(
      static_cast<char*>(p) - pool_);
  TOMA_ASSERT_MSG(off < pool_bytes_, "free outside the pool");
  const std::size_t page = off / kPageSize;
  std::atomic_ref<std::uint32_t> entry(page_table_[page]);
  std::uint32_t w = entry.load(std::memory_order_acquire);
  TOMA_ASSERT_MSG(w != kFreeWord, "free into an unassigned page");
  const std::uint8_t cls = cls_of(w);
  const std::uint32_t cap = class_capacity(cls);

  if (cap > 1) {
    const std::size_t inner = off % kPageSize;
    TOMA_ASSERT(inner >= payload_offset(cls));
    const std::size_t idx = (inner - payload_offset(cls)) / class_size(cls);
    util::AtomicBitmapRef bm(page_bitmap(page), cap);
    bm.release_bit(static_cast<std::uint32_t>(idx));
  }
  // Decrement fill; the last free returns the page to the free state.
  for (;;) {
    TOMA_DASSERT(fill_of(w) > 0);
    const std::uint32_t next =
        fill_of(w) == 1 ? kFreeWord : pack(cls, fill_of(w) - 1);
    if (entry.compare_exchange_weak(w, next, std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      break;
    }
  }
  st_frees_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ScatterAllocLite::free_bytes() const {
  std::size_t total = 0;
  for (std::size_t page = 0; page < num_pages_; ++page) {
    std::atomic_ref<const std::uint32_t> entry(page_table_[page]);
    const std::uint32_t w = entry.load(std::memory_order_acquire);
    if (w == kFreeWord) {
      total += kPageSize;
    } else {
      const std::uint8_t cls = cls_of(w);
      total += (class_capacity(cls) - fill_of(w)) * class_size(cls);
    }
  }
  return total;
}

ScatterAllocStats ScatterAllocLite::stats() const {
  ScatterAllocStats s;
  s.allocs = st_allocs_.load(std::memory_order_relaxed);
  s.frees = st_frees_.load(std::memory_order_relaxed);
  s.failed_allocs = st_failed_.load(std::memory_order_relaxed);
  s.page_activations = st_activations_.load(std::memory_order_relaxed);
  s.probe_steps = st_probes_.load(std::memory_order_relaxed);
  return s;
}

bool ScatterAllocLite::check_consistency() const {
  bool ok = true;
  for (std::size_t page = 0; page < num_pages_; ++page) {
    std::atomic_ref<const std::uint32_t> entry(page_table_[page]);
    const std::uint32_t w = entry.load(std::memory_order_acquire);
    if (w == kFreeWord) continue;
    const std::uint8_t cls = cls_of(w);
    const std::uint32_t cap = class_capacity(cls);
    if (fill_of(w) > cap) {
      std::fprintf(stderr, "ScatterAllocLite: page %zu overfilled\n", page);
      ok = false;
    }
    if (cap > 1) {
      util::AtomicBitmapRef bm(
          const_cast<ScatterAllocLite*>(this)->page_bitmap(page), cap);
      if (bm.count() != fill_of(w)) {
        std::fprintf(stderr,
                     "ScatterAllocLite: page %zu fill %u != bitmap %u\n",
                     page, fill_of(w), bm.count());
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace toma::baseline
