// ScatterAllocLite: a faithful-in-spirit, simplified reimplementation of
// ScatterAlloc (Steinberger et al., InPar'12), the research allocator the
// paper builds on for its scattering idea (§2.2) and compares against
// architecturally.
//
// Design (following the ScatterAlloc paper):
//   * the pool is divided into fixed-size *pages* (here 4 KB);
//   * each page, once activated, serves one size class ("chunk size" in
//     ScatterAlloc terms) via an in-page occupancy bitmap;
//   * a page-usage table tracks per-page state (size class, fill count);
//   * allocation hashes the requesting thread/multiprocessor id to a
//     page index and probes linearly from there — the "scattering" that
//     spreads atomic traffic across the table;
//   * frees decrement the fill count and release the page when empty.
//
// Differences from real ScatterAlloc, kept deliberately simple: no
// super-pages/regions hierarchy, no coalescing of requests, sizes above
// the page payload are refused (real ScatterAlloc forwards them to the
// CUDA allocator — the very allocator this repo replaces; our benches
// only exercise it in-range). It serves as a second research-grade
// comparator for the Figure 7 workloads and the fragmentation ablations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/atomic_bitmap.hpp"

namespace toma::baseline {

struct ScatterAllocStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t failed_allocs = 0;
  std::uint64_t page_activations = 0;
  std::uint64_t probe_steps = 0;
};

class ScatterAllocLite {
 public:
  static constexpr std::size_t kPageSize = 4096;
  static constexpr std::size_t kMinAlloc = 8;
  /// Largest serviceable request (whole-page allocation).
  static constexpr std::size_t kMaxAlloc = kPageSize;

  /// Manage `pool_bytes` (multiple of the page size) at `pool`
  /// (page-aligned). Page metadata lives on the host heap.
  ScatterAllocLite(void* pool, std::size_t pool_bytes);

  ScatterAllocLite(const ScatterAllocLite&) = delete;
  ScatterAllocLite& operator=(const ScatterAllocLite&) = delete;

  void* malloc(std::size_t size);
  void free(void* p);

  std::size_t free_bytes() const;
  ScatterAllocStats stats() const;

  /// Quiescent validation: page table vs bitmaps.
  bool check_consistency() const;

 private:
  // Page states: kFree (unassigned), or assigned to a size class with a
  // fill count packed alongside. Packed into one 32-bit word per page:
  // [class:8 | fill:24]; class 0xFF = free page.
  static constexpr std::uint32_t kFreeWord = 0xFF000000u;
  static std::uint32_t pack(std::uint8_t cls, std::uint32_t fill) {
    return (static_cast<std::uint32_t>(cls) << 24) | fill;
  }
  static std::uint8_t cls_of(std::uint32_t w) {
    return static_cast<std::uint8_t>(w >> 24);
  }
  static std::uint32_t fill_of(std::uint32_t w) { return w & 0xFFFFFFu; }

  static std::uint8_t class_of_size(std::size_t size);
  static std::size_t class_size(std::uint8_t cls) {
    return kMinAlloc << cls;
  }
  static std::uint32_t class_capacity(std::uint8_t cls);

  void* try_allocate_in_page(std::size_t page, std::uint8_t cls);
  char* page_base(std::size_t page) const {
    return pool_ + page * kPageSize;
  }
  /// Bitmap words of a page live in the page itself (first 64 bytes when
  /// the class needs them; whole-page classes use none).
  std::uint64_t* page_bitmap(std::size_t page) const {
    return reinterpret_cast<std::uint64_t*>(page_base(page));
  }
  /// Payload offset: bitmap header rounded to the class size granularity.
  static std::size_t payload_offset(std::uint8_t cls);

  char* pool_;
  std::size_t pool_bytes_;
  std::size_t num_pages_;
  std::vector<std::uint32_t> page_table_;  // atomic via atomic_ref

  mutable std::atomic<std::uint64_t> st_allocs_{0};
  mutable std::atomic<std::uint64_t> st_frees_{0};
  mutable std::atomic<std::uint64_t> st_failed_{0};
  mutable std::atomic<std::uint64_t> st_activations_{0};
  mutable std::atomic<std::uint64_t> st_probes_{0};
};

}  // namespace toma::baseline
