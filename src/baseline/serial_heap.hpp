// SerialHeapAllocator: stand-in for the CUDA toolkit device-side malloc,
// the baseline of the paper's Figure 7.
//
// The CUDA device allocator is closed source; public measurements show a
// serialized free-list design whose throughput collapses as concurrency
// rises and is largely insensitive to allocation size. We reproduce that
// contention profile with the textbook design it is believed to resemble:
// one global lock around an address-ordered first-fit free list with
// boundary tags and immediate coalescing.
//
// This is deliberately *not* tuned: it is the "typical synchronization
// primitives over their scalability limits" exemplar the paper argues
// against. See DESIGN.md (substitutions) and EXPERIMENTS.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "sync/spin_mutex.hpp"

namespace toma::baseline {

struct SerialHeapStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t failed_allocs = 0;
};

class SerialHeapAllocator {
 public:
  /// Manage `pool_bytes` starting at `pool` (16-byte aligned or better).
  SerialHeapAllocator(void* pool, std::size_t pool_bytes);

  SerialHeapAllocator(const SerialHeapAllocator&) = delete;
  SerialHeapAllocator& operator=(const SerialHeapAllocator&) = delete;

  void* malloc(std::size_t size);
  void free(void* p);

  /// Contention model for simulator benchmarks (default 0 = off): the
  /// holder keeps the lock across `yields` scheduling points, modeling
  /// the serialized global-memory latency of the real device allocator's
  /// critical section. Under a cooperative scheduler a zero-latency
  /// critical section is never observed held, which would erase exactly
  /// the serialization this baseline exists to exhibit (EXPERIMENTS.md).
  void set_contention_latency(unsigned yields) { latency_ = yields; }

  std::size_t free_bytes() const;
  std::size_t largest_free_block() const;
  SerialHeapStats stats() const;

  /// Test hook: validate boundary tags and free-list integrity (quiescent).
  bool check_consistency() const;

 private:
  // Block header (boundary tag). Blocks are laid out contiguously; the
  // header precedes the payload, and `size` covers header + payload.
  struct Block {
    std::size_t size;      // total bytes including header, low bit = used
    Block* prev_phys;      // physical predecessor (for coalescing)
    Block* next_free;      // free-list links (valid when free)
    Block* prev_free;

    bool used() const { return size & 1; }
    std::size_t bytes() const { return size & ~std::size_t{1}; }
    void set(std::size_t b, bool u) { size = b | (u ? 1 : 0); }
  };
  static constexpr std::size_t kHeader = sizeof(Block);
  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t kMinBlock = kHeader + kAlign;

  void insert_free(Block* b);
  void remove_free(Block* b);
  Block* next_phys(Block* b) const;

  void hold_lock_latency() const;

  char* pool_;
  std::size_t pool_bytes_;
  unsigned latency_ = 0;
  mutable sync::SpinMutex mu_;
  Block free_head_;  // sentinel of the circular free list

  std::atomic<std::uint64_t> st_allocs_{0};
  std::atomic<std::uint64_t> st_frees_{0};
  std::atomic<std::uint64_t> st_failed_{0};
};

}  // namespace toma::baseline
