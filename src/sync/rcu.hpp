// Sleepable RCU with delegated (conditional) barriers: the paper's second
// contribution (§4.2.1, Figure 4).
//
// Per-thread-variable RCU is a non-starter with 10^5 threads, so the domain
// follows SRCU: one epoch counter plus a pair of per-parity reader
// counters. Readers increment/decrement the counter of the epoch they
// entered in; a grace period flips the epoch and waits for the old parity's
// counter to drain.
//
// Classical barrier (synchronize): serialize on the writer mutex, flip,
// wait, run deferred callbacks. The paper's observation: a barrier that is
// queued behind another barrier ends up waiting for readers that started
// *after* it was issued, pinning hardware resources.
//
// Conditional barrier (the delegation extension): if another barrier is
// already waiting to flip the epoch, our removal is covered by *its*
// upcoming grace period — so we enqueue our callbacks for that thread to
// execute and return immediately. Measured in bench/fig6.
#pragma once

#include <atomic>
#include <cstdint>

#include "gpusim/this_thread.hpp"
#include "sync/backoff.hpp"
#include "sync/spin_mutex.hpp"
#include "util/hints.hpp"

namespace toma::sync {

/// A deferred-reclamation callback. Intrusive so enqueueing allocates
/// nothing (callbacks are embedded in the object being reclaimed).
struct RcuCallback {
  RcuCallback* next = nullptr;
  void (*fn)(RcuCallback*) = nullptr;
};

class SrcuDomain {
 public:
  SrcuDomain() = default;
  SrcuDomain(const SrcuDomain&) = delete;
  SrcuDomain& operator=(const SrcuDomain&) = delete;

  // --- reader side ---------------------------------------------------------
  /// Enter a read-side critical section; returns the epoch parity to pass
  /// to read_unlock. Readers never block (the retry loop below runs at
  /// most once per concurrent epoch flip, and flips are serialized).
  ///
  /// The re-validation closes the classic SRCU race where a reader loads
  /// the epoch, stalls, and increments a parity counter that has since
  /// gone stale — which a concurrent grace period would not wait for.
  /// After the second load confirms the parity is (again) current, any
  /// barrier that subsequently flips this parity must observe and wait for
  /// our increment.
  unsigned read_lock() {
    for (;;) {
      const unsigned idx =
          static_cast<unsigned>(epoch_.load(std::memory_order_seq_cst) & 1);
      readers_[idx].fetch_add(1, std::memory_order_seq_cst);
      if ((epoch_.load(std::memory_order_seq_cst) & 1) == idx) return idx;
      readers_[idx].fetch_sub(1, std::memory_order_seq_cst);
    }
  }

  void read_unlock(unsigned idx) {
    readers_[idx].fetch_sub(1, std::memory_order_acq_rel);
  }

  // --- writer side ---------------------------------------------------------
  /// Enqueue a callback to run after the next grace period completes.
  /// Does not start a grace period by itself.
  void call(RcuCallback* cb);

  /// Classical full barrier: waits for a grace period, then runs every
  /// queued callback (including delegated ones). Serializes with other
  /// barriers on the writer mutex.
  void synchronize();

  /// The paper's conditional barrier. If another barrier is pending (has
  /// not yet flipped the epoch), delegate `cb` to it and return
  /// immediately; otherwise behave like call(cb) + synchronize().
  /// `cb` may be nullptr to delegate nothing but still ensure a grace
  /// period is in flight.
  void barrier_conditional(RcuCallback* cb);

  // --- introspection ---------------------------------------------------
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  std::int64_t readers(unsigned idx) const {
    return readers_[idx & 1].load(std::memory_order_acquire);
  }
  /// Completed full barriers and delegated (skipped) barriers; used by the
  /// Figure 6 benchmark to report delegation rates.
  std::uint64_t full_barriers() const {
    return full_barriers_.load(std::memory_order_relaxed);
  }
  std::uint64_t delegated_barriers() const {
    return delegated_barriers_.load(std::memory_order_relaxed);
  }
  /// Barriers currently between "issued" and "flipped" (test/diagnostic).
  std::uint32_t pending_barriers() const {
    return pending_barriers_.load(std::memory_order_seq_cst);
  }

 private:
  void run_callbacks(RcuCallback* head);

  TOMA_CACHELINE_ALIGNED std::atomic<std::uint64_t> epoch_{0};
  TOMA_CACHELINE_ALIGNED std::atomic<std::int64_t> readers_[2] = {0, 0};
  TOMA_CACHELINE_ALIGNED SpinMutex writer_mu_;
  // Barriers standing between "issued" and "flipped the epoch". Any
  // callback enqueued while this is non-zero is covered by one of them.
  std::atomic<std::uint32_t> pending_barriers_{0};
  // Treiber stack of callbacks awaiting the next grace period.
  TOMA_CACHELINE_ALIGNED std::atomic<RcuCallback*> queue_{nullptr};
  std::atomic<std::uint64_t> full_barriers_{0};
  std::atomic<std::uint64_t> delegated_barriers_{0};
};

/// RAII read-side critical section.
class RcuReadGuard {
 public:
  explicit RcuReadGuard(SrcuDomain& d) : d_(d), idx_(d.read_lock()) {}
  ~RcuReadGuard() { d_.read_unlock(idx_); }
  RcuReadGuard(const RcuReadGuard&) = delete;
  RcuReadGuard& operator=(const RcuReadGuard&) = delete;

 private:
  SrcuDomain& d_;
  unsigned idx_;
};

}  // namespace toma::sync
