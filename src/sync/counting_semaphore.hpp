// Counting semaphore with the paper's grow-aware wait semantics (§3.2).
//
// This is the *baseline* accounting primitive for two-stage resource
// management, kept for comparison against bulk semaphores (Figure 5).
//
// Extended wait(N) semantics for a growable resource pool:
//   - if S >= N:      S -= N, return N          (caller owns N units)
//   - if 0 <= S < N:  r = S, S = -1, return r   (caller must grow the pool)
//   - if S < 0:       block (someone is already growing)
//
// The grower later calls signal(B) with the batch it produced; because the
// value was -1, signal leaves S = B - 1, i.e. the grower implicitly keeps
// one unit for itself — exactly the Figure 1(a) walk-through, where
// Thread #0 signals 4 and Threads #1..#3 each take one unit while
// Thread #4 finds 0 left and grows again.
//
// Its built-in scalability barrier, demonstrated by bench/fig5: while one
// thread grows, *every* arriving thread blocks, so under T threads the wait
// queue grows to O(T) per batch regardless of batch size.
#pragma once

#include <atomic>
#include <cstdint>

#include "gpusim/this_thread.hpp"
#include "sync/backoff.hpp"
#include "util/assert.hpp"

namespace toma::sync {

class CountingSemaphore {
 public:
  explicit CountingSemaphore(std::int64_t initial = 0) : value_(initial) {
    TOMA_ASSERT(initial >= 0);
  }

  /// Acquire N units, following the extended semantics above.
  /// Returns the number of units actually acquired; a return value < N
  /// means the caller is now the designated grower and received that many
  /// residual units.
  std::int64_t wait(std::int64_t n) {
    TOMA_DASSERT(n > 0);
    std::int64_t s = value_.load(std::memory_order_acquire);
    Backoff bo;
    for (;;) {
      if (s >= n) {
        if (value_.compare_exchange_weak(s, s - n, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          return n;
        }
      } else if (s >= 0) {
        if (value_.compare_exchange_weak(s, -1, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          return s;
        }
      } else {
        bo.pause();
        s = value_.load(std::memory_order_acquire);
      }
    }
  }

  /// Acquire N units only if immediately available; no growing, no waiting.
  bool try_wait(std::int64_t n) {
    TOMA_DASSERT(n > 0);
    std::int64_t s = value_.load(std::memory_order_acquire);
    while (s >= n) {
      if (value_.compare_exchange_weak(s, s - n, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  /// Release N units (or publish a freshly grown batch of N).
  void signal(std::int64_t n) {
    TOMA_DASSERT(n > 0);
    value_.fetch_add(n, std::memory_order_acq_rel);
  }

  std::int64_t value() const {
    return value_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::int64_t> value_;
};

}  // namespace toma::sync
