// Collective<M> is header-only; this TU exists to give the sync library a
// home for explicit instantiations used widely enough to be worth compiling
// once.
#include "sync/collective_mutex.hpp"

namespace toma::sync {

template class Collective<SpinMutex>;

}  // namespace toma::sync
