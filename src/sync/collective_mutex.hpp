// Collective synchronization primitives: the paper's third contribution
// (§4.2.2) — the first synchronization construct that admits an entire
// group of cooperating threads into a critical section together.
//
// Semantics (mirroring the paper):
//  * collective lock: all threads of a group call lock(group); one of them
//    (the leader) actually acquires the underlying mutex, after which every
//    member is inside the critical section and may coordinate with the
//    others (barriers, rank-indexed work partitioning).
//  * collective unlock: each member calls unlock(group) when it leaves;
//    the mutex is released only when the last member has done so.
//
// A group is a gpusim CoalescedGroup (lanes of one warp coalesced around
// the same object); its token ties lock and unlock calls together. A
// singleton group degenerates to a plain mutex, so code paths need not
// special-case "nobody coalesced with me".
//
// The generic adaptor `Collective<M>` lifts any Lockable to collective
// semantics; CollectiveMutex is the concrete spin-mutex instantiation the
// allocator uses for its chunk lists.
#pragma once

#include <atomic>
#include <cstdint>

#include "gpusim/warp.hpp"
#include "obs/telemetry.hpp"
#include "sync/backoff.hpp"
#include "sync/spin_mutex.hpp"
#include "util/assert.hpp"
#include "util/hints.hpp"

namespace toma::sync {

template <typename M>
class Collective {
 public:
  /// Enter the critical section as part of `g`. Every member of `g` must
  /// call this exactly once with the same group object value.
  void lock(const gpu::CoalescedGroup& g) {
    if (g.is_leader()) {
      if (g.size() > 1) TOMA_CTR_INC("sync.cmutex.collective_acquire");
      [[maybe_unused]] const std::uint64_t t0 = TOMA_NOW_NS();
      base_.lock();
      TOMA_HIST("sync.cmutex.acquire_ns", TOMA_NOW_NS() - t0);
      pending_unlocks_.store(g.size(), std::memory_order_relaxed);
      // Publishing the token is the release point that lets members in.
      owner_token_.store(g.token(), std::memory_order_release);
    } else {
      Backoff bo;
      while (owner_token_.load(std::memory_order_acquire) != g.token()) {
        bo.pause();
      }
    }
  }

  /// Leave the critical section; the underlying mutex is released when the
  /// last member leaves. Members may call this at different times.
  void unlock(const gpu::CoalescedGroup& g) {
    (void)g;  // used by the debug assertion below
    TOMA_DASSERT(owner_token_.load(std::memory_order_relaxed) == g.token());
    if (pending_unlocks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      owner_token_.store(0, std::memory_order_relaxed);
      base_.unlock();
    }
  }

  /// Plain single-thread acquire, for host-side or uncoalesced callers.
  void lock() { base_.lock(); }
  void unlock() { base_.unlock(); }

  M& base() { return base_; }

 private:
  M base_;
  TOMA_CACHELINE_ALIGNED std::atomic<std::uint64_t> owner_token_{0};
  std::atomic<std::uint32_t> pending_unlocks_{0};
};

using CollectiveMutex = Collective<SpinMutex>;

/// RAII guard for a collective critical section.
class CollectiveLockGuard {
 public:
  CollectiveLockGuard(CollectiveMutex& m, const gpu::CoalescedGroup& g)
      : m_(m), g_(g) {
    m_.lock(g_);
  }
  ~CollectiveLockGuard() { m_.unlock(g_); }
  CollectiveLockGuard(const CollectiveLockGuard&) = delete;
  CollectiveLockGuard& operator=(const CollectiveLockGuard&) = delete;

 private:
  CollectiveMutex& m_;
  const gpu::CoalescedGroup& g_;
};

}  // namespace toma::sync
