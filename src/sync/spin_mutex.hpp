// Test-and-test-and-set spin mutex with cooperative backoff.
//
// This is the GPU-style mutex the paper treats as the scalability baseline:
// correct, simple, and serializing. The allocator uses it only where the
// paper does — short critical sections on cold paths (tree node state
// transitions, RCU writer side) — and replaces it with collective mutexes
// where whole groups enter together.
#pragma once

#include <atomic>

#include "sync/backoff.hpp"
#include "util/hints.hpp"

namespace toma::sync {

class SpinMutex {
 public:
  SpinMutex() = default;
  SpinMutex(const SpinMutex&) = delete;
  SpinMutex& operator=(const SpinMutex&) = delete;

  void lock() {
    Backoff bo;
    for (;;) {
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      bo.pause();
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

/// RAII guard (std::lock_guard works too; this one exists so device code
/// does not depend on <mutex>).
template <typename M>
class LockGuard {
 public:
  explicit LockGuard(M& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  M& m_;
};

}  // namespace toma::sync
