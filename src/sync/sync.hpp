// Umbrella header for the synchronization primitives.
#pragma once

#include "sync/backoff.hpp"
#include "sync/bulk_semaphore.hpp"
#include "sync/collective_mutex.hpp"
#include "sync/counting_semaphore.hpp"
#include "sync/rcu.hpp"
#include "sync/rcu_list.hpp"
#include "sync/spin_mutex.hpp"
#include "sync/treiber_stack.hpp"
