#include "sync/rcu.hpp"

#include "obs/telemetry.hpp"

namespace toma::sync {

void SrcuDomain::call(RcuCallback* cb) {
  if (cb == nullptr) return;
  RcuCallback* head = queue_.load(std::memory_order_relaxed);
  do {
    cb->next = head;
  } while (!queue_.compare_exchange_weak(head, cb, std::memory_order_seq_cst,
                                         std::memory_order_relaxed));
}

void SrcuDomain::run_callbacks(RcuCallback* head) {
  while (head != nullptr) {
    RcuCallback* next = head->next;
    head->fn(head);  // may free/reuse `head`
    head = next;
  }
}

void SrcuDomain::synchronize() {
  // Count ourselves as pending *before* taking the writer mutex: a
  // conditional barrier that observes pending > 0 may delegate to us, and
  // the seq_cst ordering between its enqueue and our queue_.exchange below
  // guarantees we see (and run) its callbacks. See barrier_conditional.
  pending_barriers_.fetch_add(1, std::memory_order_seq_cst);
  writer_mu_.lock();
  pending_barriers_.fetch_sub(1, std::memory_order_seq_cst);

  // Adopt every callback queued so far; they are covered by the grace
  // period we are about to run.
  RcuCallback* adopted = queue_.exchange(nullptr, std::memory_order_seq_cst);

  const std::uint64_t old_epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel);
  const unsigned old_idx = static_cast<unsigned>(old_epoch & 1);

  // Grace-period length: epoch flip until the last old-epoch reader leaves.
  [[maybe_unused]] const std::uint64_t t0 = TOMA_NOW_NS();
  Backoff bo;
  while (readers_[old_idx].load(std::memory_order_acquire) != 0) {
    bo.pause();
  }
  TOMA_HIST("sync.rcu.grace_ns", TOMA_NOW_NS() - t0);
  writer_mu_.unlock();

  full_barriers_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("sync.rcu.full_barrier");
  run_callbacks(adopted);
}

void SrcuDomain::barrier_conditional(RcuCallback* cb) {
  // Publish the callback first (seq_cst), then check for a pending
  // barrier (seq_cst). If we observe pending > 0, that barrier's
  // queue_.exchange has not happened yet in the seq_cst total order
  // (it post-dates its pending-- which post-dates our load), so it will
  // adopt our callback and its grace period covers our logical removal.
  call(cb);
  if (pending_barriers_.load(std::memory_order_seq_cst) > 0) {
    delegated_barriers_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("sync.rcu.delegated_barrier");
    return;
  }
  synchronize();
}

}  // namespace toma::sync
