// RCU-protected circular doubly-linked intrusive list.
//
// The structure the paper builds its UAlloc bin free-lists on (§4.2.1):
// readers traverse concurrently with writers; writers serialize on a
// mutex, *logically* remove a node (unlink), and defer making the node
// reusable until a grace period has passed — via a classical or a
// delegated (conditional) RCU barrier.
//
// Unlinking intentionally leaves the removed node's own next/prev intact,
// so a reader standing on the node keeps a valid path back into the list.
// Re-linking a node before its grace period completes would corrupt that
// path; callers gate reuse on the reclamation callback (see alloc/ualloc
// and the Figure 6 benchmark).
#pragma once

#include <atomic>

#include "sync/rcu.hpp"
#include "sync/spin_mutex.hpp"
#include "util/assert.hpp"

namespace toma::sync {

struct RcuListNode {
  std::atomic<RcuListNode*> next{nullptr};
  std::atomic<RcuListNode*> prev{nullptr};
};

class RcuList {
 public:
  explicit RcuList(SrcuDomain& dom) : dom_(&dom) {
    head_.next.store(&head_, std::memory_order_relaxed);
    head_.prev.store(&head_, std::memory_order_relaxed);
  }
  RcuList(const RcuList&) = delete;
  RcuList& operator=(const RcuList&) = delete;

  SrcuDomain& domain() { return *dom_; }

  // --- writer side (serialize via writer_lock or an external protocol) ----
  void writer_lock() { writer_mu_.lock(); }
  void writer_unlock() { writer_mu_.unlock(); }

  /// Insert at the front. Caller holds the writer lock and guarantees `n`
  /// is not reachable by any reader (fresh, or past its grace period).
  void push_front_locked(RcuListNode* n) {
    RcuListNode* first = head_.next.load(std::memory_order_relaxed);
    n->prev.store(&head_, std::memory_order_relaxed);
    n->next.store(first, std::memory_order_relaxed);
    first->prev.store(n, std::memory_order_relaxed);
    // Publication point: readers walking head_.next now see n, whose own
    // pointers are already valid.
    head_.next.store(n, std::memory_order_release);
  }

  /// Insert at the back (same preconditions as push_front_locked).
  void push_back_locked(RcuListNode* n) {
    RcuListNode* last = head_.prev.load(std::memory_order_relaxed);
    n->next.store(&head_, std::memory_order_relaxed);
    n->prev.store(last, std::memory_order_relaxed);
    head_.prev.store(n, std::memory_order_relaxed);
    last->next.store(n, std::memory_order_release);
  }

  /// Logically remove `n` (caller holds the writer lock). n's own
  /// next/prev are preserved for concurrent readers; n may be re-linked
  /// only after a grace period (synchronize/barrier_conditional).
  void unlink_locked(RcuListNode* n) {
    TOMA_DASSERT(n != &head_);
    RcuListNode* p = n->prev.load(std::memory_order_relaxed);
    RcuListNode* nx = n->next.load(std::memory_order_relaxed);
    nx->prev.store(p, std::memory_order_relaxed);
    p->next.store(nx, std::memory_order_release);
  }

  // --- reader side (wrap with RcuReadGuard on the domain) -----------------
  RcuListNode* reader_begin() {
    return head_.next.load(std::memory_order_acquire);
  }
  static RcuListNode* reader_next(RcuListNode* n) {
    return n->next.load(std::memory_order_acquire);
  }
  bool is_end(const RcuListNode* n) const { return n == &head_; }

  /// Convenience: visit nodes under a read-side critical section until
  /// `f` returns true (found) or the list is exhausted. Returns the node
  /// `f` accepted, or nullptr. `f` must not block on the writer lock.
  template <typename F>
  RcuListNode* find_reader(F&& f) {
    RcuReadGuard guard(*dom_);
    for (RcuListNode* n = reader_begin(); !is_end(n); n = reader_next(n)) {
      if (f(n)) return n;
    }
    return nullptr;
  }

  /// Writer-side emptiness probe (approximate under concurrency).
  bool empty() const {
    return head_.next.load(std::memory_order_acquire) == &head_;
  }

 private:
  SrcuDomain* dom_;
  SpinMutex writer_mu_;
  RcuListNode head_;
};

}  // namespace toma::sync
