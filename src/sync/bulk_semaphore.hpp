// Bulk semaphore: the paper's first contribution (§3.3, Algorithms 1 & 2).
//
// A counting semaphore extended with two counters so that *many* threads
// can grow the resource pool concurrently:
//
//   C — value: units currently available
//   E — expected: units promised by in-flight growers
//   R — reserved: units claimed by threads waiting for expected units
//
// The *expected availability* C + E - R answers "can I eventually get my N
// units without anyone growing?". If yes, the thread reserves and waits;
// if no, the thread becomes *a* grower (one of possibly many) by bumping E
// with its batch, and returns kMustGrow. This is what removes the
// counting-semaphore scalability barrier where a single grower blocks all
// arrivals (compare Figure 1(a) vs 1(b); measured in bench/fig5).
//
// All three counters are packed into one 64-bit word:
//
//   bits [40,64) C   (24 bits, up to 16M units)
//   bits [20,40) E   (20 bits)
//   bits [ 0,20) R   (20 bits)
//
// so every transition is a single CAS — and signal(), which is
// unconditional, is a single wait-free fetch_add (adding N to the C field
// and subtracting B from the E field in the same instruction). Field
// underflow/overflow cannot occur when callers respect the protocol:
// E is only decremented by the grower that previously incremented it, R
// only by the reserver, and C never exceeds the total resource count.
//
// Protocol summary for a grower (wait returned kMustGrow after wait(N, B)):
//   produced a batch of B units -> keep N, publish rest: signal(B-N, B-N)
//   produced nothing (grow failed) -> signal(0, B-N)
//   produced K in [N, B] units    -> keep N, signal(K-N, B-N)
#pragma once

#include <atomic>
#include <cstdint>

#include "gpusim/this_thread.hpp"
#include "obs/telemetry.hpp"
#include "sync/backoff.hpp"
#include "util/assert.hpp"

namespace toma::sync {

class BulkSemaphore {
 public:
  enum class WaitResult : int {
    kAcquired = 0,  // N units taken from C; proceed to the tracking stage
    kMustGrow = -1  // caller must produce a batch and signal it
  };

  static constexpr std::uint32_t kCBits = 24;
  static constexpr std::uint32_t kEBits = 20;
  static constexpr std::uint32_t kRBits = 20;
  static constexpr std::uint64_t kMaxValue = (1ull << kCBits) - 1;
  static constexpr std::uint64_t kMaxExpected = (1ull << kEBits) - 1;
  static constexpr std::uint64_t kMaxReserved = (1ull << kRBits) - 1;

  explicit BulkSemaphore(std::uint64_t initial = 0) {
    TOMA_ASSERT(initial <= kMaxValue);
    word_.store(pack(initial, 0, 0), std::memory_order_relaxed);
  }

  /// Algorithm 1. Acquire `n` units with grow batch size `b` (b > n).
  WaitResult wait(std::uint64_t n, std::uint64_t b) {
    TOMA_DASSERT(n > 0 && b >= n);
    Backoff bo;
    std::uint64_t w = word_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint64_t c = unpack_c(w), e = unpack_e(w), r = unpack_r(w);
      if (c + e < r + n) {
        // Not enough expected availability: promise a batch ourselves.
        TOMA_DASSERT(e + (b - n) <= kMaxExpected);
        if (word_.compare_exchange_weak(w, pack(c, e + (b - n), r),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          TOMA_CTR_INC("sync.bsem.grow");
          return WaitResult::kMustGrow;
        }
      } else if (c >= n) {
        if (word_.compare_exchange_weak(w, pack(c - n, e, r),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          TOMA_CTR_INC("sync.bsem.acquired");
          return WaitResult::kAcquired;
        }
      } else {
        // Covered by expected units: reserve and wait for them to land.
        //
        // NOTE: Algorithm 1 in the paper waits while R < C+E, which makes
        // the *exactly-covered* waiter (R == C+E after its own
        // reservation) exit immediately, drop its reservation, re-qualify
        // and reserve again — an oscillation that never blocks on real
        // hardware but never *yields* either, deadlocking a cooperative
        // scheduler (and burning memory bandwidth on a GPU). We wait
        // while R <= C+E, which is the condition the entry test
        // (C+E-R >= N, with R not yet including us) actually implies.
        TOMA_DASSERT(r + n <= kMaxReserved);
        if (word_.compare_exchange_weak(w, pack(c, e, r + n),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
          TOMA_CTR_INC("sync.bsem.reserve");
          [[maybe_unused]] const std::uint64_t t0 = TOMA_NOW_NS();
          w = word_.load(std::memory_order_acquire);
          while (unpack_c(w) < n &&
                 unpack_r(w) <= unpack_c(w) + unpack_e(w)) {
            bo.pause();
            w = word_.load(std::memory_order_acquire);
          }
          TOMA_HIST("sync.bsem.wait_ns", TOMA_NOW_NS() - t0);
          // Drop the reservation and re-decide from scratch.
          w = word_.fetch_sub(pack(0, 0, n), std::memory_order_acq_rel) -
              pack(0, 0, n);
          bo.pause();  // fairness: let signals land before re-deciding
        }
      }
    }
  }

  /// Acquire `n` units only if C >= n right now; never waits, never turns
  /// the caller into a grower. Used by TBuddy's merge path (§4.1): only a
  /// failed try_wait *guarantees* the buddy cannot be merged.
  bool try_wait(std::uint64_t n) {
    TOMA_DASSERT(n > 0);
    std::uint64_t w = word_.load(std::memory_order_acquire);
    while (unpack_c(w) >= n) {
      if (word_.compare_exchange_weak(w, w - pack(n, 0, 0),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  /// Algorithm 2: C += n, E -= b. Wait-free (single fetch_add). Waiters
  /// observe the change on their next spin iteration; there is no separate
  /// wake-up step in a yield-based environment.
  void signal(std::uint64_t n, std::uint64_t b = 0) {
    const std::uint64_t delta = pack(n, 0, 0) - pack(0, b, 0);
    const std::uint64_t prev =
        word_.fetch_add(delta, std::memory_order_acq_rel);
    (void)prev;
    TOMA_DASSERT(unpack_e(prev) >= b);
    TOMA_DASSERT(unpack_c(prev) + n <= kMaxValue);
  }

  // --- introspection (tests, stats; not synchronization) ------------------
  std::uint64_t value() const { return unpack_c(load()); }
  std::uint64_t expected() const { return unpack_e(load()); }
  std::uint64_t reserved() const { return unpack_r(load()); }

  struct Snapshot {
    std::uint64_t value, expected, reserved;
  };
  Snapshot snapshot() const {
    const std::uint64_t w = load();
    return {unpack_c(w), unpack_e(w), unpack_r(w)};
  }

 private:
  static constexpr std::uint32_t kEShift = kRBits;
  static constexpr std::uint32_t kCShift = kRBits + kEBits;

  static constexpr std::uint64_t pack(std::uint64_t c, std::uint64_t e,
                                      std::uint64_t r) {
    return (c << kCShift) | (e << kEShift) | r;
  }
  static constexpr std::uint64_t unpack_c(std::uint64_t w) {
    return w >> kCShift;
  }
  static constexpr std::uint64_t unpack_e(std::uint64_t w) {
    return (w >> kEShift) & kMaxExpected;
  }
  static constexpr std::uint64_t unpack_r(std::uint64_t w) {
    return w & kMaxReserved;
  }

  std::uint64_t load() const { return word_.load(std::memory_order_acquire); }

  std::atomic<std::uint64_t> word_;
};

}  // namespace toma::sync
