// Bounded lock-free LIFO of 32-bit element indices (Treiber stack).
//
// The classic Treiber stack suffers ABA when a popped element is re-pushed
// while another popper still holds a stale head: the stale CAS succeeds and
// splices in a dead next pointer. Pointer tagging is the textbook fix; we
// get a full 32-bit generation tag for free by storing *indices* instead of
// pointers — the head word packs {tag:32, index:32} and every successful
// push/pop increments the tag, so a stale head can never win a CAS.
//
// Element storage is external: the caller owns an array of atomic links
// (one slot per possible element, e.g. one per tree node or per pool
// block) and elements carry their successor in links[i]. This keeps the
// stack header to two words and lets many stacks share one link array as
// long as each element lives in at most one stack at a time — exactly the
// per-order quicklist layout TBuddy uses (alloc/tbuddy.hpp).
//
// The bound is enforced by reservation: try_push claims a slot in `count_`
// *before* linking, so the number of stored elements never exceeds the
// capacity even under concurrent pushes (the counter itself may transiently
// overshoot while a loser backs out). count() is approximate under
// concurrency, exact at quiescence — the same contract as every statistics
// read in this codebase.
//
// Progress: push and pop are lock-free (a CAS failure implies another
// thread's CAS succeeded). Memory ordering: a successful pop acquires the
// pushing thread's release, so writes made to an element's memory before
// push() are visible to the thread that pops it.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/assert.hpp"

namespace toma::sync {

class TreiberStack {
 public:
  /// Sentinel index: "no element" (empty stack / end of chain).
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  TreiberStack() = default;
  TreiberStack(const TreiberStack&) = delete;
  TreiberStack& operator=(const TreiberStack&) = delete;

  /// Fix the bound. Call before first use (not thread-safe).
  void set_capacity(std::uint32_t cap) { cap_ = cap; }
  std::uint32_t capacity() const { return cap_; }

  /// Push element `i`, linking through `links[i]`. Returns false when the
  /// stack is at capacity (the element is untouched).
  bool try_push(std::atomic<std::uint32_t>* links, std::uint32_t i) {
    TOMA_DASSERT(i != kNil);
    if (count_.fetch_add(1, std::memory_order_relaxed) >= cap_) {
      count_.fetch_sub(1, std::memory_order_relaxed);
      return false;
    }
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      links[i].store(index_of(h), std::memory_order_relaxed);
      // Release: publishes both the link and any prior writes into the
      // element's memory to the eventual popper.
      if (head_.compare_exchange_weak(h, pack(tag_of(h) + 1, i),
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Pop the most recently pushed element; kNil when empty.
  std::uint32_t try_pop(std::atomic<std::uint32_t>* links) {
    std::uint64_t h = head_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t i = index_of(h);
      if (i == kNil) return kNil;
      const std::uint32_t next = links[i].load(std::memory_order_relaxed);
      if (head_.compare_exchange_weak(h, pack(tag_of(h) + 1, next),
                                      std::memory_order_acquire,
                                      std::memory_order_acquire)) {
        count_.fetch_sub(1, std::memory_order_relaxed);
        return i;
      }
    }
  }

  /// Elements stored right now (approximate under concurrency).
  std::uint32_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  bool empty() const {
    return index_of(head_.load(std::memory_order_acquire)) == kNil;
  }

  /// Top element without popping (kNil when empty). Only meaningful on a
  /// quiescent stack — consistency checks walk from here through the
  /// caller's link array.
  std::uint32_t peek() const {
    return index_of(head_.load(std::memory_order_acquire));
  }

 private:
  static constexpr std::uint64_t pack(std::uint64_t tag, std::uint32_t idx) {
    return (tag << 32) | idx;
  }
  static constexpr std::uint32_t index_of(std::uint64_t h) {
    return static_cast<std::uint32_t>(h);
  }
  static constexpr std::uint64_t tag_of(std::uint64_t h) { return h >> 32; }

  std::atomic<std::uint64_t> head_{pack(0, kNil)};
  std::atomic<std::uint32_t> count_{0};
  std::uint32_t cap_ = 0;
};

}  // namespace toma::sync
