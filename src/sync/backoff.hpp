// Contention backoff for spin loops in device code.
//
// Short bursts of cpu_relax to ride out cache-line ping-pong, then a
// cooperative yield so other fibers (or OS threads) make progress. Every
// spin loop in the library funnels through this type, which is what makes
// the primitives safe under the simulator's cooperative scheduling.
#pragma once

#include <cstdint>

#include "gpusim/this_thread.hpp"

namespace toma::sync {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

class Backoff {
 public:
  explicit Backoff(std::uint32_t spins_before_yield = 4)
      : limit_(spins_before_yield) {}

  void pause() {
    if (count_ < limit_) {
      ++count_;
      cpu_relax();
    } else {
      gpu::this_thread::yield();
    }
  }

  void reset() { count_ = 0; }

 private:
  std::uint32_t count_ = 0;
  std::uint32_t limit_;
};

}  // namespace toma::sync
