// The telemetry registry: named counters, counter vectors, histograms and
// histogram vectors, plus snapshotting with diff and text/JSON export.
//
// Handles returned by counter()/histogram() are stable for the registry's
// lifetime (instruments are never deleted), which is what lets the macros
// cache them in function-local statics. The process-wide registry() is a
// leaky singleton so allocator destructors running during static teardown
// can still bump counters safely.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/counter.hpp"
#include "obs/histogram.hpp"

namespace toma::obs {

/// A point-in-time, fully aggregated view of a Registry. Value type:
/// snapshots can be stored, diffed and exported after the registry moved
/// on (or was torn down).
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Activity since `before` (counters subtract; histogram buckets/counts
  /// subtract, min/max keep the later absolute values).
  Snapshot diff_since(const Snapshot& before) const;

  /// Derived ratios: for every counter pair `<base>.hit` / `<base>.miss`
  /// with hit+miss > 0, maps `<base>.hit_rate` to hit / (hit + miss).
  /// Computed on demand so stored snapshots stay purely integral.
  std::map<std::string, double> derived_rates() const;

  /// Human-readable report: counters sorted by name, histograms with
  /// count/mean/p50/p95/p99/max. Zero-valued counters are kept — absence
  /// of events is information too.
  std::string to_text() const;

  /// Machine-readable JSON:
  /// {"counters":{...},"derived":{...},"histograms":{...}}.
  std::string to_json() const;

  /// The body of to_json() without the enclosing braces
  /// (`"counters":{...},"derived":{...},"histograms":{...}`), so richer
  /// exports (obs/export.hpp) can embed the same representation next to
  /// their own sections without re-serializing.
  std::string to_json_body() const;

  /// to_json() to a file; false on I/O failure.
  bool write_json(const std::string& path) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Thread-safe; O(log n) map lookup — call once per
  /// call site and cache the reference (the macros do).
  Counter& counter(const std::string& name);
  CounterVec& counter_vec(const std::string& name, std::uint32_t width);
  Histogram& histogram(const std::string& name);
  HistogramVec& histogram_vec(const std::string& name, std::uint32_t width);

  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<CounterVec>> counter_vecs_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<HistogramVec>> histogram_vecs_;
};

/// The process-wide registry every TOMA_* macro records into.
Registry& registry();

}  // namespace toma::obs
