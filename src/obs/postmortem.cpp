#include "obs/postmortem.hpp"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "obs/context.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace toma::obs {

namespace {

// Trace records shown for the faulting SM. The ring can hold thousands;
// a crash report wants the last few scheduler quanta, not the history.
constexpr std::size_t kMaxPostmortemRecords = 32;

const char* phase_name(TracePhase p) {
  switch (p) {
    case TracePhase::kInstant:
      return "instant";
    case TracePhase::kBegin:
      return "begin";
    case TracePhase::kEnd:
      return "end";
  }
  return "?";
}

}  // namespace

void postmortem_dump() {
  std::fputs("\n--- toma postmortem ---\n", stderr);

  const Snapshot snap = registry().snapshot();
  std::fputs("-- telemetry snapshot --\n", stderr);
  std::fputs(snap.to_text().c_str(), stderr);

  const std::uint32_t sm = current_sm();
  std::fprintf(stderr, "-- trace ring (sm %" PRIu32 "%s) --\n", sm,
               sm >= kShards ? ", host thread" : "");
  const std::vector<TraceRecord> all = trace_records();
  // Keep this SM's records only, then the most recent kMaxPostmortemRecords
  // (trace_records() is sorted by tick already).
  std::vector<const TraceRecord*> mine;
  for (const TraceRecord& r : all) {
    if (r.sm == sm) mine.push_back(&r);
  }
  if (mine.empty()) {
    std::fputs(all.empty()
                   ? "(tracing disabled or no records captured)\n"
                   : "(no records for this SM)\n",
               stderr);
  } else {
    const std::size_t first =
        mine.size() > kMaxPostmortemRecords ? mine.size() - kMaxPostmortemRecords
                                            : 0;
    for (std::size_t i = first; i < mine.size(); ++i) {
      const TraceRecord& r = *mine[i];
      std::fprintf(stderr,
                   "  tick %" PRIu64 " warp %" PRIu32 " %-8s %s arg=%" PRIu64
                   "\n",
                   r.tick, r.warp, phase_name(r.phase), r.name, r.arg);
    }
  }
  std::fputs("--- end postmortem ---\n", stderr);
  std::fflush(stderr);
}

void install_postmortem_hook() {
  // First call installs; the static guarantees idempotence without racing
  // a second exchange against a concurrently firing assert.
  static const bool installed = [] {
    util::set_fatal_hook(&postmortem_dump);
    return true;
  }();
  (void)installed;
}

}  // namespace toma::obs
