#include "obs/recorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "util/assert.hpp"
#include "util/hints.hpp"

namespace toma::obs {

namespace {

// Raw test-and-set lock (same rationale as the trace ring locks: a push
// never suspends while holding it, so contention only comes from other OS
// threads holding it for a handful of stores). obs sits below sync/, so
// it cannot use sync::SpinMutex.
struct TOMA_CACHELINE_ALIGNED RecLock {
  std::atomic_flag f = ATOMIC_FLAG_INIT;
  void lock() {
    while (f.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { f.clear(std::memory_order_release); }
};

void count_drop() {
  // Monotonic process-wide loss counter; lives in the registry so every
  // metrics export shows recorder loss (unlike dropped(), it survives
  // re-starts). No-op with telemetry compiled out.
  TOMA_CTR_INC("obs.record.dropped");
}

}  // namespace

struct Recorder::Impl {
  mutable RecLock mu;

  bool started = false;  // a session exists (may be stopped)
  std::atomic<std::uint64_t> generation{0};  // lock-free read (hot path)
  std::size_t capacity = 0;
  std::uint64_t dropped = 0;
  std::uint64_t next_seq = 0;
  std::uint32_t next_block = 1;
  std::uint32_t next_stream = 1;  // 0 is reserved for the default stream

  std::vector<RecordEvent> events;
  std::vector<RecordedPool> pools;
  std::unordered_map<std::string, std::uint16_t> pool_ids;
  std::unordered_map<std::uint32_t, std::uint32_t> stream_ids;
  std::unordered_map<const void*, std::uint32_t> blocks;

  // Append under mu; counts a drop when the buffer is at capacity.
  // Returns false on drop.
  bool push(const RecordEvent& e) {
    if (events.size() >= capacity) {
      ++dropped;
      return false;
    }
    events.push_back(e);
    return true;
  }

  std::uint32_t stream_id(std::uint32_t gpu_id, bool is_default) {
    if (is_default) return 0;
    auto [it, inserted] = stream_ids.try_emplace(gpu_id, next_stream);
    if (inserted) ++next_stream;
    return it->second;
  }
};

Recorder::Recorder() : impl_(new Impl()) {}

Recorder& Recorder::instance() {
  static Recorder* r = new Recorder();  // leaky: outlives static dtors
  return *r;
}

bool Recorder::start(std::size_t capacity_events) {
  if (recording_enabled()) return false;
  Impl& im = *impl_;
  im.mu.lock();
  im.started = true;
  im.generation.fetch_add(1, std::memory_order_relaxed);
  im.capacity = capacity_events < 1024 ? 1024 : capacity_events;
  im.dropped = 0;
  im.next_seq = 0;
  im.next_block = 1;
  im.next_stream = 1;
  im.events.clear();
  im.events.reserve(im.capacity);
  im.pools.clear();
  im.pool_ids.clear();
  im.stream_ids.clear();
  im.blocks.clear();
  im.mu.unlock();
  detail::g_record_on.store(true, std::memory_order_seq_cst);
  return true;
}

void Recorder::stop() {
  detail::g_record_on.store(false, std::memory_order_seq_cst);
}

std::uint64_t Recorder::generation() const {
  return impl_->generation.load(std::memory_order_relaxed);
}

std::size_t Recorder::event_count() const {
  Impl& im = *impl_;
  im.mu.lock();
  const std::size_t n = im.events.size();
  im.mu.unlock();
  return n;
}

std::uint64_t Recorder::dropped() const {
  Impl& im = *impl_;
  im.mu.lock();
  const std::uint64_t d = im.dropped;
  im.mu.unlock();
  return d;
}

std::uint16_t Recorder::intern_pool(const RecordedPool& info) {
  Impl& im = *impl_;
  im.mu.lock();
  auto it = im.pool_ids.find(info.name);
  if (it == im.pool_ids.end()) {
    const auto id = static_cast<std::uint16_t>(im.pools.size());
    im.pools.push_back(info);
    it = im.pool_ids.emplace(info.name, id).first;
  }
  const std::uint16_t id = it->second;
  im.mu.unlock();
  return id;
}

std::uint32_t Recorder::on_alloc(std::uint16_t pool, RecOp op,
                                 std::size_t size,
                                 std::uint32_t gpu_stream_id,
                                 bool is_default_stream, const void* result,
                                 std::uint8_t outcome) {
  if (!recording_enabled()) return 0;
  Impl& im = *impl_;
  im.mu.lock();
  std::uint32_t block = 0;
  if (result != nullptr) {
    block = im.next_block++;
    im.blocks[result] = block;
  }
  RecordEvent e{};
  e.seq = im.next_seq++;
  e.size = size;
  e.block = block;
  e.stream = im.stream_id(gpu_stream_id, is_default_stream);
  e.pool = pool;
  e.op = op;
  e.outcome = outcome;
  const bool ok = im.push(e);
  im.mu.unlock();
  if (!ok) count_drop();
  return block;
}

void Recorder::on_free(std::uint16_t pool, RecOp op, const void* p,
                       std::uint32_t gpu_stream_id, bool is_default_stream) {
  if (!recording_enabled()) return;
  Impl& im = *impl_;
  im.mu.lock();
  // A block allocated before recording started frees with id 0; replay
  // skips it (it has no pointer to free).
  std::uint32_t block = 0;
  if (auto it = im.blocks.find(p); it != im.blocks.end()) {
    block = it->second;
    im.blocks.erase(it);
  }
  RecordEvent e{};
  e.seq = im.next_seq++;
  e.block = block;
  e.stream = im.stream_id(gpu_stream_id, is_default_stream);
  e.pool = pool;
  e.op = op;
  e.outcome = kRecOk;
  const bool ok = im.push(e);
  im.mu.unlock();
  if (!ok) count_drop();
}

void Recorder::on_realloc(std::uint16_t pool, const void* old_p,
                          const void* new_p, std::size_t size,
                          std::uint8_t outcome) {
  if (!recording_enabled()) return;
  Impl& im = *impl_;
  im.mu.lock();
  std::uint32_t old_block = 0;
  if (old_p != nullptr) {
    if (auto it = im.blocks.find(old_p); it != im.blocks.end()) {
      old_block = it->second;
      // realloc(p, 0) freed p; a successful resize moves or keeps the
      // identity, and a failed one leaves the old block live.
      if (new_p != nullptr || size == 0) im.blocks.erase(it);
    }
  }
  std::uint32_t new_block = 0;
  if (new_p != nullptr) {
    new_block = im.next_block++;
    im.blocks[new_p] = new_block;
  }
  RecordEvent e{};
  e.seq = im.next_seq++;
  e.size = size;
  e.block = old_block;
  e.aux = new_block;
  e.pool = pool;
  e.op = RecOp::kRealloc;
  e.outcome = outcome;
  const bool ok = im.push(e);
  im.mu.unlock();
  if (!ok) count_drop();
}

void Recorder::on_sync(std::uint16_t pool, RecOp op,
                       std::uint32_t gpu_stream_id, bool is_default_stream,
                       std::uint64_t amount) {
  if (!recording_enabled()) return;
  Impl& im = *impl_;
  im.mu.lock();
  RecordEvent e{};
  e.seq = im.next_seq++;
  e.size = amount;
  e.stream = im.stream_id(gpu_stream_id, is_default_stream);
  e.pool = pool;
  e.op = op;
  e.outcome = kRecOk;
  const bool ok = im.push(e);
  im.mu.unlock();
  if (!ok) count_drop();
}

RecordedTrace Recorder::trace() const {
  Impl& im = *impl_;
  RecordedTrace t;
  im.mu.lock();
  t.pools = im.pools;
  t.dropped = im.dropped;
  t.events = im.events;
  im.mu.unlock();
  return t;
}

bool Recorder::dump(const std::string& path) const {
  return trace().write(path);
}

// ---------------------------------------------------------------------------
// .tomarec serialization
// ---------------------------------------------------------------------------

namespace {

bool put(std::FILE* f, const void* p, std::size_t n) {
  return std::fwrite(p, 1, n, f) == n;
}
bool get(std::FILE* f, void* p, std::size_t n) {
  return std::fread(p, 1, n, f) == n;
}
template <typename T>
bool put_int(std::FILE* f, T v) {
  return put(f, &v, sizeof(v));
}
template <typename T>
bool get_int(std::FILE* f, T* v) {
  return get(f, v, sizeof(*v));
}

}  // namespace

bool RecordedTrace::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = put(f, kTomarecMagic, sizeof(kTomarecMagic)) &&
            put_int(f, version) &&
            put_int(f, static_cast<std::uint32_t>(pools.size()));
  for (const RecordedPool& p : pools) {
    if (!ok) break;
    ok = put_int(f, static_cast<std::uint16_t>(p.name.size())) &&
         put(f, p.name.data(), p.name.size()) && put_int(f, p.pool_bytes) &&
         put_int(f, p.quota_bytes) && put_int(f, p.release_threshold) &&
         put_int(f, p.num_arenas) && put_int(f, p.flags);
  }
  ok = ok && put_int(f, dropped) &&
       put_int(f, static_cast<std::uint64_t>(events.size()));
  if (ok && !events.empty()) {
    ok = put(f, events.data(), events.size() * sizeof(RecordEvent));
  }
  return std::fclose(f) == 0 && ok;
}

bool RecordedTrace::read(const std::string& path, RecordedTrace* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  RecordedTrace t;
  char magic[sizeof(kTomarecMagic)];
  std::uint32_t pool_count = 0;
  std::uint64_t event_count = 0;
  bool ok = get(f, magic, sizeof(magic)) &&
            std::memcmp(magic, kTomarecMagic, sizeof(magic)) == 0 &&
            get_int(f, &t.version) && t.version <= kTomarecVersion &&
            t.version >= 1 && get_int(f, &pool_count) &&
            pool_count <= UINT16_MAX + 1;
  for (std::uint32_t i = 0; ok && i < pool_count; ++i) {
    RecordedPool p;
    std::uint16_t len = 0;
    ok = get_int(f, &len);
    if (ok) {
      p.name.resize(len);
      ok = get(f, p.name.data(), len) && get_int(f, &p.pool_bytes) &&
           get_int(f, &p.quota_bytes) && get_int(f, &p.release_threshold) &&
           get_int(f, &p.num_arenas) && get_int(f, &p.flags);
    }
    if (ok) t.pools.push_back(std::move(p));
  }
  ok = ok && get_int(f, &t.dropped) && get_int(f, &event_count);
  if (ok && event_count != 0) {
    // Bound the resize by the actual file size so a corrupt count cannot
    // drive a huge allocation.
    const long body_at = std::ftell(f);
    ok = body_at >= 0 && std::fseek(f, 0, SEEK_END) == 0;
    const long end_at = ok ? std::ftell(f) : -1;
    ok = ok && end_at >= body_at &&
         static_cast<std::uint64_t>(end_at - body_at) ==
             event_count * sizeof(RecordEvent) &&
         std::fseek(f, body_at, SEEK_SET) == 0;
    if (ok) {
      t.events.resize(static_cast<std::size_t>(event_count));
      ok = get(f, t.events.data(), t.events.size() * sizeof(RecordEvent));
    }
  }
  std::fclose(f);
  if (ok && out != nullptr) *out = std::move(t);
  return ok;
}

// ---------------------------------------------------------------------------
// TOMA_RECORD environment boot
// ---------------------------------------------------------------------------

namespace {

// TOMA_RECORD=1 (or any non-numeric truthy value) starts a recording with
// the default capacity at process start; TOMA_RECORD=<N> for N >= 1024
// sets the event capacity. TOMA_RECORD=0 / unset leaves recording off.
// Dumping is always explicit (toma_record_dump / bench --record=PATH).
const bool g_env_boot = [] {
  const char* v = std::getenv("TOMA_RECORD");
  if (v == nullptr || v[0] == '\0' || std::strcmp(v, "0") == 0) return false;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v, &end, 10);
  const std::size_t cap = (end != v && *end == '\0' && n > 1)
                              ? static_cast<std::size_t>(n)
                              : Recorder::kDefaultCapacity;
  return Recorder::instance().start(cap);
}();

}  // namespace

}  // namespace toma::obs
