// Metrics export: render a registry Snapshot (or a snapshot diff) as
// Prometheus text exposition or stable JSON, with per-pool SLO quantiles
// derived from the log2 latency histograms (docs/OBSERVABILITY.md).
//
// Naming convention: a registry instrument name may carry a trailing
// Prometheus-style label block — `pool.malloc_ns{pool="tenant-a"}` — and
// counter vectors export as `name[i]`. Both map onto labels here:
// `toma_pool_malloc_ns{pool="tenant-a"}` and `toma_name{index="i"}`.
// Everything else about the name is sanitized ('.' and any other
// non-metric character become '_') and prefixed, so exposition never
// emits an unnamed or illegal series — CI lints the output.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hpp"

namespace toma::obs {

/// Schema version stamped into the stable-JSON export (and the bench
/// --json dumper). Bump on any layout change so downstream diffing tools
/// can refuse mixed comparisons instead of mis-diffing.
inline constexpr std::uint32_t kExportSchemaVersion = 1;

/// A registry instrument name split into its metric part and labels.
struct SeriesName {
  std::string metric;  // e.g. "pool.malloc_ns"
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Parse `name[i]` / `name{k="v",...}` suffixes (escaped \" and \\ in
/// label values are unescaped). Names without a suffix parse to
/// label-free series.
SeriesName parse_series_name(const std::string& name);

/// `prefix_metric` with every character outside [a-zA-Z0-9_:] folded to
/// '_' (dots become underscores: "pool.sync" -> "toma_pool_sync").
std::string prometheus_metric_name(const std::string& metric,
                                   const std::string& prefix);

/// Per-(pool, op) latency SLO summary, extracted from the
/// `pool.<op>_ns{pool="..."}` histograms plus the
/// `pool.slo_violation{pool="..."}` counter when present.
struct SloSummary {
  std::string pool;
  std::string op;  // "malloc" or "free"
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::uint64_t violations = 0;
};

/// All SLO summaries in a snapshot, sorted by (pool, op).
std::vector<SloSummary> slo_summaries(const Snapshot& snap);

/// Prometheus text exposition: counters and derived rates with # TYPE
/// headers, histograms as cumulative `le` buckets (+Inf, _sum, _count),
/// and `<prefix>_slo_latency_ns{pool,op,quantile}` gauges for every SLO
/// summary. Works on diffs exactly as on absolute snapshots.
std::string to_prometheus(const Snapshot& snap,
                          const std::string& prefix = "toma");

/// Stable JSON: {"schema_version":N,"counters":...,"derived":...,
/// "histograms":...,"slo":{"<pool>":{"<op>":{...}}}}. The inner three
/// sections are byte-identical to Snapshot::to_json().
std::string to_stable_json(const Snapshot& snap);

/// File forms; false on I/O failure.
bool write_prometheus(const Snapshot& snap, const std::string& path,
                      const std::string& prefix = "toma");
bool write_stable_json(const Snapshot& snap, const std::string& path);

}  // namespace toma::obs
