// Cache-line-sharded monotonic counters.
//
// One shard per simulated SM (modulo kShards): a counter bump is a relaxed
// fetch_add on a line only the bumping SM's worker thread normally writes,
// so hot-path instrumentation adds no cross-SM cache traffic. Reads
// aggregate all shards and are approximate under concurrency (like every
// other statistics read in the allocator).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/context.hpp"
#include "util/assert.hpp"
#include "util/hints.hpp"

namespace toma::obs {

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n) {
    shards_[current_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Aggregate over shards. O(kShards); intended for snapshots, not hot
  /// paths.
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  // --- test introspection --------------------------------------------------
  static constexpr std::uint32_t shard_count() { return kShards; }
  std::uint64_t shard_value(std::uint32_t i) const {
    TOMA_DASSERT(i < kShards);
    return shards_[i].v.load(std::memory_order_relaxed);
  }

 private:
  struct TOMA_CACHELINE_ALIGNED Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// A fixed-width array of counters under one name, exported as "name[i]".
/// Used for per-order / per-size-class breakdowns where the index is only
/// known at runtime. Out-of-range indices clamp to the last element so an
/// unexpected order can never write out of bounds.
class CounterVec {
 public:
  explicit CounterVec(std::uint32_t width) : counters_(width) {
    TOMA_ASSERT(width > 0);
  }
  CounterVec(const CounterVec&) = delete;
  CounterVec& operator=(const CounterVec&) = delete;

  Counter& at(std::uint32_t i) {
    const auto w = static_cast<std::uint32_t>(counters_.size());
    return counters_[i < w ? i : w - 1];
  }
  std::uint32_t width() const {
    return static_cast<std::uint32_t>(counters_.size());
  }
  const Counter& get(std::uint32_t i) const { return counters_[i]; }

 private:
  std::vector<Counter> counters_;
};

}  // namespace toma::obs
