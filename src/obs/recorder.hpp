// Flight recorder: a bounded in-memory log of allocator front-end events
// (alloc/free/realloc/sync) with pool, stream, size and outcome, dumpable
// as a compact versioned binary trace (`.tomarec`) that the replay
// harness (bench/replay.cpp) re-runs through the public C API.
//
// Recording is a runtime opt-in like tracing: off, every Pool hook costs
// one relaxed bool load. On (`Recorder::start`, `toma_record_start`, or
// the TOMA_RECORD environment variable), events append to a
// pre-reserved buffer under a raw spinlock; when the buffer is full new
// events are *dropped and counted* — never blocking the allocator and
// never growing without bound (`obs.record.dropped` surfaces the loss in
// every metrics export).
//
// Identity is interned so a trace is self-contained and replayable:
//   * pools   -> dense u16 ids, with the pool's geometry (pool_bytes,
//                arenas, quota, threshold, front-end flags) in the trace
//                header so replay can recreate an equivalent pool;
//   * streams -> dense u32 ids in first-appearance order (0 is always
//                the process default stream);
//   * blocks  -> dense u32 ids assigned per successful allocation, so a
//                free names *which* allocation it frees without baking
//                process-specific pointer values into the format.
// Because all three are assigned in event order, recording a replay of a
// trace reproduces the original event stream bit-for-bit — the CI
// record/replay smoke leg literally `cmp`s the two files.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace toma::obs {

/// Bumped whenever the .tomarec layout changes.
inline constexpr std::uint32_t kTomarecVersion = 1;

/// File magic: "TOMAREC" + 0x1A (a DOS EOF byte, so accidental `cat`
/// stops before the binary body).
inline constexpr char kTomarecMagic[8] = {'T', 'O', 'M', 'A',
                                          'R', 'E', 'C', 0x1a};

enum class RecOp : std::uint8_t {
  kMalloc = 0,
  kCalloc = 1,
  kRealloc = 2,
  kFree = 3,
  kMallocAsync = 4,
  kFreeAsync = 5,
  kSync = 6,           // Pool::sync(stream)
  kTrim = 7,           // Pool::trim()
  kStreamRelease = 8,  // Pool::release_stream(stream)
  kSyncAll = 9,        // Pool::sync_all()
};

/// Outcome byte: the numeric value of alloc::AllocStatus (== the numeric
/// value of the C facade's toma_status_t for these four cases). Stored as
/// a raw byte so obs stays below the alloc layer.
inline constexpr std::uint8_t kRecOk = 0;

/// One recorded event; exactly the on-disk record layout (32 bytes,
/// little-endian on every platform we build for).
struct RecordEvent {
  std::uint64_t seq;     // global order, 0-based
  std::uint64_t size;    // alloc/realloc: requested bytes;
                         // sync/trim: frees drained / chunks released
  std::uint32_t block;   // alloc: id granted (0 = failed);
                         // free/realloc: id being freed/resized
  std::uint32_t aux;     // realloc: id of the resulting block
  std::uint32_t stream;  // interned stream id; 0 = default stream
  std::uint16_t pool;    // interned pool id (index into the pool table)
  RecOp op;
  std::uint8_t outcome;  // AllocStatus / toma_status_t value
};
static_assert(sizeof(RecordEvent) == 32, "on-disk record layout");

/// Pool-table entry: everything replay needs to recreate an equivalent
/// pool. `flags` bit 0 = stream-async front-end on, bit 1 = HeapSan on.
struct RecordedPool {
  std::string name;
  std::uint64_t pool_bytes = 0;
  std::uint64_t quota_bytes = 0;
  std::uint64_t release_threshold = 0;
  std::uint32_t num_arenas = 0;
  std::uint32_t flags = 0;
};

inline constexpr std::uint32_t kRecPoolAsync = 1u << 0;
inline constexpr std::uint32_t kRecPoolHeapSan = 1u << 1;

/// A complete trace: the in-memory form of a .tomarec file.
struct RecordedTrace {
  std::uint32_t version = kTomarecVersion;
  std::vector<RecordedPool> pools;
  std::uint64_t dropped = 0;
  std::vector<RecordEvent> events;

  bool write(const std::string& path) const;
  /// false on I/O error, bad magic, or a version newer than this build.
  static bool read(const std::string& path, RecordedTrace* out);
};

namespace detail {
inline std::atomic<bool> g_record_on{false};
}

/// Hot-path gate (one relaxed load, mirroring trace_enabled()).
inline bool recording_enabled() {
  return detail::g_record_on.load(std::memory_order_relaxed);
}

class Recorder {
 public:
  static Recorder& instance();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Begin recording into a fresh buffer of at most `capacity_events`
  /// events (clamped to >= 1024). Discards any previous recording and
  /// bumps generation() so cached pool ids re-intern. False when already
  /// active.
  bool start(std::size_t capacity_events = kDefaultCapacity);

  /// Stop recording. Captured events remain dumpable until the next
  /// start().
  void stop();

  bool active() const { return recording_enabled(); }

  /// Monotonic recording-session id; bumped by start(). Lets the alloc
  /// layer cache its interned pool id per session.
  std::uint64_t generation() const;

  /// Events captured / events rejected because the buffer was full.
  std::size_t event_count() const;
  std::uint64_t dropped() const;

  /// Register a pool for the current session; returns its dense id.
  /// Idempotent per (generation, name).
  std::uint16_t intern_pool(const RecordedPool& info);

  // --- event hooks (called by alloc::Pool; cheap no-ops when inactive) ----
  /// `gpu_stream_id` is the gpu::Stream process-unique id;
  /// `is_default_stream` pins interned id 0. Returns the granted block id
  /// (0 when result == nullptr) so callers may ignore it.
  std::uint32_t on_alloc(std::uint16_t pool, RecOp op, std::size_t size,
                         std::uint32_t gpu_stream_id, bool is_default_stream,
                         const void* result, std::uint8_t outcome);
  void on_free(std::uint16_t pool, RecOp op, const void* p,
               std::uint32_t gpu_stream_id, bool is_default_stream);
  void on_realloc(std::uint16_t pool, const void* old_p, const void* new_p,
                  std::size_t size, std::uint8_t outcome);
  void on_sync(std::uint16_t pool, RecOp op, std::uint32_t gpu_stream_id,
               bool is_default_stream, std::uint64_t amount);

  /// Copy out the current recording (stop first for a stable view).
  RecordedTrace trace() const;

  /// trace().write(path) without the intermediate copy being mutable.
  bool dump(const std::string& path) const;

  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

 private:
  Recorder();
  struct Impl;
  Impl* impl_;  // leaky, like the registry: usable during static teardown
};

}  // namespace toma::obs
