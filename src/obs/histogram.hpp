// Log2-bucketed latency/value histograms with quantile extraction.
//
// Bucket b == 0 holds the value 0; bucket b >= 1 holds values in
// [2^(b-1), 2^b). 48 buckets cover values up to 2^47 (~1.6 days in ns).
// Layout is shard-major — each shard owns a contiguous bucket array — so
// a recording thread only writes cache lines of its own SM's shard.
//
// Quantiles are extracted from the aggregated bucket counts with linear
// interpolation inside the winning bucket: exact enough for p50/p95/p99
// reporting (the bucket bounds are within 2x of the true value by
// construction; interpolation tightens typical error well below that).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "obs/context.hpp"
#include "util/assert.hpp"
#include "util/hints.hpp"

namespace toma::obs {

inline constexpr std::uint32_t kHistBuckets = 48;
/// Histogram shards (fewer than counter shards: a shard is ~8 cache
/// lines, and histogram records are rarer than counter bumps).
inline constexpr std::uint32_t kHistShards = 16;

static_assert((kHistShards & (kHistShards - 1)) == 0,
              "shard index is masked, not modded");

/// Bucket index for a value (see the bucket-bound convention above).
constexpr std::uint32_t hist_bucket_of(std::uint64_t v) {
  const auto b = static_cast<std::uint32_t>(std::bit_width(v));
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

/// Inclusive lower bound of a bucket.
constexpr std::uint64_t hist_bucket_lo(std::uint32_t b) {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

/// Exclusive upper bound of a bucket.
constexpr std::uint64_t hist_bucket_hi(std::uint32_t b) {
  return b == 0 ? 1 : std::uint64_t{1} << b;
}

/// Aggregated, immutable view of a histogram (also the unit of snapshot
/// diffing and JSON export).
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Interpolated quantile, q in [0, 1]. 0.0 on an empty histogram; q == 1
  /// returns the exact recorded max (no interpolation error at the top).
  double quantile(double q) const {
    TOMA_DASSERT(q >= 0.0 && q <= 1.0);
    if (count == 0) return 0.0;
    if (q >= 1.0) return static_cast<double>(max);
    const double rank = q * static_cast<double>(count - 1);
    std::uint64_t cum = 0;
    for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
      if (buckets[b] == 0) continue;
      const double lo_rank = static_cast<double>(cum);
      cum += buckets[b];
      if (rank < static_cast<double>(cum)) {
        if (b == 0) return 0.0;
        const double frac =
            (rank - lo_rank) / static_cast<double>(buckets[b]);
        const double lo = static_cast<double>(hist_bucket_lo(b));
        const double hi = static_cast<double>(hist_bucket_hi(b));
        // Interpolation assumes samples spread across the whole bucket;
        // clamp so a quantile never reports outside the observed range.
        const double v = lo + frac * (hi - lo);
        return std::min(std::max(v, static_cast<double>(min)),
                        static_cast<double>(max));
      }
    }
    return static_cast<double>(max);  // rank beyond last bucket (q == 1)
  }

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// This snapshot minus an earlier one (counts/sums subtract; min/max are
  /// not recoverable for an interval, so the later absolute values stand).
  HistogramSnapshot diff_since(const HistogramSnapshot& before) const {
    HistogramSnapshot d = *this;
    for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
      d.buckets[b] -= before.buckets[b] <= d.buckets[b] ? before.buckets[b]
                                                        : d.buckets[b];
    }
    d.count -= before.count <= d.count ? before.count : d.count;
    d.sum -= before.sum <= d.sum ? before.sum : d.sum;
    return d;
  }
};

class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) {
    Shard& s = shards_[current_shard() & (kHistShards - 1)];
    s.buckets[hist_bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    relax_min(s.min, v);
    relax_max(s.max, v);
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot out;
    std::uint64_t mn = UINT64_MAX;
    for (const Shard& s : shards_) {
      for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
        const std::uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
        out.buckets[b] += n;
        out.count += n;
      }
      out.sum += s.sum.load(std::memory_order_relaxed);
      const std::uint64_t smin = s.min.load(std::memory_order_relaxed);
      const std::uint64_t smax = s.max.load(std::memory_order_relaxed);
      if (smin < mn) mn = smin;
      if (smax > out.max) out.max = smax;
    }
    out.min = out.count == 0 ? 0 : mn;
    return out;
  }

 private:
  struct TOMA_CACHELINE_ALIGNED Shard {
    std::atomic<std::uint64_t> buckets[kHistBuckets] = {};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{UINT64_MAX};
    std::atomic<std::uint64_t> max{0};
  };

  static void relax_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v < cur && !slot.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
    }
  }
  static void relax_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur && !slot.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
    }
  }

  Shard shards_[kHistShards];
};

/// RAII scope timer recording elapsed wall-clock ns into a histogram.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(h), t0_(now_ns()) {}
  ~ScopedTimer() { h_.record(now_ns() - t0_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& h_;
  std::uint64_t t0_;
};

/// Fixed-width histogram array under one name ("name[i]"); same clamping
/// rule as CounterVec.
class HistogramVec {
 public:
  explicit HistogramVec(std::uint32_t width) : hists_(width) {
    TOMA_ASSERT(width > 0);
  }
  HistogramVec(const HistogramVec&) = delete;
  HistogramVec& operator=(const HistogramVec&) = delete;

  Histogram& at(std::uint32_t i) {
    const auto w = static_cast<std::uint32_t>(hists_.size());
    return hists_[i < w ? i : w - 1];
  }
  std::uint32_t width() const {
    return static_cast<std::uint32_t>(hists_.size());
  }
  const Histogram& get(std::uint32_t i) const { return hists_[i]; }

 private:
  std::vector<Histogram> hists_;
};

}  // namespace toma::obs
