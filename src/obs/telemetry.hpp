// Telemetry entry points: compile-time-gated macros over the obs registry.
//
// Design rules (docs/OBSERVABILITY.md):
//
//   * Counters are cache-line sharded (one shard per simulated SM,
//     aggregated on read) so instrumentation does not perturb the
//     contention it measures.
//   * Every macro resolves its registry handle once per call site via a
//     function-local static, so the steady-state cost of a counter bump is
//     one relaxed fetch_add on a shard this SM's worker thread owns.
//   * With -DTOMA_TELEMETRY=0 every macro expands to a no-op that does not
//     evaluate its arguments; the obs *classes* still compile (and tests
//     exercise them) but no instrumented hot path touches them.
#pragma once

#include <cstdint>

#ifndef TOMA_TELEMETRY
#define TOMA_TELEMETRY 1  // CMake option TOMA_TELEMETRY (default ON)
#endif

#include "obs/context.hpp"   // IWYU pragma: export
#include "obs/registry.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"     // IWYU pragma: export

#define TOMA_OBS_CAT2(a, b) a##b
#define TOMA_OBS_CAT(a, b) TOMA_OBS_CAT2(a, b)

#if TOMA_TELEMETRY

/// Bump a named sharded counter by `n`.
#define TOMA_CTR_ADD(name, n)                                             \
  do {                                                                    \
    static ::toma::obs::Counter& toma_obs_c_ =                            \
        ::toma::obs::registry().counter(name);                            \
    toma_obs_c_.add(n);                                                   \
  } while (0)
#define TOMA_CTR_INC(name) TOMA_CTR_ADD(name, 1)

/// Bump element `idx` of a fixed-width counter vector (exported as
/// "name[idx]"); out-of-range indices clamp to the last element.
#define TOMA_CTRV_INC(name, width, idx)                                   \
  do {                                                                    \
    static ::toma::obs::CounterVec& toma_obs_cv_ =                        \
        ::toma::obs::registry().counter_vec(name, width);                 \
    toma_obs_cv_.at(idx).inc();                                           \
  } while (0)

/// Record `value` into a named log2-bucketed histogram.
#define TOMA_HIST(name, value)                                            \
  do {                                                                    \
    static ::toma::obs::Histogram& toma_obs_h_ =                          \
        ::toma::obs::registry().histogram(name);                          \
    toma_obs_h_.record(value);                                            \
  } while (0)

/// Record into element `idx` of a histogram vector ("name[idx]").
#define TOMA_HISTV(name, width, idx, value)                               \
  do {                                                                    \
    static ::toma::obs::HistogramVec& toma_obs_hv_ =                      \
        ::toma::obs::registry().histogram_vec(name, width);               \
    toma_obs_hv_.at(idx).record(value);                                   \
  } while (0)

/// Wall-clock ns (0 when telemetry is compiled out, letting timing code
/// fold away). Pair with TOMA_HIST(name, TOMA_NOW_NS() - t0).
#define TOMA_NOW_NS() ::toma::obs::now_ns()

/// RAII: record the enclosing scope's duration (ns) into `name`.
#define TOMA_SCOPED_TIMER(name)                                           \
  static ::toma::obs::Histogram& TOMA_OBS_CAT(toma_obs_th_, __LINE__) =   \
      ::toma::obs::registry().histogram(name);                            \
  ::toma::obs::ScopedTimer TOMA_OBS_CAT(toma_obs_t_, __LINE__)(           \
      TOMA_OBS_CAT(toma_obs_th_, __LINE__))

/// Trace events (no-ops unless tracing was enabled at runtime). `name`
/// must be a string literal (the pointer is stored, not the contents).
#define TOMA_TRACE(name, arg)                                             \
  ::toma::obs::trace_event(name, ::toma::obs::TracePhase::kInstant, arg)
#define TOMA_TRACE_BEGIN(name, id)                                        \
  ::toma::obs::trace_event(name, ::toma::obs::TracePhase::kBegin, id)
#define TOMA_TRACE_END(name, id)                                          \
  ::toma::obs::trace_event(name, ::toma::obs::TracePhase::kEnd, id)

/// Scheduler hooks (tick source + fiber identity).
#define TOMA_OBS_TICK() ::toma::obs::advance_tick()
#define TOMA_OBS_SET_THREAD(sm, warp) ::toma::obs::set_thread_context(sm, warp)
#define TOMA_OBS_CLEAR_THREAD() ::toma::obs::clear_thread_context()

#else  // !TOMA_TELEMETRY — every macro is a no-op; arguments unevaluated.

#define TOMA_CTR_ADD(name, n) ((void)0)
#define TOMA_CTR_INC(name) ((void)0)
#define TOMA_CTRV_INC(name, width, idx) ((void)0)
#define TOMA_HIST(name, value) ((void)0)
#define TOMA_HISTV(name, width, idx, value) ((void)0)
#define TOMA_NOW_NS() (std::uint64_t{0})
#define TOMA_SCOPED_TIMER(name) ((void)0)
#define TOMA_TRACE(name, arg) ((void)0)
#define TOMA_TRACE_BEGIN(name, id) ((void)0)
#define TOMA_TRACE_END(name, id) ((void)0)
#define TOMA_OBS_TICK() ((void)0)
#define TOMA_OBS_SET_THREAD(sm, warp) ((void)0)
#define TOMA_OBS_CLEAR_THREAD() ((void)0)

#endif  // TOMA_TELEMETRY
