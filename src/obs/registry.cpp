#include "obs/registry.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace toma::obs {

namespace {

std::string vec_name(const std::string& base, std::uint32_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "[%u]", i);
  return base + buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

CounterVec& Registry::counter_vec(const std::string& name,
                                  std::uint32_t width) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = counter_vecs_[name];
  if (slot == nullptr) slot = std::make_unique<CounterVec>(width);
  TOMA_ASSERT_MSG(slot->width() == width,
                  "counter_vec re-registered with a different width");
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

HistogramVec& Registry::histogram_vec(const std::string& name,
                                      std::uint32_t width) {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = histogram_vecs_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramVec>(width);
  TOMA_ASSERT_MSG(slot->width() == width,
                  "histogram_vec re-registered with a different width");
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) {
    s.counters[name] = c->value();
  }
  for (const auto& [name, cv] : counter_vecs_) {
    for (std::uint32_t i = 0; i < cv->width(); ++i) {
      s.counters[vec_name(name, i)] = cv->get(i).value();
    }
  }
  for (const auto& [name, h] : histograms_) {
    s.histograms[name] = h->snapshot();
  }
  for (const auto& [name, hv] : histogram_vecs_) {
    for (std::uint32_t i = 0; i < hv->width(); ++i) {
      s.histograms[vec_name(name, i)] = hv->get(i).snapshot();
    }
  }
  return s;
}

Registry& registry() {
  static Registry* r = new Registry();  // leaky: outlives static dtors
  return *r;
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

Snapshot Snapshot::diff_since(const Snapshot& before) const {
  Snapshot d;
  for (const auto& [name, v] : counters) {
    const auto it = before.counters.find(name);
    const std::uint64_t prev = it == before.counters.end() ? 0 : it->second;
    d.counters[name] = v >= prev ? v - prev : 0;
  }
  for (const auto& [name, h] : histograms) {
    const auto it = before.histograms.find(name);
    d.histograms[name] =
        it == before.histograms.end() ? h : h.diff_since(it->second);
  }
  return d;
}

std::map<std::string, double> Snapshot::derived_rates() const {
  std::map<std::string, double> out;
  constexpr char kHit[] = ".hit";
  for (const auto& [name, hits] : counters) {
    if (name.size() <= sizeof(kHit) - 1 ||
        name.compare(name.size() - (sizeof(kHit) - 1), sizeof(kHit) - 1,
                     kHit) != 0) {
      continue;
    }
    const std::string base = name.substr(0, name.size() - (sizeof(kHit) - 1));
    const auto miss_it = counters.find(base + ".miss");
    if (miss_it == counters.end()) continue;
    const std::uint64_t total = hits + miss_it->second;
    if (total == 0) continue;
    out[base + ".hit_rate"] =
        static_cast<double>(hits) / static_cast<double>(total);
  }
  return out;
}

std::string Snapshot::to_text() const {
  std::string out;
  char buf[256];
  out += "== telemetry counters ==\n";
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof(buf), "  %-40s %12" PRIu64 "\n", name.c_str(),
                  v);
    out += buf;
  }
  if (const auto rates = derived_rates(); !rates.empty()) {
    out += "== derived (hit / (hit + miss)) ==\n";
    for (const auto& [name, r] : rates) {
      std::snprintf(buf, sizeof(buf), "  %-40s %11.2f%%\n", name.c_str(),
                    100.0 * r);
      out += buf;
    }
  }
  out += "== telemetry histograms (ns unless noted) ==\n";
  for (const auto& [name, h] : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "  %-40s n=%-10" PRIu64 " mean=%-8s p50=%-8s p95=%-8s "
                  "p99=%-8s max=%s\n",
                  name.c_str(), h.count, util::eng_format(h.mean()).c_str(),
                  util::eng_format(h.p50()).c_str(),
                  util::eng_format(h.p95()).c_str(),
                  util::eng_format(h.p99()).c_str(),
                  util::eng_format(static_cast<double>(h.max)).c_str());
    out += buf;
  }
  return out;
}

std::string Snapshot::to_json() const {
  return "{" + to_json_body() + "}\n";
}

std::string Snapshot::to_json_body() const {
  std::string out = "\"counters\":{";
  char buf[64];
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    json_escape_into(out, name);
    std::snprintf(buf, sizeof(buf), "\":%" PRIu64, v);
    out += buf;
  }
  out += "\n},\"derived\":{";
  first = true;
  for (const auto& [name, r] : derived_rates()) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    json_escape_into(out, name);
    std::snprintf(buf, sizeof(buf), "\":%.6g", r);
    out += buf;
  }
  out += "\n},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    json_escape_into(out, name);
    std::snprintf(buf, sizeof(buf), "\":{\"count\":%" PRIu64, h.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"sum\":%" PRIu64, h.sum);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"min\":%" PRIu64, h.min);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"max\":%" PRIu64, h.max);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g",
                  h.p50(), h.p95(), h.p99());
    out += buf;
    // Trailing zero buckets are elided; bucket i covers [2^(i-1), 2^i).
    std::uint32_t last = 0;
    for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
      if (h.buckets[b] != 0) last = b + 1;
    }
    out += ",\"buckets\":[";
    for (std::uint32_t b = 0; b < last; ++b) {
      std::snprintf(buf, sizeof(buf), "%s%" PRIu64, b == 0 ? "" : ",",
                    h.buckets[b]);
      out += buf;
    }
    out += "]}";
  }
  out += "\n}";
  return out;
}

bool Snapshot::write_json(const std::string& path) const {
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool all = written == json.size();
  const bool closed = std::fclose(f) == 0;
  return all && closed;
}

}  // namespace toma::obs
