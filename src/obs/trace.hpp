// Per-SM trace rings with Chrome trace-event export.
//
// Tracing is a runtime opt-in (enable_tracing) on top of the compile-time
// telemetry gate: when disabled, TOMA_TRACE costs one relaxed bool load.
// When enabled, each record is pushed into the ring of the calling SM
// (hashed host threads use rings past kShards), overwriting the oldest
// record on wrap — a bounded-memory flight recorder, like real GPU
// profilers' HW trace buffers.
//
// dump_chrome_trace() emits the Trace Event Format JSON that Perfetto and
// chrome://tracing load directly: instants as "i" events and begin/end
// pairs as nestable async "b"/"e" events keyed by id (async, because
// overlapping block lifetimes on one SM are not stack-nested).
//
// Record names must be string literals (the pointer is stored verbatim).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/context.hpp"

namespace toma::obs {

enum class TracePhase : std::uint8_t { kInstant = 0, kBegin = 1, kEnd = 2 };

struct TraceRecord {
  std::uint64_t tick;
  std::uint64_t arg;     // payload for instants; pairing id for begin/end
  const char* name;      // static string literal
  std::uint32_t sm;      // >= kShards: host thread (sm - kShards = shard)
  std::uint32_t warp;
  TracePhase phase;
};

namespace detail {
inline std::atomic<bool> g_trace_on{false};
}

inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// Allocate the rings (one per SM shard plus one per host shard) and start
/// recording. `capacity_per_ring` is rounded up to a power of two.
void enable_tracing(std::size_t capacity_per_ring = std::size_t{1} << 15);

/// Stop recording. Records already captured remain dumpable.
void disable_tracing();

/// Discard all captured records (rings stay allocated if enabled).
void reset_trace();

/// Total records overwritten by ring wraparound since enable/reset.
std::uint64_t trace_dropped();

/// All surviving records, merged across rings and sorted by tick.
/// (Test/diagnostic path; dump_chrome_trace for the file format.)
std::vector<TraceRecord> trace_records();

/// Write Chrome trace-event JSON. Returns false on I/O failure.
bool dump_chrome_trace(const std::string& path);

/// Hot-path entry used by TOMA_TRACE*.
void trace_event_slow(const char* name, TracePhase phase, std::uint64_t arg);

inline void trace_event(const char* name, TracePhase phase,
                        std::uint64_t arg) {
  if (!trace_enabled()) return;
  trace_event_slow(name, phase, arg);
}

}  // namespace toma::obs
