// Crash-time diagnostics: one shared dump path for fatal asserts and
// san::report().
//
// postmortem_dump() writes the aggregated telemetry snapshot plus the most
// recent trace-ring records of the *calling* SM to stderr — the flight
// recorder a crashed run leaves behind. install_postmortem_hook() wires it
// into util::set_fatal_hook() so every TOMA_ASSERT / TOMA_ASSERT_MSG /
// TOMA_ASSERT_FMT failure dumps before aborting; the allocator installs it
// on construction (an explicit call, not a static initializer, so static
// archive linking cannot drop it).
#pragma once

namespace toma::obs {

/// Dump the telemetry snapshot and the calling SM's recent trace records
/// to stderr. Safe to call at any time, including from a failing assert
/// and during static teardown (the registry is a leaky singleton).
void postmortem_dump();

/// Install postmortem_dump as the util fatal-assert hook (idempotent;
/// first call wins, later calls are no-ops).
void install_postmortem_hook();

}  // namespace toma::obs
