// Thread/fiber identity and time sources for the obs layer.
//
// obs sits between util and gpusim, so it cannot ask the simulator "which
// SM am I on?". Instead the scheduler pushes the identity of the fiber it
// is about to resume down through set_thread_context(); host threads
// (tests, benchmark setup) fall back to a stable hash of their OS thread
// id. Everything here is header-only and dependency-free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

namespace toma::obs {

/// Counter shards. Fixed so handles need no device knowledge; SM ids map
/// onto shards modulo kShards (64 covers every simulated device in-tree).
inline constexpr std::uint32_t kShards = 64;

namespace detail {

inline constexpr std::uint32_t kNoSm = 0xffffffffu;

// Set by the gpusim scheduler around every fiber resume; kNoSm on host
// threads.
inline thread_local std::uint32_t tl_sm = kNoSm;
inline thread_local std::uint32_t tl_warp = 0;

inline std::uint32_t host_thread_shard() {
  static thread_local const std::uint32_t shard = static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards);
  return shard;
}

}  // namespace detail

/// Shard index for the calling context: the resident SM inside a kernel, a
/// stable hash of the OS thread id outside one.
inline std::uint32_t current_shard() {
  const std::uint32_t sm = detail::tl_sm;
  if (sm != detail::kNoSm) return sm % kShards;
  return detail::host_thread_shard();
}

/// Scheduler hook: publish the identity of the fiber about to run.
inline void set_thread_context(std::uint32_t sm, std::uint32_t warp) {
  detail::tl_sm = sm;
  detail::tl_warp = warp;
}

inline void clear_thread_context() { detail::tl_sm = detail::kNoSm; }

/// SM/warp of the calling context (trace record identity). Host threads
/// report kShards + shard so traces distinguish them from real SMs.
inline std::uint32_t current_sm() {
  const std::uint32_t sm = detail::tl_sm;
  return sm != detail::kNoSm ? sm : kShards + detail::host_thread_shard();
}
inline std::uint32_t current_warp() {
  return detail::tl_sm != detail::kNoSm ? detail::tl_warp : 0;
}

// --- monotonic tick source -------------------------------------------------
//
// The simulated-time axis for trace records: each SM scheduling round
// advances it by one, giving every trace event a globally ordered,
// scheduler-quantum-resolution timestamp (wall clock would interleave
// host noise into the simulated timeline).

namespace detail {
inline std::atomic<std::uint64_t> g_tick{0};
}

inline std::uint64_t current_tick() {
  return detail::g_tick.load(std::memory_order_relaxed);
}

inline std::uint64_t advance_tick() {
  return detail::g_tick.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Wall-clock nanoseconds for latency histograms (latencies span fiber
/// suspensions, so they measure real time a request was in flight).
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace toma::obs
