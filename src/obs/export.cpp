#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace toma::obs {

namespace {

bool is_metric_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Escape a label value for the exposition format (\\, \", \n).
void prom_label_escape_into(std::string& out, const std::string& v) {
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
}

std::string render_labels(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const char* extra_key = nullptr, const std::string& extra_val = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  auto emit = [&](const std::string& k, const std::string& v) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    prom_label_escape_into(out, v);
    out.push_back('"');
  };
  for (const auto& [k, v] : labels) emit(k, v);
  if (extra_key != nullptr) emit(extra_key, extra_val);
  out.push_back('}');
  return out;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

bool write_file(const std::string& body, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool all = written == body.size();
  const bool closed = std::fclose(f) == 0;
  return all && closed;
}

/// One series group: every (labels, value) sharing a metric name, so the
/// emitter writes a single # TYPE header per metric.
template <typename Value>
using Grouped = std::map<std::string, std::vector<std::pair<std::string, Value>>>;

}  // namespace

SeriesName parse_series_name(const std::string& name) {
  SeriesName out;
  // name[i] — counter/histogram vector element.
  if (!name.empty() && name.back() == ']') {
    const auto open = name.rfind('[');
    if (open != std::string::npos) {
      out.metric = name.substr(0, open);
      out.labels.emplace_back(
          "index", name.substr(open + 1, name.size() - open - 2));
      return out;
    }
  }
  // name{k="v",...} — labeled instrument.
  if (!name.empty() && name.back() == '}') {
    const auto open = name.find('{');
    if (open != std::string::npos) {
      out.metric = name.substr(0, open);
      std::size_t i = open + 1;
      while (i < name.size() && name[i] != '}') {
        const auto eq = name.find('=', i);
        if (eq == std::string::npos || eq + 1 >= name.size() ||
            name[eq + 1] != '"') {
          break;  // malformed: treat the rest as opaque
        }
        std::string key = name.substr(i, eq - i);
        std::string val;
        std::size_t j = eq + 2;
        while (j < name.size() && name[j] != '"') {
          if (name[j] == '\\' && j + 1 < name.size()) ++j;
          val.push_back(name[j]);
          ++j;
        }
        out.labels.emplace_back(std::move(key), std::move(val));
        i = j + 1;
        if (i < name.size() && name[i] == ',') ++i;
      }
      return out;
    }
  }
  out.metric = name;
  return out;
}

std::string prometheus_metric_name(const std::string& metric,
                                   const std::string& prefix) {
  std::string out = prefix.empty() ? "" : prefix + "_";
  for (const char c : metric) {
    out.push_back(is_metric_char(c) ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

std::vector<SloSummary> slo_summaries(const Snapshot& snap) {
  std::vector<SloSummary> out;
  for (const auto& [name, hist] : snap.histograms) {
    const SeriesName sn = parse_series_name(name);
    const char* op = nullptr;
    if (sn.metric == "pool.malloc_ns") op = "malloc";
    if (sn.metric == "pool.free_ns") op = "free";
    if (op == nullptr || sn.labels.size() != 1 ||
        sn.labels[0].first != "pool") {
      continue;
    }
    SloSummary s;
    s.pool = sn.labels[0].second;
    s.op = op;
    s.count = hist.count;
    s.p50 = hist.p50();
    s.p95 = hist.p95();
    s.p99 = hist.p99();
    const auto it = snap.counters.find("pool.slo_violation{pool=\"" +
                                       s.pool + "\"}");
    if (it != snap.counters.end()) s.violations = it->second;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const SloSummary& a, const SloSummary& b) {
              return a.pool != b.pool ? a.pool < b.pool : a.op < b.op;
            });
  return out;
}

std::string to_prometheus(const Snapshot& snap, const std::string& prefix) {
  std::string out;
  char buf[96];

  // Group counters by prometheus metric name so each gets one TYPE line.
  // (Distinct registry names can, in principle, sanitize to the same
  // metric; grouping by the *sanitized* name keeps the output legal even
  // then — they become one metric with distinct label sets.)
  Grouped<std::uint64_t> counters;
  for (const auto& [name, v] : snap.counters) {
    const SeriesName sn = parse_series_name(name);
    counters[prometheus_metric_name(sn.metric, prefix)].emplace_back(
        render_labels(sn.labels), v);
  }
  for (const auto& [metric, series] : counters) {
    out += "# TYPE " + metric + " counter\n";
    for (const auto& [labels, v] : series) {
      out += metric + labels;
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", v);
      out += buf;
    }
  }

  Grouped<double> gauges;
  for (const auto& [name, r] : snap.derived_rates()) {
    const SeriesName sn = parse_series_name(name);
    gauges[prometheus_metric_name(sn.metric, prefix)].emplace_back(
        render_labels(sn.labels), r);
  }
  for (const SloSummary& s : slo_summaries(snap)) {
    auto& series = gauges[prometheus_metric_name("slo_latency_ns", prefix)];
    const std::vector<std::pair<std::string, std::string>> base = {
        {"pool", s.pool}, {"op", s.op}};
    series.emplace_back(render_labels(base, "quantile", "0.5"), s.p50);
    series.emplace_back(render_labels(base, "quantile", "0.95"), s.p95);
    series.emplace_back(render_labels(base, "quantile", "0.99"), s.p99);
  }
  for (const auto& [metric, series] : gauges) {
    out += "# TYPE " + metric + " gauge\n";
    for (const auto& [labels, v] : series) {
      out += metric + labels + " ";
      append_double(out, v);
      out.push_back('\n');
    }
  }

  // Histograms: cumulative le buckets up to the last non-empty one, then
  // +Inf. Bucket b's upper bound is hist_bucket_hi(b) (exclusive in the
  // registry, inclusive as a Prometheus `le` — the off-by-one is inside
  // the bucket's own quantization error and keeps bounds integral).
  Grouped<const HistogramSnapshot*> hists;
  for (const auto& [name, h] : snap.histograms) {
    const SeriesName sn = parse_series_name(name);
    hists[prometheus_metric_name(sn.metric, prefix)].emplace_back(
        render_labels(sn.labels), &h);
  }
  for (const auto& [metric, series] : hists) {
    out += "# TYPE " + metric + " histogram\n";
    for (const auto& [labels, h] : series) {
      // Re-render the label block with `le` appended: strip the braces.
      const std::string inner =
          labels.empty() ? std::string()
                         : labels.substr(1, labels.size() - 2) + ",";
      std::uint32_t last = 0;
      for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
        if (h->buckets[b] != 0) last = b + 1;
      }
      std::uint64_t cum = 0;
      for (std::uint32_t b = 0; b < last; ++b) {
        cum += h->buckets[b];
        out += metric + "_bucket{" + inner;
        std::snprintf(buf, sizeof(buf), "le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                      hist_bucket_hi(b), cum);
        out += buf;
      }
      out += metric + "_bucket{" + inner;
      std::snprintf(buf, sizeof(buf), "le=\"+Inf\"} %" PRIu64 "\n", h->count);
      out += buf;
      out += metric + "_sum" + labels;
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h->sum);
      out += buf;
      out += metric + "_count" + labels;
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", h->count);
      out += buf;
    }
  }
  return out;
}

std::string to_stable_json(const Snapshot& snap) {
  std::string out = "{\"schema_version\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%" PRIu32 ",", kExportSchemaVersion);
  out += buf;
  out += snap.to_json_body();
  out += ",\"slo\":{";
  std::string open_pool;
  bool first_pool = true;
  bool first_op = true;
  for (const SloSummary& s : slo_summaries(snap)) {
    if (s.pool != open_pool) {
      if (!open_pool.empty() || !first_pool) out += "}";
      if (!first_pool) out += ",";
      first_pool = false;
      out += "\n\"";
      json_escape_into(out, s.pool);
      out += "\":{";
      open_pool = s.pool;
      first_op = true;
    }
    if (!first_op) out += ",";
    first_op = false;
    out += "\"";
    json_escape_into(out, s.op);
    std::snprintf(buf, sizeof(buf), "\":{\"count\":%" PRIu64, s.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g",
                  s.p50, s.p95, s.p99);
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"violations\":%" PRIu64 "}",
                  s.violations);
    out += buf;
  }
  if (!first_pool) out += "}";
  out += "\n}}\n";
  return out;
}

bool write_prometheus(const Snapshot& snap, const std::string& path,
                      const std::string& prefix) {
  return write_file(to_prometheus(snap, prefix), path);
}

bool write_stable_json(const Snapshot& snap, const std::string& path) {
  return write_file(to_stable_json(snap), path);
}

}  // namespace toma::obs
