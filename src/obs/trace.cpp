#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/registry.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/hints.hpp"

namespace toma::obs {

namespace {

// One ring per SM shard plus one per host-thread shard.
constexpr std::uint32_t kRings = kShards * 2;

// A raw test-and-set lock (no yield): safe because a push never suspends
// while holding it — fibers only interleave at explicit yield points, so
// contention can only come from other OS threads, which hold the lock for
// a handful of stores.
struct TOMA_CACHELINE_ALIGNED RingLock {
  std::atomic_flag f = ATOMIC_FLAG_INIT;
  void lock() {
    while (f.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() { f.clear(std::memory_order_release); }
};

struct Ring {
  std::vector<TraceRecord> slots;
  std::uint64_t head = 0;  // total pushes; slot = head & mask
  RingLock mu;
};

struct TraceState {
  std::vector<Ring> rings{kRings};
  std::size_t mask = 0;  // capacity - 1
  std::mutex admin_mu;   // enable/disable/dump
  bool allocated = false;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaky: outlives static dtors
  return *s;
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

void enable_tracing(std::size_t capacity_per_ring) {
  TraceState& st = state();
  std::lock_guard<std::mutex> g(st.admin_mu);
  if (capacity_per_ring < 16) capacity_per_ring = 16;
  const std::size_t cap = util::round_up_pow2(capacity_per_ring);
  if (!st.allocated || st.mask != cap - 1) {
    for (Ring& r : st.rings) {
      r.slots.assign(cap, TraceRecord{});
      r.head = 0;
    }
    st.mask = cap - 1;
    st.allocated = true;
  }
  detail::g_trace_on.store(true, std::memory_order_seq_cst);
}

void disable_tracing() {
  detail::g_trace_on.store(false, std::memory_order_seq_cst);
}

void reset_trace() {
  TraceState& st = state();
  std::lock_guard<std::mutex> g(st.admin_mu);
  for (Ring& r : st.rings) {
    r.mu.lock();
    r.head = 0;
    r.mu.unlock();
  }
}

void trace_event_slow(const char* name, TracePhase phase, std::uint64_t arg) {
  TraceState& st = state();
  if (!st.allocated) return;
  const std::uint32_t sm = current_sm();
  Ring& r = st.rings[sm % kRings];
  TraceRecord rec{current_tick(), arg,          name,
                  sm,             current_warp(), phase};
  r.mu.lock();
  const bool overwrote = r.head > st.mask;  // ring full: oldest record lost
  r.slots[r.head & st.mask] = rec;
  ++r.head;
  r.mu.unlock();
  if (overwrote) {
    // Monotonic registry twin of trace_dropped(): ring-wrap loss shows up
    // in every metrics export, not only when someone polls the rings.
    // (Unlike trace_dropped() it is not reset by reset_trace().)
    static Counter& dropped = registry().counter("obs.trace.dropped");
    dropped.inc();
  }
}

std::uint64_t trace_dropped() {
  TraceState& st = state();
  std::lock_guard<std::mutex> g(st.admin_mu);
  if (!st.allocated) return 0;
  std::uint64_t dropped = 0;
  const std::uint64_t cap = st.mask + 1;
  for (Ring& r : st.rings) {
    r.mu.lock();
    if (r.head > cap) dropped += r.head - cap;
    r.mu.unlock();
  }
  return dropped;
}

std::vector<TraceRecord> trace_records() {
  TraceState& st = state();
  std::lock_guard<std::mutex> g(st.admin_mu);
  std::vector<TraceRecord> out;
  if (!st.allocated) return out;
  const std::uint64_t cap = st.mask + 1;
  for (Ring& r : st.rings) {
    r.mu.lock();
    const std::uint64_t n = r.head < cap ? r.head : cap;
    const std::uint64_t start = r.head - n;
    for (std::uint64_t i = 0; i < n; ++i) {
      out.push_back(r.slots[(start + i) & st.mask]);
    }
    r.mu.unlock();
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.tick < b.tick;
                   });
  return out;
}

bool dump_chrome_trace(const std::string& path) {
  const std::vector<TraceRecord> recs = trace_records();

  std::string json;
  json.reserve(128 + recs.size() * 96);
  json += "{\"traceEvents\":[\n";
  json +=
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"toma gpusim\"}}";

  // Name each tid once (SMs and host-thread shards).
  std::vector<std::uint32_t> tids;
  for (const TraceRecord& r : recs) tids.push_back(r.sm);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  char buf[256];
  for (const std::uint32_t tid : tids) {
    if (tid < kShards) {
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                    "\"name\":\"thread_name\",\"args\":{\"name\":\"SM %u\"}}",
                    tid, tid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                    "\"name\":\"thread_name\","
                    "\"args\":{\"name\":\"host %u\"}}",
                    tid, tid - kShards);
    }
    json += buf;
  }

  for (const TraceRecord& r : recs) {
    json += ",\n{\"name\":\"";
    json_escape_into(json, r.name != nullptr ? r.name : "?");
    json += "\",\"pid\":0,";
    std::snprintf(buf, sizeof(buf), "\"tid\":%u,\"ts\":%" PRIu64 ",", r.sm,
                  r.tick);
    json += buf;
    switch (r.phase) {
      case TracePhase::kInstant:
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"i\",\"s\":\"t\",\"args\":{\"arg\":%" PRIu64
                      ",\"warp\":%u}}",
                      r.arg, r.warp);
        break;
      case TracePhase::kBegin:
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"b\",\"cat\":\"toma\",\"id\":%" PRIu64
                      ",\"args\":{\"warp\":%u}}",
                      r.arg, r.warp);
        break;
      case TracePhase::kEnd:
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"e\",\"cat\":\"toma\",\"id\":%" PRIu64 "}",
                      r.arg);
        break;
    }
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "\n],\"displayTimeUnit\":\"ms\","
                "\"otherData\":{\"dropped_records\":%" PRIu64 "}}\n",
                trace_dropped());
  json += buf;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool all = written == json.size();
  const bool closed = std::fclose(f) == 0;
  return all && closed;
}

}  // namespace toma::obs
