// UAlloc: the fine-grained UnAligned Allocator (paper §4.2).
//
// Memory layout (all constants in alloc/config.hpp):
//
//   arena  — one per SM; holds per-size-class bin free-lists and the
//            chunk list. A thread allocates from the arena of the SM it
//            runs on (hashed OS-thread id outside a kernel).
//   chunk  — 512 KB from TBuddy, 512 KB aligned, split into 64 bins.
//            Bin 0 starts with the 128 B chunk header; the remaining
//            3,968 B of bins 0 and 1 are 62 tail slots of 128 B, one per
//            data bin (bins 2..63).
//   bin    — 4 KB, 4 KB aligned. 128 B header (512-bit occupancy bitmap +
//            metadata), 3,968 B payload. For size classes <= 128 B the
//            bin's tail is logically appended, making the payload a full
//            4 KB — no space is lost to the header.
//
// Because every bin's first 128 B are metadata, no UAlloc block is ever
// 4 KB aligned; TBuddy blocks always are. free() routes on that bit.
//
// Concurrency design (the part the paper's §3/§4 techniques exist for):
//
//   * Per (arena, class) accounting: a bulk semaphore counts claimable
//     blocks across the class's listed bins (batch = bin capacity).
//     wait() == kAcquired guarantees a claimable block exists; the thread
//     traverses the bin list under RCU and claims bitmap bits lock-free.
//     wait() == kMustGrow makes the thread construct a *new bin*.
//   * Bin lists are RCU doubly-linked lists: exhausted bins are unlinked
//     by writers and become reusable only after a grace period — the
//     deferred step travels through the *conditional* RCU barrier, i.e.
//     it is delegated to an already-waiting thread whenever possible.
//   * Bin slots inside chunks use the same two-stage scheme (a per-arena
//     bulk semaphore over chunk bitmaps, batch = 62); growing allocates a
//     fresh chunk from TBuddy under the chunk list's *collective mutex*,
//     so warp-mates needing chunks enter the critical section together.
//   * Freed blocks are published with a parked-unit protocol: the freeing
//     thread clears the bitmap bit, parks one unit on the bin, and the
//     first actor that observes the bin in a stable list state (LISTED or
//     UNLISTED->relist) converts parked units into semaphore signals.
//     This keeps the invariant "semaphore value == claimable blocks in
//     listed bins" across unlink/relist races with a tiny per-bin
//     cold-path lock instead of a global one.
//   * Fully-free bins retire their slot back to the chunk; fully-free
//     chunks retire back to TBuddy — both opportunistically, gated by
//     try_wait so accounting never goes negative (no false starvation,
//     no phantom units).
//   * In front of all of the above sits a per-(arena, class) *magazine*
//     (not in the paper): a bounded LIFO of freed blocks whose bitmap
//     bits stay claimed while cached. Steady-state malloc/free churn on
//     one SM becomes a constant-time push/pop that never touches the
//     semaphore, the RCU lists, or the parked-unit protocol; magazine
//     overflow spills through the normal free path and release_cached()
//     (called by trim) flushes everything back into the accounting.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/config.hpp"
#include "alloc/tbuddy.hpp"
#include "gpusim/warp.hpp"
#include "sync/bulk_semaphore.hpp"
#include "sync/collective_mutex.hpp"
#include "sync/rcu.hpp"
#include "sync/rcu_list.hpp"
#include "sync/spin_mutex.hpp"
#include "util/atomic_bitmap.hpp"
#include "util/intrusive_list.hpp"

namespace toma::alloc {

struct ChunkHeader;
class UAlloc;

/// Listing state of a bin relative to its size-class free-list.
enum class BinState : std::uint32_t {
  kUnlisted = 0,   // not in the list; relinkable
  kListed = 1,     // reachable by readers
  kDraining = 2,   // unlinked (exhausted), grace period pending
  kRelisting = 3,  // being re-inserted
  kRetiring = 4,   // unlinked (fully free), slot being returned
};

/// 128-byte header at the start of every bin, placement-initialized in
/// pool memory.
struct BinHeader {
  std::uint64_t bitmap_words[8];  // 1 = block in use
  sync::RcuListNode list_node;    // size-class free-list linkage
  sync::RcuCallback rcu_cb;       // deferred unlink completion / retire
  ChunkHeader* chunk;             // owning chunk (for arena backpointer)
  std::atomic<std::uint32_t> free_count;  // claimable (signaled) blocks
  std::atomic<std::uint32_t> parked;      // freed blocks not yet signaled
  std::atomic<BinState> state;
  sync::SpinMutex cold_lock;      // serializes list-state transitions
  bool retire_even_if_last;       // trim() override of retire hysteresis
  std::uint8_t size_class;
  std::uint8_t bin_index;         // within chunk, 2..63
  std::uint16_t capacity;

  util::AtomicBitmapRef bitmap() {
    return util::AtomicBitmapRef(bitmap_words, capacity);
  }
};
static_assert(sizeof(BinHeader) <= kBinHeaderSize,
              "bin header must fit in 128 bytes");

/// 128-byte header at the start of every chunk (bin 0, offset 0).
struct ChunkHeader {
  std::uint64_t bin_bitmap_word;  // 1 = bin slot in use; bits 0,1 pre-set
  util::ListNode chunk_node;      // arena chunk list linkage
  class Arena* arena;             // owning arena
  std::uint32_t magic;

  util::AtomicBitmapRef bin_bitmap() {
    return util::AtomicBitmapRef(&bin_bitmap_word, kBinsPerChunk);
  }
  static constexpr std::uint32_t kMagic = 0x75616c6cu;  // "uall"
};
static_assert(sizeof(ChunkHeader) <= kBinHeaderSize,
              "chunk header must fit in 128 bytes");

/// Bounded per-(arena, size-class) LIFO cache of freed blocks — the
/// constant-time front end of the allocator (not in the paper; see
/// docs/INTERNALS.md §4b).
///
/// A cached block is, to the bin machinery, still *allocated*: its bitmap
/// bit stays claimed, its bin's free_count excludes it, and no semaphore
/// unit exists for it. push/pop therefore commute with every invariant in
/// this file — the magazine only defers the moment a block re-enters (or
/// leaves) the accounting protocol.
///
/// Blocks are linked through their own (dead) payload — every UAlloc class
/// is >= 8 B and 8-byte aligned, so the first word holds the next pointer
/// for free. Push and pop are two pointer writes under a per-magazine spin
/// lock; the lock is private to one (arena, class), so in the steady state
/// it is uncontended and the whole operation is constant-time. All next-
/// pointer accesses happen under the lock, which also orders them against
/// the application's own stores into a block it just obtained (the popping
/// thread's acquire pairs with the pushing thread's release).
class Magazine {
 public:
  /// Fix the bound. Called once, before first use (Arena constructor).
  void set_capacity(std::uint32_t cap) { cap_ = cap; }
  std::uint32_t capacity() const { return cap_; }

  /// Cache `p`; false when full — the caller must spill `p` through the
  /// normal free path.
  bool push(void* p) {
    sync::LockGuard<sync::SpinMutex> g(mu_);
    if (count_.load(std::memory_order_relaxed) >= cap_) return false;
    *static_cast<void**>(p) = head_;
    head_ = p;
    count_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Most recently cached block, or nullptr when empty. The empty check is
  /// a single relaxed load so a cold magazine costs one cache probe.
  void* pop() {
    if (count_.load(std::memory_order_relaxed) == 0) return nullptr;
    sync::LockGuard<sync::SpinMutex> g(mu_);
    void* p = head_;
    if (p == nullptr) return nullptr;
    head_ = *static_cast<void**>(p);
    count_.fetch_sub(1, std::memory_order_relaxed);
    return p;
  }

  /// Cached blocks right now (approximate under concurrency, exact when
  /// quiescent — same contract as every other statistics read here).
  std::uint32_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Copy of the cached blocks, top first (consistency checks, tests).
  std::vector<void*> snapshot() const {
    sync::LockGuard<sync::SpinMutex> g(mu_);
    std::vector<void*> out;
    for (void* p = head_; p != nullptr; p = *static_cast<void**>(p)) {
      out.push_back(p);
    }
    return out;
  }

 private:
  mutable sync::SpinMutex mu_;
  void* head_ = nullptr;
  std::atomic<std::uint32_t> count_{0};
  std::uint32_t cap_ = 0;
};

/// Per-(arena, size class) structures.
struct SizeClassState {
  explicit SizeClassState(sync::SrcuDomain& dom) : bins(dom) {}
  sync::BulkSemaphore blocks;  // claimable blocks across listed bins
  sync::RcuList bins;          // bins with (potentially) claimable blocks
  std::atomic<std::uint32_t> listed{0};  // bins currently in the list
};

/// One arena; the paper assigns one per SM.
class Arena {
 public:
  Arena(UAlloc& parent, std::uint32_t index);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::uint32_t cls);

  /// Claim up to `want` blocks of `cls` in ONE bulk-semaphore
  /// transaction (the FixedLane slab refill). Returns the number of
  /// blocks written to `out` — `min(want, capacity)` on success, 0 when
  /// this arena is out of memory. Either a batched claim over the listed
  /// bins or one freshly grown bin whose first `want` slots become the
  /// slab.
  std::uint32_t allocate_batch(std::uint32_t cls, void** out,
                               std::uint32_t want);

  UAlloc& parent() { return *parent_; }
  std::uint32_t index() const { return index_; }
  sync::SrcuDomain& rcu() { return rcu_; }

  /// Blocks currently cached in this arena's magazine for `cls` (tests,
  /// stats).
  std::uint32_t magazine_count(std::uint32_t cls) const {
    return magazines_[cls].count();
  }

 private:
  friend class UAlloc;

  /// Single-thread allocation path (also the fallback).
  void* allocate_individual(std::uint32_t cls);

  /// Warp-coalesced path (paper §2.2: requests of warp-mates invoking the
  /// allocator concurrently are transparently coalesced): the group's
  /// leader performs ONE semaphore wait for the whole group, and on the
  /// grow path ONE new bin serves every member. Only used in-kernel for
  /// classes whose bins hold at least a warp's worth of blocks.
  void* allocate_coalesced(std::uint32_t cls, gpu::ThreadCtx& ctx);

  /// Claim one block from a listed bin of class `cls` (caller holds a
  /// semaphore unit, so a block is guaranteed to exist eventually).
  void* claim_block(std::uint32_t cls);

  /// Claim `n` blocks from listed bins of `cls` (caller holds `n`
  /// semaphore units). Writes block addresses to `out`; like claim_block
  /// this only returns once all n are claimed (the units guarantee
  /// eventual success).
  void claim_blocks(std::uint32_t cls, std::uint32_t n, void** out);

  /// Build a new bin for `cls` (grow path); returns the first block or
  /// nullptr on pool exhaustion. On success the bin is listed and the
  /// class semaphore is signaled with capacity-1 units.
  void* grow_bin(std::uint32_t cls);

  /// Shared machinery of the grow paths: carve a bin slot, initialise the
  /// header with blocks [0, pre_claimed) already taken, list the bin and
  /// publish capacity - pre_claimed claimable units. nullptr on OOM (the
  /// caller owns the semaphore failure signal).
  BinHeader* create_bin(std::uint32_t cls, std::uint32_t pre_claimed);

  /// Claim a bin slot in some chunk of this arena, growing a chunk from
  /// TBuddy if needed. Returns the bin base address or nullptr (OOM).
  void* claim_bin_slot();

  UAlloc* parent_;
  std::uint32_t index_;
  sync::SrcuDomain rcu_;
  Magazine magazines_[kNumSizeClasses];
  std::vector<std::unique_ptr<SizeClassState>> classes_;
  sync::BulkSemaphore bin_slots_;         // free bin slots in chunk list
  util::IntrusiveList<ChunkHeader, &ChunkHeader::chunk_node> chunks_;
  sync::CollectiveMutex chunk_mu_;        // guards chunks_ (collectively)
  sync::SpinMutex list_splice_mu_;        // intra-group splice serialization
};

/// Aggregate UAlloc statistics.
struct UAllocStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bins_created = 0;
  std::uint64_t bins_retired = 0;
  std::uint64_t chunks_created = 0;
  std::uint64_t chunks_retired = 0;
  std::uint64_t bin_unlinks = 0;
  std::uint64_t bin_relists = 0;
  std::uint64_t list_retries = 0;
  std::uint64_t magazine_hits = 0;     // allocations served by a magazine
  std::uint64_t magazine_misses = 0;   // pops on an empty magazine
  std::uint64_t magazine_spills = 0;   // frees that overflowed a magazine
  std::uint64_t magazine_flushes = 0;  // blocks evicted by release_cached()
  std::uint64_t magazine_cached = 0;   // blocks cached right now
  std::uint64_t arena_fallbacks = 0;   // allocations served by a non-home
                                       // arena after the home arena OOM'd
};

class UAlloc {
 public:
  /// `num_arenas` is normally the simulated device's SM count.
  /// `use_tails` disables the tail-append optimisation when false (the
  /// A3 ablation: bins of classes <= 128 B then waste their header's
  /// worth of payload, exactly the internal fragmentation §4.2 avoids).
  UAlloc(TBuddy& buddy, std::uint32_t num_arenas, bool use_tails = true);
  ~UAlloc();

  UAlloc(const UAlloc&) = delete;
  UAlloc& operator=(const UAlloc&) = delete;

  /// Allocate a block of power-of-two `size` in [8, 1024] from the
  /// calling thread's arena, falling back to the other arenas when the
  /// home arena is out of chunks. nullptr on pool exhaustion.
  void* allocate(std::size_t size);

  /// allocate() with an explicit home arena instead of the calling
  /// thread's SM — the same fallback sweep, made deterministic for tests
  /// (and usable by hosts that route by something other than SM id).
  void* allocate_from(std::uint32_t home_arena, std::size_t size);

  /// Free a block previously returned by allocate (any thread).
  void free(void* p);

  /// Claim up to `want` blocks of class `cls` in one bulk transaction,
  /// preferring `home_arena` and sweeping the other arenas on OOM (the
  /// same fallback discipline as allocate_from). Returns the number of
  /// blocks written to `out`, 0 when every arena is exhausted. All blocks
  /// of one call come from one arena.
  std::uint32_t allocate_batch(std::uint32_t home_arena, std::uint32_t cls,
                               void** out, std::uint32_t want);

  /// Reverse-map `p` to its owning bin and block index (the free()
  /// decode, exposed so GpuAllocator can decode once and route between
  /// the fixed lane and free_decoded).
  BinHeader* decode_block(void* p, std::uint32_t* block_idx) const {
    return decode(p, block_idx);
  }

  /// The tail of free(): `p` already decoded to (bin, idx). Magazine
  /// push first, slow publication otherwise.
  void free_decoded(BinHeader* bin, std::uint32_t idx, void* p);

  /// Byte size of the block containing `p` (its size class).
  std::size_t usable_size(void* p) const;

  std::uint32_t num_arenas() const {
    return static_cast<std::uint32_t>(arenas_.size());
  }

  /// Blocks per bin for a class under the current tail configuration.
  std::uint32_t class_capacity(std::uint32_t cls) const {
    if (use_tails_) return bin_capacity(cls);
    return static_cast<std::uint32_t>(kBinDataSize / size_of_class(cls));
  }

  /// Ablation knob: disable the warp-coalesced allocation path.
  void set_coalescing(bool on) { coalesce_ = on; }

  /// Ablation/runtime knob for the magazine front-end (default is the
  /// compile-time TOMA_UALLOC_MAGAZINES). Turning magazines off flushes
  /// every cached block back through the normal free path, so the
  /// paper-faithful configuration is reachable at any quiescent point.
  void set_magazines(bool on) {
    magazines_on_.store(on, std::memory_order_relaxed);
    if (!on) release_cached();
  }
  bool magazines_enabled() const {
    return magazines_on_.load(std::memory_order_relaxed);
  }

  /// Flush every magazine: each cached block re-enters the accounting
  /// protocol through the normal free-publication path (clearing its
  /// bitmap bit, parking and signalling a unit, possibly retiring its
  /// bin). Returns the number of blocks flushed. Safe to call
  /// concurrently with allocation; trim() calls this first so cached
  /// blocks cannot pin otherwise-empty bins or chunks.
  std::size_t release_cached();
  TBuddy& buddy() { return *buddy_; }
  Arena& arena(std::uint32_t i) { return *arenas_[i]; }

  UAllocStats stats() const;

  /// Scavenge fully-free bins and empty chunks back to TBuddy (the
  /// malloc_trim analogue). Bin/chunk retirement on the free path is
  /// opportunistic — it backs off rather than stall concurrent claimants —
  /// so after heavy churn some empty bins/chunks stay cached; trim()
  /// retires everything that is retirable right now. Safe to call
  /// concurrently with allocation (it simply retires less). Returns the
  /// number of chunks returned to TBuddy.
  std::size_t trim();

  /// Test hook: verify bitmap/free-count/semaphore agreement on a
  /// quiescent allocator. Returns true when consistent.
  bool check_consistency() const;

 private:
  friend class Arena;
  // FixedLane republishes cached blocks via free_slow and keeps the
  // alloc/free statistics boundary-symmetric (see fixed_lane.cpp).
  friend class FixedLane;

  // --- bin lifecycle (cold paths) -----------------------------------------
  /// The paper's free path: clear the bitmap bit of block `idx` and
  /// publish the freed block. Taken on magazine overflow/flush, or always
  /// when magazines are off.
  void free_slow(BinHeader* bin, std::uint32_t idx);
  /// Publish one freed block of `bin` (bit already cleared): park a unit
  /// and drain.
  void publish_free_block(BinHeader* bin);
  /// Convert parked units into semaphore signals / relists as the bin's
  /// state allows. Safe to call from any thread at any time.
  void drain_parked(BinHeader* bin);
  /// Called by the claimer that took a bin's last claimable block.
  void maybe_unlink_exhausted(BinHeader* bin);
  /// Attempt to retire a fully-free bin. Called inside drain_parked with
  /// the cold lock held and `unsignaled` parked units just folded into
  /// free_count; on success the cold lock has been released and the
  /// unsignaled units consumed.
  bool try_retire_bin(BinHeader* bin, std::uint32_t unsignaled);
  /// RCU grace-period completions.
  static void drain_grace_cb(sync::RcuCallback* cb);
  static void retire_grace_cb(sync::RcuCallback* cb);
  void finish_drain(BinHeader* bin);
  void finish_retire(BinHeader* bin);
  /// Release a bin slot back to its chunk; retires the chunk when empty.
  void release_bin_slot(BinHeader* bin);
  void maybe_retire_chunk(ChunkHeader* chunk);

  // --- geometry helpers ----------------------------------------------------
  static SizeClassState& class_state(BinHeader* bin);
  static Arena& class_arena(BinHeader* bin);
  static BinHeader* bin_of_node(sync::RcuListNode* n);
  static BinHeader* bin_of_cb(sync::RcuCallback* cb);
  /// Address of block `idx` within `bin` (tail-aware).
  void* block_addr(BinHeader* bin, std::uint32_t idx) const;
  /// Reverse mapping for free(): find owning bin and block index.
  BinHeader* decode(void* p, std::uint32_t* block_idx) const;
  char* chunk_base(const BinHeader* bin) const;

  TBuddy* buddy_;
  bool use_tails_;
  bool coalesce_ = true;
  std::atomic<bool> magazines_on_{TOMA_UALLOC_MAGAZINES != 0};
  std::vector<std::unique_ptr<Arena>> arenas_;

  mutable std::atomic<std::uint64_t> st_allocs_{0};
  mutable std::atomic<std::uint64_t> st_frees_{0};
  mutable std::atomic<std::uint64_t> st_bins_created_{0};
  mutable std::atomic<std::uint64_t> st_bins_retired_{0};
  mutable std::atomic<std::uint64_t> st_chunks_created_{0};
  mutable std::atomic<std::uint64_t> st_chunks_retired_{0};
  mutable std::atomic<std::uint64_t> st_bin_unlinks_{0};
  mutable std::atomic<std::uint64_t> st_bin_relists_{0};
  mutable std::atomic<std::uint64_t> st_list_retries_{0};
  mutable std::atomic<std::uint64_t> st_mag_hits_{0};
  mutable std::atomic<std::uint64_t> st_mag_misses_{0};
  mutable std::atomic<std::uint64_t> st_mag_spills_{0};
  mutable std::atomic<std::uint64_t> st_mag_flushes_{0};
  mutable std::atomic<std::uint64_t> st_arena_fallbacks_{0};
};

}  // namespace toma::alloc
