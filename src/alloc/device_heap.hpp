// The process-global device heap: the CUDA-style `malloc`/`free` entry
// points (paper §2.1 — "Individual threads running on the GPU request
// dynamic allocation by calling malloc, and it is through this interface
// that our implementation is exposed to the application").
//
// CUDA exposes one implicit heap per device, sized by
// cudaDeviceSetLimit(cudaLimitMallocHeapSize) before first use; we mirror
// that shape: install a GpuAllocator once (or let device_malloc lazily
// create a default-sized one), then call device_malloc/device_free from
// any thread, simulated or host.
#pragma once

#include <cstddef>

#include "alloc/allocator.hpp"

namespace toma::alloc {

/// Install `heap` as the global device heap (not owned; pass nullptr to
/// uninstall). Returns the previously installed heap.
GpuAllocator* set_device_heap(GpuAllocator* heap);

/// Install `heap` only when no heap is installed (CAS nullptr -> heap).
/// Returns true when `heap` became the device heap. Lets the default
/// pool back the legacy globals without clobbering an explicit install.
bool install_device_heap_if_absent(GpuAllocator* heap);

/// The installed heap, or nullptr.
GpuAllocator* device_heap();

/// Lazily create-and-install a default heap (first call wins). The heap
/// is the PoolManager's "default" pool, so device_malloc and the toma_*
/// C API share one pool. `pool_bytes`/`num_arenas` of 0 mean "don't
/// care" (library defaults). When a heap already exists and an explicit
/// non-zero `pool_bytes` disagrees with its actual size, the request is
/// NOT honoured — that mismatch bumps the `device_heap.ensure_mismatch`
/// counter and warns once per process instead of failing silently.
GpuAllocator& ensure_device_heap(std::size_t pool_bytes = 0,
                                 std::uint32_t num_arenas = 0);

/// The standard C interface as device code sees it — legacy thin
/// wrappers over the PoolManager's "default" pool (created on first use
/// via ensure_device_heap, matching CUDA's implicit default heap). New
/// code should prefer the toma_* C facade (include/toma/toma.h) or
/// Pool/PoolManager directly.
void* device_malloc(std::size_t size);
void device_free(void* p);

/// RAII installer for tests and scoped use.
class DeviceHeapScope {
 public:
  explicit DeviceHeapScope(GpuAllocator& heap)
      : previous_(set_device_heap(&heap)) {}
  ~DeviceHeapScope() { set_device_heap(previous_); }
  DeviceHeapScope(const DeviceHeapScope&) = delete;
  DeviceHeapScope& operator=(const DeviceHeapScope&) = delete;

 private:
  GpuAllocator* previous_;
};

}  // namespace toma::alloc
