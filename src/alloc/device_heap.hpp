// The process-global device heap: the CUDA-style `malloc`/`free` entry
// points (paper §2.1 — "Individual threads running on the GPU request
// dynamic allocation by calling malloc, and it is through this interface
// that our implementation is exposed to the application").
//
// CUDA exposes one implicit heap per device, sized by
// cudaDeviceSetLimit(cudaLimitMallocHeapSize) before first use; we mirror
// that shape: install a GpuAllocator once (or let device_malloc lazily
// create a default-sized one), then call device_malloc/device_free from
// any thread, simulated or host.
#pragma once

#include <cstddef>

#include "alloc/allocator.hpp"

namespace toma::alloc {

/// Install `heap` as the global device heap (not owned; pass nullptr to
/// uninstall). Returns the previously installed heap.
GpuAllocator* set_device_heap(GpuAllocator* heap);

/// The installed heap, or nullptr.
GpuAllocator* device_heap();

/// Lazily create-and-install a default heap of `pool_bytes` (first call
/// wins; subsequent calls return the existing heap regardless of size).
/// The lazily created heap lives until process exit.
GpuAllocator& ensure_device_heap(std::size_t pool_bytes = 64 << 20,
                                 std::uint32_t num_arenas = 8);

/// The standard C interface as device code sees it. device_malloc uses
/// ensure_device_heap() when none is installed, matching CUDA's implicit
/// default heap.
void* device_malloc(std::size_t size);
void device_free(void* p);

/// RAII installer for tests and scoped use.
class DeviceHeapScope {
 public:
  explicit DeviceHeapScope(GpuAllocator& heap)
      : previous_(set_device_heap(&heap)) {}
  ~DeviceHeapScope() { set_device_heap(previous_); }
  DeviceHeapScope(const DeviceHeapScope&) = delete;
  DeviceHeapScope& operator=(const DeviceHeapScope&) = delete;

 private:
  GpuAllocator* previous_;
};

}  // namespace toma::alloc
