// Umbrella header for the allocator.
#pragma once

#include "alloc/allocator.hpp"
#include "alloc/config.hpp"
#include "alloc/device_heap.hpp"
#include "alloc/pool.hpp"
#include "alloc/stream.hpp"
#include "alloc/tbuddy.hpp"
#include "alloc/ualloc.hpp"
