// Multi-pool manager: named, quota-bounded GpuAllocator pools with a
// stream-ordered asynchronous front-end (see docs/API.md and
// docs/INTERNALS.md §6).
//
// The paper exposes one process-global heap (§2.1). A production host
// serves many concurrent workloads, so the organizing abstraction here is
// the *pool*: each tenant/workload gets an isolated GpuAllocator with its
// own byte quota (interference is bounded — one tenant at quota fails
// with AllocStatus::kQuota while the others keep allocating at full
// speed) and its own release threshold governing how much cached memory a
// sync point may retain (the cudaMemPool release-threshold analogue).
// PoolManager owns the pools by name; the legacy device_malloc/free
// globals are thin wrappers over the manager's "default" pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/stream.hpp"
#include "gpusim/stream.hpp"

namespace toma::obs {
class Counter;
class Histogram;
}  // namespace toma::obs

namespace toma::alloc {

struct PoolStats {
  GpuAllocatorStats alloc;
  StreamFrontEndStats stream;
  std::uint64_t syncs = 0;            // Pool::sync calls
  std::uint64_t threshold_trims = 0;  // trims forced by release threshold
  std::uint64_t slo_violations = 0;   // ops slower than the SLO target
  std::uint64_t slo_target_ns = 0;    // 0 = no SLO
  std::size_t bytes_in_use = 0;
  std::size_t quota_bytes = 0;        // 0 = unlimited
  std::size_t release_threshold = 0;
};

class Pool {
 public:
  Pool(std::string name, const HeapConfig& cfg);
  /// Drains every pending async free, then tears the allocator down. If
  /// this pool's allocator is the installed device heap it is
  /// uninstalled first.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  const std::string& name() const { return name_; }
  GpuAllocator& allocator() { return alloc_; }
  const GpuAllocator& allocator() const { return alloc_; }

  // --- synchronous surface -------------------------------------------------
  // Thin forwarding plus the pool's observability duties: per-pool
  // latency histograms (`pool.malloc_ns{pool=...}` / `pool.free_ns`),
  // SLO-violation accounting, and flight-recorder hooks (obs/recorder.hpp)
  // when a recording session is active. The device-side hot path
  // (device_malloc -> GpuAllocator) bypasses all of this by design.
  void* malloc(std::size_t size, AllocStatus* status = nullptr);
  void free(void* p);
  void* calloc(std::size_t n, std::size_t size,
               AllocStatus* status = nullptr);
  void* realloc(void* p, std::size_t size, AllocStatus* status = nullptr);
  std::size_t usable_size(void* p) const { return alloc_.usable_size(p); }

  // --- stream-ordered surface ----------------------------------------------
  /// malloc whose result is ordered after prior work on `s`: a pending
  /// same-stream free of a block with exactly the right capacity is
  /// reused directly (no allocator round trip); otherwise an ordinary
  /// malloc. With async off or HeapSan engaged this is plain malloc.
  void* malloc_async(std::size_t size, gpu::Stream& s,
                     AllocStatus* status = nullptr);

  /// Defer freeing `p` until `s` synchronizes (O(1) on the hot path).
  /// With async off or HeapSan engaged the free happens immediately —
  /// the ordering contract still holds, trivially.
  void free_async(void* p, gpu::Stream& s);

  /// Stream sync point: drain `s`'s deferred frees through the normal
  /// free paths, then apply the release threshold (trim when more than
  /// `release_threshold` bytes sit stranded in caches / partial bins).
  /// Returns the number of frees drained.
  std::size_t sync(gpu::Stream& s);

  /// sync() across every stream that has pending frees on this pool.
  std::size_t sync_all();

  /// Drain `s` and forget its per-pool slot (stream destruction).
  std::size_t release_stream(gpu::Stream& s);

  // --- maintenance ----------------------------------------------------------
  /// Drain pending frees, then scavenge caches back to maximal buddy
  /// blocks (GpuAllocator::trim). Returns chunks released by UAlloc.
  std::size_t trim();

  void set_release_threshold(std::size_t bytes) {
    release_threshold_.store(bytes, std::memory_order_relaxed);
  }
  std::size_t release_threshold() const {
    return release_threshold_.load(std::memory_order_relaxed);
  }

  /// Runtime switch for the async front-end (default: the compile-time
  /// TOMA_STREAM_ASYNC). Turning it off drains all pending frees.
  void set_async(bool on);
  bool async_enabled() const {
    return async_on_.load(std::memory_order_relaxed);
  }

  std::size_t bytes_in_use() const { return alloc_.bytes_in_use(); }
  std::size_t quota_bytes() const { return alloc_.quota_bytes(); }
  void set_quota(std::size_t bytes) { alloc_.set_quota(bytes); }

  /// Per-operation latency SLO target in ns (0 = no SLO). An op slower
  /// than the target bumps `pool.slo_violation{pool=...}` and
  /// stats().slo_violations. Exported quantiles always come from the
  /// latency histograms regardless of the target.
  void set_slo_latency(std::uint64_t ns) {
    slo_ns_.store(ns, std::memory_order_relaxed);
  }
  std::uint64_t slo_latency() const {
    return slo_ns_.load(std::memory_order_relaxed);
  }

  /// Bytes stranded outside both live allocations and the buddy tree
  /// (magazine/quicklist caches, partial bins, quarantine) — what the
  /// release threshold compares against.
  std::size_t stranded_bytes() const;

  PoolStats stats() const;
  bool check_consistency() const { return alloc_.check_consistency(); }

 private:
  /// Trim if stranded_bytes() exceeds the release threshold.
  void maybe_release();

  /// Record the op's latency into `h` and check it against the SLO
  /// target. Compiles to nothing with telemetry off.
  void observe_latency(obs::Histogram* h, std::uint64_t t0);

  /// The pool's id in the active flight-recorder session, interning on
  /// first use per session (the recorder generation changes on start()).
  std::uint16_t record_id();

  std::string name_;
  std::uint32_t num_arenas_;  // retained for the flight-recorder header
  GpuAllocator alloc_;
  StreamFrontEnd streams_;
  std::atomic<std::size_t> release_threshold_;
  std::atomic<bool> async_on_{TOMA_STREAM_ASYNC != 0};
  std::atomic<std::uint64_t> st_syncs_{0};
  std::atomic<std::uint64_t> st_threshold_trims_{0};
  std::atomic<std::uint64_t> slo_ns_{0};
  std::atomic<std::uint64_t> st_slo_violations_{0};
  // Registry handles resolved once at construction (null with telemetry
  // compiled out); the registry never deletes instruments.
  obs::Histogram* h_malloc_ns_ = nullptr;
  obs::Histogram* h_free_ns_ = nullptr;
  obs::Counter* c_slo_violation_ = nullptr;
  std::atomic<std::uint64_t> rec_gen_{0};
  std::atomic<std::uint16_t> rec_id_{0};
};

/// Process-wide registry of named pools. Leaky singleton (like the obs
/// registry) so the default pool backing the legacy device heap survives
/// static teardown.
class PoolManager {
 public:
  static constexpr const char* kDefaultName = "default";

  static PoolManager& instance();

  PoolManager(const PoolManager&) = delete;
  PoolManager& operator=(const PoolManager&) = delete;

  /// Create a pool. nullptr when the name is taken or the config is
  /// invalid (the C facade distinguishes via find()/HeapConfig::valid()).
  Pool* create(const std::string& name, const HeapConfig& cfg = {});

  /// Look up a pool by name; nullptr when absent.
  Pool* find(const std::string& name) const;

  /// Destroy a pool by name. The default pool refuses (the legacy
  /// device-heap wrappers depend on it); returns false then and for
  /// unknown names. Outstanding allocations from the pool must have been
  /// freed (destruction with live blocks is a use-after-free in waiting,
  /// exactly as with a raw GpuAllocator).
  bool destroy(const std::string& name);

  /// The "default" pool, created on first use with `cfg` (first call
  /// wins) and installed as the process device heap when none is
  /// installed — device_malloc and toma_malloc(nullptr, ...) then share
  /// one pool.
  Pool& default_pool(const HeapConfig& cfg = {});

  /// Is the default pool created already? (Introspection for tests.)
  bool has_default() const { return find(kDefaultName) != nullptr; }

  /// Sync `s` on every pool (the C facade's toma_stream_sync). Returns
  /// total frees drained.
  std::size_t sync_stream(gpu::Stream& s);

  /// Drain + forget `s`'s slot on every pool (stream destruction).
  std::size_t release_stream(gpu::Stream& s);

  std::vector<std::string> names() const;
  std::size_t pool_count() const;

 private:
  PoolManager() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Pool>> pools_;
};

}  // namespace toma::alloc
