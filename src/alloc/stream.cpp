#include "alloc/stream.hpp"

#include "alloc/allocator.hpp"
#include "obs/telemetry.hpp"
#include "util/bitops.hpp"

namespace toma::alloc {

StreamSlot& StreamFrontEnd::slot_of(gpu::Stream& s) {
  sync::LockGuard<sync::SpinMutex> g(map_mu_);
  auto& slot = slots_[s.id()];
  if (slot == nullptr) slot = std::make_unique<StreamSlot>();
  return *slot;
}

void StreamFrontEnd::free_async(void* p, gpu::Stream& s) {
  StreamSlot& slot = slot_of(s);
  s.ticket();
  // Classify by the same alignment test free() routes on; the capacity
  // read is safe because the block is still allocated to the accounting.
  bool overflow;
  {
    sync::LockGuard<sync::SpinMutex> g(slot.mu_);
    if (util::is_aligned(p, kPageSize)) {
      slot.large_.emplace_back(p, alloc_->buddy().allocation_size(p));
    } else {
      const std::size_t cap = alloc_->ualloc().usable_size(p);
      slot.classes_[size_class_of(cap)].push_back(p);
    }
    slot.pending_ += 1;
    overflow = slot.pending_ >= kStreamPendingCap;
  }
  st_deferred_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("pool.stream.free_async");
  if (overflow) {
    st_overflow_drains_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("pool.stream.overflow_drain");
    drain(slot);
  }
}

void* StreamFrontEnd::try_reuse(std::size_t effective, gpu::Stream& s) {
  StreamSlot* slot = nullptr;
  {
    sync::LockGuard<sync::SpinMutex> g(map_mu_);
    auto it = slots_.find(s.id());
    if (it != slots_.end()) slot = it->second.get();
  }
  void* p = nullptr;
  if (slot != nullptr) {
    sync::LockGuard<sync::SpinMutex> g(slot->mu_);
    if (effective <= kMaxUAllocSize) {
      auto& bucket = slot->classes_[size_class_of(effective)];
      if (!bucket.empty()) {
        p = bucket.back();
        bucket.pop_back();
      }
    } else {
      for (auto it = slot->large_.begin(); it != slot->large_.end(); ++it) {
        if (it->second == effective) {
          p = it->first;
          *it = slot->large_.back();
          slot->large_.pop_back();
          break;
        }
      }
    }
    if (p != nullptr) slot->pending_ -= 1;
  }
  if (p != nullptr) {
    st_reuse_hits_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("pool.stream.reuse.hit");
  } else {
    st_reuse_misses_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("pool.stream.reuse.miss");
  }
  return p;
}

std::size_t StreamFrontEnd::drain(StreamSlot& slot) {
  [[maybe_unused]] const std::uint64_t t0 = TOMA_NOW_NS();
  std::vector<void*> classes[kNumSizeClasses];
  std::vector<std::pair<void*, std::size_t>> large;
  {
    sync::LockGuard<sync::SpinMutex> g(slot.mu_);
    for (std::uint32_t c = 0; c < kNumSizeClasses; ++c) {
      classes[c].swap(slot.classes_[c]);
    }
    large.swap(slot.large_);
    slot.pending_ = 0;
  }
  // Back-to-back frees cluster the RCU barriers of bin unlink/retire, so
  // the conditional-barrier delegation collapses them into ~one grace
  // period for the whole batch.
  std::size_t n = 0;
  for (std::uint32_t c = 0; c < kNumSizeClasses; ++c) {
    for (void* p : classes[c]) {
      alloc_->free(p);
      ++n;
    }
  }
  for (const auto& [p, size] : large) {
    (void)size;
    alloc_->free(p);
    ++n;
  }
  if (n > 0) {
    st_drained_.fetch_add(n, std::memory_order_relaxed);
    st_drain_batches_.fetch_add(1, std::memory_order_relaxed);
    TOMA_HIST("pool.stream.drain_batch", n);
    TOMA_HIST("pool.stream.drain_ns", TOMA_NOW_NS() - t0);
  }
  return n;
}

std::size_t StreamFrontEnd::sync(gpu::Stream& s) {
  StreamSlot* slot = nullptr;
  {
    sync::LockGuard<sync::SpinMutex> g(map_mu_);
    auto it = slots_.find(s.id());
    if (it != slots_.end()) slot = it->second.get();
  }
  const std::size_t n = slot != nullptr ? drain(*slot) : 0;
  s.complete_to(s.submitted());
  TOMA_CTR_INC("pool.stream.sync");
  return n;
}

std::size_t StreamFrontEnd::sync_all() {
  std::vector<StreamSlot*> all;
  {
    sync::LockGuard<sync::SpinMutex> g(map_mu_);
    all.reserve(slots_.size());
    for (auto& [id, slot] : slots_) all.push_back(slot.get());
  }
  std::size_t n = 0;
  for (StreamSlot* slot : all) n += drain(*slot);
  return n;
}

std::size_t StreamFrontEnd::release_stream(gpu::Stream& s) {
  std::unique_ptr<StreamSlot> slot;
  {
    sync::LockGuard<sync::SpinMutex> g(map_mu_);
    auto it = slots_.find(s.id());
    if (it == slots_.end()) return 0;
    slot = std::move(it->second);
    slots_.erase(it);
  }
  const std::size_t n = drain(*slot);
  s.complete_to(s.submitted());
  return n;
}

StreamFrontEndStats StreamFrontEnd::stats() const {
  StreamFrontEndStats st;
  st.deferred = st_deferred_.load(std::memory_order_relaxed);
  st.reuse_hits = st_reuse_hits_.load(std::memory_order_relaxed);
  st.reuse_misses = st_reuse_misses_.load(std::memory_order_relaxed);
  st.drained = st_drained_.load(std::memory_order_relaxed);
  st.drain_batches = st_drain_batches_.load(std::memory_order_relaxed);
  st.overflow_drains = st_overflow_drains_.load(std::memory_order_relaxed);
  st.pending = st.deferred - st.drained - st.reuse_hits;
  return st;
}

}  // namespace toma::alloc
