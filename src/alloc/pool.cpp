#include "alloc/pool.hpp"

#include "alloc/device_heap.hpp"
#include "obs/telemetry.hpp"

namespace toma::alloc {

Pool::Pool(std::string name, const HeapConfig& cfg)
    : name_(std::move(name)),
      alloc_(cfg),
      streams_(alloc_),
      release_threshold_(cfg.release_threshold) {
  TOMA_CTR_INC("pool.create");
}

Pool::~Pool() {
  streams_.sync_all();
  if (device_heap() == &alloc_) set_device_heap(nullptr);
  TOMA_CTR_INC("pool.destroy");
}

void* Pool::malloc_async(std::size_t size, gpu::Stream& s,
                         AllocStatus* status) {
  // Reuse is disabled while HeapSan is engaged: a sanitized pointer is
  // not a raw block base, and handing it back without the redzone /
  // shadow bookkeeping would blind the sanitizer.
  if (async_enabled() && size != 0 && !alloc_.heapsan().engaged()) {
    const std::size_t effective = GpuAllocator::effective_size(size);
    if (void* p = streams_.try_reuse(effective, s)) {
      if (status != nullptr) *status = AllocStatus::kOk;
      return p;
    }
  }
  return alloc_.malloc(size, status);
}

void Pool::free_async(void* p, gpu::Stream& s) {
  if (p == nullptr) return;
  if (!async_enabled() || alloc_.heapsan().engaged()) {
    // Degenerate (paper-faithful) mode: the ordering contract holds
    // trivially because the free completes before free_async returns.
    TOMA_CTR_INC("pool.stream.passthrough");
    alloc_.free(p);
    return;
  }
  streams_.free_async(p, s);
}

std::size_t Pool::sync(gpu::Stream& s) {
  const std::size_t n = streams_.sync(s);
  st_syncs_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("pool.sync");
  maybe_release();
  return n;
}

std::size_t Pool::sync_all() {
  const std::size_t n = streams_.sync_all();
  st_syncs_.fetch_add(1, std::memory_order_relaxed);
  maybe_release();
  return n;
}

std::size_t Pool::release_stream(gpu::Stream& s) {
  const std::size_t n = streams_.release_stream(s);
  maybe_release();
  return n;
}

std::size_t Pool::trim() {
  streams_.sync_all();
  return alloc_.trim();
}

void Pool::set_async(bool on) {
  async_on_.store(on, std::memory_order_relaxed);
  if (!on) streams_.sync_all();
}

std::size_t Pool::stranded_bytes() const {
  // pool = live blocks + tree-accounted free space + everything stranded
  // in between (front-end caches, partial bins, quarantine, pending
  // async frees). Saturating: the three reads race with concurrent
  // allocation, and an instantaneous overshoot must not wrap.
  const std::size_t pool = alloc_.pool_bytes();
  const std::size_t used = alloc_.bytes_in_use();
  const std::size_t tree_free =
      const_cast<GpuAllocator&>(alloc_).buddy().free_bytes();
  const std::size_t accounted = used + tree_free;
  return accounted >= pool ? 0 : pool - accounted;
}

void Pool::maybe_release() {
  const std::size_t threshold =
      release_threshold_.load(std::memory_order_relaxed);
  if (threshold == kReleaseRetainAll) return;
  if (stranded_bytes() <= threshold) return;
  alloc_.trim();
  st_threshold_trims_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("pool.threshold_trim");
}

PoolStats Pool::stats() const {
  PoolStats s;
  s.alloc = alloc_.stats();
  s.stream = streams_.stats();
  s.syncs = st_syncs_.load(std::memory_order_relaxed);
  s.threshold_trims = st_threshold_trims_.load(std::memory_order_relaxed);
  s.bytes_in_use = alloc_.bytes_in_use();
  s.quota_bytes = alloc_.quota_bytes();
  s.release_threshold = release_threshold_.load(std::memory_order_relaxed);
  return s;
}

// --- PoolManager -----------------------------------------------------------

PoolManager& PoolManager::instance() {
  // Leaky: the default pool may back the device heap until process exit.
  static PoolManager* m = new PoolManager();
  return *m;
}

Pool* PoolManager::create(const std::string& name, const HeapConfig& cfg) {
  if (name.empty() || !cfg.valid()) return nullptr;
  std::lock_guard<std::mutex> g(mu_);
  auto [it, inserted] = pools_.try_emplace(name);
  if (!inserted) return nullptr;
  it->second = std::make_unique<Pool>(name, cfg);
  return it->second.get();
}

Pool* PoolManager::find(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = pools_.find(name);
  return it != pools_.end() ? it->second.get() : nullptr;
}

bool PoolManager::destroy(const std::string& name) {
  if (name == kDefaultName) return false;
  std::unique_ptr<Pool> doomed;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = pools_.find(name);
    if (it == pools_.end()) return false;
    doomed = std::move(it->second);
    pools_.erase(it);
  }
  // Destruction (drain + allocator teardown) runs outside the manager
  // lock so a slow teardown cannot stall unrelated pool lookups.
  doomed.reset();
  return true;
}

Pool& PoolManager::default_pool(const HeapConfig& cfg) {
  Pool* pool;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto [it, inserted] = pools_.try_emplace(kDefaultName);
    if (inserted) it->second = std::make_unique<Pool>(kDefaultName, cfg);
    pool = it->second.get();
  }
  // Back the legacy device_malloc/device_free globals unless the
  // application installed its own heap first.
  install_device_heap_if_absent(&pool->allocator());
  return *pool;
}

std::size_t PoolManager::sync_stream(gpu::Stream& s) {
  std::vector<Pool*> all;
  {
    std::lock_guard<std::mutex> g(mu_);
    all.reserve(pools_.size());
    for (auto& [name, pool] : pools_) all.push_back(pool.get());
  }
  std::size_t n = 0;
  for (Pool* pool : all) n += pool->sync(s);
  return n;
}

std::size_t PoolManager::release_stream(gpu::Stream& s) {
  std::vector<Pool*> all;
  {
    std::lock_guard<std::mutex> g(mu_);
    all.reserve(pools_.size());
    for (auto& [name, pool] : pools_) all.push_back(pool.get());
  }
  std::size_t n = 0;
  for (Pool* pool : all) n += pool->release_stream(s);
  return n;
}

std::vector<std::string> PoolManager::names() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::string> out;
  out.reserve(pools_.size());
  for (const auto& [name, pool] : pools_) out.push_back(name);
  return out;
}

std::size_t PoolManager::pool_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return pools_.size();
}

}  // namespace toma::alloc
