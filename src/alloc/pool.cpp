#include "alloc/pool.hpp"

#include <cstdint>

#include "alloc/device_heap.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"

namespace toma::alloc {

namespace {

/// Registry name with the pool identity as a Prometheus-style label
/// (obs/export.hpp parses it back out): `metric{pool="<name>"}`.
/// Quotes/backslashes in pool names are escaped so the label block stays
/// parseable.
std::string pool_series(const char* metric, const std::string& pool) {
  std::string out(metric);
  out += "{pool=\"";
  for (const char c : pool) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out += "\"}";
  return out;
}

std::uint8_t outcome_of(AllocStatus st) {
  return static_cast<std::uint8_t>(st);
}

}  // namespace

Pool::Pool(std::string name, const HeapConfig& cfg)
    : name_(std::move(name)),
      num_arenas_(cfg.num_arenas),
      alloc_(cfg),
      streams_(alloc_),
      release_threshold_(cfg.release_threshold),
      slo_ns_(cfg.slo_latency_ns) {
#if TOMA_TELEMETRY
  h_malloc_ns_ =
      &obs::registry().histogram(pool_series("pool.malloc_ns", name_));
  h_free_ns_ = &obs::registry().histogram(pool_series("pool.free_ns", name_));
  c_slo_violation_ =
      &obs::registry().counter(pool_series("pool.slo_violation", name_));
#endif
  TOMA_CTR_INC("pool.create");
}

Pool::~Pool() {
  streams_.sync_all();
  if (device_heap() == &alloc_) set_device_heap(nullptr);
  TOMA_CTR_INC("pool.destroy");
}

void Pool::observe_latency(obs::Histogram* h, std::uint64_t t0) {
#if TOMA_TELEMETRY
  const std::uint64_t dt = obs::now_ns() - t0;
  h->record(dt);
  const std::uint64_t slo = slo_ns_.load(std::memory_order_relaxed);
  if (slo != 0 && dt > slo) {
    st_slo_violations_.fetch_add(1, std::memory_order_relaxed);
    c_slo_violation_->inc();
  }
#else
  (void)h;
  (void)t0;
#endif
}

std::uint16_t Pool::record_id() {
  obs::Recorder& rec = obs::Recorder::instance();
  const std::uint64_t gen = rec.generation();
  if (rec_gen_.load(std::memory_order_acquire) != gen) {
    obs::RecordedPool info;
    info.name = name_;
    info.pool_bytes = alloc_.pool_bytes();
    info.quota_bytes = alloc_.quota_bytes();
    info.release_threshold = release_threshold_.load(std::memory_order_relaxed);
    info.num_arenas = num_arenas_;
    if (async_enabled()) info.flags |= obs::kRecPoolAsync;
    if (alloc_.heapsan_enabled()) info.flags |= obs::kRecPoolHeapSan;
    rec_id_.store(rec.intern_pool(info), std::memory_order_relaxed);
    rec_gen_.store(gen, std::memory_order_release);
  }
  return rec_id_.load(std::memory_order_relaxed);
}

void* Pool::malloc(std::size_t size, AllocStatus* status) {
  const std::uint64_t t0 = TOMA_NOW_NS();
  AllocStatus st = AllocStatus::kOk;
  void* p = alloc_.malloc(size, &st);
  observe_latency(h_malloc_ns_, t0);
  if (obs::recording_enabled()) {
    obs::Recorder::instance().on_alloc(record_id(), obs::RecOp::kMalloc, size,
                                       0, true, p, outcome_of(st));
  }
  if (status != nullptr) *status = st;
  return p;
}

void Pool::free(void* p) {
  // Record *before* the underlying free: once the block is back in the
  // allocator a racing thread can re-allocate the same pointer, and the
  // recorder's ptr->id map must not see that re-use first.
  if (p != nullptr && obs::recording_enabled()) {
    obs::Recorder::instance().on_free(record_id(), obs::RecOp::kFree, p, 0,
                                      true);
  }
  const std::uint64_t t0 = TOMA_NOW_NS();
  alloc_.free(p);
  observe_latency(h_free_ns_, t0);
}

void* Pool::calloc(std::size_t n, std::size_t size, AllocStatus* status) {
  const std::uint64_t t0 = TOMA_NOW_NS();
  AllocStatus st = AllocStatus::kOk;
  void* p = alloc_.calloc(n, size, &st);
  observe_latency(h_malloc_ns_, t0);
  if (obs::recording_enabled()) {
    // Record the *total* request so replay issues calloc(1, total); an
    // overflowing n*size records as total 0, which replays to the same
    // kInvalidArg outcome.
    const bool overflow = size != 0 && n > SIZE_MAX / size;
    const std::size_t total = overflow ? 0 : n * size;
    obs::Recorder::instance().on_alloc(record_id(), obs::RecOp::kCalloc, total,
                                       0, true, p, outcome_of(st));
  }
  if (status != nullptr) *status = st;
  return p;
}

void* Pool::realloc(void* p, std::size_t size, AllocStatus* status) {
  const std::uint64_t t0 = TOMA_NOW_NS();
  const std::uint16_t rec =
      obs::recording_enabled() && (p != nullptr || size != 0) ? record_id() : 0;
  AllocStatus st = AllocStatus::kOk;
  void* q = alloc_.realloc(p, size, &st);
  observe_latency(h_malloc_ns_, t0);
  if (obs::recording_enabled() && (p != nullptr || size != 0)) {
    obs::Recorder::instance().on_realloc(rec, p, q, size, outcome_of(st));
  }
  if (status != nullptr) *status = st;
  return q;
}

void* Pool::malloc_async(std::size_t size, gpu::Stream& s,
                         AllocStatus* status) {
  const std::uint64_t t0 = TOMA_NOW_NS();
  AllocStatus st = AllocStatus::kOk;
  void* p = nullptr;
  // Reuse is disabled while HeapSan is engaged: a sanitized pointer is
  // not a raw block base, and handing it back without the redzone /
  // shadow bookkeeping would blind the sanitizer.
  if (async_enabled() && size != 0 && !alloc_.heapsan().engaged()) {
    const std::size_t effective = GpuAllocator::effective_size(size);
    // Sub-64 B requests skip the per-(pool, stream) pending-block scan:
    // the fixed lane recycles them in O(1) through alloc_.malloc below,
    // and the linear probe was *slower* than a plain malloc at these
    // sizes (the 16 B async regression).
    if (!(alloc_.fixed_lane_enabled() &&
          FixedLane::eligible_size(effective))) {
      p = streams_.try_reuse(effective, s);
    }
  }
  if (p == nullptr) p = alloc_.malloc(size, &st);
  observe_latency(h_malloc_ns_, t0);
  if (obs::recording_enabled()) {
    obs::Recorder::instance().on_alloc(record_id(), obs::RecOp::kMallocAsync,
                                       size, s.id(),
                                       &s == &gpu::default_stream(), p,
                                       outcome_of(st));
  }
  if (status != nullptr) *status = st;
  return p;
}

void Pool::free_async(void* p, gpu::Stream& s) {
  if (p == nullptr) return;
  // As in free(): record while the pointer identity is still uniquely
  // ours, before any path that could hand it back to the allocator.
  if (obs::recording_enabled()) {
    obs::Recorder::instance().on_free(record_id(), obs::RecOp::kFreeAsync, p,
                                      s.id(), &s == &gpu::default_stream());
  }
  const std::uint64_t t0 = TOMA_NOW_NS();
  if (!async_enabled() || alloc_.heapsan().engaged()) {
    // Degenerate (paper-faithful) mode: the ordering contract holds
    // trivially because the free completes before free_async returns.
    TOMA_CTR_INC("pool.stream.passthrough");
    alloc_.free(p);
  } else if (alloc_.lane_routable(p)) {
    // Small lane-served blocks bypass the pending-block machinery: the
    // free completes now (the ordering contract again holds trivially)
    // and the block lands on the freeing SM's lane, where the next small
    // malloc_async picks it up in O(1) instead of scanning the stream's
    // pending list.
    TOMA_CTR_INC("pool.stream.lane_route");
    alloc_.free(p);
  } else {
    streams_.free_async(p, s);
  }
  observe_latency(h_free_ns_, t0);
}

std::size_t Pool::sync(gpu::Stream& s) {
  const std::size_t n = streams_.sync(s);
  st_syncs_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("pool.sync");
  maybe_release();
  if (obs::recording_enabled()) {
    obs::Recorder::instance().on_sync(record_id(), obs::RecOp::kSync, s.id(),
                                      &s == &gpu::default_stream(), n);
  }
  return n;
}

std::size_t Pool::sync_all() {
  const std::size_t n = streams_.sync_all();
  st_syncs_.fetch_add(1, std::memory_order_relaxed);
  maybe_release();
  if (obs::recording_enabled()) {
    obs::Recorder::instance().on_sync(record_id(), obs::RecOp::kSyncAll, 0,
                                      true, n);
  }
  return n;
}

std::size_t Pool::release_stream(gpu::Stream& s) {
  const std::size_t n = streams_.release_stream(s);
  maybe_release();
  if (obs::recording_enabled()) {
    obs::Recorder::instance().on_sync(record_id(), obs::RecOp::kStreamRelease,
                                      s.id(), &s == &gpu::default_stream(), n);
  }
  return n;
}

std::size_t Pool::trim() {
  streams_.sync_all();
  const std::size_t chunks = alloc_.trim();
  if (obs::recording_enabled()) {
    obs::Recorder::instance().on_sync(record_id(), obs::RecOp::kTrim, 0, true,
                                      chunks);
  }
  return chunks;
}

void Pool::set_async(bool on) {
  async_on_.store(on, std::memory_order_relaxed);
  if (!on) streams_.sync_all();
}

std::size_t Pool::stranded_bytes() const {
  // pool = live blocks + tree-accounted free space + everything stranded
  // in between (front-end caches, partial bins, quarantine, pending
  // async frees). Saturating: the three reads race with concurrent
  // allocation, and an instantaneous overshoot must not wrap.
  const std::size_t pool = alloc_.pool_bytes();
  const std::size_t used = alloc_.bytes_in_use();
  const std::size_t tree_free =
      const_cast<GpuAllocator&>(alloc_).buddy().free_bytes();
  const std::size_t accounted = used + tree_free;
  return accounted >= pool ? 0 : pool - accounted;
}

void Pool::maybe_release() {
  const std::size_t threshold =
      release_threshold_.load(std::memory_order_relaxed);
  if (threshold == kReleaseRetainAll) return;
  if (stranded_bytes() <= threshold) return;
  alloc_.trim();
  st_threshold_trims_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("pool.threshold_trim");
}

PoolStats Pool::stats() const {
  PoolStats s;
  s.alloc = alloc_.stats();
  s.stream = streams_.stats();
  s.syncs = st_syncs_.load(std::memory_order_relaxed);
  s.threshold_trims = st_threshold_trims_.load(std::memory_order_relaxed);
  s.slo_violations = st_slo_violations_.load(std::memory_order_relaxed);
  s.slo_target_ns = slo_ns_.load(std::memory_order_relaxed);
  s.bytes_in_use = alloc_.bytes_in_use();
  s.quota_bytes = alloc_.quota_bytes();
  s.release_threshold = release_threshold_.load(std::memory_order_relaxed);
  return s;
}

// --- PoolManager -----------------------------------------------------------

PoolManager& PoolManager::instance() {
  // Leaky: the default pool may back the device heap until process exit.
  static PoolManager* m = new PoolManager();
  return *m;
}

Pool* PoolManager::create(const std::string& name, const HeapConfig& cfg) {
  if (name.empty() || !cfg.valid()) return nullptr;
  std::lock_guard<std::mutex> g(mu_);
  auto [it, inserted] = pools_.try_emplace(name);
  if (!inserted) return nullptr;
  it->second = std::make_unique<Pool>(name, cfg);
  return it->second.get();
}

Pool* PoolManager::find(const std::string& name) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = pools_.find(name);
  return it != pools_.end() ? it->second.get() : nullptr;
}

bool PoolManager::destroy(const std::string& name) {
  if (name == kDefaultName) return false;
  std::unique_ptr<Pool> doomed;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = pools_.find(name);
    if (it == pools_.end()) return false;
    doomed = std::move(it->second);
    pools_.erase(it);
  }
  // Destruction (drain + allocator teardown) runs outside the manager
  // lock so a slow teardown cannot stall unrelated pool lookups.
  doomed.reset();
  return true;
}

Pool& PoolManager::default_pool(const HeapConfig& cfg) {
  Pool* pool;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto [it, inserted] = pools_.try_emplace(kDefaultName);
    if (inserted) it->second = std::make_unique<Pool>(kDefaultName, cfg);
    pool = it->second.get();
  }
  // Back the legacy device_malloc/device_free globals unless the
  // application installed its own heap first.
  install_device_heap_if_absent(&pool->allocator());
  return *pool;
}

std::size_t PoolManager::sync_stream(gpu::Stream& s) {
  std::vector<Pool*> all;
  {
    std::lock_guard<std::mutex> g(mu_);
    all.reserve(pools_.size());
    for (auto& [name, pool] : pools_) all.push_back(pool.get());
  }
  std::size_t n = 0;
  for (Pool* pool : all) n += pool->sync(s);
  return n;
}

std::size_t PoolManager::release_stream(gpu::Stream& s) {
  std::vector<Pool*> all;
  {
    std::lock_guard<std::mutex> g(mu_);
    all.reserve(pools_.size());
    for (auto& [name, pool] : pools_) all.push_back(pool.get());
  }
  std::size_t n = 0;
  for (Pool* pool : all) n += pool->release_stream(s);
  return n;
}

std::vector<std::string> PoolManager::names() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::string> out;
  out.reserve(pools_.size());
  for (const auto& [name, pool] : pools_) out.push_back(name);
  return out;
}

std::size_t PoolManager::pool_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return pools_.size();
}

}  // namespace toma::alloc
