#include "alloc/ualloc.hpp"

#include <cstdio>
#include <new>

#include "gpusim/this_thread.hpp"
#include "obs/telemetry.hpp"
#include "sync/backoff.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace toma::alloc {

namespace {

/// Coalesce with warp-mates contending for the same object when running
/// inside a kernel; degrade to a singleton group otherwise.
gpu::CoalescedGroup group_for(const void* tag) {
  if (gpu::ThreadCtx* ctx = gpu::this_thread::current()) {
    return gpu::coalesce_warp(*ctx, tag);
  }
  return gpu::CoalescedGroup::singleton(gpu::this_thread::scatter_seed());
}

}  // namespace

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

Arena::Arena(UAlloc& parent, std::uint32_t index)
    : parent_(&parent), index_(index) {
  classes_.reserve(kNumSizeClasses);
  for (std::uint32_t c = 0; c < kNumSizeClasses; ++c) {
    classes_.push_back(std::make_unique<SizeClassState>(rcu_));
    magazines_[c].set_capacity(magazine_capacity(c));
  }
}

void* Arena::allocate(std::uint32_t cls) {
  // Magazine front-end: recently freed blocks of this (arena, class) are
  // served in constant time, touching neither the semaphore nor the RCU
  // bin lists. Each lane pops for itself *before* the warp rendezvous, so
  // a coalesced group is formed only by the lanes the magazine could not
  // satisfy — the group falls through smaller, exactly as many blocks
  // short as the magazine provided.
  if (parent_->magazines_enabled()) {
    if (void* p = magazines_[cls].pop()) {
      TOMA_CTR_INC("ualloc.magazine.hit");
      parent_->st_mag_hits_.fetch_add(1, std::memory_order_relaxed);
      parent_->st_allocs_.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    TOMA_CTR_INC("ualloc.magazine.miss");
    parent_->st_mag_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  // Transparent request coalescing (paper §2.2): warp-mates concurrently
  // allocating the same class take a specialized group path. Only when
  // one bin can hold a whole warp's worth of blocks.
  constexpr std::uint32_t kWarpSize = 32;
  if (parent_->coalesce_ && parent_->class_capacity(cls) >= kWarpSize) {
    if (gpu::ThreadCtx* ctx = gpu::this_thread::current()) {
      return allocate_coalesced(cls, *ctx);
    }
  }
  return allocate_individual(cls);
}

void* Arena::allocate_individual(std::uint32_t cls) {
  SizeClassState& cs = *classes_[cls];
  const std::uint32_t cap = parent_->class_capacity(cls);

  // Stage 1: accounting. Either a claimable block is guaranteed to exist
  // (kAcquired) or we are elected to produce a fresh bin (kMustGrow).
  const auto res = cs.blocks.wait(1, cap);
  if (res == sync::BulkSemaphore::WaitResult::kAcquired) {
    TOMA_CTR_INC("ualloc.bin_hit");
    return claim_block(cls);
  }
  TOMA_CTR_INC("ualloc.bin_miss");
  TOMA_TRACE("ualloc.grow_bin", cls);
  void* p = grow_bin(cls);
  if (p == nullptr) {
    cs.blocks.signal(0, cap - 1);  // growth failed; let waiters re-decide
  }
  return p;
}

std::uint32_t Arena::allocate_batch(std::uint32_t cls, void** out,
                                    std::uint32_t want) {
  SizeClassState& cs = *classes_[cls];
  const std::uint32_t cap = parent_->class_capacity(cls);
  const std::uint32_t n = want < cap ? want : cap;
  TOMA_DASSERT(n >= 1);

  // One bulk-semaphore transaction for the whole slab — the same
  // amortization the warp-coalesced path buys for a group, here bought
  // for a FixedLane refill.
  const auto res = cs.blocks.wait(n, cap);
  if (res == sync::BulkSemaphore::WaitResult::kAcquired) {
    TOMA_CTR_INC("ualloc.bin_hit");
    claim_blocks(cls, n, out);
    return n;
  }
  TOMA_CTR_INC("ualloc.bin_miss");
  TOMA_TRACE("ualloc.grow_bin", cls);
  // Grow once for the whole slab: one fresh bin, blocks 0..n-1 pre-taken.
  BinHeader* bin = create_bin(cls, n);
  if (bin == nullptr) {
    cs.blocks.signal(0, cap - n);  // growth failed; let waiters re-decide
    return 0;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i] = parent_->block_addr(bin, i);
  }
  parent_->st_allocs_.fetch_add(n, std::memory_order_relaxed);
  return n;
}

void* Arena::allocate_coalesced(std::uint32_t cls, gpu::ThreadCtx& ctx) {
  SizeClassState& cs = *classes_[cls];
  const std::uint32_t cap = parent_->class_capacity(cls);

  const gpu::CoalescedGroup g = gpu::coalesce_warp(ctx, &cs);
  if (g.size() == 1) return allocate_individual(cls);

  // Broadcast protocol: 0 = grow failed (OOM for everyone),
  // 1 = leader acquired units for the whole group (claim individually),
  // otherwise = pointer to a fresh bin whose blocks [0, size) are ours.
  constexpr std::uint64_t kFailed = 0;
  constexpr std::uint64_t kClaim = 1;

  if (g.is_leader()) {
    TOMA_CTR_INC("ualloc.coalesced_groups");
    TOMA_CTR_ADD("ualloc.coalesced_threads", g.size());
    const auto res = cs.blocks.wait(g.size(), cap);
    if (res == sync::BulkSemaphore::WaitResult::kAcquired) {
      TOMA_CTR_INC("ualloc.bin_hit");
      gpu::warp_broadcast(ctx, g, kClaim);
      return claim_block(cls);
    }
    TOMA_CTR_INC("ualloc.bin_miss");
    TOMA_TRACE("ualloc.grow_bin", cls);
    // Grow once for the whole group: one bin, blocks 0..size-1 pre-taken.
    BinHeader* bin = create_bin(cls, g.size());
    if (bin == nullptr) {
      cs.blocks.signal(0, cap - g.size());
      gpu::warp_broadcast(ctx, g, kFailed);
      // The group claim is all-or-nothing: at the exhaustion frontier the
      // last (group size - 1) free blocks can never cover a full group,
      // so every member re-probes individually — the pool's final blocks
      // go to threads instead of stranding behind warp-sized demands.
      return allocate_individual(cls);
    }
    parent_->st_allocs_.fetch_add(1, std::memory_order_relaxed);
    gpu::warp_broadcast(ctx, g, reinterpret_cast<std::uint64_t>(bin));
    return parent_->block_addr(bin, 0);
  }

  const std::uint64_t v = gpu::warp_broadcast(ctx, g, 0);
  if (v == kFailed) return allocate_individual(cls);  // frontier fallback
  if (v == kClaim) return claim_block(cls);
  auto* bin = reinterpret_cast<BinHeader*>(v);
  parent_->st_allocs_.fetch_add(1, std::memory_order_relaxed);
  return parent_->block_addr(bin, g.rank());
}

void* Arena::claim_block(std::uint32_t cls) {
  SizeClassState& cs = *classes_[cls];
  UAlloc& ua = *parent_;
  sync::Backoff bo;
  for (;;) {
    BinHeader* exhausted = nullptr;
    void* result = nullptr;
    {
      // Stage 2: tracking. Walk the listed bins under RCU and claim a
      // block from the first bin whose free counter we can decrement.
      sync::RcuReadGuard guard(rcu_);
      for (sync::RcuListNode* n = cs.bins.reader_begin();
           !cs.bins.is_end(n) && result == nullptr;
           n = sync::RcuList::reader_next(n)) {
        BinHeader* bin = UAlloc::bin_of_node(n);
        std::uint32_t fc = bin->free_count.load(std::memory_order_acquire);
        while (fc > 0) {
          if (bin->free_count.compare_exchange_weak(
                  fc, fc - 1, std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            // The decrement reserved a bitmap bit: one must be claimable.
            std::uint32_t idx;
            util::AtomicBitmapRef bm = bin->bitmap();
            while ((idx = bm.claim_clear_bit(
                        gpu::this_thread::scatter_seed())) ==
                   util::AtomicBitmapRef::kNone) {
              gpu::this_thread::yield();
            }
            result = ua.block_addr(bin, idx);
            if (fc == 1) exhausted = bin;  // we took the last block
            break;
          }
        }
      }
    }
    if (result != nullptr) {
      // Outside the read-side critical section: a grace period may be
      // needed to unlink the bin we exhausted.
      if (exhausted != nullptr) ua.maybe_unlink_exhausted(exhausted);
      ua.st_allocs_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    ua.st_list_retries_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("ualloc.list_retry");
    bo.pause();
  }
}

void Arena::claim_blocks(std::uint32_t cls, std::uint32_t n, void** out) {
  SizeClassState& cs = *classes_[cls];
  UAlloc& ua = *parent_;
  std::uint32_t got = 0;
  sync::Backoff bo;
  while (got < n) {
    std::vector<BinHeader*> exhausted;
    const std::uint32_t got_before = got;
    {
      // Same stage-2 tracking walk as claim_block, but each successful
      // free_count CAS reserves a whole span of bits at once.
      sync::RcuReadGuard guard(rcu_);
      for (sync::RcuListNode* node = cs.bins.reader_begin();
           !cs.bins.is_end(node) && got < n;
           node = sync::RcuList::reader_next(node)) {
        BinHeader* bin = UAlloc::bin_of_node(node);
        std::uint32_t fc = bin->free_count.load(std::memory_order_acquire);
        while (fc > 0) {
          const std::uint32_t take = fc < n - got ? fc : n - got;
          if (bin->free_count.compare_exchange_weak(
                  fc, fc - take, std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            util::AtomicBitmapRef bm = bin->bitmap();
            for (std::uint32_t b = 0; b < take; ++b) {
              std::uint32_t idx;
              while ((idx = bm.claim_clear_bit(
                          gpu::this_thread::scatter_seed())) ==
                     util::AtomicBitmapRef::kNone) {
                gpu::this_thread::yield();
              }
              out[got++] = ua.block_addr(bin, idx);
            }
            if (fc == take) exhausted.push_back(bin);
            break;  // took everything this bin had (or all we needed)
          }
        }
      }
    }
    for (BinHeader* bin : exhausted) ua.maybe_unlink_exhausted(bin);
    if (got < n && got == got_before) {
      ua.st_list_retries_.fetch_add(1, std::memory_order_relaxed);
      TOMA_CTR_INC("ualloc.list_retry");
      bo.pause();
    }
  }
  ua.st_allocs_.fetch_add(n, std::memory_order_relaxed);
}

void* Arena::grow_bin(std::uint32_t cls) {
  BinHeader* bin = create_bin(cls, /*pre_claimed=*/1);
  if (bin == nullptr) return nullptr;
  parent_->st_allocs_.fetch_add(1, std::memory_order_relaxed);
  return parent_->block_addr(bin, 0);
}

BinHeader* Arena::create_bin(std::uint32_t cls, std::uint32_t pre_claimed) {
  UAlloc& ua = *parent_;
  TOMA_DASSERT(pre_claimed >= 1 && pre_claimed <= ua.class_capacity(cls));
  void* base = claim_bin_slot();
  if (base == nullptr) return nullptr;

  char* cbase = static_cast<char*>(
      reinterpret_cast<void*>(util::align_down(
          reinterpret_cast<std::uintptr_t>(base), kChunkSize)));
  auto* chunk = reinterpret_cast<ChunkHeader*>(cbase);
  TOMA_DASSERT(chunk->magic == ChunkHeader::kMagic);

  auto* bin = new (base) BinHeader{};
  bin->chunk = chunk;
  bin->size_class = static_cast<std::uint8_t>(cls);
  bin->bin_index = static_cast<std::uint8_t>(
      (static_cast<char*>(base) - cbase) / kBinSize);
  bin->capacity = static_cast<std::uint16_t>(ua.class_capacity(cls));
  util::AtomicBitmapRef bm = bin->bitmap();
  bm.reset();
  for (std::uint32_t b = 0; b < pre_claimed; ++b) {
    const bool took = bm.try_set(b);  // creators' blocks
    TOMA_DASSERT(took);
    (void)took;
  }
  bin->free_count.store(bin->capacity - pre_claimed,
                        std::memory_order_relaxed);
  bin->parked.store(0, std::memory_order_relaxed);
  // kRelisting marks "insertion in progress" so a racing free parks its
  // unit and leaves the listing to us.
  bin->state.store(BinState::kRelisting, std::memory_order_release);

  SizeClassState& cs = *classes_[cls];
  cs.bins.writer_lock();
  cs.bins.push_front_locked(&bin->list_node);
  cs.bins.writer_unlock();
  cs.listed.fetch_add(1, std::memory_order_acq_rel);
  bin->cold_lock.lock();
  bin->state.store(BinState::kListed, std::memory_order_release);
  bin->cold_lock.unlock();

  cs.blocks.signal(bin->capacity - pre_claimed,
                   bin->capacity - pre_claimed);
  ua.st_bins_created_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("ualloc.bin_create");
  ua.drain_parked(bin);  // pick up frees that raced the insertion
  return bin;
}

void* Arena::claim_bin_slot() {
  UAlloc& ua = *parent_;
  const auto res = bin_slots_.wait(1, kDataBins);

  if (res == sync::BulkSemaphore::WaitResult::kAcquired) {
    sync::Backoff bo;
    for (;;) {
      // The unit guarantees a clear bin bit exists in some listed chunk;
      // chunks are only unlisted by retirement, which consumed its slots
      // first. Traverse under the collective mutex (paper §4.2.2).
      gpu::CoalescedGroup g = group_for(&chunk_mu_);
      void* found = nullptr;
      {
        sync::CollectiveLockGuard lk(chunk_mu_, g);
        for (ChunkHeader& ch : chunks_) {
          const std::uint32_t idx = ch.bin_bitmap().claim_clear_bit(
              gpu::this_thread::scatter_seed());
          if (idx != util::AtomicBitmapRef::kNone) {
            found = reinterpret_cast<char*>(&ch) + idx * kBinSize;
            break;
          }
        }
      }
      if (found != nullptr) return found;
      bo.pause();
    }
  }

  // kMustGrow: carve a fresh chunk out of TBuddy. Warp-mates growing at
  // the same time coalesce and enter the chunk-list critical section
  // together, each publishing its own chunk.
  void* mem = ua.buddy_->allocate(kChunkOrder);
  if (mem == nullptr) {
    bin_slots_.signal(0, kDataBins - 1);
    return nullptr;
  }
  TOMA_DASSERT(util::is_aligned(mem, kChunkSize));
  auto* chunk = new (mem) ChunkHeader{};
  chunk->arena = this;
  chunk->magic = ChunkHeader::kMagic;
  util::AtomicBitmapRef bm = chunk->bin_bitmap();
  bm.reset();
  for (std::uint32_t b = 0; b < kHeaderBins; ++b) {
    const bool ok = bm.try_set(b);  // header bins are never allocatable
    TOMA_DASSERT(ok);
    (void)ok;
  }
  const bool ok2 = bm.try_set(kHeaderBins);  // our own bin slot (bin 2)
  TOMA_DASSERT(ok2);
  (void)ok2;

  {
    gpu::CoalescedGroup g = group_for(&chunk_mu_);
    sync::CollectiveLockGuard lk(chunk_mu_, g);
    // Intra-group serialization for the actual pointer splice: group
    // members hold the collective mutex together and take turns here.
    list_splice_mu_.lock();
    chunks_.push_back(chunk);
    list_splice_mu_.unlock();
  }
  bin_slots_.signal(kDataBins - 1, kDataBins - 1);
  ua.st_chunks_created_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("ualloc.chunk_fetch");
  TOMA_TRACE("ualloc.chunk_fetch", ua.st_chunks_created_.load(
                                       std::memory_order_relaxed));
  return static_cast<char*>(mem) + kHeaderBins * kBinSize;
}

// ---------------------------------------------------------------------------
// UAlloc: construction and the hot entry points
// ---------------------------------------------------------------------------

UAlloc::UAlloc(TBuddy& buddy, std::uint32_t num_arenas, bool use_tails)
    : buddy_(&buddy), use_tails_(use_tails) {
  TOMA_ASSERT(num_arenas > 0);
  TOMA_ASSERT_MSG(buddy.page_size() == kPageSize,
                  "UAlloc geometry assumes 4 KB pages");
  arenas_.reserve(num_arenas);
  for (std::uint32_t i = 0; i < num_arenas; ++i) {
    arenas_.push_back(std::make_unique<Arena>(*this, i));
  }
}

UAlloc::~UAlloc() = default;

void* UAlloc::allocate(std::size_t size) {
  const std::uint32_t a = gpu::this_thread::sm_id_or_hash(
      static_cast<std::uint32_t>(arenas_.size()));
  return allocate_from(a, size);
}

void* UAlloc::allocate_from(std::uint32_t home_arena, std::size_t size) {
  TOMA_DASSERT(util::is_pow2(size));
  TOMA_DASSERT(size >= kMinAlloc && size <= kMaxUAllocSize);
  TOMA_DASSERT(home_arena < arenas_.size());
  const std::uint32_t cls = size_class_of(size);
  void* p = arenas_[home_arena]->allocate(cls);
  if (p != nullptr) return p;
  // The home arena is out: its chunk lists are drained and TBuddy refused
  // it a new chunk. Chunks are arena-private, so pool memory is not
  // fungible across SMs — another arena may still hold half-empty chunks
  // (or win a freshly coalesced one). Sweep the siblings before reporting
  // OOM; without this, a small pool degenerates to "whichever arena
  // grabbed the last chunk serves its SM, every other SM fails 100%".
  for (std::uint32_t off = 1; off < arenas_.size(); ++off) {
    const std::uint32_t a =
        (home_arena + off) % static_cast<std::uint32_t>(arenas_.size());
    p = arenas_[a]->allocate(cls);
    if (p != nullptr) {
      st_arena_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      TOMA_CTR_INC("ualloc.arena_fallback");
      return p;
    }
  }
  return nullptr;
}

std::uint32_t UAlloc::allocate_batch(std::uint32_t home_arena,
                                     std::uint32_t cls, void** out,
                                     std::uint32_t want) {
  TOMA_DASSERT(cls < kNumSizeClasses);
  TOMA_DASSERT(home_arena < arenas_.size());
  std::uint32_t got = arenas_[home_arena]->allocate_batch(cls, out, want);
  if (got != 0) return got;
  // Same sibling sweep as allocate_from: a batch is refused only when the
  // arena can neither claim nor grow, and another arena may still hold
  // half-empty chunks.
  for (std::uint32_t off = 1; off < arenas_.size(); ++off) {
    const std::uint32_t a =
        (home_arena + off) % static_cast<std::uint32_t>(arenas_.size());
    got = arenas_[a]->allocate_batch(cls, out, want);
    if (got != 0) {
      st_arena_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      TOMA_CTR_INC("ualloc.arena_fallback");
      return got;
    }
  }
  return 0;
}

void UAlloc::free(void* p) {
  std::uint32_t idx;
  BinHeader* bin = decode(p, &idx);
  free_decoded(bin, idx, p);
}

void UAlloc::free_decoded(BinHeader* bin, std::uint32_t idx, void* p) {
  st_frees_.fetch_add(1, std::memory_order_relaxed);
  if (magazines_enabled()) {
    // Cache into the *freeing* SM's arena (cheapest locality for the next
    // malloc here), whatever arena owns the bin — the block carries its
    // identity in the chunk/bin headers, so a later pop needs no routing.
    // The bitmap bit stays claimed while cached: to the accounting, the
    // block is still allocated.
    const std::uint32_t a = gpu::this_thread::sm_id_or_hash(
        static_cast<std::uint32_t>(arenas_.size()));
    if (arenas_[a]->magazines_[bin->size_class].push(p)) return;
    TOMA_CTR_INC("ualloc.magazine.spill");
    st_mag_spills_.fetch_add(1, std::memory_order_relaxed);
  }
  free_slow(bin, idx);
}

void UAlloc::free_slow(BinHeader* bin, std::uint32_t idx) {
  TOMA_ASSERT_FMT(bin->bitmap().try_clear(idx),
                  "UAlloc double free: block %u of bin %p (class %u, %zu B) "
                  "in chunk %p of arena %u was already free",
                  idx, static_cast<void*>(bin), bin->size_class,
                  size_of_class(bin->size_class),
                  static_cast<void*>(bin->chunk), bin->chunk->arena->index());
  publish_free_block(bin);
}

std::size_t UAlloc::usable_size(void* p) const {
  std::uint32_t idx;
  BinHeader* bin = decode(p, &idx);
  return size_of_class(bin->size_class);
}

// ---------------------------------------------------------------------------
// Bin lifecycle
// ---------------------------------------------------------------------------

void UAlloc::publish_free_block(BinHeader* bin) {
  bin->parked.fetch_add(1, std::memory_order_acq_rel);
  drain_parked(bin);
}

void UAlloc::drain_parked(BinHeader* bin) {
  SizeClassState& cs = class_state(bin);
  for (;;) {
    bin->cold_lock.lock();
    const BinState st = bin->state.load(std::memory_order_acquire);

    if (st == BinState::kListed) {
      const std::uint32_t k =
          bin->parked.exchange(0, std::memory_order_acq_rel);
      if (k == 0) {
        bin->cold_lock.unlock();
        return;
      }
      const std::uint32_t fc =
          bin->free_count.fetch_add(k, std::memory_order_acq_rel) + k;
      if (fc == bin->capacity && try_retire_bin(bin, k)) {
        // try_retire_bin released the cold lock and consumed the blocks;
        // the k parked units must not be signaled.
        return;
      }
      bin->cold_lock.unlock();
      cs.blocks.signal(k, 0);
      return;
    }

    if (st == BinState::kUnlisted) {
      if (bin->parked.load(std::memory_order_acquire) == 0) {
        bin->cold_lock.unlock();
        return;
      }
      bin->state.store(BinState::kRelisting, std::memory_order_release);
      bin->cold_lock.unlock();
      cs.bins.writer_lock();
      cs.bins.push_front_locked(&bin->list_node);
      cs.bins.writer_unlock();
      cs.listed.fetch_add(1, std::memory_order_acq_rel);
      bin->cold_lock.lock();
      bin->state.store(BinState::kListed, std::memory_order_release);
      bin->cold_lock.unlock();
      st_bin_relists_.fetch_add(1, std::memory_order_relaxed);
      TOMA_CTR_INC("ualloc.bin_relist");
      continue;  // now drain the parked units into the semaphore
    }

    // kDraining / kRelisting / kRetiring: the transition owner calls
    // drain_parked again once the state settles, and will see our parked
    // units (parked before this lock, drained under a later one).
    bin->cold_lock.unlock();
    return;
  }
}

void UAlloc::maybe_unlink_exhausted(BinHeader* bin) {
  bin->cold_lock.lock();
  if (bin->state.load(std::memory_order_acquire) != BinState::kListed ||
      bin->free_count.load(std::memory_order_acquire) != 0) {
    bin->cold_lock.unlock();
    return;
  }
  // With fc == 0 under the cold lock the counter is stable: claims are
  // gated by fc > 0 and drains hold this lock.
  bin->state.store(BinState::kDraining, std::memory_order_release);
  bin->cold_lock.unlock();

  SizeClassState& cs = class_state(bin);
  cs.bins.writer_lock();
  cs.bins.unlink_locked(&bin->list_node);
  cs.bins.writer_unlock();
  cs.listed.fetch_sub(1, std::memory_order_acq_rel);
  st_bin_unlinks_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("ualloc.bin_unlink");

  // Deferred completion: the bin may be re-linked only after every reader
  // that might still be traversing it has exited. Delegated to an
  // already-waiting barrier whenever possible (paper §4.2.1).
  bin->rcu_cb.fn = &UAlloc::drain_grace_cb;
  class_arena(bin).rcu().barrier_conditional(&bin->rcu_cb);
}

bool UAlloc::try_retire_bin(BinHeader* bin, std::uint32_t unsignaled) {
  // Preconditions: cold lock held, state == kListed, free_count just
  // reached capacity (all blocks free, none outstanding => no concurrent
  // frees are possible; only claims race with us, gated by the CAS).
  SizeClassState& cs = class_state(bin);
  // Hysteresis: keep the last listed bin of a class as a cache even when
  // fully free. Alloc/free oscillation would otherwise retire and regrow
  // a bin (one RCU grace period + one chunk-bitmap round-trip) on every
  // cycle; real allocators retain empty containers for exactly this
  // reason. trim() overrides the policy for explicit scavenging. Checked
  // before the gate CAS: an early return must leave free_count intact.
  if (!bin->retire_even_if_last &&
      cs.listed.load(std::memory_order_acquire) < 2) {
    return false;
  }
  std::uint32_t expect = bin->capacity;
  if (!bin->free_count.compare_exchange_strong(expect, 0,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed)) {
    return false;  // a claim slipped in; the bin is live again
  }
  const std::uint32_t need = bin->capacity - unsignaled;
  if (need > 0 && !cs.blocks.try_wait(need)) {
    // Units are out with active claimants; retiring now would starve
    // them. Restore visibility and carry on.
    bin->free_count.store(bin->capacity, std::memory_order_release);
    return false;
  }
  bin->state.store(BinState::kRetiring, std::memory_order_release);
  bin->cold_lock.unlock();

  cs.bins.writer_lock();
  cs.bins.unlink_locked(&bin->list_node);
  cs.bins.writer_unlock();
  cs.listed.fetch_sub(1, std::memory_order_acq_rel);

  bin->rcu_cb.fn = &UAlloc::retire_grace_cb;
  class_arena(bin).rcu().barrier_conditional(&bin->rcu_cb);
  return true;
}

void UAlloc::drain_grace_cb(sync::RcuCallback* cb) {
  BinHeader* bin = bin_of_cb(cb);
  bin->chunk->arena->parent().finish_drain(bin);
}

void UAlloc::retire_grace_cb(sync::RcuCallback* cb) {
  BinHeader* bin = bin_of_cb(cb);
  bin->chunk->arena->parent().finish_retire(bin);
}

void UAlloc::finish_drain(BinHeader* bin) {
  bin->cold_lock.lock();
  TOMA_DASSERT(bin->state.load(std::memory_order_relaxed) ==
               BinState::kDraining);
  bin->state.store(BinState::kUnlisted, std::memory_order_release);
  bin->cold_lock.unlock();
  // Frees that parked while we drained get published (and relist us) now.
  drain_parked(bin);
}

void UAlloc::finish_retire(BinHeader* bin) {
  TOMA_DASSERT(bin->state.load(std::memory_order_relaxed) ==
               BinState::kRetiring);
  TOMA_DASSERT(bin->parked.load(std::memory_order_relaxed) == 0);
  st_bins_retired_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("ualloc.bin_retire");
  release_bin_slot(bin);
}

void UAlloc::release_bin_slot(BinHeader* bin) {
  ChunkHeader* chunk = bin->chunk;
  Arena* arena = chunk->arena;
  const std::uint32_t slot = bin->bin_index;
  bin->~BinHeader();  // the header area is dead until the slot is reused
  TOMA_ASSERT_FMT(chunk->bin_bitmap().try_clear(slot),
                  "UAlloc double release of bin slot %u in chunk %p of "
                  "arena %u",
                  slot, static_cast<void*>(chunk), arena->index());
  arena->bin_slots_.signal(1, 0);
  maybe_retire_chunk(chunk);
}

void UAlloc::maybe_retire_chunk(ChunkHeader* chunk) {
  // Gate: atomically flip "only header bins used" -> "all used" so no
  // claimer can take a slot while we decide.
  constexpr std::uint64_t kEmptyPattern = 0x3;  // bins 0,1
  std::atomic_ref<std::uint64_t> word(chunk->bin_bitmap_word);
  std::uint64_t expect = kEmptyPattern;
  if (!word.compare_exchange_strong(expect, ~std::uint64_t{0},
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
    return;  // chunk still hosts bins
  }
  Arena* arena = chunk->arena;
  if (!arena->bin_slots_.try_wait(kDataBins)) {
    // Slots are spoken for; un-gate and keep the chunk.
    word.store(kEmptyPattern, std::memory_order_release);
    return;
  }
  {
    gpu::CoalescedGroup g = group_for(&arena->chunk_mu_);
    sync::CollectiveLockGuard lk(arena->chunk_mu_, g);
    arena->list_splice_mu_.lock();
    arena->chunks_.erase(chunk);
    arena->list_splice_mu_.unlock();
  }
  st_chunks_retired_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("ualloc.chunk_retire");
  TOMA_TRACE("ualloc.chunk_retire",
             st_chunks_retired_.load(std::memory_order_relaxed));
  chunk->~ChunkHeader();
  buddy_->free(chunk);
}

std::size_t UAlloc::release_cached() {
  std::size_t flushed = 0;
  for (auto& arena : arenas_) {
    for (std::uint32_t c = 0; c < kNumSizeClasses; ++c) {
      while (void* p = arena->magazines_[c].pop()) {
        std::uint32_t idx;
        BinHeader* bin = decode(p, &idx);
        free_slow(bin, idx);
        ++flushed;
      }
    }
  }
  if (flushed > 0) {
    TOMA_CTR_ADD("ualloc.magazine.flush", flushed);
    st_mag_flushes_.fetch_add(flushed, std::memory_order_relaxed);
  }
  return flushed;
}

std::size_t UAlloc::trim() {
  // Cached blocks pin their bins (bitmap bits stay claimed), so flush the
  // magazines before scavenging — otherwise a fully-idle chunk whose
  // blocks sit in magazines would never retire.
  release_cached();
  const std::uint64_t chunks_before =
      st_chunks_retired_.load(std::memory_order_relaxed);
  for (auto& arena : arenas_) {
    // Flush any deferred reclamations still queued in the domain.
    arena->rcu_.synchronize();
    for (std::uint32_t c = 0; c < kNumSizeClasses; ++c) {
      SizeClassState& cs = *arena->classes_[c];
      for (;;) {
        // Pick one fully-free listed bin per pass; retiring unlinks it, so
        // restart the traversal each time.
        BinHeader* victim = nullptr;
        {
          sync::RcuReadGuard guard(arena->rcu_);
          for (sync::RcuListNode* n = cs.bins.reader_begin();
               !cs.bins.is_end(n); n = sync::RcuList::reader_next(n)) {
            BinHeader* bin = bin_of_node(n);
            if (bin->free_count.load(std::memory_order_acquire) ==
                bin->capacity) {
              victim = bin;
              break;
            }
          }
        }
        if (victim == nullptr) break;
        victim->cold_lock.lock();
        bool retired = false;
        if (victim->state.load(std::memory_order_acquire) ==
            BinState::kListed) {
          victim->retire_even_if_last = true;
          retired = try_retire_bin(victim, /*unsignaled=*/0);
          if (!retired) victim->retire_even_if_last = false;
        }
        if (!retired) {
          victim->cold_lock.unlock();
          break;  // contended or no longer free; try again another time
        }
      }
    }
    // Chunk scan: snapshot candidates under the list mutex, then attempt
    // retirement outside it (maybe_retire_chunk re-takes the mutex).
    std::vector<ChunkHeader*> candidates;
    {
      arena->chunk_mu_.lock();
      arena->list_splice_mu_.lock();
      for (ChunkHeader& ch : arena->chunks_) {
        std::atomic_ref<std::uint64_t> word(ch.bin_bitmap_word);
        if (word.load(std::memory_order_acquire) == 0x3) {
          candidates.push_back(&ch);
        }
      }
      arena->list_splice_mu_.unlock();
      arena->chunk_mu_.unlock();
    }
    for (ChunkHeader* ch : candidates) maybe_retire_chunk(ch);
  }
  return static_cast<std::size_t>(
      st_chunks_retired_.load(std::memory_order_relaxed) - chunks_before);
}

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

SizeClassState& UAlloc::class_state(BinHeader* bin) {
  return *bin->chunk->arena->classes_[bin->size_class];
}

Arena& UAlloc::class_arena(BinHeader* bin) { return *bin->chunk->arena; }

BinHeader* UAlloc::bin_of_node(sync::RcuListNode* n) {
  return reinterpret_cast<BinHeader*>(
      reinterpret_cast<char*>(n) - offsetof(BinHeader, list_node));
}

BinHeader* UAlloc::bin_of_cb(sync::RcuCallback* cb) {
  return reinterpret_cast<BinHeader*>(
      reinterpret_cast<char*>(cb) - offsetof(BinHeader, rcu_cb));
}

char* UAlloc::chunk_base(const BinHeader* bin) const {
  return reinterpret_cast<char*>(bin->chunk);
}

void* UAlloc::block_addr(BinHeader* bin, std::uint32_t idx) const {
  const std::size_t s = size_of_class(bin->size_class);
  const std::size_t logical = static_cast<std::size_t>(idx) * s;
  TOMA_DASSERT(logical + s <= (s <= kTailSize ? kBinLogicalSize
                                              : kBinDataSize));
  if (logical < kBinDataSize) {
    return reinterpret_cast<char*>(bin) + kBinHeaderSize + logical;
  }
  TOMA_CTR_INC("ualloc.tail_use");
  // The block lives in the bin's tail, inside header bin 0 or 1.
  char* cbase = chunk_base(bin);
  const std::uint32_t bi = bin->bin_index;
  char* tail = bi <= 32
                   ? cbase + kBinHeaderSize + (bi - 2) * kTailSize
                   : cbase + kBinSize + kBinHeaderSize + (bi - 33) * kTailSize;
  return tail + (logical - kBinDataSize);
}

BinHeader* UAlloc::decode(void* p, std::uint32_t* block_idx) const {
  TOMA_ASSERT_MSG(buddy_->contains(p), "free of a pointer outside the pool");
  char* cbase = reinterpret_cast<char*>(
      util::align_down(reinterpret_cast<std::uintptr_t>(p), kChunkSize));
  auto* chunk = reinterpret_cast<ChunkHeader*>(cbase);
  TOMA_ASSERT_MSG(chunk->magic == ChunkHeader::kMagic,
                  "free target is not inside a UAlloc chunk");

  const std::size_t off = static_cast<char*>(p) - cbase;
  std::size_t bi = off / kBinSize;
  const std::size_t inner = off % kBinSize;
  TOMA_ASSERT_MSG(inner >= kBinHeaderSize, "free points into a bin header");
  std::size_t logical;
  if (bi >= kHeaderBins) {
    logical = inner - kBinHeaderSize;
  } else {
    const std::size_t slot = (inner - kBinHeaderSize) / kTailSize;
    const std::size_t delta = (inner - kBinHeaderSize) % kTailSize;
    bi = (bi == 0) ? kHeaderBins + slot : kHeaderBins + 31 + slot;
    logical = kBinDataSize + delta;
  }
  auto* bin = reinterpret_cast<BinHeader*>(cbase + bi * kBinSize);
  const std::size_t s = size_of_class(bin->size_class);
  TOMA_ASSERT_MSG(logical % s == 0, "free of a misaligned interior pointer");
  *block_idx = static_cast<std::uint32_t>(logical / s);
  return bin;
}

// ---------------------------------------------------------------------------
// Statistics and consistency
// ---------------------------------------------------------------------------

UAllocStats UAlloc::stats() const {
  UAllocStats s;
  s.allocs = st_allocs_.load(std::memory_order_relaxed);
  s.frees = st_frees_.load(std::memory_order_relaxed);
  s.bins_created = st_bins_created_.load(std::memory_order_relaxed);
  s.bins_retired = st_bins_retired_.load(std::memory_order_relaxed);
  s.chunks_created = st_chunks_created_.load(std::memory_order_relaxed);
  s.chunks_retired = st_chunks_retired_.load(std::memory_order_relaxed);
  s.bin_unlinks = st_bin_unlinks_.load(std::memory_order_relaxed);
  s.bin_relists = st_bin_relists_.load(std::memory_order_relaxed);
  s.list_retries = st_list_retries_.load(std::memory_order_relaxed);
  s.magazine_hits = st_mag_hits_.load(std::memory_order_relaxed);
  s.magazine_misses = st_mag_misses_.load(std::memory_order_relaxed);
  s.magazine_spills = st_mag_spills_.load(std::memory_order_relaxed);
  s.magazine_flushes = st_mag_flushes_.load(std::memory_order_relaxed);
  s.arena_fallbacks = st_arena_fallbacks_.load(std::memory_order_relaxed);
  for (const auto& arena : arenas_) {
    for (std::uint32_t c = 0; c < kNumSizeClasses; ++c) {
      s.magazine_cached += arena->magazines_[c].count();
    }
  }
  return s;
}

bool UAlloc::check_consistency() const {
  bool ok = true;
  for (const auto& arena : arenas_) {
    for (std::uint32_t c = 0; c < kNumSizeClasses; ++c) {
      SizeClassState& cs = *arena->classes_[c];
      const auto snap = cs.blocks.snapshot();
      if (snap.expected != 0 || snap.reserved != 0) {
        std::fprintf(stderr,
                     "UAlloc: arena %u class %u semaphore not quiescent\n",
                     arena->index_, c);
        ok = false;
      }
      // Sum claimable blocks over listed bins and compare with C.
      std::uint64_t claimable = 0;
      for (sync::RcuListNode* n = cs.bins.reader_begin(); !cs.bins.is_end(n);
           n = sync::RcuList::reader_next(n)) {
        BinHeader* bin = bin_of_node(n);
        if (bin->state.load() != BinState::kListed) {
          std::fprintf(stderr, "UAlloc: linked bin not in kListed state\n");
          ok = false;
        }
        if (bin->parked.load() != 0) {
          std::fprintf(stderr, "UAlloc: quiescent bin has parked units\n");
          ok = false;
        }
        const std::uint32_t fc = bin->free_count.load();
        const std::uint32_t used = bin->bitmap().count();
        if (used + fc != bin->capacity) {
          std::fprintf(stderr,
                       "UAlloc: bin bitmap (%u used) disagrees with free "
                       "count %u (capacity %u)\n",
                       used, fc, bin->capacity);
          ok = false;
        }
        claimable += fc;
      }
      if (snap.value != claimable) {
        std::fprintf(stderr,
                     "UAlloc: arena %u class %u semaphore C=%llu but %llu "
                     "claimable blocks\n",
                     arena->index_, c,
                     static_cast<unsigned long long>(snap.value),
                     static_cast<unsigned long long>(claimable));
        ok = false;
      }
    }
    // Magazine integrity: every cached block must still hold its claimed
    // bitmap bit (otherwise the block is simultaneously cached and
    // claimable — a double-allocation waiting to happen), belong to the
    // class it is filed under, and the chain length must match the bound
    // accounting.
    for (std::uint32_t c = 0; c < kNumSizeClasses; ++c) {
      const Magazine& mag = arena->magazines_[c];
      const std::vector<void*> cached = mag.snapshot();
      if (cached.size() != mag.count() || mag.count() > mag.capacity()) {
        std::fprintf(stderr,
                     "UAlloc: arena %u class %u magazine chain %zu vs "
                     "count %u (cap %u)\n",
                     arena->index_, c, cached.size(), mag.count(),
                     mag.capacity());
        ok = false;
      }
      for (void* p : cached) {
        std::uint32_t idx;
        BinHeader* bin = decode(p, &idx);
        if (bin->size_class != c) {
          std::fprintf(stderr,
                       "UAlloc: magazine %u/%u caches block of class %u\n",
                       arena->index_, c, bin->size_class);
          ok = false;
        }
        if (!bin->bitmap().test(idx)) {
          std::fprintf(stderr,
                       "UAlloc: cached block %p lost its claimed bit\n", p);
          ok = false;
        }
      }
    }
    const auto bsnap = arena->bin_slots_.snapshot();
    if (bsnap.expected != 0 || bsnap.reserved != 0) {
      std::fprintf(stderr, "UAlloc: arena %u bin-slot semaphore busy\n",
                   arena->index_);
      ok = false;
    }
    std::uint64_t free_slots = 0;
    for (ChunkHeader& ch : arena->chunks_) {
      free_slots += kBinsPerChunk - ch.bin_bitmap().count();
    }
    if (bsnap.value != free_slots) {
      std::fprintf(stderr,
                   "UAlloc: arena %u bin-slot semaphore C=%llu but %llu "
                   "free slots\n",
                   arena->index_,
                   static_cast<unsigned long long>(bsnap.value),
                   static_cast<unsigned long long>(free_slots));
      ok = false;
    }
  }
  return ok;
}

}  // namespace toma::alloc
