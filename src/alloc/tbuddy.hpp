// TBuddy: the coarse-grained tree buddy allocator (paper §4.1).
//
// Free memory is tracked at page granularity by a *static binary tree*:
// the node of height h at position i covers pages [i*2^h, (i+1)*2^h) and is
// in one of three states:
//
//   Available — the block can be allocated
//   Busy      — neither the block nor anything in its subtree can be
//               allocated (initial state everywhere except the root;
//               also the state of a block handed to a caller)
//   Partial   — the block itself cannot be allocated but its subtree
//               contains at least one available block
//
// Tree invariants (paper):
//   (1) two sibling nodes are never both Available (they merge instead);
//   (2) every node in an Available node's subtree is Busy.
//
// Accounting uses two-stage resource management: one bulk semaphore per
// order (batch size 2 — splitting one block of order n+1 yields two of
// order n) counts available blocks; the tree is only the tracking stage.
// wait() == kAcquired guarantees an Available node of that order exists
// and is reserved for unit holders, so the (scattered) tree descent
// retries until it claims one. wait() == kMustGrow makes the caller
// recursively allocate order n+1 and split it.
//
// Every state transition locks the node *and its parent* (ancestor-first,
// so no deadlocks); state recomputation propagates upward hand-over-hand,
// re-locking (grandparent, parent) after releasing (parent, node).
//
// Free operations always attempt to merge with the buddy; only a failed
// try_wait on the order's semaphore proves the merge cannot proceed.
// Merges cascade upward, re-forming maximal blocks.
//
// Two fast paths sit in front of that machinery (not in the paper; see
// docs/INTERNALS.md §4c):
//
//   * A bounded per-order *quicklist* (lock-free Treiber stack) of
//     recently freed blocks. A quicklisted block keeps its node *Busy*
//     and its semaphore unit consumed — to the accounting it is still
//     allocated — so allocate() can pop it in O(1) without touching the
//     semaphore or the tree, and free() can push it without cascading
//     merges (deferred coalescing). Coalescing runs with hysteresis: a
//     push over the high-water mark flushes the list to its low-water
//     mark through the real free path, trim() flushes everything, and a
//     failed grow (pool pressure) flushes everything and retries.
//   * An *optimistic claim*: the scattered descent first tries a single
//     CAS Available->Busy on the candidate node (the lock bit makes the
//     CAS fail whenever a locked protocol holds the node), falling back
//     to the (parent, node) lock protocol on contention. Parent-state
//     recomputation still runs through the ordinary locked fixup.
//
// TBuddy results are always aligned to the block size (hence at least
// page-aligned) — the property the top-level allocator uses to route
// free() calls without a shared ownership table.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "alloc/config.hpp"
#include "sync/bulk_semaphore.hpp"
#include "sync/treiber_stack.hpp"
#include "util/assert.hpp"

namespace toma::alloc {

/// Runtime statistics (monotonic counters; approximate under concurrency).
struct TBuddyStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t failed_allocs = 0;
  std::uint64_t descent_retries = 0;
  std::uint64_t quicklist_hits = 0;     // allocations served by a quicklist
  std::uint64_t quicklist_misses = 0;   // pops on an empty quicklist
  std::uint64_t quicklist_spills = 0;   // frees over the high-water mark
  std::uint64_t quicklist_flushes = 0;  // cached blocks pushed through the
                                        // real free path (spill/trim/pressure)
  std::uint64_t quicklist_cached = 0;   // blocks cached right now
  std::uint64_t cas_claims = 0;         // descent claims won by the fast CAS
  std::uint64_t lock_claims = 0;        // ...that took the (parent,node) locks
};

class TBuddy {
 public:
  /// Manage `pool_bytes` (a power of two multiple of `page_size`) starting
  /// at `pool` (aligned to pool_bytes). Metadata lives on the host heap.
  TBuddy(void* pool, std::size_t pool_bytes, std::size_t page_size = 4096);

  TBuddy(const TBuddy&) = delete;
  TBuddy& operator=(const TBuddy&) = delete;

  /// Allocate a block of `page_size << order` bytes; nullptr when the pool
  /// cannot supply one (true exhaustion at that order, not false resource
  /// starvation — see paper §3.1).
  void* allocate(std::uint32_t order);

  /// Convenience: allocate the smallest order covering `bytes`.
  void* allocate_bytes(std::size_t bytes);

  /// Free a block previously returned by allocate. The order is recovered
  /// from the per-page side table (and double frees are detected).
  void free(void* p);

  /// Byte size of the live allocation starting at `p` (asserts that `p`
  /// is a live TBuddy allocation).
  std::size_t allocation_size(const void* p) const;

  /// Runtime knob for the per-order quicklist front-end (default is the
  /// compile-time TOMA_TBUDDY_QUICKLIST). Turning it off flushes every
  /// cached block through the real free path, so the paper-faithful
  /// configuration is reachable at any quiescent point.
  void set_quicklist(bool on) {
    quicklist_on_.store(on, std::memory_order_relaxed);
    if (!on) flush_quicklists();
  }
  bool quicklist_enabled() const {
    return quicklist_on_.load(std::memory_order_relaxed);
  }

  /// Runtime knob for the optimistic single-CAS descent claim (default is
  /// the compile-time TOMA_TBUDDY_CAS_CLAIM).
  void set_cas_claim(bool on) {
    cas_claim_on_.store(on, std::memory_order_relaxed);
  }
  bool cas_claim_enabled() const {
    return cas_claim_on_.load(std::memory_order_relaxed);
  }

  /// Flush every quicklist: cached blocks re-enter the tree through the
  /// merging free path, re-forming maximal blocks. Returns blocks flushed.
  /// Safe to call concurrently with allocation. GpuAllocator::trim() calls
  /// this after UAlloc's scavenge so returned chunks coalesce too.
  std::size_t trim() { return flush_quicklists(); }

  /// Blocks currently cached in the quicklist of `order` (tests, stats).
  std::uint32_t quicklist_count(std::uint32_t order) const {
    TOMA_ASSERT(order <= max_order_);
    return quicklists_[order].count();
  }

  /// Ablation knob (bench/abl_tbuddy_scatter): disable the randomized
  /// descent so every thread probes the tree leftmost-first, reproducing
  /// the collision-prone traversal the paper's scattering avoids.
  void set_scatter(bool on) { scatter_ = on; }

  /// Simulation knob: scheduling points per tree level during the
  /// descent, modeling the dependent global-memory reads of node states
  /// on real hardware. 0 (default) keeps descents atomic under the
  /// cooperative scheduler, which hides claim collisions entirely; the
  /// scatter ablation sets 1 so concurrent descents actually interleave.
  void set_descent_latency(std::uint32_t yields_per_level) {
    descent_latency_ = yields_per_level;
  }

  std::uint32_t max_order() const { return max_order_; }
  std::size_t page_size() const { return page_size_; }
  std::size_t pool_bytes() const { return pool_bytes_; }
  void* pool_base() const { return pool_; }

  /// Does `p` lie inside the managed pool?
  bool contains(const void* p) const {
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    const auto b = reinterpret_cast<std::uintptr_t>(pool_);
    return a >= b && a < b + pool_bytes_;
  }

  /// Available blocks currently accounted at `order` (semaphore C value).
  std::uint64_t available(std::uint32_t order) const;

  /// Total free bytes accounted across all orders.
  std::size_t free_bytes() const;

  /// Size of the largest block allocatable right now (0 if none) — the
  /// external-fragmentation probe used by the ablation benchmarks.
  std::size_t largest_free_block() const;

  TBuddyStats stats() const;

  /// Test hook: walk the whole tree and verify both paper invariants plus
  /// semaphore/tree agreement. Must be called on a quiescent allocator.
  /// Returns true when consistent (details go to stderr otherwise).
  bool check_consistency() const;

 private:
  enum State : std::uint8_t { kBusy = 0, kAvailable = 1, kPartial = 2 };
  static constexpr std::uint8_t kStateMask = 0x3;
  static constexpr std::uint8_t kLockBit = 0x4;

  // --- node helpers (tree is 1-indexed; parent(i) = i/2) -----------------
  std::uint32_t node_count() const { return 2u << max_order_; }
  static std::uint32_t parent_of(std::uint32_t i) { return i >> 1; }
  static std::uint32_t sibling_of(std::uint32_t i) { return i ^ 1; }
  static std::uint32_t left_child(std::uint32_t i) { return i << 1; }
  std::uint32_t height_of(std::uint32_t i) const;
  /// First node index at height h.
  std::uint32_t level_base(std::uint32_t h) const {
    return 1u << (max_order_ - h);
  }
  void* node_addr(std::uint32_t i) const;
  std::uint32_t node_at(const void* p, std::uint32_t order) const;

  State state_of(std::uint32_t i) const;
  void lock_node(std::uint32_t i);
  void unlock_node(std::uint32_t i);
  void set_state_locked(std::uint32_t i, State s);

  /// Derived state of an interior node from its (lock-frozen) children.
  State derive(std::uint32_t i) const;

  /// Recompute ancestor states starting at `i`, hand-over-hand upward,
  /// stopping as soon as a recomputation is a no-op.
  void fixup_from(std::uint32_t i);

  /// Claim an Available node (-> Busy) under (parent, node) locks.
  bool try_claim(std::uint32_t i);
  /// Descent claim: optimistic CAS Available->Busy first (when enabled),
  /// falling back to try_claim. On success the parent is recomputed
  /// through the ordinary locked fixup either way.
  bool claim_candidate(std::uint32_t i);
  /// Release an owned node (-> Available) under locks; returns true if the
  /// release instead merged with an Available sibling (both -> parent).
  void release_node(std::uint32_t i);

  /// Scattered descent for an Available node of height `order`; retries
  /// until claimed (unit-holder guarantee). Returns the node index.
  std::uint32_t find_and_claim(std::uint32_t order);

  /// Free-side merge cascade; consumes ownership of node `i` at `order`.
  void free_block(std::uint32_t i, std::uint32_t order);

  /// The tree path of allocate(): semaphore wait, descent claim or
  /// recursive split. nullptr on exhaustion (failure stats are counted by
  /// the caller, which may flush the quicklists and retry).
  void* allocate_from_tree(std::uint32_t order);

  /// Record/clear the per-page allocation order for a block base.
  void record_allocation(void* p, std::uint32_t order);

  /// Pop the quicklist of `order`; nullptr on empty (counts hit/miss).
  void* quicklist_pop(std::uint32_t order);

  /// Flush the quicklist of `order` down to `target` cached blocks through
  /// the merging free path. Returns blocks flushed.
  std::size_t flush_quicklist(std::uint32_t order, std::uint32_t target);

  /// Flush every quicklist completely. Returns blocks flushed.
  std::size_t flush_quicklists();

  void* pool_;
  std::size_t pool_bytes_;
  std::size_t page_size_;
  std::uint32_t max_order_;
  bool scatter_ = true;
  std::uint32_t descent_latency_ = 0;

  std::vector<std::uint8_t> node_state_;       // state+lock byte per node
  std::vector<std::uint8_t> order_of_page_;    // 0xFF = no allocation start
  std::vector<std::unique_ptr<sync::BulkSemaphore>> sems_;  // per order

  // Quicklist front-end: one bounded Treiber stack per order, all linking
  // through one shared per-node successor array (a node index is unique
  // across orders, so each node lives in at most one stack).
  std::atomic<bool> quicklist_on_{TOMA_TBUDDY_QUICKLIST != 0};
  std::atomic<bool> cas_claim_on_{TOMA_TBUDDY_CAS_CLAIM != 0};
  std::unique_ptr<sync::TreiberStack[]> quicklists_;   // [max_order_ + 1]
  std::unique_ptr<std::atomic<std::uint32_t>[]> ql_links_;  // [node_count()]

  mutable std::atomic<std::uint64_t> st_allocs_{0};
  mutable std::atomic<std::uint64_t> st_frees_{0};
  mutable std::atomic<std::uint64_t> st_splits_{0};
  mutable std::atomic<std::uint64_t> st_merges_{0};
  mutable std::atomic<std::uint64_t> st_failed_{0};
  mutable std::atomic<std::uint64_t> st_retries_{0};
  mutable std::atomic<std::uint64_t> st_ql_hits_{0};
  mutable std::atomic<std::uint64_t> st_ql_misses_{0};
  mutable std::atomic<std::uint64_t> st_ql_spills_{0};
  mutable std::atomic<std::uint64_t> st_ql_flushes_{0};
  mutable std::atomic<std::uint64_t> st_cas_claims_{0};
  mutable std::atomic<std::uint64_t> st_lock_claims_{0};
};

}  // namespace toma::alloc
