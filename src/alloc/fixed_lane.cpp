#include "alloc/fixed_lane.hpp"

#include <cstdio>

#include "alloc/ualloc.hpp"
#include "gpusim/this_thread.hpp"
#include "gpusim/warp.hpp"
#include "obs/telemetry.hpp"
#include "sync/spin_mutex.hpp"
#include "util/assert.hpp"

namespace toma::alloc {

// ---------------------------------------------------------------------------
// Lane: the O(1) block stack
// ---------------------------------------------------------------------------

void* FixedLane::Lane::pop() {
  // Single relaxed load so a cold lane costs one cache probe (the same
  // empty-check discipline as Magazine::pop).
  if (count.load(std::memory_order_relaxed) == 0) return nullptr;
  sync::LockGuard<sync::SpinMutex> g(mu);
  void* p = head;
  if (p == nullptr) return nullptr;
  head = *static_cast<void**>(p);
  count.fetch_sub(1, std::memory_order_relaxed);
  return p;
}

std::uint32_t FixedLane::Lane::push(void* p) {
  sync::LockGuard<sync::SpinMutex> g(mu);
  *static_cast<void**>(p) = head;
  head = p;
  return count.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint32_t FixedLane::Lane::push_chain(void* chain_head, void* chain_tail,
                                          std::uint32_t n) {
  sync::LockGuard<sync::SpinMutex> g(mu);
  *static_cast<void**>(chain_tail) = head;
  head = chain_head;
  return count.fetch_add(n, std::memory_order_relaxed) + n;
}

void* FixedLane::Lane::pop_all() {
  sync::LockGuard<sync::SpinMutex> g(mu);
  void* p = head;
  head = nullptr;
  count.store(0, std::memory_order_relaxed);
  return p;
}

// ---------------------------------------------------------------------------
// FixedLane
// ---------------------------------------------------------------------------

FixedLane::FixedLane(UAlloc& ua, bool enabled)
    : ua_(&ua),
      num_arenas_(ua.num_arenas()),
      on_(enabled),
      lanes_(static_cast<std::size_t>(num_arenas_) * kFixedLaneClasses) {}

FixedLane::~FixedLane() = default;

void* FixedLane::allocate(std::size_t size) {
  TOMA_DASSERT(eligible_size(size) && size >= kMinAlloc);
  const std::uint32_t cls = size_class_of(size);
  const std::uint32_t a = gpu::this_thread::sm_id_or_hash(num_arenas_);
  Lane& ln = lane(a, cls);
  if (void* p = ln.pop()) {
    TOMA_CTR_INC("ualloc.lane.hit");
    st_hits_.fetch_add(1, std::memory_order_relaxed);
    // Proactive top-up: if this pop drained the stock below the trigger,
    // restock before the lane runs empty. The popper already holds its
    // block — no caller is stalled on this batch — and a lane that never
    // empties serves every other thread with a sync-free pop instead of
    // a warp rendezvous.
    if (ln.count.load(std::memory_order_relaxed) <
            fixed_lane_top_trigger(cls) &&
        !ln.refilling.exchange(true, std::memory_order_acquire)) {
      TOMA_CTR_INC("ualloc.lane.topup");
      st_topups_.fetch_add(1, std::memory_order_relaxed);
      void* extra = refill(ln, a, cls);
      if (extra != nullptr) ln.push(extra);
      ln.refilling.store(false, std::memory_order_release);
    }
    return p;
  }
  // Miss. In-kernel, resolve it warp-cooperatively: the lanes of this
  // warp that missed the same empty lane share one slab transaction and
  // the warp sync they would have paid anyway one layer down.
  if (gpu::ThreadCtx* ctx = gpu::this_thread::current()) {
    return allocate_coalesced_miss(ln, a, cls, *ctx);
  }
  return gated_refill(ln, a, cls);
}

void* FixedLane::allocate_coalesced_miss(Lane& ln, std::uint32_t home_arena,
                                         std::uint32_t cls,
                                         gpu::ThreadCtx& ctx) {
  const gpu::CoalescedGroup g = gpu::coalesce_warp(ctx, &ln);
  if (g.size() == 1) return gated_refill(ln, home_arena, cls);
  constexpr std::uint64_t kFailed = 0, kStocked = 1;
  if (g.is_leader()) {
    // The rendezvous takes scheduling rounds; another warp's leader may
    // have stocked the lane meanwhile. Only fetch a slab if the stock
    // cannot cover this group.
    void* lead = nullptr;
    bool ok = ln.count.load(std::memory_order_relaxed) >= g.size();
    if (!ok) {
      // Fetch without the single-refiller gate: a stampede of leaders
      // briefly over-stocks (the spill hysteresis reclaims the excess),
      // but a gated leader would strand its whole group on the per-warp
      // semaphore path — measurably the worse trade at every size.
      TOMA_CTR_INC("ualloc.lane.miss");
      st_misses_.fetch_add(1, std::memory_order_relaxed);
      lead = refill(ln, home_arena, cls, /*max_batches=*/1);
      ok = lead != nullptr;
    }
    gpu::warp_broadcast(ctx, g, ok ? kStocked : kFailed);
    if (lead != nullptr) return lead;
    if (!ok) return nullptr;
  } else if (gpu::warp_broadcast(ctx, g, kFailed) == kFailed) {
    // The leader's slab found no memory; every member falls through to
    // the single-block path, which can succeed where a slab could not.
    TOMA_CTR_INC("ualloc.lane.miss");
    st_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (void* p = ln.pop()) {
    TOMA_CTR_INC("ualloc.lane.hit");
    st_hits_.fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  // Stock stolen between the broadcast and our pop — rare, harmless.
  TOMA_CTR_INC("ualloc.lane.miss");
  st_misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void* FixedLane::gated_refill(Lane& ln, std::uint32_t home_arena,
                              std::uint32_t cls) {
  TOMA_CTR_INC("ualloc.lane.miss");
  st_misses_.fetch_add(1, std::memory_order_relaxed);
  if (ln.refilling.exchange(true, std::memory_order_acquire)) {
    // Another thread is already fetching this lane's slab. Don't pile on
    // — the caller falls through to the ordinary single-block path, so
    // an empty lane costs at most one slab transaction no matter how
    // many threads miss it together.
    return nullptr;
  }
  void* p = refill(ln, home_arena, cls);
  ln.refilling.store(false, std::memory_order_release);
  return p;
}

void* FixedLane::refill(Lane& ln, std::uint32_t home_arena, std::uint32_t cls,
                        std::uint32_t max_batches) {
  // Each bulk transaction buys a whole slab: the semaphore wait, the RCU
  // traversal (or the fresh bin), and the listing dance are paid once per
  // fixed_lane_refill(cls) allocations instead of once per block. Up to
  // kFixedLaneRefillBatches slabs are fetched per gate hold — waiters
  // drain the lane as batches land, so a deeper refill widens the window
  // one gate negotiation feeds.
  void* blocks[kFixedLaneMaxRefill];
  const std::uint32_t want = fixed_lane_refill(cls);
  const std::uint32_t target = fixed_lane_low_water(cls);
  void* first = nullptr;
  for (std::uint32_t b = 0; b < max_batches; ++b) {
    // Stock to the low-water mark, not just one slab: consumers drain the
    // lane while the batch claim runs, and a lane that stays stocked
    // serves the next warps with a plain pop — no rendezvous at all.
    if (first != nullptr &&
        ln.count.load(std::memory_order_relaxed) >= target) {
      break;
    }
    const std::uint32_t got =
        ua_->allocate_batch(home_arena, cls, blocks, want);
    if (got == 0) break;
    TOMA_CTR_INC("ualloc.lane.refill");
    TOMA_CTR_ADD("ualloc.lane.refill_blocks", got);
    st_refills_.fetch_add(1, std::memory_order_relaxed);
    st_refill_blocks_.fetch_add(got, std::memory_order_relaxed);
    std::uint32_t keep = 0;
    if (first == nullptr) {
      first = blocks[0];
      keep = 1;
    }
    if (got > keep) {
      // Link the surplus outside the lane lock, splice in O(1).
      for (std::uint32_t i = keep; i + 1 < got; ++i) {
        *static_cast<void**>(blocks[i]) = blocks[i + 1];
      }
      const std::uint32_t cnt =
          ln.push_chain(blocks[keep], blocks[got - 1], got - keep);
      // Frees may have piled onto the lane while the batch claim waited;
      // keep the capacity bound honest (and stop deepening into it).
      if (cnt > fixed_lane_capacity(cls)) {
        spill(ln, cls);
        break;
      }
    }
    // A short batch means the pool is tight; don't pound it for depth.
    if (got < want) break;
  }
  return first;
}

bool FixedLane::try_free_decoded(void* p, const BinHeader* bin) {
  if (!enabled()) return false;
  const std::uint32_t cls = bin->size_class;
  if (cls >= kFixedLaneClasses) return false;
  // Cache on the *freeing* SM's lane (cheapest locality for the next
  // malloc here), whatever arena owns the bin. The bitmap bit stays
  // claimed while cached: to the accounting, the block is still
  // allocated.
  const std::uint32_t a = gpu::this_thread::sm_id_or_hash(num_arenas_);
  Lane& ln = lane(a, cls);
  const std::uint32_t cnt = ln.push(p);
  if (cnt > fixed_lane_capacity(cls)) spill(ln, cls);
  return true;
}

void FixedLane::spill(Lane& ln, std::uint32_t cls) {
  const std::uint32_t low = fixed_lane_low_water(cls);
  std::uint64_t n = 0;
  while (ln.count.load(std::memory_order_relaxed) > low) {
    void* p = ln.pop();
    if (p == nullptr) break;
    publish(p);
    ++n;
  }
  TOMA_CTR_INC("ualloc.lane.spill");
  TOMA_CTR_ADD("ualloc.lane.spill_blocks", n);
  st_spills_.fetch_add(1, std::memory_order_relaxed);
  st_spill_blocks_.fetch_add(n, std::memory_order_relaxed);
}

void FixedLane::publish(void* p) {
  std::uint32_t idx;
  BinHeader* bin = ua_->decode(p, &idx);
  ua_->free_slow(bin, idx);
  // The block re-enters UAlloc here, symmetric with allocate_batch's
  // st_allocs_ bump when it left: allocs - frees stays "blocks currently
  // outside the bin accounting" across the lane.
  ua_->st_frees_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t FixedLane::flush() {
  std::size_t flushed = 0;
  for (Lane& ln : lanes_) {
    void* p = ln.pop_all();
    while (p != nullptr) {
      void* next = *static_cast<void**>(p);
      publish(p);
      p = next;
      ++flushed;
    }
  }
  if (flushed > 0) {
    TOMA_CTR_ADD("ualloc.lane.flush", flushed);
    st_flushes_.fetch_add(flushed, std::memory_order_relaxed);
  }
  return flushed;
}

std::size_t FixedLane::cached_count() const {
  std::size_t n = 0;
  for (const Lane& ln : lanes_) {
    n += ln.count.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint32_t FixedLane::lane_count(std::uint32_t arena,
                                    std::uint32_t cls) const {
  return lane(arena, cls).count.load(std::memory_order_relaxed);
}

FixedLaneStats FixedLane::stats() const {
  FixedLaneStats s;
  s.hits = st_hits_.load(std::memory_order_relaxed);
  s.misses = st_misses_.load(std::memory_order_relaxed);
  s.refills = st_refills_.load(std::memory_order_relaxed);
  s.refill_blocks = st_refill_blocks_.load(std::memory_order_relaxed);
  s.topups = st_topups_.load(std::memory_order_relaxed);
  s.spills = st_spills_.load(std::memory_order_relaxed);
  s.spill_blocks = st_spill_blocks_.load(std::memory_order_relaxed);
  s.flushes = st_flushes_.load(std::memory_order_relaxed);
  s.cached = cached_count();
  return s;
}

bool FixedLane::check_consistency() const {
  bool ok = true;
  for (std::uint32_t a = 0; a < num_arenas_; ++a) {
    for (std::uint32_t c = 0; c < kFixedLaneClasses; ++c) {
      const Lane& ln = lane(a, c);
      sync::LockGuard<sync::SpinMutex> g(ln.mu);
      std::uint32_t walked = 0;
      for (void* p = ln.head; p != nullptr; p = *static_cast<void**>(p)) {
        ++walked;
        std::uint32_t idx;
        BinHeader* bin = ua_->decode(p, &idx);
        if (bin->size_class != c) {
          std::fprintf(stderr,
                       "FixedLane: lane %u/%u caches block of class %u\n", a,
                       c, bin->size_class);
          ok = false;
        }
        if (!bin->bitmap().test(idx)) {
          std::fprintf(stderr,
                       "FixedLane: cached block %p lost its claimed bit\n",
                       p);
          ok = false;
        }
      }
      const std::uint32_t cnt = ln.count.load(std::memory_order_relaxed);
      if (walked != cnt || cnt > fixed_lane_capacity(c)) {
        std::fprintf(stderr,
                     "FixedLane: lane %u/%u chain %u vs count %u (cap %u)\n",
                     a, c, walked, cnt, fixed_lane_capacity(c));
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace toma::alloc
