#include "alloc/tbuddy.hpp"

#include "alloc/config.hpp"

#include <cinttypes>
#include <cstdio>

#include "gpusim/this_thread.hpp"
#include "obs/telemetry.hpp"
#include "sync/backoff.hpp"
#include "util/bitops.hpp"

namespace toma::alloc {

namespace {
constexpr std::uint8_t kNoAllocation = 0xFF;
}

TBuddy::TBuddy(void* pool, std::size_t pool_bytes, std::size_t page_size)
    : pool_(pool), pool_bytes_(pool_bytes), page_size_(page_size) {
  TOMA_ASSERT(pool != nullptr);
  TOMA_ASSERT(util::is_pow2(page_size));
  TOMA_ASSERT(util::is_pow2(pool_bytes));
  TOMA_ASSERT(pool_bytes >= page_size);
  TOMA_ASSERT_MSG(util::is_aligned(pool, pool_bytes),
                  "pool must be aligned to its own size so block addresses "
                  "are aligned to their block size");

  const std::size_t pages = pool_bytes / page_size;
  max_order_ = util::log2_floor(pages);
  TOMA_ASSERT_MSG(pages <= sync::BulkSemaphore::kMaxValue,
                  "pool too large for semaphore accounting");

  node_state_.assign(node_count(), kBusy);
  order_of_page_.assign(pages, kNoAllocation);
  sems_.reserve(max_order_ + 1);
  for (std::uint32_t h = 0; h <= max_order_; ++h) {
    sems_.push_back(std::make_unique<sync::BulkSemaphore>(0));
  }
  quicklists_ = std::make_unique<sync::TreiberStack[]>(max_order_ + 1);
  for (std::uint32_t h = 0; h <= max_order_; ++h) {
    quicklists_[h].set_capacity(quicklist_capacity(h, max_order_));
  }
  // Successor links for the quicklists; slots are written before first
  // use, so no initialization pass over the array is needed.
  ql_links_ =
      std::make_unique<std::atomic<std::uint32_t>[]>(node_count());
  // Initially the whole pool is one available block at the root.
  node_state_[1] = kAvailable;
  sems_[max_order_]->signal(1, 0);
}

std::uint32_t TBuddy::height_of(std::uint32_t i) const {
  return max_order_ - util::log2_floor(i);
}

void* TBuddy::node_addr(std::uint32_t i) const {
  const std::uint32_t h = height_of(i);
  const std::size_t page =
      (static_cast<std::size_t>(i) - level_base(h)) << h;
  return static_cast<char*>(pool_) + page * page_size_;
}

std::uint32_t TBuddy::node_at(const void* p, std::uint32_t order) const {
  const std::size_t off = static_cast<const char*>(p) -
                          static_cast<const char*>(pool_);
  const std::size_t page = off / page_size_;
  return level_base(order) + static_cast<std::uint32_t>(page >> order);
}

TBuddy::State TBuddy::state_of(std::uint32_t i) const {
  std::atomic_ref<const std::uint8_t> b(node_state_[i]);
  return static_cast<State>(b.load(std::memory_order_acquire) & kStateMask);
}

void TBuddy::lock_node(std::uint32_t i) {
  std::atomic_ref<std::uint8_t> b(node_state_[i]);
  sync::Backoff bo;
  for (;;) {
    std::uint8_t cur = b.load(std::memory_order_relaxed);
    if ((cur & kLockBit) == 0 &&
        b.compare_exchange_weak(cur, cur | kLockBit,
                                std::memory_order_acquire,
                                std::memory_order_relaxed)) {
      TOMA_CTR_INC("tbuddy.lock_acquire");
      return;
    }
    TOMA_CTR_INC("tbuddy.lock_contended");
    bo.pause();
  }
}

void TBuddy::unlock_node(std::uint32_t i) {
  std::atomic_ref<std::uint8_t> b(node_state_[i]);
  b.fetch_and(static_cast<std::uint8_t>(~kLockBit),
              std::memory_order_release);
}

void TBuddy::set_state_locked(std::uint32_t i, State s) {
  std::atomic_ref<std::uint8_t> b(node_state_[i]);
  TOMA_DASSERT(b.load(std::memory_order_relaxed) & kLockBit);
  b.store(static_cast<std::uint8_t>(kLockBit | s), std::memory_order_release);
}

TBuddy::State TBuddy::derive(std::uint32_t i) const {
  const State l = state_of(left_child(i));
  const State r = state_of(left_child(i) + 1);
  const bool below =
      l == kAvailable || l == kPartial || r == kAvailable || r == kPartial;
  return below ? kPartial : kBusy;
}

void TBuddy::fixup_from(std::uint32_t i) {
  // Recompute ancestors hand-over-hand. Holding a node's lock freezes its
  // children for every *locked* transition (those lock the parent). The
  // one exception is the optimistic CAS claim, which flips a child
  // Available->Busy without the parent lock — but every successful CAS is
  // followed by its own fixup_from(parent), which serializes behind any
  // in-flight derive here and corrects a stale Partial.
  while (i >= 1) {
    const std::uint32_t p = parent_of(i);  // 0 when i is the root
    if (p != 0) lock_node(p);
    lock_node(i);
    std::atomic_ref<std::uint8_t> b(node_state_[i]);
    const auto cur =
        static_cast<State>(b.load(std::memory_order_relaxed) & kStateMask);
    bool changed = false;
    // Available nodes are explicit (never derived); owned-Busy nodes have
    // inactive subtrees, so a fixup reaching one derives the same Busy.
    if (cur != kAvailable) {
      const State d = derive(i);
      if (d != cur) {
        set_state_locked(i, d);
        changed = true;
      }
    }
    unlock_node(i);
    if (p != 0) unlock_node(p);
    if (!changed || p == 0) return;
    i = p;
  }
}

bool TBuddy::try_claim(std::uint32_t i) {
  const std::uint32_t p = parent_of(i);
  if (p != 0) lock_node(p);
  lock_node(i);
  std::atomic_ref<std::uint8_t> b(node_state_[i]);
  const auto cur =
      static_cast<State>(b.load(std::memory_order_relaxed) & kStateMask);
  bool ok = false;
  if (cur == kAvailable) {
    set_state_locked(i, kBusy);
    ok = true;
  }
  unlock_node(i);
  if (p != 0) unlock_node(p);
  if (ok && p != 0) fixup_from(p);
  return ok;
}

bool TBuddy::claim_candidate(std::uint32_t i) {
  // Optimistic claim: one CAS on the node byte, expecting exactly
  // "Available, unlocked". Any locked protocol currently touching the
  // node (a merge check, a fixup, another claim) holds the lock bit, so
  // the CAS fails on *any* concurrent transition and we fall back to the
  // ordinary (parent, node) lock protocol. The other direction is covered
  // by the lock holders re-checking the node's state after locking it
  // (free_block re-verifies the buddy is still Available before merging).
  //
  // The parent still gets its locked recomputation: fixup_from(parent)
  // serializes behind any in-flight derive under the parent lock, so a
  // derive that read the stale Available is corrected by our later fixup,
  // and a derive that locks the parent after our fixup released it
  // observes the CAS'd Busy (lock acquire/release ordering).
  if (cas_claim_enabled()) {
    std::atomic_ref<std::uint8_t> b(node_state_[i]);
    std::uint8_t expected = kAvailable;
    if (b.compare_exchange_strong(expected, kBusy,
                                  std::memory_order_acq_rel,
                                  std::memory_order_relaxed)) {
      st_cas_claims_.fetch_add(1, std::memory_order_relaxed);
      TOMA_CTR_INC("tbuddy.claim.cas_fast");
      if (i > 1) fixup_from(parent_of(i));
      return true;
    }
  }
  const bool ok = try_claim(i);
  if (ok) {
    st_lock_claims_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("tbuddy.claim.lock_slow");
  }
  return ok;
}

std::uint32_t TBuddy::find_and_claim(std::uint32_t order) {
  sync::Backoff bo;
  auto& rng = gpu::this_thread::rng();
  for (;;) {
    std::uint32_t i = 1;
    std::uint32_t h = max_order_;
    if (h == order) {
      if (claim_candidate(1)) return 1;
      st_retries_.fetch_add(1, std::memory_order_relaxed);
      TOMA_CTR_INC("tbuddy.descent_retry");
      bo.pause();
      continue;
    }
    bool dead_end = false;
    while (!dead_end) {
      for (std::uint32_t d = 0; d < descent_latency_; ++d) {
        gpu::this_thread::yield();  // modeled node-state read latency
      }
      // Scatter: visit the two children in a per-thread random order so
      // concurrent descents fan out across the tree (ScatterAlloc-style).
      const std::uint32_t first =
          left_child(i) + (scatter_ ? (rng.next() & 1) : 0);
      const std::uint32_t second = sibling_of(first);
      const std::uint32_t ch = h - 1;
      bool descended = false;
      for (const std::uint32_t c : {first, second}) {
        const State s = state_of(c);
        if (ch == order) {
          if (s == kAvailable && claim_candidate(c)) return c;
        } else if (s == kPartial) {
          i = c;
          h = ch;
          descended = true;
          break;
        }
      }
      if (!descended) dead_end = true;
    }
    st_retries_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("tbuddy.descent_retry");
    bo.pause();
  }
}

void TBuddy::record_allocation(void* p, std::uint32_t order) {
  const std::size_t page =
      (static_cast<const char*>(p) - static_cast<const char*>(pool_)) /
      page_size_;
  std::atomic_ref<std::uint8_t> rec(order_of_page_[page]);
  TOMA_DASSERT(rec.load(std::memory_order_relaxed) == kNoAllocation);
  rec.store(static_cast<std::uint8_t>(order), std::memory_order_release);
}

void* TBuddy::quicklist_pop(std::uint32_t order) {
  const std::uint32_t node = quicklists_[order].try_pop(ql_links_.get());
  if (node == sync::TreiberStack::kNil) {
    st_ql_misses_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("tbuddy.quicklist.miss");
    return nullptr;
  }
  // The node stayed Busy (and its semaphore unit consumed) the whole time
  // it was cached, so handing it out is pure bookkeeping: no semaphore,
  // no descent, no locks.
  st_ql_hits_.fetch_add(1, std::memory_order_relaxed);
  st_allocs_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("tbuddy.quicklist.hit");
  void* p = node_addr(node);
  record_allocation(p, order);
  return p;
}

void* TBuddy::allocate(std::uint32_t order) {
  if (order > max_order_) {
    st_failed_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (quicklist_enabled()) {
    if (void* p = quicklist_pop(order)) return p;
  }
  for (;;) {
    void* p = allocate_from_tree(order);
    if (p != nullptr) return p;
    // Pool pressure: the tree is exhausted at this order, but deferred
    // coalescing may be sitting on mergeable blocks. Flush everything
    // through the real free path and re-decide; a zero-block flush proves
    // true exhaustion. (Recursive growers flush at the deepest failing
    // level first; by the time the failure propagates here the lists are
    // usually already drained and this loop exits on its first retry.)
    if (flush_quicklists() == 0) {
      st_failed_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    TOMA_CTR_INC("tbuddy.quicklist.pressure_flush");
    if (quicklist_enabled()) {
      if (void* p2 = quicklist_pop(order)) return p2;
    }
  }
}

void* TBuddy::allocate_from_tree(std::uint32_t order) {
  // Per-order semaphore outcome: kAcquired means a block of this order is
  // (or will be) claimable; kMustGrow makes us the splitter one order up.
  [[maybe_unused]] const std::uint64_t wait_t0 = TOMA_NOW_NS();
  const auto res = sems_[order]->wait(1, 2);
  TOMA_HIST("tbuddy.sem_wait_ns", TOMA_NOW_NS() - wait_t0);
  if (res == sync::BulkSemaphore::WaitResult::kAcquired) {
    TOMA_CTRV_INC("tbuddy.sem_acquired", 24, order);
    const std::uint32_t node = find_and_claim(order);
    st_allocs_.fetch_add(1, std::memory_order_relaxed);
    void* p = node_addr(node);
    record_allocation(p, order);
    return p;
  }

  // kMustGrow: produce a batch of two order-n blocks by splitting an
  // order-(n+1) block; keep one, publish the other. The recursive call
  // goes through allocate(), so the parent order's quicklist (and, on
  // failure, the pressure flush) serve the split too.
  TOMA_CTRV_INC("tbuddy.sem_grow", 24, order);
  TOMA_TRACE("tbuddy.grow", order);
  if (order == max_order_) {
    sems_[order]->signal(0, 1);  // cannot grow past the root: true OOM
    return nullptr;
  }
  void* parent_mem = allocate(order + 1);
  if (parent_mem == nullptr) {
    sems_[order]->signal(0, 1);  // growth failed; let waiters re-decide
    return nullptr;
  }
  // Un-register the parent allocation record; it is being split, not used.
  {
    const std::size_t page = (static_cast<const char*>(parent_mem) -
                              static_cast<const char*>(pool_)) /
                             page_size_;
    std::atomic_ref<std::uint8_t> rec(order_of_page_[page]);
    rec.store(kNoAllocation, std::memory_order_release);
  }

  const std::uint32_t pnode = node_at(parent_mem, order + 1);
  const std::uint32_t keep = left_child(pnode);
  const std::uint32_t give = keep + 1;

  // Paper order: block Busy -> Partial first, then one child -> Available,
  // then signal. Claimers retry through the transient window.
  {
    const std::uint32_t gp = parent_of(pnode);
    if (gp != 0) lock_node(gp);
    lock_node(pnode);
    set_state_locked(pnode, kPartial);
    unlock_node(pnode);
    if (gp != 0) unlock_node(gp);
  }
  {
    lock_node(pnode);
    lock_node(give);
    set_state_locked(give, kAvailable);
    // Signal inside the locked section (same reason as the free path):
    // "give is Available" and "its unit is in C" become visible together
    // to anyone holding the parent lock.
    sems_[order]->signal(1, 1);
    unlock_node(give);
    unlock_node(pnode);
  }
  // pnode went (owned) Busy -> Partial: recompute its ancestors.
  if (pnode > 1) fixup_from(parent_of(pnode));
  st_splits_.fetch_add(1, std::memory_order_relaxed);
  st_allocs_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("tbuddy.split");

  void* p = node_addr(keep);
  const std::size_t page =
      (static_cast<const char*>(p) - static_cast<const char*>(pool_)) /
      page_size_;
  std::atomic_ref<std::uint8_t> rec(order_of_page_[page]);
  TOMA_DASSERT(rec.load(std::memory_order_relaxed) == kNoAllocation);
  rec.store(static_cast<std::uint8_t>(order), std::memory_order_release);
  return p;
}

void* TBuddy::allocate_bytes(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  return allocate(order_for_bytes(bytes));
}

void TBuddy::free(void* p) {
  TOMA_ASSERT_MSG(contains(p), "free of a pointer outside the pool");
  const std::size_t off =
      static_cast<const char*>(p) - static_cast<const char*>(pool_);
  TOMA_ASSERT_MSG(off % page_size_ == 0,
                  "TBuddy pointers are page aligned by construction");
  const std::size_t page = off / page_size_;
  std::atomic_ref<std::uint8_t> rec(order_of_page_[page]);
  const std::uint8_t order = rec.load(std::memory_order_acquire);
  TOMA_ASSERT_FMT(order != kNoAllocation,
                  "TBuddy double free or foreign pointer: %p (page %zu of "
                  "%zu, pool %p) has no live allocation recorded",
                  p, page, pool_bytes_ / page_size_, pool_);
  rec.store(kNoAllocation, std::memory_order_release);
  st_frees_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t node = node_at(p, order);
  if (quicklist_enabled() && quicklists_[order].capacity() != 0) {
    // Deferred coalescing: park the block instead of cascading merges.
    // The node stays Busy and its semaphore unit stays consumed, so the
    // accounting still sees it as allocated (invariant preserved).
    if (quicklists_[order].try_push(ql_links_.get(), node)) return;
    // High-water overflow: flush down to the low-water mark so this
    // crossing buys cap/2 further O(1) frees before the next flush.
    st_ql_spills_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("tbuddy.quicklist.spill");
    flush_quicklist(order,
                    quicklist_low_water(quicklists_[order].capacity()));
  }
  free_block(node, order);
}

std::size_t TBuddy::flush_quicklist(std::uint32_t order,
                                    std::uint32_t target) {
  std::size_t flushed = 0;
  while (quicklists_[order].count() > target) {
    const std::uint32_t node = quicklists_[order].try_pop(ql_links_.get());
    if (node == sync::TreiberStack::kNil) break;  // racing flusher drained it
    free_block(node, order);
    ++flushed;
  }
  if (flushed != 0) {
    st_ql_flushes_.fetch_add(flushed, std::memory_order_relaxed);
    TOMA_CTR_ADD("tbuddy.quicklist.flush", flushed);
  }
  return flushed;
}

std::size_t TBuddy::flush_quicklists() {
  // Low orders first: their merges cascade upward and may want to consume
  // blocks the higher-order flush iterations then no longer need to free.
  std::size_t total = 0;
  for (std::uint32_t h = 0; h <= max_order_; ++h) {
    total += flush_quicklist(h, 0);
  }
  return total;
}

std::size_t TBuddy::allocation_size(const void* p) const {
  TOMA_ASSERT(contains(p));
  const std::size_t off =
      static_cast<const char*>(p) - static_cast<const char*>(pool_);
  TOMA_ASSERT(off % page_size_ == 0);
  std::atomic_ref<const std::uint8_t> rec(order_of_page_[off / page_size_]);
  const std::uint8_t order = rec.load(std::memory_order_acquire);
  TOMA_ASSERT_MSG(order != kNoAllocation,
                  "allocation_size of a non-live pointer");
  return page_size_ << order;
}

void TBuddy::free_block(std::uint32_t i, std::uint32_t order) {
  for (;;) {
    if (i == 1) {  // the root has no buddy: just release it
      lock_node(1);
      set_state_locked(1, kAvailable);
      unlock_node(1);
      sems_[order]->signal(1, 0);
      return;
    }

    const std::uint32_t p = parent_of(i);
    const std::uint32_t b = sibling_of(i);

    // Merge attempt (paper: must always be attempted; only a failed
    // try_wait proves the buddy cannot be consumed).
    bool merged = false;
    if (sems_[order]->try_wait(1)) {
      lock_node(p);
      lock_node(b);
      std::atomic_ref<std::uint8_t> bb(node_state_[b]);
      if ((bb.load(std::memory_order_relaxed) & kStateMask) == kAvailable) {
        set_state_locked(b, kBusy);
        merged = true;
      }
      unlock_node(b);
      unlock_node(p);
      if (!merged) {
        sems_[order]->signal(1, 0);  // return the reserved unit
      }
    }

    if (!merged) {
      // Release i as Available — but never publish "both siblings
      // Available" (tree property 1). If the buddy is Available we must
      // merge instead, which requires consuming its accounting unit. That
      // unit may be transiently absent (its releaser signals under this
      // same parent lock, so normally it is visible — but a third-party
      // merge attempt elsewhere can briefly borrow units via try_wait).
      // In that case we back off and re-decide: either the unit returns
      // (we merge) or a claimer takes the buddy (we release plain).
      for (;;) {
        lock_node(p);
        lock_node(i);
        std::atomic_ref<std::uint8_t> bb(node_state_[b]);
        if ((bb.load(std::memory_order_acquire) & kStateMask) ==
            kAvailable) {
          if (sems_[order]->try_wait(1)) {
            // Safe to take b's lock while holding p and i: any other
            // holder of b either needed p first (we have it) or is a
            // (b, child-of-b) pair that never waits on p or i.
            lock_node(b);
            // Re-check under b's own lock: the optimistic descent claim
            // (claim_candidate) flips Available->Busy with a bare CAS,
            // without taking the parent lock, so the read above can be
            // stale. If a claimer won b, return the borrowed unit and
            // re-decide.
            if ((bb.load(std::memory_order_relaxed) & kStateMask) !=
                kAvailable) {
              unlock_node(b);
              sems_[order]->signal(1, 0);
              unlock_node(i);
              unlock_node(p);
              gpu::this_thread::yield();
              continue;
            }
            set_state_locked(b, kBusy);
            unlock_node(b);
            unlock_node(i);  // i stays Busy: we own the merged pair
            unlock_node(p);
            merged = true;
            break;
          }
          unlock_node(i);
          unlock_node(p);
          gpu::this_thread::yield();
          continue;
        }
        set_state_locked(i, kAvailable);
        // Signal under the parent lock: anyone who subsequently observes
        // i Available under this lock also observes its unit in C (or the
        // unit already claimed, which makes i Busy again first).
        sems_[order]->signal(1, 0);
        unlock_node(i);
        unlock_node(p);
        fixup_from(p);
        return;
      }
    }

    // Merged: the parent (Partial) becomes our owned block one order up.
    {
      const std::uint32_t gp = parent_of(p);
      if (gp != 0) lock_node(gp);
      lock_node(p);
      set_state_locked(p, kBusy);
      unlock_node(p);
      if (gp != 0) unlock_node(gp);
      if (gp != 0) fixup_from(gp);
    }
    st_merges_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("tbuddy.merge");
    i = p;
    ++order;
  }
}

std::uint64_t TBuddy::available(std::uint32_t order) const {
  TOMA_ASSERT(order <= max_order_);
  return sems_[order]->value();
}

std::size_t TBuddy::free_bytes() const {
  std::size_t total = 0;
  for (std::uint32_t h = 0; h <= max_order_; ++h) {
    total += sems_[h]->value() * (page_size_ << h);
  }
  return total;
}

std::size_t TBuddy::largest_free_block() const {
  for (std::uint32_t h = max_order_ + 1; h-- > 0;) {
    if (sems_[h]->value() > 0) return page_size_ << h;
  }
  return 0;
}

TBuddyStats TBuddy::stats() const {
  TBuddyStats s;
  s.allocs = st_allocs_.load(std::memory_order_relaxed);
  s.frees = st_frees_.load(std::memory_order_relaxed);
  s.splits = st_splits_.load(std::memory_order_relaxed);
  s.merges = st_merges_.load(std::memory_order_relaxed);
  s.failed_allocs = st_failed_.load(std::memory_order_relaxed);
  s.descent_retries = st_retries_.load(std::memory_order_relaxed);
  s.quicklist_hits = st_ql_hits_.load(std::memory_order_relaxed);
  s.quicklist_misses = st_ql_misses_.load(std::memory_order_relaxed);
  s.quicklist_spills = st_ql_spills_.load(std::memory_order_relaxed);
  s.quicklist_flushes = st_ql_flushes_.load(std::memory_order_relaxed);
  for (std::uint32_t h = 0; h <= max_order_; ++h) {
    s.quicklist_cached += quicklists_[h].count();
  }
  s.cas_claims = st_cas_claims_.load(std::memory_order_relaxed);
  s.lock_claims = st_lock_claims_.load(std::memory_order_relaxed);
  return s;
}

bool TBuddy::check_consistency() const {
  bool ok = true;
  auto fail = [&](const char* what, std::uint32_t node) {
    std::fprintf(stderr, "TBuddy inconsistency: %s at node %u\n", what, node);
    ok = false;
  };

  const std::uint32_t n = node_count();
  std::vector<std::uint64_t> avail_at(max_order_ + 1, 0);
  std::vector<bool> has_avail(n, false);  // available anywhere in subtree

  for (std::uint32_t i = n - 1; i >= 1; --i) {
    if (node_state_[i] & kLockBit) fail("node locked while quiescent", i);
    const auto s = static_cast<State>(node_state_[i] & kStateMask);
    const bool leaf = i >= level_base(0);
    const bool child_avail =
        !leaf && (has_avail[left_child(i)] || has_avail[left_child(i) + 1]);
    if (s == kAvailable) {
      avail_at[height_of(i)]++;
      if (child_avail) fail("available node with available descendant", i);
      has_avail[i] = true;
    } else {
      has_avail[i] = child_avail;
      if (s == kPartial && !child_avail) {
        fail("partial node without available descendant", i);
      }
    }
    if (i > 1 && (i & 1) == 0) {  // left child: check sibling pair once
      const auto sl = static_cast<State>(node_state_[i] & kStateMask);
      const auto sr = static_cast<State>(node_state_[i + 1] & kStateMask);
      if (sl == kAvailable && sr == kAvailable) {
        fail("both siblings available", i);
      }
    }
  }

  for (std::uint32_t h = 0; h <= max_order_; ++h) {
    const auto snap = sems_[h]->snapshot();
    if (snap.expected != 0 || snap.reserved != 0) {
      std::fprintf(stderr,
                   "TBuddy inconsistency: semaphore %u not quiescent "
                   "(E=%" PRIu64 " R=%" PRIu64 ")\n",
                   h, snap.expected, snap.reserved);
      ok = false;
    }
    if (snap.value != avail_at[h]) {
      std::fprintf(stderr,
                   "TBuddy inconsistency: order %u semaphore C=%" PRIu64
                   " but %" PRIu64 " available nodes\n",
                   h, snap.value, avail_at[h]);
      ok = false;
    }
  }

  // Allocation records: each recorded allocation must be a Busy node whose
  // subtree contains nothing available.
  for (std::size_t page = 0; page < order_of_page_.size(); ++page) {
    const std::uint8_t order = order_of_page_[page];
    if (order == kNoAllocation) continue;
    const std::uint32_t node =
        level_base(order) + static_cast<std::uint32_t>(page >> order);
    const auto s = static_cast<State>(node_state_[node] & kStateMask);
    if (s != kBusy) fail("allocated node not busy", node);
    if (has_avail[node]) fail("allocated node with available descendant", node);
  }

  // Quicklists: every cached block must be a Busy, unlocked node of the
  // list's order with a fully-Busy subtree and no allocation record — to
  // the tree and the semaphores a cached block is indistinguishable from
  // an allocated one.
  for (std::uint32_t h = 0; h <= max_order_; ++h) {
    std::uint64_t walked = 0;
    for (std::uint32_t node = quicklists_[h].peek();
         node != sync::TreiberStack::kNil;
         node = ql_links_[node].load(std::memory_order_relaxed)) {
      ++walked;
      if (height_of(node) != h) fail("quicklisted node at wrong order", node);
      if (node_state_[node] & kLockBit) fail("quicklisted node locked", node);
      if ((node_state_[node] & kStateMask) != kBusy) {
        fail("quicklisted node not busy", node);
      }
      if (has_avail[node]) {
        fail("quicklisted node with available descendant", node);
      }
      const std::size_t page =
          (static_cast<const char*>(node_addr(node)) -
           static_cast<const char*>(pool_)) /
          page_size_;
      if (order_of_page_[page] != kNoAllocation) {
        fail("quicklisted node still recorded as allocated", node);
      }
      if (walked > quicklists_[h].capacity()) {
        fail("quicklist longer than its capacity (cycle?)", node);
        break;
      }
    }
    if (walked != quicklists_[h].count()) {
      std::fprintf(stderr,
                   "TBuddy inconsistency: order %u quicklist count %u but "
                   "%" PRIu64 " nodes walked\n",
                   h, quicklists_[h].count(), walked);
      ok = false;
    }
  }

  return ok;
}

}  // namespace toma::alloc
