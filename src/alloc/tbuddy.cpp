#include "alloc/tbuddy.hpp"

#include "alloc/config.hpp"

#include <cinttypes>
#include <cstdio>

#include "gpusim/this_thread.hpp"
#include "obs/telemetry.hpp"
#include "sync/backoff.hpp"
#include "util/bitops.hpp"

namespace toma::alloc {

namespace {
constexpr std::uint8_t kNoAllocation = 0xFF;
}

TBuddy::TBuddy(void* pool, std::size_t pool_bytes, std::size_t page_size)
    : pool_(pool), pool_bytes_(pool_bytes), page_size_(page_size) {
  TOMA_ASSERT(pool != nullptr);
  TOMA_ASSERT(util::is_pow2(page_size));
  TOMA_ASSERT(util::is_pow2(pool_bytes));
  TOMA_ASSERT(pool_bytes >= page_size);
  TOMA_ASSERT_MSG(util::is_aligned(pool, pool_bytes),
                  "pool must be aligned to its own size so block addresses "
                  "are aligned to their block size");

  const std::size_t pages = pool_bytes / page_size;
  max_order_ = util::log2_floor(pages);
  TOMA_ASSERT_MSG(pages <= sync::BulkSemaphore::kMaxValue,
                  "pool too large for semaphore accounting");

  node_state_.assign(node_count(), kBusy);
  order_of_page_.assign(pages, kNoAllocation);
  sems_.reserve(max_order_ + 1);
  for (std::uint32_t h = 0; h <= max_order_; ++h) {
    sems_.push_back(std::make_unique<sync::BulkSemaphore>(0));
  }
  // Initially the whole pool is one available block at the root.
  node_state_[1] = kAvailable;
  sems_[max_order_]->signal(1, 0);
}

std::uint32_t TBuddy::height_of(std::uint32_t i) const {
  return max_order_ - util::log2_floor(i);
}

void* TBuddy::node_addr(std::uint32_t i) const {
  const std::uint32_t h = height_of(i);
  const std::size_t page =
      (static_cast<std::size_t>(i) - level_base(h)) << h;
  return static_cast<char*>(pool_) + page * page_size_;
}

std::uint32_t TBuddy::node_at(const void* p, std::uint32_t order) const {
  const std::size_t off = static_cast<const char*>(p) -
                          static_cast<const char*>(pool_);
  const std::size_t page = off / page_size_;
  return level_base(order) + static_cast<std::uint32_t>(page >> order);
}

TBuddy::State TBuddy::state_of(std::uint32_t i) const {
  std::atomic_ref<const std::uint8_t> b(node_state_[i]);
  return static_cast<State>(b.load(std::memory_order_acquire) & kStateMask);
}

void TBuddy::lock_node(std::uint32_t i) {
  std::atomic_ref<std::uint8_t> b(node_state_[i]);
  sync::Backoff bo;
  for (;;) {
    std::uint8_t cur = b.load(std::memory_order_relaxed);
    if ((cur & kLockBit) == 0 &&
        b.compare_exchange_weak(cur, cur | kLockBit,
                                std::memory_order_acquire,
                                std::memory_order_relaxed)) {
      TOMA_CTR_INC("tbuddy.lock_acquire");
      return;
    }
    TOMA_CTR_INC("tbuddy.lock_contended");
    bo.pause();
  }
}

void TBuddy::unlock_node(std::uint32_t i) {
  std::atomic_ref<std::uint8_t> b(node_state_[i]);
  b.fetch_and(static_cast<std::uint8_t>(~kLockBit),
              std::memory_order_release);
}

void TBuddy::set_state_locked(std::uint32_t i, State s) {
  std::atomic_ref<std::uint8_t> b(node_state_[i]);
  TOMA_DASSERT(b.load(std::memory_order_relaxed) & kLockBit);
  b.store(static_cast<std::uint8_t>(kLockBit | s), std::memory_order_release);
}

TBuddy::State TBuddy::derive(std::uint32_t i) const {
  const State l = state_of(left_child(i));
  const State r = state_of(left_child(i) + 1);
  const bool below =
      l == kAvailable || l == kPartial || r == kAvailable || r == kPartial;
  return below ? kPartial : kBusy;
}

void TBuddy::fixup_from(std::uint32_t i) {
  // Recompute ancestors hand-over-hand. Holding a node's lock freezes its
  // children (every child transition locks the parent), so derive() under
  // the lock reads a stable snapshot.
  while (i >= 1) {
    const std::uint32_t p = parent_of(i);  // 0 when i is the root
    if (p != 0) lock_node(p);
    lock_node(i);
    std::atomic_ref<std::uint8_t> b(node_state_[i]);
    const auto cur =
        static_cast<State>(b.load(std::memory_order_relaxed) & kStateMask);
    bool changed = false;
    // Available nodes are explicit (never derived); owned-Busy nodes have
    // inactive subtrees, so a fixup reaching one derives the same Busy.
    if (cur != kAvailable) {
      const State d = derive(i);
      if (d != cur) {
        set_state_locked(i, d);
        changed = true;
      }
    }
    unlock_node(i);
    if (p != 0) unlock_node(p);
    if (!changed || p == 0) return;
    i = p;
  }
}

bool TBuddy::try_claim(std::uint32_t i) {
  const std::uint32_t p = parent_of(i);
  if (p != 0) lock_node(p);
  lock_node(i);
  std::atomic_ref<std::uint8_t> b(node_state_[i]);
  const auto cur =
      static_cast<State>(b.load(std::memory_order_relaxed) & kStateMask);
  bool ok = false;
  if (cur == kAvailable) {
    set_state_locked(i, kBusy);
    ok = true;
  }
  unlock_node(i);
  if (p != 0) unlock_node(p);
  if (ok && p != 0) fixup_from(p);
  return ok;
}

std::uint32_t TBuddy::find_and_claim(std::uint32_t order) {
  sync::Backoff bo;
  auto& rng = gpu::this_thread::rng();
  for (;;) {
    std::uint32_t i = 1;
    std::uint32_t h = max_order_;
    if (h == order) {
      if (try_claim(1)) return 1;
      st_retries_.fetch_add(1, std::memory_order_relaxed);
      TOMA_CTR_INC("tbuddy.descent_retry");
      bo.pause();
      continue;
    }
    bool dead_end = false;
    while (!dead_end) {
      for (std::uint32_t d = 0; d < descent_latency_; ++d) {
        gpu::this_thread::yield();  // modeled node-state read latency
      }
      // Scatter: visit the two children in a per-thread random order so
      // concurrent descents fan out across the tree (ScatterAlloc-style).
      const std::uint32_t first =
          left_child(i) + (scatter_ ? (rng.next() & 1) : 0);
      const std::uint32_t second = sibling_of(first);
      const std::uint32_t ch = h - 1;
      bool descended = false;
      for (const std::uint32_t c : {first, second}) {
        const State s = state_of(c);
        if (ch == order) {
          if (s == kAvailable && try_claim(c)) return c;
        } else if (s == kPartial) {
          i = c;
          h = ch;
          descended = true;
          break;
        }
      }
      if (!descended) dead_end = true;
    }
    st_retries_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("tbuddy.descent_retry");
    bo.pause();
  }
}

void* TBuddy::allocate(std::uint32_t order) {
  if (order > max_order_) {
    st_failed_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  // Per-order semaphore outcome: kAcquired means a block of this order is
  // (or will be) claimable; kMustGrow makes us the splitter one order up.
  [[maybe_unused]] const std::uint64_t wait_t0 = TOMA_NOW_NS();
  const auto res = sems_[order]->wait(1, 2);
  TOMA_HIST("tbuddy.sem_wait_ns", TOMA_NOW_NS() - wait_t0);
  if (res == sync::BulkSemaphore::WaitResult::kAcquired) {
    TOMA_CTRV_INC("tbuddy.sem_acquired", 24, order);
    const std::uint32_t node = find_and_claim(order);
    st_allocs_.fetch_add(1, std::memory_order_relaxed);
    void* p = node_addr(node);
    const std::size_t page =
        (static_cast<const char*>(p) - static_cast<const char*>(pool_)) /
        page_size_;
    std::atomic_ref<std::uint8_t> rec(order_of_page_[page]);
    TOMA_DASSERT(rec.load(std::memory_order_relaxed) == kNoAllocation);
    rec.store(static_cast<std::uint8_t>(order), std::memory_order_release);
    return p;
  }

  // kMustGrow: produce a batch of two order-n blocks by splitting an
  // order-(n+1) block; keep one, publish the other.
  TOMA_CTRV_INC("tbuddy.sem_grow", 24, order);
  TOMA_TRACE("tbuddy.grow", order);
  if (order == max_order_) {
    sems_[order]->signal(0, 1);  // cannot grow past the root: true OOM
    st_failed_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  void* parent_mem = allocate(order + 1);
  if (parent_mem == nullptr) {
    sems_[order]->signal(0, 1);  // growth failed; let waiters re-decide
    st_failed_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Un-register the parent allocation record; it is being split, not used.
  {
    const std::size_t page = (static_cast<const char*>(parent_mem) -
                              static_cast<const char*>(pool_)) /
                             page_size_;
    std::atomic_ref<std::uint8_t> rec(order_of_page_[page]);
    rec.store(kNoAllocation, std::memory_order_release);
  }

  const std::uint32_t pnode = node_at(parent_mem, order + 1);
  const std::uint32_t keep = left_child(pnode);
  const std::uint32_t give = keep + 1;

  // Paper order: block Busy -> Partial first, then one child -> Available,
  // then signal. Claimers retry through the transient window.
  {
    const std::uint32_t gp = parent_of(pnode);
    if (gp != 0) lock_node(gp);
    lock_node(pnode);
    set_state_locked(pnode, kPartial);
    unlock_node(pnode);
    if (gp != 0) unlock_node(gp);
  }
  {
    lock_node(pnode);
    lock_node(give);
    set_state_locked(give, kAvailable);
    // Signal inside the locked section (same reason as the free path):
    // "give is Available" and "its unit is in C" become visible together
    // to anyone holding the parent lock.
    sems_[order]->signal(1, 1);
    unlock_node(give);
    unlock_node(pnode);
  }
  // pnode went (owned) Busy -> Partial: recompute its ancestors.
  if (pnode > 1) fixup_from(parent_of(pnode));
  st_splits_.fetch_add(1, std::memory_order_relaxed);
  st_allocs_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("tbuddy.split");

  void* p = node_addr(keep);
  const std::size_t page =
      (static_cast<const char*>(p) - static_cast<const char*>(pool_)) /
      page_size_;
  std::atomic_ref<std::uint8_t> rec(order_of_page_[page]);
  TOMA_DASSERT(rec.load(std::memory_order_relaxed) == kNoAllocation);
  rec.store(static_cast<std::uint8_t>(order), std::memory_order_release);
  return p;
}

void* TBuddy::allocate_bytes(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  return allocate(order_for_bytes(bytes));
}

void TBuddy::free(void* p) {
  TOMA_ASSERT_MSG(contains(p), "free of a pointer outside the pool");
  const std::size_t off =
      static_cast<const char*>(p) - static_cast<const char*>(pool_);
  TOMA_ASSERT_MSG(off % page_size_ == 0,
                  "TBuddy pointers are page aligned by construction");
  const std::size_t page = off / page_size_;
  std::atomic_ref<std::uint8_t> rec(order_of_page_[page]);
  const std::uint8_t order = rec.load(std::memory_order_acquire);
  TOMA_ASSERT_MSG(order != kNoAllocation,
                  "double free or foreign pointer passed to TBuddy");
  rec.store(kNoAllocation, std::memory_order_release);
  st_frees_.fetch_add(1, std::memory_order_relaxed);
  free_block(node_at(p, order), order);
}

std::size_t TBuddy::allocation_size(const void* p) const {
  TOMA_ASSERT(contains(p));
  const std::size_t off =
      static_cast<const char*>(p) - static_cast<const char*>(pool_);
  TOMA_ASSERT(off % page_size_ == 0);
  std::atomic_ref<const std::uint8_t> rec(order_of_page_[off / page_size_]);
  const std::uint8_t order = rec.load(std::memory_order_acquire);
  TOMA_ASSERT_MSG(order != kNoAllocation,
                  "allocation_size of a non-live pointer");
  return page_size_ << order;
}

void TBuddy::free_block(std::uint32_t i, std::uint32_t order) {
  for (;;) {
    if (i == 1) {  // the root has no buddy: just release it
      lock_node(1);
      set_state_locked(1, kAvailable);
      unlock_node(1);
      sems_[order]->signal(1, 0);
      return;
    }

    const std::uint32_t p = parent_of(i);
    const std::uint32_t b = sibling_of(i);

    // Merge attempt (paper: must always be attempted; only a failed
    // try_wait proves the buddy cannot be consumed).
    bool merged = false;
    if (sems_[order]->try_wait(1)) {
      lock_node(p);
      lock_node(b);
      std::atomic_ref<std::uint8_t> bb(node_state_[b]);
      if ((bb.load(std::memory_order_relaxed) & kStateMask) == kAvailable) {
        set_state_locked(b, kBusy);
        merged = true;
      }
      unlock_node(b);
      unlock_node(p);
      if (!merged) {
        sems_[order]->signal(1, 0);  // return the reserved unit
      }
    }

    if (!merged) {
      // Release i as Available — but never publish "both siblings
      // Available" (tree property 1). Under the parent lock the buddy's
      // state is frozen; if it is Available we must merge instead, which
      // requires consuming its accounting unit. That unit may be
      // transiently absent (its releaser signals under this same parent
      // lock, so normally it is visible — but a third-party merge attempt
      // elsewhere can briefly borrow units via try_wait). In that case we
      // back off and re-decide: either the unit returns (we merge) or a
      // claimer takes the buddy (we release plain).
      for (;;) {
        lock_node(p);
        lock_node(i);
        std::atomic_ref<std::uint8_t> bb(node_state_[b]);
        if ((bb.load(std::memory_order_acquire) & kStateMask) ==
            kAvailable) {
          if (sems_[order]->try_wait(1)) {
            // Safe to take b's lock while holding p and i: any other
            // holder of b either needed p first (we have it) or is a
            // (b, child-of-b) pair that never waits on p or i.
            lock_node(b);
            set_state_locked(b, kBusy);
            unlock_node(b);
            unlock_node(i);  // i stays Busy: we own the merged pair
            unlock_node(p);
            merged = true;
            break;
          }
          unlock_node(i);
          unlock_node(p);
          gpu::this_thread::yield();
          continue;
        }
        set_state_locked(i, kAvailable);
        // Signal under the parent lock: anyone who subsequently observes
        // i Available under this lock also observes its unit in C (or the
        // unit already claimed, which makes i Busy again first).
        sems_[order]->signal(1, 0);
        unlock_node(i);
        unlock_node(p);
        fixup_from(p);
        return;
      }
    }

    // Merged: the parent (Partial) becomes our owned block one order up.
    {
      const std::uint32_t gp = parent_of(p);
      if (gp != 0) lock_node(gp);
      lock_node(p);
      set_state_locked(p, kBusy);
      unlock_node(p);
      if (gp != 0) unlock_node(gp);
      if (gp != 0) fixup_from(gp);
    }
    st_merges_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("tbuddy.merge");
    i = p;
    ++order;
  }
}

std::uint64_t TBuddy::available(std::uint32_t order) const {
  TOMA_ASSERT(order <= max_order_);
  return sems_[order]->value();
}

std::size_t TBuddy::free_bytes() const {
  std::size_t total = 0;
  for (std::uint32_t h = 0; h <= max_order_; ++h) {
    total += sems_[h]->value() * (page_size_ << h);
  }
  return total;
}

std::size_t TBuddy::largest_free_block() const {
  for (std::uint32_t h = max_order_ + 1; h-- > 0;) {
    if (sems_[h]->value() > 0) return page_size_ << h;
  }
  return 0;
}

TBuddyStats TBuddy::stats() const {
  TBuddyStats s;
  s.allocs = st_allocs_.load(std::memory_order_relaxed);
  s.frees = st_frees_.load(std::memory_order_relaxed);
  s.splits = st_splits_.load(std::memory_order_relaxed);
  s.merges = st_merges_.load(std::memory_order_relaxed);
  s.failed_allocs = st_failed_.load(std::memory_order_relaxed);
  s.descent_retries = st_retries_.load(std::memory_order_relaxed);
  return s;
}

bool TBuddy::check_consistency() const {
  bool ok = true;
  auto fail = [&](const char* what, std::uint32_t node) {
    std::fprintf(stderr, "TBuddy inconsistency: %s at node %u\n", what, node);
    ok = false;
  };

  const std::uint32_t n = node_count();
  std::vector<std::uint64_t> avail_at(max_order_ + 1, 0);
  std::vector<bool> has_avail(n, false);  // available anywhere in subtree

  for (std::uint32_t i = n - 1; i >= 1; --i) {
    if (node_state_[i] & kLockBit) fail("node locked while quiescent", i);
    const auto s = static_cast<State>(node_state_[i] & kStateMask);
    const bool leaf = i >= level_base(0);
    const bool child_avail =
        !leaf && (has_avail[left_child(i)] || has_avail[left_child(i) + 1]);
    if (s == kAvailable) {
      avail_at[height_of(i)]++;
      if (child_avail) fail("available node with available descendant", i);
      has_avail[i] = true;
    } else {
      has_avail[i] = child_avail;
      if (s == kPartial && !child_avail) {
        fail("partial node without available descendant", i);
      }
    }
    if (i > 1 && (i & 1) == 0) {  // left child: check sibling pair once
      const auto sl = static_cast<State>(node_state_[i] & kStateMask);
      const auto sr = static_cast<State>(node_state_[i + 1] & kStateMask);
      if (sl == kAvailable && sr == kAvailable) {
        fail("both siblings available", i);
      }
    }
  }

  for (std::uint32_t h = 0; h <= max_order_; ++h) {
    const auto snap = sems_[h]->snapshot();
    if (snap.expected != 0 || snap.reserved != 0) {
      std::fprintf(stderr,
                   "TBuddy inconsistency: semaphore %u not quiescent "
                   "(E=%" PRIu64 " R=%" PRIu64 ")\n",
                   h, snap.expected, snap.reserved);
      ok = false;
    }
    if (snap.value != avail_at[h]) {
      std::fprintf(stderr,
                   "TBuddy inconsistency: order %u semaphore C=%" PRIu64
                   " but %" PRIu64 " available nodes\n",
                   h, snap.value, avail_at[h]);
      ok = false;
    }
  }

  // Allocation records: each recorded allocation must be a Busy node whose
  // subtree contains nothing available.
  for (std::size_t page = 0; page < order_of_page_.size(); ++page) {
    const std::uint8_t order = order_of_page_[page];
    if (order == kNoAllocation) continue;
    const std::uint32_t node =
        level_base(order) + static_cast<std::uint32_t>(page >> order);
    const auto s = static_cast<State>(node_state_[node] & kStateMask);
    if (s != kBusy) fail("allocated node not busy", node);
    if (has_avail[node]) fail("allocated node with available descendant", node);
  }

  return ok;
}

}  // namespace toma::alloc
