// Allocator geometry (paper §4).
//
// All constants follow the paper:
//   page      4 KB   — TBuddy order-0 block; also the UAlloc bin size
//   chunk   256 KB   — UAlloc arena granule, carved out of TBuddy
//   bin       4 KB   — fixed-size-class block container, 128 B header
//   tail     128 B   — per-bin spill space living in bins 0/1 of the chunk
//   min allocation 8 B, UAlloc classes 8..1024 B (2 KB rounds to 4 KB:
//   a bin cannot hold two 2 KB blocks — the paper's degenerate case)
//
// NOTE on the chunk size: the paper says chunks are 512 KB, but its own
// layout — a single one-word bitmap "to track the state of the 64 bins in
// the chunk", two header bins, and 62 tails of 128 B (= exactly the
// payload of those two bins) — pins the chunk at 64 x 4 KB = 256 KB.
// 512 KB / 4 KB would be 128 bins and would need 126 tails and a two-word
// bitmap. We implement the precisely-specified 64-bin structure and treat
// the stated 512 KB as the paper's internal inconsistency (see DESIGN.md).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bitops.hpp"

namespace toma::alloc {

inline constexpr std::size_t kPageSize = 4096;
inline constexpr std::size_t kChunkSize = 256 * 1024;
inline constexpr std::size_t kBinSize = kPageSize;
inline constexpr std::size_t kBinHeaderSize = 128;
inline constexpr std::size_t kTailSize = 128;
inline constexpr std::size_t kMinAlloc = 8;
inline constexpr std::size_t kMaxUAllocSize = 1024;

inline constexpr std::uint32_t kBinsPerChunk =
    static_cast<std::uint32_t>(kChunkSize / kBinSize);          // 64
inline constexpr std::uint32_t kHeaderBins = 2;                 // bins 0 and 1
inline constexpr std::uint32_t kDataBins = kBinsPerChunk - kHeaderBins;  // 62
inline constexpr std::size_t kBinDataSize = kBinSize - kBinHeaderSize;  // 3968
/// Logical bin payload once its tail is appended (sizes <= 128 B only).
inline constexpr std::size_t kBinLogicalSize = kBinDataSize + kTailSize;  // 4096

/// Number of UAlloc size classes: 8, 16, 32, 64, 128, 256, 512, 1024.
inline constexpr std::uint32_t kNumSizeClasses = 8;

/// Size class index for a (power-of-two) size in [8, 1024].
constexpr std::uint32_t size_class_of(std::size_t pow2_size) {
  return util::log2_floor(pow2_size) - util::log2_floor(kMinAlloc);
}

/// Block size of a size class.
constexpr std::size_t size_of_class(std::uint32_t cls) {
  return kMinAlloc << cls;
}

/// Blocks a bin of class `cls` can hold. Classes whose block fits in a
/// tail slot (<= 128 B) use the full logical 4 KB; larger classes only the
/// 3968 B physical payload. (1 KB -> 3 blocks; the paper's moderate-failure
/// sizes. 2 KB would be 1 block, which is why it rounds to 4 KB instead.)
constexpr std::uint32_t bin_capacity(std::uint32_t cls) {
  const std::size_t s = size_of_class(cls);
  return static_cast<std::uint32_t>(s <= kTailSize ? kBinLogicalSize / s
                                                   : kBinDataSize / s);
}

/// TBuddy order for an allocation of `bytes` (bytes > kMaxUAllocSize*2
/// rounds up to pages). Order 0 is one page.
constexpr std::uint32_t order_for_bytes(std::size_t bytes) {
  const std::size_t pages =
      (bytes + kPageSize - 1) / kPageSize;
  return util::log2_ceil(pages);
}

/// TBuddy order of one UAlloc chunk (256 KB / 4 KB = 64 pages = order 6).
inline constexpr std::uint32_t kChunkOrder = 6;

// --- magazine front-end (not in the paper; see docs/INTERNALS.md §4b) ------
//
// Each (arena, size class) keeps a bounded LIFO of recently freed blocks in
// front of the bulk-semaphore/RCU bin machinery. A cached block's bitmap
// bit stays *claimed*, so the invariant "semaphore value == claimable
// blocks in listed bins" never sees cached blocks at all.

/// Compile-time default for the magazine front-end (CMake option
/// TOMA_UALLOC_MAGAZINES, default ON). UAlloc::set_magazines() toggles at
/// runtime; this macro only selects the starting state, so a magazines-OFF
/// build still compiles (and tests) the machinery.
#ifndef TOMA_UALLOC_MAGAZINES
#define TOMA_UALLOC_MAGAZINES 1
#endif

/// Magazine depth as a multiple of the class's bin capacity. Two bins'
/// worth lets a class absorb a full bin of churn plus a warp-sized burst
/// without touching the semaphore, while bounding how much memory a
/// magazine can strand (overflow spills through the paper's free path).
inline constexpr std::uint32_t kMagazineBinFactor = 2;

/// Cached-block bound of one (arena, class) magazine.
constexpr std::uint32_t magazine_capacity(std::uint32_t cls) {
  return kMagazineBinFactor * bin_capacity(cls);
}

// --- fixed-size fast lane (not in the paper; docs/INTERNALS.md §4d) --------
//
// A per-(SM, size-class) constant-time allocation lane for the hottest
// small classes (8..64 B), after Blelloch & Wei, "Concurrent Fixed-Size
// Allocation and Free in Constant Time" (arXiv:2008.04296): each lane is a
// LIFO block stack with O(1) push/pop, backed by bounded *slabs* carved
// out of the UAlloc bins in one batched semaphore transaction. A
// lane-resident block keeps its bitmap bit claimed and owns no semaphore
// unit — the same claimed-while-cached invariant the magazines, the
// quicklists, and the HeapSan quarantine rely on — so the lane commutes
// with every accounting invariant below it.

/// Compile-time default for the fixed-size fast lane (CMake option
/// TOMA_FIXED_LANE, default ON). GpuAllocator::set_fixed_lane() toggles at
/// runtime; this macro only selects the starting state, so a lane-OFF
/// build still compiles (and tests) the machinery.
#ifndef TOMA_FIXED_LANE
#define TOMA_FIXED_LANE 1
#endif

/// Largest block size the lane serves. Classes 0..3 (8, 16, 32, 64 B) are
/// the paper's hottest sizes (Figure 7) and the ones whose bins hold
/// enough blocks for slab-grained refill to amortize well.
inline constexpr std::size_t kFixedLaneMaxSize = 64;

/// Number of lane-served size classes (8, 16, 32, 64 B -> 4).
inline constexpr std::uint32_t kFixedLaneClasses =
    size_class_of(kFixedLaneMaxSize) + 1;

/// Largest refill slab: bound on blocks fetched per bulk-semaphore
/// transaction, sizing the stack-local transfer array in the refill path
/// (256 pointers = 2 KB, safe on 32 KB fiber stacks).
inline constexpr std::uint32_t kFixedLaneMaxRefill = 256;

/// Refill slab size: blocks fetched from UAlloc in ONE bulk-semaphore
/// transaction. A whole bin where the transfer array allows it — the
/// batch then claims a freshly grown bin outright instead of leaving it
/// half-listed.
constexpr std::uint32_t fixed_lane_refill(std::uint32_t cls) {
  return bin_capacity(cls) < kFixedLaneMaxRefill ? bin_capacity(cls)
                                                 : kFixedLaneMaxRefill;
}

/// Bulk transactions per refill: each batch reuses the same stack-local
/// array (the slab is spliced into the lane between batches), and the
/// loop stops early once the lane reaches its low-water stock, so this
/// is a ceiling, not a quota.
inline constexpr std::uint32_t kFixedLaneRefillBatches = 4;

/// Cached-block bound of one (SM, class) lane. Two bins' worth, but
/// never less than 256 blocks: the larger lane classes have small bins
/// (64 x 64 B), and a lane that can buffer only a couple of warps' worth
/// of stock drains to empty between refills — the stock-ahead that makes
/// pops sync-free needs headroom in blocks, not bins. 256 blocks of the
/// largest lane class is 16 KB per (SM, class): still magazine-scale.
constexpr std::uint32_t fixed_lane_capacity(std::uint32_t cls) {
  const std::uint32_t two_bins = 2 * bin_capacity(cls);
  return two_bins < 256 ? 256 : two_bins;
}

/// Hysteresis: a push that crosses the capacity spills the lane down to
/// the low-water mark through the real free path, so one crossing buys
/// cap/2 further O(1) frees before the next spill. The low-water mark is
/// also the refill target: a refill stocks to here, no further.
constexpr std::uint32_t fixed_lane_low_water(std::uint32_t cls) {
  return fixed_lane_capacity(cls) / 2;
}

/// Proactive top-up trigger: a *successful* pop that leaves the stock
/// below this mark refills the lane in the background of its own hit —
/// the popper already holds its block, so the batch transaction adds
/// latency to one hit in ~low_water rather than a rendezvous for a whole
/// stalled warp. This is what keeps the lane from oscillating between
/// full and empty under allocation-only bursts.
constexpr std::uint32_t fixed_lane_top_trigger(std::uint32_t cls) {
  return fixed_lane_capacity(cls) / 4;
}

// --- TBuddy quicklist front-end (not in the paper; docs/INTERNALS.md §4c) --
//
// Each TBuddy order keeps a bounded Treiber stack of recently freed blocks
// whose tree nodes stay *Busy* and whose semaphore units stay consumed, so
// the invariant "semaphore value == Available blocks in the tree" never
// sees cached blocks at all. Free pushes instead of cascading merges
// (deferred coalescing); allocate pops before touching the semaphore or
// the tree. Merges run only when the per-order high-water mark is hit or
// when trim()/pool pressure demands the memory back.

/// Compile-time default for the TBuddy quicklist (CMake option
/// TOMA_TBUDDY_QUICKLIST, default ON). TBuddy::set_quicklist() toggles at
/// runtime; this macro only selects the starting state, so a
/// quicklist-OFF build still compiles (and tests) the machinery.
#ifndef TOMA_TBUDDY_QUICKLIST
#define TOMA_TBUDDY_QUICKLIST 1
#endif

/// Compile-time default for the optimistic single-CAS descent claim
/// (CMake option TOMA_TBUDDY_CAS_CLAIM, default ON).
/// TBuddy::set_cas_claim() toggles at runtime.
#ifndef TOMA_TBUDDY_CAS_CLAIM
#define TOMA_TBUDDY_CAS_CLAIM 1
#endif

/// High-water mark (cached-block cap) of one per-order quicklist. A flat
/// cap would let large orders strand megabytes, so the cap also shrinks
/// with the share of the pool one order can hold: at most half the blocks
/// that exist at that order. The root order caps at 0 — caching the whole
/// pool would pin every byte while reporting nothing allocatable.
inline constexpr std::uint32_t kQuicklistHighWater = 32;

constexpr std::uint32_t quicklist_capacity(std::uint32_t order,
                                           std::uint32_t max_order) {
  const std::uint32_t blocks_at_order = 1u << (max_order - order);
  const std::uint32_t half = blocks_at_order / 2;
  return half < kQuicklistHighWater ? half : kQuicklistHighWater;
}

/// Hysteresis: a spill (push on a full quicklist) flushes the list down to
/// the low-water mark through the real free path, so one crossing of the
/// high-water mark buys cap/2 further O(1) frees before the next flush.
constexpr std::uint32_t quicklist_low_water(std::uint32_t cap) {
  return cap / 2;
}

// --- stream-ordered front-end (not in the paper; docs/INTERNALS.md §6) -----
//
// Per-(pool, stream) deferred free lists in front of the whole allocator:
// free_async parks the block on its stream (bitmap bit / tree node / quota
// charge stay claimed — the magazines' invariant trick one layer up), and
// the batch drains through the normal free path at the stream's next sync
// point. malloc_async may reuse a same-stream pending block directly:
// stream order guarantees the old use finished before the new one starts,
// the same observation cudaMallocAsync's memory pools exploit.

/// Compile-time default for the stream-ordered async front-end (CMake
/// option TOMA_STREAM_ASYNC, default ON). Pool::set_async() toggles at
/// runtime; this macro only selects the starting state, so an async-OFF
/// build still compiles (and tests) the machinery — free_async then
/// degenerates to an immediate synchronous free.
#ifndef TOMA_STREAM_ASYNC
#define TOMA_STREAM_ASYNC 1
#endif

/// Deferred frees one (pool, stream) slot may hold before free_async
/// drains it inline — bounds how much memory pending batches can strand
/// on a stream that never synchronizes.
inline constexpr std::uint32_t kStreamPendingCap = 4096;

// --- HeapSan sanitizer layer (not in the paper; docs/INTERNALS.md §5) ------
//
// Redzones + poison + quarantine + shadow table under GpuAllocator. Freed
// blocks sit in a bounded quarantine whose bitmap bits / tree nodes /
// semaphore units stay consumed — the same "cached blocks are still
// allocated to the accounting" trick the magazines and quicklists use.

/// Compile-time default for the HeapSan layer (CMake option TOMA_HEAPSAN,
/// default OFF). GpuAllocator::set_heapsan() toggles at runtime; this
/// macro only selects the starting state, so every build compiles (and
/// tests) the machinery.
#ifndef TOMA_HEAPSAN
#define TOMA_HEAPSAN 0
#endif

static_assert(kChunkSize / kPageSize == (1u << kChunkOrder));
static_assert(kBinsPerChunk == 64, "one 64-bit word tracks the chunk bins");
static_assert(kDataBins == 62, "two header bins leave 62 data bins");
static_assert(kDataBins * kTailSize == kHeaderBins * kBinDataSize,
              "tails exactly fill the header bins' payload");
static_assert(size_of_class(kNumSizeClasses - 1) == kMaxUAllocSize);
static_assert(bin_capacity(0) == 512, "8 B bins track 512 blocks");
static_assert(bin_capacity(kNumSizeClasses - 1) == 3, "1 KB bins hold 3");

}  // namespace toma::alloc
