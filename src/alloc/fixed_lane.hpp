// FixedLane: a constant-time fixed-size allocation fast lane for the hot
// small size classes (8..64 B), after Blelloch & Wei, "Concurrent
// Fixed-Size Allocation and Free in Constant Time" (arXiv:2008.04296).
//
// Structure (docs/INTERNALS.md §4d):
//
//   * One lane per (SM, lane class): a LIFO stack of free blocks linked
//     through their own dead payload, push/pop O(1) under a lane-private
//     spin lock (uncontended in the steady state — exactly the Magazine
//     discipline one layer up).
//   * Refill is *slab-grained*: a refill fetches fixed_lane_refill(cls)
//     blocks per bulk-semaphore transaction (UAlloc::allocate_batch) —
//     either a batched claim over the listed bins or one freshly grown
//     bin whose first half is the slab — looping until the lane reaches
//     its low-water mark. This is what closes the fig7 gap: the
//     workload's per-thread single malloc costs 1/refill-th of a
//     semaphore round trip instead of a whole one.
//   * The lane *stays* stocked two ways. A pop that drains the stock
//     below fixed_lane_top_trigger(cls) restocks proactively (top-up),
//     so steady-state traffic rides first-try pops instead of
//     oscillating between full and empty. An in-kernel miss coalesces
//     the warp: mates that missed the same empty lane rendezvous, the
//     leader fetches one slab ungated (a stampede of leaders briefly
//     over-stocks and the spill hysteresis reclaims the excess — gating
//     the leader would strand its whole warp, measurably worse), and
//     the members pop the freshly stocked lane after one broadcast.
//   * Spill has hysteresis: a push that crosses fixed_lane_capacity(cls)
//     drains the lane down to the low-water mark through the paper's
//     free-publication path, so one crossing buys cap/2 further O(1)
//     frees.
//
// Invariant: a lane-resident block is, to the bin machinery, still
// *allocated* — its bitmap bit stays claimed, its bin's free_count
// excludes it, and no semaphore unit exists for it (the magazines'
// claimed-while-cached invariant). flush() re-publishes every cached
// block, so trim(), pool-pressure OOM retries, and runtime disable all
// see exact accounting.
//
// The lane sits in GpuAllocator::route_alloc / free_base, *ahead of* the
// magazine probe inside UAlloc: lane-served classes reach the magazines
// only via spill/flush, larger classes never see the lane.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "alloc/config.hpp"
#include "sync/spin_mutex.hpp"

namespace toma::gpu {
class ThreadCtx;
}

namespace toma::alloc {

class UAlloc;
struct BinHeader;

struct FixedLaneStats {
  std::uint64_t hits = 0;           // allocations served by a lane pop
  std::uint64_t misses = 0;         // pops on an empty lane (refill follows)
  std::uint64_t refills = 0;        // slab refill transactions
  std::uint64_t refill_blocks = 0;  // blocks fetched by refills
  std::uint64_t topups = 0;         // proactive low-stock restocks (on hits)
  std::uint64_t spills = 0;         // pushes that crossed the high water
  std::uint64_t spill_blocks = 0;   // blocks drained by spill hysteresis
  std::uint64_t flushes = 0;        // blocks drained by flush()
  std::uint64_t cached = 0;         // blocks lane-resident right now
};

class FixedLane {
 public:
  /// `num_arenas` lanes per class, matching the UAlloc arena (= SM) count.
  FixedLane(UAlloc& ua, bool enabled);
  ~FixedLane();

  FixedLane(const FixedLane&) = delete;
  FixedLane& operator=(const FixedLane&) = delete;

  /// Is a rounded request size lane-served at all (compile-time shape)?
  static constexpr bool eligible_size(std::size_t rounded) {
    return rounded <= kFixedLaneMaxSize;
  }

  /// Runtime switch (default: the compile-time TOMA_FIXED_LANE). Turning
  /// the lane off flushes every cached block back into the bin
  /// accounting, so the paper-faithful configuration is reachable at any
  /// quiescent point.
  void set_enabled(bool on) {
    on_.store(on, std::memory_order_relaxed);
    if (!on) flush();
  }
  bool enabled() const { return on_.load(std::memory_order_relaxed); }

  /// Allocate a block of rounded power-of-two `size` (<= kFixedLaneMaxSize)
  /// from the calling SM's lane, refilling a slab from UAlloc on a miss.
  /// nullptr when the refill found no memory anywhere — the caller falls
  /// through to the ordinary allocation path (which can still satisfy a
  /// single block where a slab failed).
  void* allocate(std::size_t size);

  /// Free-side hook, called with the block already decoded. Caches `p` on
  /// the calling SM's lane (cross-SM frees land on the *freeing* SM, like
  /// magazine pushes — the block carries its identity in the bin header).
  /// Returns false when the lane is off or the class is not lane-served;
  /// the caller then frees through the normal path.
  bool try_free_decoded(void* p, const BinHeader* bin);

  /// Drain every lane: each cached block re-enters the accounting through
  /// the free-publication path. Returns blocks flushed. Safe concurrently
  /// with allocation (new blocks may be cached while we drain; each
  /// *observed* block is flushed exactly once).
  std::size_t flush();

  /// Blocks cached right now across all lanes (quiescent-exact).
  std::size_t cached_count() const;

  /// Blocks cached in one (arena, class) lane (tests, stats).
  std::uint32_t lane_count(std::uint32_t arena, std::uint32_t cls) const;

  FixedLaneStats stats() const;

  /// Test hook: verify every cached block still holds its claimed bitmap
  /// bit, belongs to the class it is filed under, and chain lengths match
  /// the counts. Quiescent-only, like UAlloc::check_consistency.
  bool check_consistency() const;

 private:
  /// One (SM, class) lane. Blocks are linked through their first word
  /// (every lane class is >= 8 B and 8-byte aligned). Cache-line aligned
  /// so neighbouring lanes never false-share.
  struct alignas(64) Lane {
    mutable sync::SpinMutex mu;
    void* head = nullptr;
    std::atomic<std::uint32_t> count{0};
    /// At most ONE thread refills a lane at a time. A fiber that yields
    /// inside the refill's semaphore wait would otherwise let every
    /// warp-mate that missed the same empty lane fetch its own slab —
    /// the lane would balloon far past its capacity bound. Losers fall
    /// through to the ordinary single-block path instead of piling on.
    std::atomic<bool> refilling{false};

    void* pop();
    /// Push one block; returns the count *after* the push (the caller
    /// applies the spill hysteresis).
    std::uint32_t push(void* p);
    /// Splice a pre-linked chain of n blocks (head first) in O(1);
    /// returns the count after the splice (spill-hysteresis input).
    std::uint32_t push_chain(void* chain_head, void* chain_tail,
                             std::uint32_t n);
    /// Detach the whole chain; count is zeroed. Returns the old head.
    void* pop_all();
  };

  Lane& lane(std::uint32_t arena, std::uint32_t cls) {
    return lanes_[arena * kFixedLaneClasses + cls];
  }
  const Lane& lane(std::uint32_t arena, std::uint32_t cls) const {
    return lanes_[arena * kFixedLaneClasses + cls];
  }

  /// In-kernel miss path: warp-mates that missed the same empty lane form
  /// one coalesced group, the leader fetches one slab for everyone (plus
  /// the stock-ahead surplus), and the members pop the freshly stocked
  /// lane — one transaction and one warp sync per miss *group*, where the
  /// per-block path below UAlloc would pay a sync per warp forever.
  void* allocate_coalesced_miss(Lane& ln, std::uint32_t home_arena,
                                std::uint32_t cls, gpu::ThreadCtx& ctx);

  /// Solo miss path (host threads, singleton groups): refill under the
  /// lane's single-refiller gate; a caller that finds the gate held falls
  /// through to the ordinary single-block path.
  void* gated_refill(Lane& ln, std::uint32_t home_arena, std::uint32_t cls);

  /// Slab refill on a miss: fetch up to `max_batches` batches from UAlloc
  /// (stopping at the low-water mark), keep one block for the caller,
  /// splice the rest into `ln`. Coalesced-miss leaders pass 1 — a stampede
  /// of concurrent leaders already multiplies the fetch, so each looping
  /// to the target would overshoot the cap and churn the spill path.
  void* refill(Lane& ln, std::uint32_t home_arena, std::uint32_t cls,
               std::uint32_t max_batches = kFixedLaneRefillBatches);

  /// Spill hysteresis: drain `ln` down to the low-water mark through the
  /// free-publication path.
  void spill(Lane& ln, std::uint32_t cls);

  /// Return one cached block to the bin accounting (decode + free_slow).
  void publish(void* p);

  UAlloc* ua_;
  std::uint32_t num_arenas_;
  std::atomic<bool> on_;
  std::vector<Lane> lanes_;  // num_arenas_ * kFixedLaneClasses

  mutable std::atomic<std::uint64_t> st_hits_{0};
  mutable std::atomic<std::uint64_t> st_misses_{0};
  mutable std::atomic<std::uint64_t> st_refills_{0};
  mutable std::atomic<std::uint64_t> st_refill_blocks_{0};
  mutable std::atomic<std::uint64_t> st_topups_{0};
  mutable std::atomic<std::uint64_t> st_spills_{0};
  mutable std::atomic<std::uint64_t> st_spill_blocks_{0};
  mutable std::atomic<std::uint64_t> st_flushes_{0};
};

}  // namespace toma::alloc
