// Stream-ordered allocation front-end (not in the paper; see
// docs/INTERNALS.md §6 and docs/API.md).
//
// free_async(p, stream) does no allocator work at all: it parks `p` on
// the (pool, stream) slot in O(1). To the bin/tree machinery a pending
// block is still *allocated* — its bitmap bit stays claimed, its tree
// node stays Busy, its quota charge stays reserved — the same "cached
// blocks are still allocated to the accounting" invariant the magazines,
// quicklists and HeapSan quarantine rely on, applied one layer up.
//
// The batch drains at stream-sync points through the ordinary free path
// (magazines / quicklists first). Draining back-to-back clusters the
// RCU barriers that bin unlink/retire emit, so the conditional-barrier
// delegation (paper §4.2.1) collapses them into ~one grace period per
// batch instead of one per free.
//
// malloc_async(size, stream) first tries to *reuse* a pending block of
// the same stream whose slot exactly fits the rounded request: stream
// order guarantees the old use completed before the new one starts, so
// the block never needs to re-enter the allocator at all (the trick
// cudaMallocAsync's stream-ordered pools are built around). Cross-stream
// pending blocks are never reused — they become claimable only after
// their stream synchronizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "alloc/config.hpp"
#include "gpusim/stream.hpp"
#include "sync/spin_mutex.hpp"

namespace toma::alloc {

class GpuAllocator;

/// Aggregate front-end statistics (approximate under concurrency).
struct StreamFrontEndStats {
  std::uint64_t deferred = 0;         // free_async enqueues
  std::uint64_t reuse_hits = 0;       // malloc_async served from pending
  std::uint64_t reuse_misses = 0;     // ...that fell through to malloc
  std::uint64_t drained = 0;          // pending frees pushed to the pool
  std::uint64_t drain_batches = 0;    // non-empty drains
  std::uint64_t overflow_drains = 0;  // drains forced by kStreamPendingCap
  std::uint64_t pending = 0;          // deferred frees right now
};

/// Deferred-operation state of one (pool, stream) pair. UAlloc blocks
/// bucket by size class so reuse is a pop; TBuddy blocks keep their byte
/// size for exact-match reuse (a handful at most in practice).
class StreamSlot {
 public:
  StreamSlot() = default;
  StreamSlot(const StreamSlot&) = delete;
  StreamSlot& operator=(const StreamSlot&) = delete;

 private:
  friend class StreamFrontEnd;

  sync::SpinMutex mu_;
  std::vector<void*> classes_[kNumSizeClasses];
  std::vector<std::pair<void*, std::size_t>> large_;
  std::uint32_t pending_ = 0;
};

class StreamFrontEnd {
 public:
  explicit StreamFrontEnd(GpuAllocator& alloc) : alloc_(&alloc) {}
  ~StreamFrontEnd() { sync_all(); }

  StreamFrontEnd(const StreamFrontEnd&) = delete;
  StreamFrontEnd& operator=(const StreamFrontEnd&) = delete;

  /// Park `p` (a raw, non-sanitized block of the owning pool) on `s`.
  /// O(1) except when the slot hits kStreamPendingCap, which drains it
  /// inline (the caller pays, like a magazine spill).
  void free_async(void* p, gpu::Stream& s);

  /// Same-stream reuse: a pending block whose slot capacity is exactly
  /// `effective` bytes (GpuAllocator::effective_size of the request), or
  /// nullptr on miss.
  void* try_reuse(std::size_t effective, gpu::Stream& s);

  /// Drain every pending free of `s` through the pool's free path and
  /// complete the stream's tickets. Returns the batch size.
  std::size_t sync(gpu::Stream& s);

  /// Drain everything regardless of stream (pool teardown, trim).
  std::size_t sync_all();

  /// Drain `s` and forget its slot (stream destruction).
  std::size_t release_stream(gpu::Stream& s);

  /// Deferred frees right now, across all streams.
  std::size_t pending() const {
    return st_deferred_.load(std::memory_order_relaxed) -
           st_drained_.load(std::memory_order_relaxed) -
           st_reuse_hits_.load(std::memory_order_relaxed);
  }

  StreamFrontEndStats stats() const;

 private:
  StreamSlot& slot_of(gpu::Stream& s);
  /// Drain one slot through the allocator; returns the batch size.
  std::size_t drain(StreamSlot& slot);

  GpuAllocator* alloc_;
  mutable sync::SpinMutex map_mu_;
  std::unordered_map<std::uint32_t, std::unique_ptr<StreamSlot>> slots_;

  std::atomic<std::uint64_t> st_deferred_{0};
  std::atomic<std::uint64_t> st_reuse_hits_{0};
  std::atomic<std::uint64_t> st_reuse_misses_{0};
  std::atomic<std::uint64_t> st_drained_{0};
  std::atomic<std::uint64_t> st_drain_batches_{0};
  std::atomic<std::uint64_t> st_overflow_drains_{0};
};

}  // namespace toma::alloc
