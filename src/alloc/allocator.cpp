#include "alloc/allocator.hpp"

#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <cstdint>

#include "obs/postmortem.hpp"
#include "obs/telemetry.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace toma::alloc {

namespace {

// Histogram-vector index for a rounded request size: log2(size) - log2(8),
// so 8 B -> 0, 16 B -> 1, ..., 256 KB -> 15; larger buddy routes clamp.
constexpr std::uint32_t kSizeClassBuckets = 16;

std::uint32_t size_class_index(std::size_t rounded) {
  const std::uint32_t lg = util::log2_floor(rounded);
  return lg < 3 ? 0 : lg - 3;
}

}  // namespace

GpuAllocator::GpuAllocator(std::size_t pool_bytes, std::uint32_t num_arenas)
    : pool_bytes_(pool_bytes) {
  TOMA_ASSERT(util::is_pow2(pool_bytes));
  TOMA_ASSERT(pool_bytes >= kChunkSize);
  // The pool must be aligned to its own size so every buddy block is
  // aligned to its block size (which the free() routing relies on).
  pool_ = std::aligned_alloc(pool_bytes, pool_bytes);
  TOMA_ASSERT_MSG(pool_ != nullptr, "pool reservation failed");
  buddy_ = std::make_unique<TBuddy>(pool_, pool_bytes, kPageSize);
  ualloc_ = std::make_unique<UAlloc>(*buddy_, num_arenas);
  san_ = std::make_unique<san::HeapSan>(
      san::HeapSanConfig{}, [this](void* base) { free_base(base); });
  san_->set_enabled(TOMA_HEAPSAN != 0);
  // Fatal asserts anywhere below us should leave a flight record.
  obs::install_postmortem_hook();
}

GpuAllocator::~GpuAllocator() {
  // Verify redzones/poison and report leaks while the allocators are still
  // alive: teardown drains the quarantine through the real free paths.
  if (san_->engaged()) san_->teardown_check();
  san_.reset();
  ualloc_.reset();
  buddy_.reset();
  std::free(pool_);
}

std::size_t GpuAllocator::effective_size(std::size_t size) {
  if (size == 0) return 0;
  std::size_t rounded = util::round_up_pow2(size < kMinAlloc ? kMinAlloc
                                                             : size);
  if (rounded > kMaxUAllocSize) {
    rounded = util::align_up(rounded, kPageSize);  // 2 KB -> 4 KB
  }
  return rounded;
}

void* GpuAllocator::route_alloc(std::size_t rounded) {
  if (rounded <= kMaxUAllocSize) return ualloc_->allocate(rounded);
  return buddy_->allocate_bytes(rounded);
}

void GpuAllocator::free_base(void* base) {
  if (util::is_aligned(base, kPageSize)) {
    buddy_->free(base);
  } else {
    ualloc_->free(base);
  }
}

void* GpuAllocator::malloc(std::size_t size) {
  if (size == 0) return nullptr;
  st_mallocs_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("alloc.malloc");
  [[maybe_unused]] const std::uint64_t t0 = TOMA_NOW_NS();
  void* p;
  std::size_t rounded;
  if (san_->enabled()) {
    // Sanitized path: the underlying request grows by two redzones; the
    // user pointer sits one redzone into the slot. Routing and class
    // rounding apply to the *wrapped* size.
    const std::size_t wrapped = san_->wrap_size(size);
    rounded = util::round_up_pow2(wrapped < kMinAlloc ? kMinAlloc : wrapped);
    p = route_alloc(rounded);
    if (p == nullptr && san_->flush_quarantine() > 0) {
      // Quarantined blocks pin real memory; under pool pressure they are
      // reclaimed before OOM is declared (same contract as the magazine
      // and quicklist flushes inside the allocators).
      p = route_alloc(rounded);
    }
    if (p != nullptr) p = san_->on_alloc(p, effective_size(wrapped), size);
  } else {
    rounded = util::round_up_pow2(size < kMinAlloc ? kMinAlloc : size);
    p = route_alloc(rounded);
    if (p == nullptr && san_->engaged() && san_->flush_quarantine() > 0) {
      p = route_alloc(rounded);  // mixed mode: quarantine still pins memory
    }
  }
  TOMA_HISTV("alloc.malloc_ns", kSizeClassBuckets, size_class_index(rounded),
             TOMA_NOW_NS() - t0);
  if (p == nullptr) {
    st_failed_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("alloc.failed");
    TOMA_TRACE("alloc.oom", size);
  }
  return p;
}

void GpuAllocator::free(void* p) {
  if (p == nullptr) return;
  st_frees_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("alloc.free");
  [[maybe_unused]] const std::uint64_t t0 = TOMA_NOW_NS();
  // Sanitized blocks (including ones allocated before a set_heapsan(false))
  // detour through verification + quarantine; the memory reaches the raw
  // allocators on eviction via free_base(). Unknown pointers fall through.
  if (san_->engaged() &&
      san_->on_free(p) == san::HeapSan::FreeResult::kOk) {
    TOMA_HIST("alloc.free_ns", TOMA_NOW_NS() - t0);
    return;
  }
  free_base(p);
  TOMA_HIST("alloc.free_ns", TOMA_NOW_NS() - t0);
}

void* GpuAllocator::calloc(std::size_t n, std::size_t size) {
  if (n != 0 && size > SIZE_MAX / n) {
    // Overflowing requests are failed allocation attempts, not silent
    // no-ops: count them so mallocs == frees + failed_mallocs stays an
    // invariant across every path.
    st_mallocs_.fetch_add(1, std::memory_order_relaxed);
    st_failed_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("alloc.malloc");
    TOMA_CTR_INC("alloc.failed");
    return nullptr;
  }
  const std::size_t total = n * size;
  void* p = malloc(total);
  if (p != nullptr) std::memset(p, 0, total);
  return p;
}

void* GpuAllocator::realloc(void* p, std::size_t size) {
  if (p == nullptr) return malloc(size);
  if (size == 0) {
    free(p);
    return nullptr;
  }
  st_reallocs_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("alloc.realloc");
  std::size_t san_old = 0;
  if (san_->engaged() && san_->lookup(p, &san_old)) {
    // Sanitized block: in place iff the wrapped new size still rounds to
    // the slot we hold; the redzone/poison boundary moves to the new size.
    if (san_->try_resize(p, size, effective_size(san_->wrap_size(size)))) {
      st_reallocs_inplace_.fetch_add(1, std::memory_order_relaxed);
      TOMA_CTR_INC("alloc.realloc_inplace");
      return p;
    }
    void* q = malloc(size);
    if (q == nullptr) return nullptr;
    std::memcpy(q, p, std::min(san_old, size));
    free(p);
    return q;
  }
  const std::size_t old_cap = usable_size(p);
  if (effective_size(size) == old_cap) {
    // The new size rounds to the very block we hold (same UAlloc class or
    // buddy order): no copy, no free/malloc round trip. Note
    // effective_size(size) >= size, so equality implies size <= old_cap.
    st_reallocs_inplace_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("alloc.realloc_inplace");
    return p;
  }
  void* q = malloc(size);
  if (q == nullptr) return nullptr;
  std::memcpy(q, p, std::min(old_cap, size));
  free(p);
  return q;
}

std::size_t GpuAllocator::usable_size(void* p) const {
  TOMA_ASSERT(p != nullptr);
  // A sanitized block's usable bytes are exactly what was requested: the
  // rounding slack is redzone, and writing into it must be reported.
  std::size_t san_size;
  if (san_->engaged() && san_->lookup(p, &san_size)) return san_size;
  if (util::is_aligned(p, kPageSize)) return buddy_->allocation_size(p);
  return ualloc_->usable_size(p);
}

GpuAllocatorStats GpuAllocator::stats() const {
  GpuAllocatorStats s;
  s.buddy = buddy_->stats();
  s.ualloc = ualloc_->stats();
  s.heapsan = san_->stats();
  s.mallocs = st_mallocs_.load(std::memory_order_relaxed);
  s.failed_mallocs = st_failed_.load(std::memory_order_relaxed);
  s.frees = st_frees_.load(std::memory_order_relaxed);
  s.reallocs = st_reallocs_.load(std::memory_order_relaxed);
  s.reallocs_inplace = st_reallocs_inplace_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace toma::alloc
