#include "alloc/allocator.hpp"

#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <cstdint>

#include "obs/postmortem.hpp"
#include "obs/telemetry.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace toma::alloc {

namespace {

// Histogram-vector index for a rounded request size: log2(size) - log2(8),
// so 8 B -> 0, 16 B -> 1, ..., 256 KB -> 15; larger buddy routes clamp.
constexpr std::uint32_t kSizeClassBuckets = 16;

std::uint32_t size_class_index(std::size_t rounded) {
  const std::uint32_t lg = util::log2_floor(rounded);
  return lg < 3 ? 0 : lg - 3;
}

}  // namespace

GpuAllocator::GpuAllocator(const HeapConfig& cfg)
    : pool_bytes_(cfg.pool_bytes), quota_(cfg.quota_bytes) {
  TOMA_ASSERT_MSG(cfg.valid(), "invalid HeapConfig");
  // The pool must be aligned to its own size so every buddy block is
  // aligned to its block size (which the free() routing relies on).
  pool_ = std::aligned_alloc(pool_bytes_, pool_bytes_);
  TOMA_ASSERT_MSG(pool_ != nullptr, "pool reservation failed");
  buddy_ = std::make_unique<TBuddy>(pool_, pool_bytes_, kPageSize);
  buddy_->set_quicklist(cfg.quicklist);
  buddy_->set_cas_claim(cfg.cas_claim);
  ualloc_ = std::make_unique<UAlloc>(*buddy_, cfg.num_arenas);
  ualloc_->set_magazines(cfg.magazines);
  lane_ = std::make_unique<FixedLane>(*ualloc_, cfg.fixed_lane);
  san_ = std::make_unique<san::HeapSan>(
      san::HeapSanConfig{}, [this](void* base) { free_base(base); });
  san_->set_enabled(cfg.heapsan);
  // Fatal asserts anywhere below us should leave a flight record.
  obs::install_postmortem_hook();
}

GpuAllocator::GpuAllocator(std::size_t pool_bytes, std::uint32_t num_arenas)
    : GpuAllocator(HeapConfig{.pool_bytes = pool_bytes,
                              .num_arenas = num_arenas}) {}

GpuAllocator::~GpuAllocator() {
  // Verify redzones/poison and report leaks while the allocators are still
  // alive: teardown drains the quarantine through the real free paths.
  if (san_->engaged()) san_->teardown_check();
  san_.reset();
  lane_.reset();
  ualloc_.reset();
  buddy_.reset();
  std::free(pool_);
}

std::size_t GpuAllocator::effective_size(std::size_t size) {
  if (size == 0) return 0;
  std::size_t rounded = util::round_up_pow2(size < kMinAlloc ? kMinAlloc
                                                             : size);
  if (rounded > kMaxUAllocSize) {
    rounded = util::align_up(rounded, kPageSize);  // 2 KB -> 4 KB
  }
  return rounded;
}

void* GpuAllocator::route_alloc(std::size_t rounded) {
  if (rounded <= kMaxUAllocSize) {
    // Fixed-lane first hop: a hot small class is served by a constant-time
    // lane pop (or a slab-grained refill). A lane miss whose refill found
    // no memory still falls through — a single block can succeed where a
    // slab could not, so the failure rate stays truthful.
    if (FixedLane::eligible_size(rounded) && lane_->enabled()) {
      if (void* p = lane_->allocate(rounded)) return p;
    }
    return ualloc_->allocate(rounded);
  }
  return buddy_->allocate_bytes(rounded);
}

void GpuAllocator::free_base(void* base) {
  // The quota charge is released here — the one point where memory
  // actually returns to the underlying allocators (direct frees and
  // quarantine evictions both funnel through). The capacity is read
  // before the free: afterwards the block may be reused instantly.
  std::size_t charged;
  if (util::is_aligned(base, kPageSize)) {
    charged = buddy_->allocation_size(base);
    buddy_->free(base);
  } else {
    // Decode once, then route: lane-served classes are cached on the
    // freeing SM's lane (bitmap bit stays claimed — the block is a
    // pool-level cache, so the quota charge is still released);
    // everything else takes the ordinary UAlloc free.
    std::uint32_t idx;
    BinHeader* bin = ualloc_->decode_block(base, &idx);
    charged = size_of_class(bin->size_class);
    if (!lane_->try_free_decoded(base, bin)) {
      ualloc_->free_decoded(bin, idx, base);
    }
  }
  in_use_.fetch_sub(charged, std::memory_order_relaxed);
}

bool GpuAllocator::reserve_bytes(std::size_t n) {
  if (quota_.load(std::memory_order_relaxed) == 0) {
    in_use_.fetch_add(n, std::memory_order_relaxed);
    return true;
  }
  std::size_t cur = in_use_.load(std::memory_order_relaxed);
  for (;;) {
    if (cur + n > quota_.load(std::memory_order_relaxed)) return false;
    if (in_use_.compare_exchange_weak(cur, cur + n,
                                      std::memory_order_relaxed)) {
      return true;
    }
  }
}

void* GpuAllocator::malloc(std::size_t size, AllocStatus* status) {
  if (size == 0) {
    if (status != nullptr) *status = AllocStatus::kInvalidArg;
    return nullptr;
  }
  st_mallocs_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("alloc.malloc");
  [[maybe_unused]] const std::uint64_t t0 = TOMA_NOW_NS();
  const bool sanitized = san_->enabled();
  // Sanitized path: the underlying request grows by two redzones; the
  // user pointer sits one redzone into the slot. Routing and class
  // rounding apply to the *wrapped* size.
  const std::size_t wrapped = sanitized ? san_->wrap_size(size) : size;
  const std::size_t rounded =
      util::round_up_pow2(wrapped < kMinAlloc ? kMinAlloc : wrapped);
  const std::size_t charge = charged_size(rounded);
  if (!reserve_bytes(charge) &&
      !(san_->engaged() && san_->flush_quarantine() > 0 &&
        reserve_bytes(charge))) {
    // Quota rejection — quarantined blocks count against the quota until
    // evicted, so the quarantine is flushed before the verdict is final.
    st_failed_.fetch_add(1, std::memory_order_relaxed);
    st_quota_rejects_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("alloc.failed");
    TOMA_CTR_INC("alloc.quota_reject");
    TOMA_TRACE("alloc.quota", size);
    if (status != nullptr) *status = AllocStatus::kQuota;
    return nullptr;
  }
  void* p = route_alloc(rounded);
  if (p == nullptr && lane_->enabled()) {
    // Lane-resident blocks pin bins (and thus chunks) in other classes'
    // way; under pool pressure they are republished before OOM is
    // declared — so the exhaustion point with the lane on is the same as
    // without it.
    if (lane_->flush() > 0) p = route_alloc(rounded);
  }
  if (p == nullptr && san_->engaged() && san_->flush_quarantine() > 0) {
    // Quarantined blocks pin real memory; under pool pressure they are
    // reclaimed before OOM is declared (same contract as the magazine
    // and quicklist flushes inside the allocators).
    p = route_alloc(rounded);
  }
  if (p != nullptr && sanitized) {
    p = san_->on_alloc(p, effective_size(wrapped), size);
  }
  TOMA_HISTV("alloc.malloc_ns", kSizeClassBuckets, size_class_index(rounded),
             TOMA_NOW_NS() - t0);
  if (p == nullptr) {
    in_use_.fetch_sub(charge, std::memory_order_relaxed);
    st_failed_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("alloc.failed");
    TOMA_TRACE("alloc.oom", size);
    if (status != nullptr) *status = AllocStatus::kOom;
    return nullptr;
  }
  if (status != nullptr) *status = AllocStatus::kOk;
  return p;
}

void GpuAllocator::free(void* p) {
  if (p == nullptr) return;
  st_frees_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("alloc.free");
  [[maybe_unused]] const std::uint64_t t0 = TOMA_NOW_NS();
  // Sanitized blocks (including ones allocated before a set_heapsan(false))
  // detour through verification + quarantine; the memory reaches the raw
  // allocators on eviction via free_base(). Unknown pointers fall through.
  if (san_->engaged() &&
      san_->on_free(p) == san::HeapSan::FreeResult::kOk) {
    TOMA_HIST("alloc.free_ns", TOMA_NOW_NS() - t0);
    return;
  }
  free_base(p);
  TOMA_HIST("alloc.free_ns", TOMA_NOW_NS() - t0);
}

void* GpuAllocator::calloc(std::size_t n, std::size_t size,
                           AllocStatus* status) {
  if (n != 0 && size > SIZE_MAX / n) {
    // Overflowing requests are failed allocation attempts, not silent
    // no-ops: count them so mallocs == frees + failed_mallocs stays an
    // invariant across every path.
    st_mallocs_.fetch_add(1, std::memory_order_relaxed);
    st_failed_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("alloc.malloc");
    TOMA_CTR_INC("alloc.failed");
    if (status != nullptr) *status = AllocStatus::kInvalidArg;
    return nullptr;
  }
  const std::size_t total = n * size;
  void* p = malloc(total, status);
  if (p != nullptr) std::memset(p, 0, total);
  return p;
}

void* GpuAllocator::realloc(void* p, std::size_t size, AllocStatus* status) {
  if (p == nullptr) return malloc(size, status);
  if (size == 0) {
    free(p);
    if (status != nullptr) *status = AllocStatus::kOk;
    return nullptr;
  }
  if (status != nullptr) *status = AllocStatus::kOk;
  st_reallocs_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("alloc.realloc");
  std::size_t san_old = 0;
  if (san_->engaged() && san_->lookup(p, &san_old)) {
    // Sanitized block: in place iff the wrapped new size still rounds to
    // the slot we hold; the redzone/poison boundary moves to the new size.
    if (san_->try_resize(p, size, effective_size(san_->wrap_size(size)))) {
      st_reallocs_inplace_.fetch_add(1, std::memory_order_relaxed);
      TOMA_CTR_INC("alloc.realloc_inplace");
      return p;
    }
    void* q = malloc(size, status);
    if (q == nullptr) return nullptr;
    std::memcpy(q, p, std::min(san_old, size));
    free(p);
    return q;
  }
  const std::size_t old_cap = usable_size(p);
  if (effective_size(size) == old_cap) {
    // The new size rounds to the very block we hold (same UAlloc class or
    // buddy order): no copy, no free/malloc round trip. Note
    // effective_size(size) >= size, so equality implies size <= old_cap.
    st_reallocs_inplace_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("alloc.realloc_inplace");
    return p;
  }
  void* q = malloc(size, status);
  if (q == nullptr) return nullptr;
  std::memcpy(q, p, std::min(old_cap, size));
  free(p);
  return q;
}

std::size_t GpuAllocator::usable_size(void* p) const {
  TOMA_ASSERT(p != nullptr);
  // A sanitized block's usable bytes are exactly what was requested: the
  // rounding slack is redzone, and writing into it must be reported.
  std::size_t san_size;
  if (san_->engaged() && san_->lookup(p, &san_size)) return san_size;
  if (util::is_aligned(p, kPageSize)) return buddy_->allocation_size(p);
  return ualloc_->usable_size(p);
}

GpuAllocatorStats GpuAllocator::stats() const {
  GpuAllocatorStats s;
  s.buddy = buddy_->stats();
  s.ualloc = ualloc_->stats();
  s.lane = lane_->stats();
  s.heapsan = san_->stats();
  s.mallocs = st_mallocs_.load(std::memory_order_relaxed);
  s.failed_mallocs = st_failed_.load(std::memory_order_relaxed);
  s.frees = st_frees_.load(std::memory_order_relaxed);
  s.reallocs = st_reallocs_.load(std::memory_order_relaxed);
  s.reallocs_inplace = st_reallocs_inplace_.load(std::memory_order_relaxed);
  s.quota_rejects = st_quota_rejects_.load(std::memory_order_relaxed);
  s.bytes_in_use = in_use_.load(std::memory_order_relaxed);
  s.quota_bytes = quota_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace toma::alloc
