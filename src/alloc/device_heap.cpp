#include "alloc/device_heap.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace toma::alloc {

namespace {
std::atomic<GpuAllocator*> g_heap{nullptr};
std::once_flag g_default_once;
}  // namespace

GpuAllocator* set_device_heap(GpuAllocator* heap) {
  return g_heap.exchange(heap, std::memory_order_acq_rel);
}

GpuAllocator* device_heap() {
  return g_heap.load(std::memory_order_acquire);
}

GpuAllocator& ensure_device_heap(std::size_t pool_bytes,
                                 std::uint32_t num_arenas) {
  GpuAllocator* heap = device_heap();
  if (heap != nullptr) return *heap;
  std::call_once(g_default_once, [&] {
    // Intentionally leaked: the implicit heap lives for the process, as
    // CUDA's device heap does.
    auto* created = new GpuAllocator(pool_bytes, num_arenas);
    // Runtime override of the compile-time HeapSan default for the
    // implicit heap: TOMA_HEAPSAN=1 (or =0) in the environment, the
    // no-recompile analogue of ASAN_OPTIONS.
    if (const char* env = std::getenv("TOMA_HEAPSAN")) {
      created->set_heapsan(std::strcmp(env, "0") != 0);
    }
    GpuAllocator* expected = nullptr;
    g_heap.compare_exchange_strong(expected, created,
                                   std::memory_order_acq_rel);
  });
  return *device_heap();
}

void* device_malloc(std::size_t size) {
  return ensure_device_heap().malloc(size);
}

void device_free(void* p) {
  if (p == nullptr) return;
  GpuAllocator* heap = device_heap();
  if (heap != nullptr) heap->free(p);
}

}  // namespace toma::alloc
