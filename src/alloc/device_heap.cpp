#include "alloc/device_heap.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "alloc/pool.hpp"
#include "obs/telemetry.hpp"

namespace toma::alloc {

namespace {
std::atomic<GpuAllocator*> g_heap{nullptr};
std::atomic<bool> g_mismatch_warned{false};
}  // namespace

GpuAllocator* set_device_heap(GpuAllocator* heap) {
  return g_heap.exchange(heap, std::memory_order_acq_rel);
}

bool install_device_heap_if_absent(GpuAllocator* heap) {
  GpuAllocator* expected = nullptr;
  return g_heap.compare_exchange_strong(expected, heap,
                                        std::memory_order_acq_rel);
}

GpuAllocator* device_heap() {
  return g_heap.load(std::memory_order_acquire);
}

GpuAllocator& ensure_device_heap(std::size_t pool_bytes,
                                 std::uint32_t num_arenas) {
  GpuAllocator* heap = device_heap();
  if (heap == nullptr) {
    HeapConfig cfg;
    if (pool_bytes != 0) cfg.pool_bytes = pool_bytes;
    if (num_arenas != 0) cfg.num_arenas = num_arenas;
    // Runtime override of the compile-time HeapSan default for the
    // implicit heap: TOMA_HEAPSAN=1 (or =0) in the environment, the
    // no-recompile analogue of ASAN_OPTIONS.
    if (const char* env = std::getenv("TOMA_HEAPSAN")) {
      cfg.heapsan = std::strcmp(env, "0") != 0;
    }
    // The implicit heap is the manager's "default" pool (first call
    // wins; default_pool installs it as the device heap if none exists).
    // It lives for the process, as CUDA's device heap does.
    Pool& pool = PoolManager::instance().default_pool(cfg);
    heap = device_heap();
    if (heap == nullptr) heap = &pool.allocator();
  }
  // A caller asking for a specific size must learn when it lost the
  // race (or arrived after an explicit install) with a different
  // geometry — the old behaviour was to ignore the request silently.
  if (pool_bytes != 0 && heap->pool_bytes() != pool_bytes) {
    TOMA_CTR_INC("device_heap.ensure_mismatch");
    if (!g_mismatch_warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "[toma] warning: ensure_device_heap(pool_bytes=%zu) "
                   "ignored; device heap already exists with pool_bytes=%zu\n",
                   pool_bytes, heap->pool_bytes());
    }
  }
  return *heap;
}

void* device_malloc(std::size_t size) {
  return ensure_device_heap().malloc(size);
}

void device_free(void* p) {
  if (p == nullptr) return;
  GpuAllocator* heap = device_heap();
  if (heap != nullptr) heap->free(p);
}

}  // namespace toma::alloc
