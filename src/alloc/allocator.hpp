// GpuAllocator: the public malloc/free facade (paper §4).
//
// Size routing on malloc: requests round up to a power of two; sizes
// 8..1024 B go to UAlloc, everything larger (including the degenerate
// 2 KB case, which rounds to one 4 KB page) goes to TBuddy.
//
// Alignment routing on free: TBuddy blocks are always 4 KB aligned and
// UAlloc blocks never are, so a single alignment test replaces any shared
// ownership structure — eliminating what would otherwise be a global
// point of contention.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "alloc/config.hpp"
#include "alloc/tbuddy.hpp"
#include "alloc/ualloc.hpp"
#include "san/heapsan.hpp"

namespace toma::alloc {

struct GpuAllocatorStats {
  TBuddyStats buddy;
  UAllocStats ualloc;
  san::HeapSanStats heapsan;
  std::uint64_t mallocs = 0;
  std::uint64_t failed_mallocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t reallocs = 0;          // realloc calls that resized (p, n>0)
  std::uint64_t reallocs_inplace = 0;  // ...of which returned p unchanged
};

class GpuAllocator {
 public:
  /// Create an allocator over a freshly reserved pool of `pool_bytes`
  /// (a power of two; the host-side analogue of cudaMalloc'ing the pool).
  /// `num_arenas` is normally the device's SM count.
  GpuAllocator(std::size_t pool_bytes, std::uint32_t num_arenas);
  ~GpuAllocator();

  GpuAllocator(const GpuAllocator&) = delete;
  GpuAllocator& operator=(const GpuAllocator&) = delete;

  /// Device-side malloc. Returns nullptr for size 0, oversized requests,
  /// or pool exhaustion.
  void* malloc(std::size_t size);

  /// Device-side free. nullptr is ignored.
  void free(void* p);

  /// Zero-initialized allocation of n*size bytes (overflow-checked).
  void* calloc(std::size_t n, std::size_t size);

  /// Standard realloc semantics: grows/shrinks `p` to `size` bytes,
  /// preserving min(old, new) bytes; realloc(nullptr, s) == malloc(s);
  /// realloc(p, 0) frees p and returns nullptr. On failure the original
  /// block is untouched and nullptr is returned. Fast path: when the new
  /// size rounds to the block's existing capacity (same size class /
  /// buddy order), `p` is returned unchanged — no copy, no free/malloc
  /// round trip (counted in stats().reallocs_inplace).
  void* realloc(void* p, std::size_t size);

  /// Actual byte capacity of a live allocation (>= the requested size).
  std::size_t usable_size(void* p) const;

  /// The size a request will actually occupy (rounding + routing),
  /// exposed for fragmentation accounting in benchmarks.
  static std::size_t effective_size(std::size_t size);

  std::size_t pool_bytes() const { return pool_bytes_; }
  TBuddy& buddy() { return *buddy_; }
  UAlloc& ualloc() { return *ualloc_; }
  san::HeapSan& heapsan() { return *san_; }

  /// Runtime switch for the HeapSan layer (default: the compile-time
  /// TOMA_HEAPSAN option). Enabling sanitizes subsequent allocations;
  /// blocks allocated while enabled stay tracked until freed and evicted,
  /// so disabling mid-run is always safe.
  void set_heapsan(bool on) { san_->set_enabled(on); }
  bool heapsan_enabled() const { return san_->enabled(); }

  /// Scavenge cached-but-empty UAlloc bins/chunks back into the buddy
  /// pool (malloc_trim analogue); drains the HeapSan quarantine first
  /// (quarantined blocks pin bins and pages), flushes the magazines, then
  /// the TBuddy quicklists — UAlloc's retired chunks land in the order-6
  /// quicklist, so the buddy flush must run second for those chunks to
  /// coalesce back into maximal blocks. Returns chunks released.
  std::size_t trim() {
    if (san_->engaged()) san_->flush_quarantine();
    const std::size_t chunks = ualloc_->trim();
    buddy_->trim();
    return chunks;
  }

  /// Flush the UAlloc magazines only (cached blocks re-enter the bin
  /// accounting; no chunk is returned to the buddy). Returns blocks
  /// flushed.
  std::size_t release_cached() { return ualloc_->release_cached(); }

  GpuAllocatorStats stats() const;

  /// Combined quiescent consistency check (tests).
  bool check_consistency() const {
    return buddy_->check_consistency() && ualloc_->check_consistency();
  }

 private:
  /// Route a rounded request to UAlloc or TBuddy (the paper's size split).
  void* route_alloc(std::size_t rounded);
  /// Return an evicted HeapSan base pointer to its owner by alignment,
  /// without touching the user-facing malloc/free statistics.
  void free_base(void* base);

  std::size_t pool_bytes_;
  void* pool_;
  std::unique_ptr<TBuddy> buddy_;
  std::unique_ptr<UAlloc> ualloc_;
  std::unique_ptr<san::HeapSan> san_;

  mutable std::atomic<std::uint64_t> st_mallocs_{0};
  mutable std::atomic<std::uint64_t> st_failed_{0};
  mutable std::atomic<std::uint64_t> st_frees_{0};
  mutable std::atomic<std::uint64_t> st_reallocs_{0};
  mutable std::atomic<std::uint64_t> st_reallocs_inplace_{0};
};

}  // namespace toma::alloc
