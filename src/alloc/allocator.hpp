// GpuAllocator: the public malloc/free facade (paper §4).
//
// Size routing on malloc: requests round up to a power of two; sizes
// 8..1024 B go to UAlloc, everything larger (including the degenerate
// 2 KB case, which rounds to one 4 KB page) goes to TBuddy.
//
// Alignment routing on free: TBuddy blocks are always 4 KB aligned and
// UAlloc blocks never are, so a single alignment test replaces any shared
// ownership structure — eliminating what would otherwise be a global
// point of contention.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "alloc/config.hpp"
#include "alloc/fixed_lane.hpp"
#include "alloc/tbuddy.hpp"
#include "alloc/ualloc.hpp"
#include "san/heapsan.hpp"

namespace toma::alloc {

/// Why an allocation attempt returned nullptr. Surfaced through the
/// status out-parameters below and mapped to `toma_status_t` by the C
/// facade (include/toma/toma.h) — a quota rejection and true pool
/// exhaustion are different operational events and alert differently.
enum class AllocStatus : std::uint8_t {
  kOk = 0,
  kInvalidArg,  // size 0 / overflowing count*size
  kOom,         // pool exhausted at the routed size (true exhaustion)
  kQuota,       // the per-pool byte quota would be exceeded
};

/// `release_threshold` value meaning "never auto-trim on stream sync".
inline constexpr std::size_t kReleaseRetainAll = SIZE_MAX;

/// Construction parameters for a heap/pool. Replaces the positional
/// `(pool_bytes, num_arenas)` constructors: designated initializers keep
/// call sites readable as the knob count grows —
///
///   GpuAllocator a(HeapConfig{.pool_bytes = 16 << 20, .quota_bytes = 1 << 20});
///
/// Defaults reproduce the previous constructor's behaviour exactly (the
/// compile-time front-end toggles, no quota, retain-all threshold).
struct HeapConfig {
  /// Pool reservation (a power of two >= kChunkSize; the host-side
  /// analogue of cudaMalloc'ing the pool).
  std::size_t pool_bytes = 64 << 20;
  /// UAlloc arena count; normally the device's SM count.
  std::uint32_t num_arenas = 8;
  /// Byte quota on live allocations (charged at block granularity);
  /// 0 = unlimited (only the pool itself bounds usage).
  std::size_t quota_bytes = 0;
  /// Stream-sync trim threshold: when a sync point observes more than
  /// this many bytes stranded in caches/partial bins, the pool trims
  /// (CUDA's cudaMemPoolAttrReleaseThreshold analogue; CUDA defaults to
  /// 0 = release everything, we default to retain-all — the
  /// throughput-oriented choice).
  std::size_t release_threshold = kReleaseRetainAll;
  /// Per-operation latency SLO target in wall-clock ns for the pool's
  /// host-facing surface (Pool::malloc/free and the async forms): an
  /// operation slower than this bumps the pool's SLO-violation counter
  /// (`pool.slo_violation{pool="..."}`). 0 = no SLO. Telemetry-off
  /// builds never observe violations (the clock is compiled out).
  std::uint64_t slo_latency_ns = 0;
  bool heapsan = TOMA_HEAPSAN != 0;
  bool magazines = TOMA_UALLOC_MAGAZINES != 0;
  bool quicklist = TOMA_TBUDDY_QUICKLIST != 0;
  bool cas_claim = TOMA_TBUDDY_CAS_CLAIM != 0;
  bool fixed_lane = TOMA_FIXED_LANE != 0;

  /// Constructible without asserting? (The C facade validates before
  /// constructing; the constructor itself still asserts.)
  bool valid() const {
    return util::is_pow2(pool_bytes) && pool_bytes >= kChunkSize &&
           num_arenas >= 1;
  }
};

struct GpuAllocatorStats {
  TBuddyStats buddy;
  UAllocStats ualloc;
  FixedLaneStats lane;
  san::HeapSanStats heapsan;
  std::uint64_t mallocs = 0;
  std::uint64_t failed_mallocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t reallocs = 0;          // realloc calls that resized (p, n>0)
  std::uint64_t reallocs_inplace = 0;  // ...of which returned p unchanged
  std::uint64_t quota_rejects = 0;     // failed_mallocs due to the quota
  std::size_t bytes_in_use = 0;        // live bytes at block granularity
  std::size_t quota_bytes = 0;         // 0 = unlimited
};

class GpuAllocator {
 public:
  explicit GpuAllocator(const HeapConfig& cfg);

  /// Legacy positional form; equivalent to
  /// HeapConfig{.pool_bytes = pool_bytes, .num_arenas = num_arenas}.
  GpuAllocator(std::size_t pool_bytes, std::uint32_t num_arenas);
  ~GpuAllocator();

  GpuAllocator(const GpuAllocator&) = delete;
  GpuAllocator& operator=(const GpuAllocator&) = delete;

  /// Device-side malloc. Returns nullptr for size 0, oversized requests,
  /// pool exhaustion, or quota rejection; `status` (optional) reports
  /// which.
  void* malloc(std::size_t size, AllocStatus* status = nullptr);

  /// Device-side free. nullptr is ignored.
  void free(void* p);

  /// Zero-initialized allocation of n*size bytes (overflow-checked).
  void* calloc(std::size_t n, std::size_t size,
               AllocStatus* status = nullptr);

  /// Standard realloc semantics: grows/shrinks `p` to `size` bytes,
  /// preserving min(old, new) bytes; realloc(nullptr, s) == malloc(s);
  /// realloc(p, 0) frees p and returns nullptr. On failure the original
  /// block is untouched and nullptr is returned. Fast path: when the new
  /// size rounds to the block's existing capacity (same size class /
  /// buddy order), `p` is returned unchanged — no copy, no free/malloc
  /// round trip (counted in stats().reallocs_inplace).
  void* realloc(void* p, std::size_t size, AllocStatus* status = nullptr);

  /// Actual byte capacity of a live allocation (>= the requested size).
  std::size_t usable_size(void* p) const;

  /// The size a request will actually occupy (rounding + routing),
  /// exposed for fragmentation accounting in benchmarks.
  static std::size_t effective_size(std::size_t size);

  std::size_t pool_bytes() const { return pool_bytes_; }

  // --- quota ---------------------------------------------------------------
  // Live bytes are charged at block granularity (the rounded class/order
  // size — what the request actually occupies) when a block leaves the
  // underlying allocators and uncharged when it returns. Blocks parked in
  // the magazines/quicklists are pool-level caches, not tenant usage, so
  // they are not charged; HeapSan-quarantined blocks *are* still charged
  // (they pin real memory until evicted — a quota-hit pool under HeapSan
  // flushes its quarantine and retries before rejecting).

  /// Live bytes right now (block-granular).
  std::size_t bytes_in_use() const {
    return in_use_.load(std::memory_order_relaxed);
  }
  /// Current quota (0 = unlimited).
  std::size_t quota_bytes() const {
    return quota_.load(std::memory_order_relaxed);
  }
  /// Adjust the quota at runtime. Lowering below current usage rejects
  /// new allocations until usage drains — existing blocks are unaffected.
  void set_quota(std::size_t bytes) {
    quota_.store(bytes, std::memory_order_relaxed);
  }

  TBuddy& buddy() { return *buddy_; }
  UAlloc& ualloc() { return *ualloc_; }
  FixedLane& fixed_lane() { return *lane_; }
  san::HeapSan& heapsan() { return *san_; }

  /// Runtime switch for the fixed-size fast lane (default: the
  /// compile-time TOMA_FIXED_LANE option). Disabling flushes every
  /// lane-resident block back into the bin accounting.
  void set_fixed_lane(bool on) { lane_->set_enabled(on); }
  bool fixed_lane_enabled() const { return lane_->enabled(); }

  /// Would free(p) route through the fixed lane? True for lane-served
  /// UAlloc blocks while the lane is on — Pool::free_async uses this to
  /// skip the per-(pool, stream) pending-block machinery for blocks the
  /// lane recycles in O(1) anyway.
  bool lane_routable(void* p) const {
    return lane_->enabled() && !util::is_aligned(p, kPageSize) &&
           ualloc_->usable_size(p) <= kFixedLaneMaxSize;
  }

  /// Runtime switch for the HeapSan layer (default: the compile-time
  /// TOMA_HEAPSAN option). Enabling sanitizes subsequent allocations;
  /// blocks allocated while enabled stay tracked until freed and evicted,
  /// so disabling mid-run is always safe.
  void set_heapsan(bool on) { san_->set_enabled(on); }
  bool heapsan_enabled() const { return san_->enabled(); }

  /// Scavenge cached-but-empty UAlloc bins/chunks back into the buddy
  /// pool (malloc_trim analogue); drains the HeapSan quarantine first
  /// (quarantined blocks pin bins and pages), flushes the magazines, then
  /// the TBuddy quicklists — UAlloc's retired chunks land in the order-6
  /// quicklist, so the buddy flush must run second for those chunks to
  /// coalesce back into maximal blocks. Returns chunks released.
  std::size_t trim() {
    if (san_->engaged()) san_->flush_quarantine();
    lane_->flush();  // lane-resident blocks pin bins exactly like magazines
    const std::size_t chunks = ualloc_->trim();
    buddy_->trim();
    return chunks;
  }

  /// Flush the fixed lanes and UAlloc magazines only (cached blocks
  /// re-enter the bin accounting; no chunk is returned to the buddy).
  /// Returns blocks flushed.
  std::size_t release_cached() {
    return lane_->flush() + ualloc_->release_cached();
  }

  GpuAllocatorStats stats() const;

  /// Combined quiescent consistency check (tests).
  bool check_consistency() const {
    return buddy_->check_consistency() && ualloc_->check_consistency() &&
           lane_->check_consistency();
  }

 private:
  /// Route a rounded request to UAlloc or TBuddy (the paper's size split).
  void* route_alloc(std::size_t rounded);
  /// Return an evicted HeapSan base pointer to its owner by alignment,
  /// without touching the user-facing malloc/free statistics.
  void free_base(void* base);
  /// Bytes a request rounded to `rounded` occupies in its owner (the
  /// quota charge; equals the block's usable capacity).
  static std::size_t charged_size(std::size_t rounded) {
    return rounded <= kMaxUAllocSize
               ? rounded
               : util::align_up(rounded, kPageSize);
  }
  /// Quota admission: charge `n` bytes, or fail without charging.
  bool reserve_bytes(std::size_t n);

  std::size_t pool_bytes_;
  void* pool_;
  std::unique_ptr<TBuddy> buddy_;
  std::unique_ptr<UAlloc> ualloc_;
  std::unique_ptr<FixedLane> lane_;
  std::unique_ptr<san::HeapSan> san_;
  std::atomic<std::size_t> quota_{0};
  std::atomic<std::size_t> in_use_{0};

  mutable std::atomic<std::uint64_t> st_mallocs_{0};
  mutable std::atomic<std::uint64_t> st_failed_{0};
  mutable std::atomic<std::uint64_t> st_frees_{0};
  mutable std::atomic<std::uint64_t> st_reallocs_{0};
  mutable std::atomic<std::uint64_t> st_reallocs_inplace_{0};
  mutable std::atomic<std::uint64_t> st_quota_rejects_{0};
};

}  // namespace toma::alloc
