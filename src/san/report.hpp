// Structured bug reporting for the HeapSan subsystem (docs/INTERNALS.md §5).
//
// Every bug HeapSan detects is materialized as a BugReport carrying the
// offending block's full shadow-table metadata (who allocated it, where,
// when) plus the byte-level evidence (offset / expected / found) for
// memory-content violations. san::report() bumps the san.report.* counter
// for the bug class and hands the report to the installed handler.
//
// The default handler prints the report, dumps the telemetry snapshot and
// the faulting SM's trace ring (the same postmortem path fatal asserts
// take), and aborts — except for leaks, which print without aborting so an
// end-of-run leak report does not turn an intentionally leaking test into
// a crash. Tests install a capturing handler to assert that a specific bug
// class was detected and then keep running.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace toma::san {

enum class BugKind : std::uint8_t {
  kDoubleFree,   // free of a block sitting in quarantine (already freed)
  kInvalidFree,  // free of a pointer HeapSan never issued
  kOob,          // redzone byte overwritten (out-of-bounds write)
  kUaf,          // freed block's poison overwritten (use after free)
  kLeak,         // block still live at teardown
};

const char* bug_kind_name(BugKind kind);

struct BugReport {
  BugKind kind = BugKind::kInvalidFree;
  const void* user_ptr = nullptr;  // pointer the application holds
  const void* base = nullptr;      // underlying block (left redzone start)
  std::size_t user_size = 0;       // bytes the application asked for
  std::size_t capacity = 0;        // bytes the underlying block spans

  // Allocation-site identity from the shadow table.
  std::uint32_t alloc_sm = 0;
  std::uint32_t alloc_warp = 0;
  std::uint64_t alloc_tick = 0;  // trace-ring cursor at allocation
  std::uint64_t alloc_seq = 0;   // global allocation sequence number

  // Free-site identity (double-free: the *first* free; UAF: the free that
  // quarantined the block).
  std::uint32_t free_sm = 0;
  std::uint32_t free_warp = 0;
  std::uint64_t free_tick = 0;

  // Byte-level evidence for kOob / kUaf: offset is relative to user_ptr
  // (negative values land in the left redzone).
  std::ptrdiff_t bad_offset = 0;
  std::uint8_t expected = 0;
  std::uint8_t found = 0;

  const char* detail = nullptr;  // optional one-line context
};

/// Human-readable multi-line rendering of `r`.
std::string format_report(const BugReport& r);

using ReportHandler = void (*)(const BugReport&);

/// Install a report handler (tests). Returns the previous handler. Pass
/// nullptr to restore the default print-dump-abort handler.
ReportHandler set_report_handler(ReportHandler handler);

/// Count and dispatch `r` to the installed handler. Returns only if the
/// handler does (the default handler aborts for everything but kLeak).
void report(const BugReport& r);

}  // namespace toma::san
