#include "san/report.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "obs/postmortem.hpp"
#include "obs/telemetry.hpp"

namespace toma::san {

namespace {

void default_handler(const BugReport& r) {
  const std::string text = format_report(r);
  std::fputs(text.c_str(), stderr);
  std::fflush(stderr);
  if (r.kind == BugKind::kLeak) return;  // leak reports are advisory
  obs::postmortem_dump();
  std::abort();
}

std::atomic<ReportHandler> g_handler{&default_handler};

}  // namespace

const char* bug_kind_name(BugKind kind) {
  switch (kind) {
    case BugKind::kDoubleFree:
      return "double-free";
    case BugKind::kInvalidFree:
      return "invalid-free";
    case BugKind::kOob:
      return "out-of-bounds write";
    case BugKind::kUaf:
      return "use-after-free write";
    case BugKind::kLeak:
      return "leak";
  }
  return "unknown";
}

std::string format_report(const BugReport& r) {
  char buf[1024];
  int n = std::snprintf(
      buf, sizeof buf,
      "\n=== HeapSan: %s ===\n"
      "  block    : user %p (base %p), %zu bytes requested, %zu-byte slot\n"
      "  alloc'd  : sm %" PRIu32 " warp %" PRIu32 " tick %" PRIu64
      " (allocation #%" PRIu64 ")\n",
      bug_kind_name(r.kind), r.user_ptr, r.base, r.user_size, r.capacity,
      r.alloc_sm, r.alloc_warp, r.alloc_tick, r.alloc_seq);
  std::string out(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
  if (r.kind == BugKind::kDoubleFree || r.kind == BugKind::kUaf) {
    n = std::snprintf(buf, sizeof buf,
                      "  freed    : sm %" PRIu32 " warp %" PRIu32
                      " tick %" PRIu64 "\n",
                      r.free_sm, r.free_warp, r.free_tick);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
  }
  if (r.kind == BugKind::kOob || r.kind == BugKind::kUaf) {
    n = std::snprintf(buf, sizeof buf,
                      "  evidence : byte at user%+td is 0x%02x, expected "
                      "0x%02x\n",
                      r.bad_offset, r.found, r.expected);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
  }
  if (r.detail != nullptr) {
    n = std::snprintf(buf, sizeof buf, "  detail   : %s\n", r.detail);
    if (n > 0) out.append(buf, static_cast<std::size_t>(n));
  }
  out.append("=== end HeapSan report ===\n");
  return out;
}

ReportHandler set_report_handler(ReportHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &default_handler,
                            std::memory_order_acq_rel);
}

void report(const BugReport& r) {
  switch (r.kind) {
    case BugKind::kDoubleFree:
      TOMA_CTR_INC("san.report.double_free");
      break;
    case BugKind::kInvalidFree:
      TOMA_CTR_INC("san.report.invalid_free");
      break;
    case BugKind::kOob:
      TOMA_CTR_INC("san.report.oob");
      break;
    case BugKind::kUaf:
      TOMA_CTR_INC("san.report.uaf");
      break;
    case BugKind::kLeak:
      TOMA_CTR_INC("san.report.leak");
      break;
  }
  g_handler.load(std::memory_order_acquire)(r);
}

}  // namespace toma::san
