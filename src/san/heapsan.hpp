// HeapSan: a sanitizer layer under GpuAllocator (docs/INTERNALS.md §5).
//
// Layout of a sanitized block (capacity = bytes the underlying allocator
// granted for the wrapped request):
//
//   base                user_ptr             user_ptr+user_size   base+capacity
//     | left redzone 0xCA |  payload (0xA5 on alloc, 0x5A on free) | right 0xCB |
//
// The left redzone is exactly `redzone_bytes`; the right redzone covers
// everything from the end of the requested size to the end of the slot, so
// class/order rounding slack is guarded too. Redzones are verified on free
// and at teardown; the free poison is re-verified when a block leaves
// quarantine, which is what turns a write-after-free into a diagnosable
// report instead of silent corruption.
//
// Freed blocks enter a bounded FIFO quarantine instead of returning to the
// allocator. A quarantined block keeps its bitmap bit / tree node / bulk
// semaphore units consumed — the same invariant trick the magazines and
// quicklists use (a cached block is "still allocated" to the accounting) —
// so no allocator invariant ever sees quarantine. Eviction (cap overflow,
// trim(), pool pressure) releases the *base* pointer through a callback the
// owning GpuAllocator provides, bypassing the user-facing malloc/free
// statistics: one user free is one logical free no matter when the memory
// physically returns.
//
// The shadow side-table (sharded pointer -> record maps) powers precise
// double-free / invalid-free / overflow diagnostics and the end-of-run
// leak report; see san/report.hpp for what a report carries.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "san/report.hpp"
#include "sync/spin_mutex.hpp"

namespace toma::san {

struct HeapSanConfig {
  /// Left-redzone bytes (the right redzone is at least this wide and grows
  /// into rounding slack). Must be a multiple of 8 so sanitized UAlloc
  /// payloads keep 8-byte alignment.
  std::size_t redzone_bytes = 16;
  /// Quarantine bounds; eviction starts when either is exceeded.
  std::size_t quarantine_blocks = 512;
  std::size_t quarantine_bytes = 1 << 20;
  /// Fill fresh payloads with kAllocPoison (catches reads of uninitialized
  /// allocator memory in tests; off only for overhead experiments).
  bool poison_on_alloc = true;
};

struct HeapSanStats {
  bool enabled = false;
  std::uint64_t live_blocks = 0;
  std::uint64_t live_bytes = 0;  // user bytes, not slot capacity
  std::uint64_t quarantined_blocks = 0;
  std::uint64_t quarantined_bytes = 0;  // slot capacity held back from reuse
  std::uint64_t quarantine_pushes = 0;
  std::uint64_t quarantine_evictions = 0;
  std::uint64_t quarantine_flushes = 0;
  std::uint64_t redzone_checks = 0;
  std::uint64_t poison_checks = 0;
};

class HeapSan {
 public:
  static constexpr std::uint8_t kRedzoneLeft = 0xCA;
  static constexpr std::uint8_t kRedzoneRight = 0xCB;
  static constexpr std::uint8_t kAllocPoison = 0xA5;
  static constexpr std::uint8_t kFreePoison = 0x5A;

  /// `release` returns an evicted block's *base* pointer to the underlying
  /// allocator (GpuAllocator routes it by alignment without touching the
  /// user-facing statistics).
  using ReleaseFn = std::function<void(void* base)>;

  HeapSan(HeapSanConfig cfg, ReleaseFn release);
  ~HeapSan();

  HeapSan(const HeapSan&) = delete;
  HeapSan& operator=(const HeapSan&) = delete;

  const HeapSanConfig& config() const { return cfg_; }

  /// Bytes the underlying allocator must provide for a `user_size` request.
  std::size_t wrap_size(std::size_t user_size) const {
    return user_size + 2 * cfg_.redzone_bytes;
  }

  /// Runtime switch. Enabling affects subsequent allocations only;
  /// disabling keeps already-tracked blocks tracked until they are freed
  /// and evicted (engaged() stays true), so mixed-mode frees route safely.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// True while any path must consult HeapSan on free/usable_size/realloc:
  /// enabled, or tracked live blocks remain, or quarantine is non-empty.
  bool engaged() const {
    return enabled() || live_blocks_.load(std::memory_order_acquire) != 0 ||
           q_blocks_.load(std::memory_order_acquire) != 0;
  }

  /// Register a freshly allocated slot [base, base+capacity) backing a
  /// `user_size`-byte request: paints redzones and alloc poison, records
  /// the allocation in the shadow table, returns the user pointer.
  void* on_alloc(void* base, std::size_t capacity, std::size_t user_size);

  enum class FreeResult {
    kOk,        // handled (verified + quarantined, or reported double-free)
    kUntracked  // not a sanitized pointer; caller frees through raw routing
  };

  /// The sanitized free path: shadow lookup, redzone verification, payload
  /// poisoning, quarantine push (possibly evicting older blocks).
  FreeResult on_free(void* user_ptr);

  /// True iff `user_ptr` is a live sanitized allocation; reports the
  /// requested size through `user_size` when non-null.
  bool lookup(const void* user_ptr, std::size_t* user_size) const;

  /// In-place resize: succeeds iff the block's slot capacity equals
  /// `new_capacity` (what malloc would grant the wrapped new size). On
  /// success repaints poison/redzone around the new payload boundary.
  bool try_resize(void* user_ptr, std::size_t new_size,
                  std::size_t new_capacity);

  /// Evict every quarantined block (poison re-verification included),
  /// returning memory to the allocator. Called by trim() and on pool
  /// pressure before declaring OOM. Returns blocks evicted.
  std::size_t flush_quarantine();

  /// End-of-run verification: drains quarantine (verifying poison),
  /// re-checks every live block's redzones, and emits one kLeak report per
  /// block still live. Clears the shadow table. Returns the leak count.
  std::size_t teardown_check();

  HeapSanStats stats() const;

 private:
  struct Record {
    void* base = nullptr;
    std::size_t user_size = 0;
    std::size_t capacity = 0;
    std::uint64_t alloc_tick = 0;
    std::uint64_t alloc_seq = 0;
    std::uint64_t free_tick = 0;
    std::uint32_t alloc_sm = 0;
    std::uint32_t alloc_warp = 0;
    std::uint32_t free_sm = 0;
    std::uint32_t free_warp = 0;
    bool quarantined = false;
  };

  static constexpr std::size_t kShadowShards = 16;

  struct Shard {
    mutable sync::SpinMutex mu;
    std::unordered_map<const void*, Record> blocks;
  };

  static std::size_t shard_of(const void* p) {
    auto v = reinterpret_cast<std::uintptr_t>(p);
    v ^= v >> 17;
    v *= 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(v >> 60) % kShadowShards;
  }

  BugReport make_report(BugKind kind, const void* user_ptr,
                        const Record& rec) const;

  /// Verify both redzones of a block; emits one kOob report (at the first
  /// bad byte) when violated. Returns true when clean.
  bool verify_redzones(const void* user_ptr, const Record& rec);

  /// Verify free poison + redzones of a quarantined block; emits one kUaf
  /// report when violated. Returns true when clean.
  bool verify_quarantined(const void* user_ptr, const Record& rec);

  /// Pop blocks from the quarantine front until within (blocks, bytes)
  /// caps, verify and release them. Returns blocks evicted.
  std::size_t evict_down_to(std::size_t max_blocks, std::size_t max_bytes);

  HeapSanConfig cfg_;
  ReleaseFn release_;

  std::atomic<bool> enabled_{false};
  Shard shards_[kShadowShards];

  sync::SpinMutex q_mu_;
  std::deque<const void*> quarantine_;  // user pointers, FIFO
  std::size_t q_bytes_plain_ = 0;       // slot bytes held; guarded by q_mu_

  std::atomic<std::uint64_t> live_blocks_{0};
  std::atomic<std::uint64_t> live_bytes_{0};
  std::atomic<std::uint64_t> q_blocks_{0};
  std::atomic<std::uint64_t> q_bytes_{0};
  std::atomic<std::uint64_t> st_pushes_{0};
  std::atomic<std::uint64_t> st_evictions_{0};
  std::atomic<std::uint64_t> st_flushes_{0};
  std::atomic<std::uint64_t> st_redzone_checks_{0};
  std::atomic<std::uint64_t> st_poison_checks_{0};
  std::atomic<std::uint64_t> alloc_seq_{0};
};

}  // namespace toma::san
