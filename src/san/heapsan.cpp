#include "san/heapsan.hpp"

#include <cstring>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"
#include "util/assert.hpp"

namespace toma::san {

using Guard = sync::LockGuard<sync::SpinMutex>;

HeapSan::HeapSan(HeapSanConfig cfg, ReleaseFn release)
    : cfg_(cfg), release_(std::move(release)) {
  TOMA_ASSERT_MSG(cfg_.redzone_bytes >= 8 && cfg_.redzone_bytes % 8 == 0,
                  "redzone must be a positive multiple of 8 bytes");
  TOMA_ASSERT(release_ != nullptr);
}

HeapSan::~HeapSan() = default;

BugReport HeapSan::make_report(BugKind kind, const void* user_ptr,
                               const Record& rec) const {
  BugReport r;
  r.kind = kind;
  r.user_ptr = user_ptr;
  r.base = rec.base;
  r.user_size = rec.user_size;
  r.capacity = rec.capacity;
  r.alloc_sm = rec.alloc_sm;
  r.alloc_warp = rec.alloc_warp;
  r.alloc_tick = rec.alloc_tick;
  r.alloc_seq = rec.alloc_seq;
  r.free_sm = rec.free_sm;
  r.free_warp = rec.free_warp;
  r.free_tick = rec.free_tick;
  return r;
}

void* HeapSan::on_alloc(void* base, std::size_t capacity,
                        std::size_t user_size) {
  const std::size_t rz = cfg_.redzone_bytes;
  TOMA_DASSERT(base != nullptr);
  TOMA_DASSERT(capacity >= user_size + 2 * rz);
  auto* b = static_cast<std::uint8_t*>(base);
  std::uint8_t* user = b + rz;
  std::memset(b, kRedzoneLeft, rz);
  if (cfg_.poison_on_alloc) std::memset(user, kAllocPoison, user_size);
  std::memset(user + user_size, kRedzoneRight, capacity - rz - user_size);

  Record rec;
  rec.base = base;
  rec.user_size = user_size;
  rec.capacity = capacity;
  rec.alloc_sm = obs::current_sm();
  rec.alloc_warp = obs::current_warp();
  rec.alloc_tick = obs::current_tick();
  rec.alloc_seq = alloc_seq_.fetch_add(1, std::memory_order_relaxed);

  Shard& sh = shards_[shard_of(user)];
  {
    Guard g(sh.mu);
    // The base is held until eviction erases its record, so the same user
    // address cannot be live twice.
    sh.blocks.insert_or_assign(user, rec);
  }
  live_blocks_.fetch_add(1, std::memory_order_acq_rel);
  live_bytes_.fetch_add(user_size, std::memory_order_relaxed);
  return user;
}

bool HeapSan::verify_redzones(const void* user_ptr, const Record& rec) {
  st_redzone_checks_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("san.redzone_check");
  const std::size_t rz = cfg_.redzone_bytes;
  const auto* base = static_cast<const std::uint8_t*>(rec.base);
  const auto* user = static_cast<const std::uint8_t*>(user_ptr);
  for (std::size_t i = 0; i < rz; ++i) {
    if (base[i] != kRedzoneLeft) {
      BugReport r = make_report(BugKind::kOob, user_ptr, rec);
      r.bad_offset = static_cast<std::ptrdiff_t>(i) -
                     static_cast<std::ptrdiff_t>(rz);
      r.expected = kRedzoneLeft;
      r.found = base[i];
      r.detail = "left redzone overwritten (underflow)";
      report(r);
      return false;
    }
  }
  const std::uint8_t* rend = base + rec.capacity;
  for (const std::uint8_t* q = user + rec.user_size; q < rend; ++q) {
    if (*q != kRedzoneRight) {
      BugReport r = make_report(BugKind::kOob, user_ptr, rec);
      r.bad_offset = q - user;
      r.expected = kRedzoneRight;
      r.found = *q;
      r.detail = "right redzone overwritten (overflow)";
      report(r);
      return false;
    }
  }
  return true;
}

bool HeapSan::verify_quarantined(const void* user_ptr, const Record& rec) {
  st_poison_checks_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("san.poison_check");
  const auto* base = static_cast<const std::uint8_t*>(rec.base);
  const auto* user = static_cast<const std::uint8_t*>(user_ptr);
  const std::uint8_t* end = base + rec.capacity;
  for (const std::uint8_t* q = base; q < end; ++q) {
    const std::ptrdiff_t off = q - user;
    const std::uint8_t expected =
        off < 0 ? kRedzoneLeft
                : (static_cast<std::size_t>(off) < rec.user_size
                       ? kFreePoison
                       : kRedzoneRight);
    if (*q != expected) {
      BugReport r = make_report(BugKind::kUaf, user_ptr, rec);
      r.bad_offset = off;
      r.expected = expected;
      r.found = *q;
      r.detail = "quarantined block modified after free";
      report(r);
      return false;
    }
  }
  return true;
}

HeapSan::FreeResult HeapSan::on_free(void* user_ptr) {
  Shard& sh = shards_[shard_of(user_ptr)];
  Record rec;
  bool double_free = false;
  {
    Guard g(sh.mu);
    auto it = sh.blocks.find(user_ptr);
    if (it == sh.blocks.end()) return FreeResult::kUntracked;
    if (it->second.quarantined) {
      double_free = true;
      rec = it->second;
    } else {
      it->second.quarantined = true;
      it->second.free_sm = obs::current_sm();
      it->second.free_warp = obs::current_warp();
      it->second.free_tick = obs::current_tick();
      rec = it->second;
    }
  }
  if (double_free) {
    report(make_report(BugKind::kDoubleFree, user_ptr, rec));
    // If the handler returns, the first free stands; this one is dropped.
    return FreeResult::kOk;
  }
  live_blocks_.fetch_sub(1, std::memory_order_acq_rel);
  live_bytes_.fetch_sub(rec.user_size, std::memory_order_relaxed);

  verify_redzones(user_ptr, rec);  // a reported OOB still frees normally
  std::memset(user_ptr, kFreePoison, rec.user_size);

  st_pushes_.fetch_add(1, std::memory_order_relaxed);
  TOMA_CTR_INC("san.quarantine.push");
  {
    Guard g(q_mu_);
    quarantine_.push_back(user_ptr);
    q_bytes_plain_ += rec.capacity;
    q_blocks_.store(quarantine_.size(), std::memory_order_release);
    q_bytes_.store(q_bytes_plain_, std::memory_order_relaxed);
  }
  evict_down_to(cfg_.quarantine_blocks, cfg_.quarantine_bytes);
  return FreeResult::kOk;
}

bool HeapSan::lookup(const void* user_ptr, std::size_t* user_size) const {
  const Shard& sh = shards_[shard_of(user_ptr)];
  Guard g(sh.mu);
  const auto it = sh.blocks.find(user_ptr);
  if (it == sh.blocks.end() || it->second.quarantined) return false;
  if (user_size != nullptr) *user_size = it->second.user_size;
  return true;
}

bool HeapSan::try_resize(void* user_ptr, std::size_t new_size,
                         std::size_t new_capacity) {
  Shard& sh = shards_[shard_of(user_ptr)];
  std::size_t old_size;
  Record rec;
  {
    Guard g(sh.mu);
    auto it = sh.blocks.find(user_ptr);
    if (it == sh.blocks.end() || it->second.quarantined) return false;
    if (it->second.capacity != new_capacity) return false;
    old_size = it->second.user_size;
    it->second.user_size = new_size;
    rec = it->second;
  }
  // Repaint outside the lock: resizing a block concurrently with using it
  // is a caller bug, as with any realloc.
  auto* user = static_cast<std::uint8_t*>(user_ptr);
  auto* slot_end = static_cast<std::uint8_t*>(rec.base) + rec.capacity;
  if (new_size > old_size && cfg_.poison_on_alloc) {
    std::memset(user + old_size, kAllocPoison, new_size - old_size);
  }
  std::memset(user + new_size, kRedzoneRight,
              static_cast<std::size_t>(slot_end - (user + new_size)));
  live_bytes_.fetch_sub(old_size, std::memory_order_relaxed);
  live_bytes_.fetch_add(new_size, std::memory_order_relaxed);
  return true;
}

std::size_t HeapSan::evict_down_to(std::size_t max_blocks,
                                   std::size_t max_bytes) {
  std::size_t evicted = 0;
  for (;;) {
    const void* victim = nullptr;
    {
      Guard g(q_mu_);
      if (quarantine_.empty() ||
          (quarantine_.size() <= max_blocks && q_bytes_plain_ <= max_bytes)) {
        break;
      }
      victim = quarantine_.front();
      quarantine_.pop_front();
    }
    Shard& sh = shards_[shard_of(victim)];
    Record rec;
    bool found = false;
    {
      Guard g(sh.mu);
      auto it = sh.blocks.find(victim);
      if (it != sh.blocks.end()) {
        rec = it->second;
        sh.blocks.erase(it);
        found = true;
      }
    }
    TOMA_ASSERT_MSG(found, "quarantined block missing from shadow table");
    {
      Guard g(q_mu_);
      q_bytes_plain_ -= rec.capacity;
      q_blocks_.store(quarantine_.size(), std::memory_order_release);
      q_bytes_.store(q_bytes_plain_, std::memory_order_relaxed);
    }
    verify_quarantined(victim, rec);
    st_evictions_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("san.quarantine.evict");
    release_(rec.base);
    ++evicted;
  }
  return evicted;
}

std::size_t HeapSan::flush_quarantine() {
  const std::size_t evicted = evict_down_to(0, 0);
  if (evicted > 0) {
    st_flushes_.fetch_add(1, std::memory_order_relaxed);
    TOMA_CTR_INC("san.quarantine.flush");
  }
  return evicted;
}

std::size_t HeapSan::teardown_check() {
  flush_quarantine();
  std::vector<std::pair<const void*, Record>> leaked;
  for (Shard& sh : shards_) {
    Guard g(sh.mu);
    for (const auto& [p, rec] : sh.blocks) leaked.emplace_back(p, rec);
    sh.blocks.clear();
  }
  for (const auto& [p, rec] : leaked) {
    // A leaked block can still be corrupted; check before reporting it.
    verify_redzones(p, rec);
    report(make_report(BugKind::kLeak, p, rec));
  }
  live_blocks_.store(0, std::memory_order_release);
  live_bytes_.store(0, std::memory_order_relaxed);
  return leaked.size();
}

HeapSanStats HeapSan::stats() const {
  HeapSanStats s;
  s.enabled = enabled();
  s.live_blocks = live_blocks_.load(std::memory_order_relaxed);
  s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.quarantined_blocks = q_blocks_.load(std::memory_order_relaxed);
  s.quarantined_bytes = q_bytes_.load(std::memory_order_relaxed);
  s.quarantine_pushes = st_pushes_.load(std::memory_order_relaxed);
  s.quarantine_evictions = st_evictions_.load(std::memory_order_relaxed);
  s.quarantine_flushes = st_flushes_.load(std::memory_order_relaxed);
  s.redzone_checks = st_redzone_checks_.load(std::memory_order_relaxed);
  s.poison_checks = st_poison_checks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace toma::san
