// Implementation of the stable C facade (include/toma/toma.h) over the
// C++ Pool/PoolManager/StreamFrontEnd layers. The facade owns no state
// of its own: handles are reinterpret_cast'ed Pool* / gpu::Stream*, and
// every NULL-pool call routes to PoolManager's default pool.
#include "toma/toma.h"

#include <new>

#include "alloc/pool.hpp"
#include "gpusim/stream.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"

namespace {

using toma::alloc::AllocStatus;
using toma::alloc::HeapConfig;
using toma::alloc::Pool;
using toma::alloc::PoolManager;

Pool* unwrap(toma_pool_t pool) { return reinterpret_cast<Pool*>(pool); }
toma_pool_t wrap(Pool* pool) { return reinterpret_cast<toma_pool_t>(pool); }

toma::gpu::Stream& unwrap(toma_stream_t s) {
  return s != nullptr ? *reinterpret_cast<toma::gpu::Stream*>(s)
                      : toma::gpu::default_stream();
}

Pool& pool_or_default(toma_pool_t pool) {
  Pool* p = unwrap(pool);
  return p != nullptr ? *p : PoolManager::instance().default_pool();
}

toma_status_t to_c(AllocStatus s) {
  switch (s) {
    case AllocStatus::kOk:
      return TOMA_OK;
    case AllocStatus::kInvalidArg:
      return TOMA_ERR_INVALID;
    case AllocStatus::kOom:
      return TOMA_ERR_OOM;
    case AllocStatus::kQuota:
      return TOMA_ERR_QUOTA;
  }
  return TOMA_ERR_INVALID;
}

/// -1 in a config toggle keeps the build default already present in
/// `cfg`; 0/1 forces.
void apply_toggle(bool& field, int value) {
  if (value >= 0) field = value != 0;
}

HeapConfig to_cpp(const toma_pool_config_t& c) {
  HeapConfig cfg;  // library defaults
  if (c.pool_bytes != 0) cfg.pool_bytes = c.pool_bytes;
  if (c.num_arenas != 0) cfg.num_arenas = c.num_arenas;
  cfg.quota_bytes = c.quota_bytes;
  cfg.release_threshold = c.release_threshold;
  apply_toggle(cfg.heapsan, c.heapsan);
  apply_toggle(cfg.magazines, c.magazines);
  apply_toggle(cfg.quicklist, c.quicklist);
  apply_toggle(cfg.fixed_lane, c.fixed_lane);
  cfg.slo_latency_ns = c.slo_latency_ns;
  return cfg;
}

}  // namespace

extern "C" {

const char* toma_status_str(toma_status_t s) {
  switch (s) {
    case TOMA_OK:
      return "TOMA_OK";
    case TOMA_ERR_INVALID:
      return "TOMA_ERR_INVALID";
    case TOMA_ERR_OOM:
      return "TOMA_ERR_OOM";
    case TOMA_ERR_QUOTA:
      return "TOMA_ERR_QUOTA";
    case TOMA_ERR_EXISTS:
      return "TOMA_ERR_EXISTS";
    case TOMA_ERR_NOT_FOUND:
      return "TOMA_ERR_NOT_FOUND";
  }
  return "TOMA_ERR_?";
}

toma_pool_config_t toma_pool_config_default(void) {
  const HeapConfig defaults;
  toma_pool_config_t c;
  c.pool_bytes = defaults.pool_bytes;
  c.num_arenas = defaults.num_arenas;
  c.quota_bytes = defaults.quota_bytes;
  c.release_threshold = defaults.release_threshold;
  c.heapsan = -1;
  c.magazines = -1;
  c.quicklist = -1;
  c.stream_async = -1;
  c.slo_latency_ns = defaults.slo_latency_ns;
  c.fixed_lane = -1;
  return c;
}

toma_status_t toma_pool_create(const char* name,
                               const toma_pool_config_t* cfg,
                               toma_pool_t* out) {
  if (out != nullptr) *out = nullptr;
  if (name == nullptr || name[0] == '\0') return TOMA_ERR_INVALID;
  const HeapConfig cpp_cfg =
      cfg != nullptr ? to_cpp(*cfg) : HeapConfig{};
  if (!cpp_cfg.valid()) return TOMA_ERR_INVALID;
  PoolManager& mgr = PoolManager::instance();
  if (mgr.find(name) != nullptr) return TOMA_ERR_EXISTS;
  Pool* pool = mgr.create(name, cpp_cfg);
  if (pool == nullptr) return TOMA_ERR_EXISTS;  // lost a creation race
  if (cfg != nullptr && cfg->stream_async >= 0) {
    pool->set_async(cfg->stream_async != 0);
  }
  if (out != nullptr) *out = wrap(pool);
  return TOMA_OK;
}

toma_status_t toma_pool_destroy(toma_pool_t pool) {
  Pool* p = unwrap(pool);
  if (p == nullptr) return TOMA_ERR_INVALID;
  return PoolManager::instance().destroy(p->name()) ? TOMA_OK
                                                    : TOMA_ERR_INVALID;
}

toma_pool_t toma_pool_find(const char* name) {
  if (name == nullptr) return nullptr;
  return wrap(PoolManager::instance().find(name));
}

toma_pool_t toma_default_pool(void) {
  return wrap(&PoolManager::instance().default_pool());
}

void* toma_malloc(toma_pool_t pool, size_t size, toma_status_t* status) {
  AllocStatus st;
  void* p = pool_or_default(pool).malloc(size, &st);
  if (status != nullptr) *status = to_c(st);
  return p;
}

void toma_free(toma_pool_t pool, void* p) {
  if (p == nullptr) return;
  pool_or_default(pool).free(p);
}

void* toma_calloc(toma_pool_t pool, size_t n, size_t size,
                  toma_status_t* status) {
  AllocStatus st;
  void* p = pool_or_default(pool).calloc(n, size, &st);
  if (status != nullptr) *status = to_c(st);
  return p;
}

void* toma_realloc(toma_pool_t pool, void* p, size_t size,
                   toma_status_t* status) {
  AllocStatus st;
  void* q = pool_or_default(pool).realloc(p, size, &st);
  if (status != nullptr) *status = to_c(st);
  return q;
}

size_t toma_usable_size(toma_pool_t pool, void* p) {
  if (p == nullptr) return 0;
  return pool_or_default(pool).usable_size(p);
}

toma_stream_t toma_stream_create(void) {
  auto* s = new (std::nothrow) toma::gpu::Stream();
  return reinterpret_cast<toma_stream_t>(s);
}

void toma_stream_destroy(toma_stream_t s) {
  if (s == nullptr) return;
  auto* stream = reinterpret_cast<toma::gpu::Stream*>(s);
  PoolManager::instance().release_stream(*stream);
  delete stream;
}

void* toma_malloc_async(toma_pool_t pool, size_t size, toma_stream_t s,
                        toma_status_t* status) {
  AllocStatus st;
  void* p = pool_or_default(pool).malloc_async(size, unwrap(s), &st);
  if (status != nullptr) *status = to_c(st);
  return p;
}

void toma_free_async(toma_pool_t pool, void* p, toma_stream_t s) {
  if (p == nullptr) return;
  pool_or_default(pool).free_async(p, unwrap(s));
}

size_t toma_pool_sync(toma_pool_t pool, toma_stream_t s) {
  return pool_or_default(pool).sync(unwrap(s));
}

size_t toma_stream_sync(toma_stream_t s) {
  return PoolManager::instance().sync_stream(unwrap(s));
}

size_t toma_pool_sync_all(toma_pool_t pool) {
  return pool_or_default(pool).sync_all();
}

size_t toma_trim(toma_pool_t pool) { return pool_or_default(pool).trim(); }

size_t toma_pool_bytes_in_use(toma_pool_t pool) {
  return pool_or_default(pool).bytes_in_use();
}

size_t toma_pool_quota(toma_pool_t pool) {
  return pool_or_default(pool).quota_bytes();
}

void toma_pool_set_quota(toma_pool_t pool, size_t bytes) {
  pool_or_default(pool).set_quota(bytes);
}

size_t toma_pool_release_threshold(toma_pool_t pool) {
  return pool_or_default(pool).release_threshold();
}

void toma_pool_set_release_threshold(toma_pool_t pool, size_t bytes) {
  pool_or_default(pool).set_release_threshold(bytes);
}

const char* toma_pool_name(toma_pool_t pool) {
  return pool_or_default(pool).name().c_str();
}

void toma_pool_set_slo(toma_pool_t pool, uint64_t target_ns) {
  pool_or_default(pool).set_slo_latency(target_ns);
}

uint64_t toma_pool_slo(toma_pool_t pool) {
  return pool_or_default(pool).slo_latency();
}

uint64_t toma_pool_slo_violations(toma_pool_t pool) {
  return pool_or_default(pool).stats().slo_violations;
}

toma_status_t toma_record_start(size_t capacity_events) {
  const size_t cap = capacity_events != 0
                         ? capacity_events
                         : toma::obs::Recorder::kDefaultCapacity;
  return toma::obs::Recorder::instance().start(cap) ? TOMA_OK
                                                    : TOMA_ERR_EXISTS;
}

void toma_record_stop(void) { toma::obs::Recorder::instance().stop(); }

int toma_record_active(void) {
  return toma::obs::Recorder::instance().active() ? 1 : 0;
}

size_t toma_record_event_count(void) {
  return toma::obs::Recorder::instance().event_count();
}

uint64_t toma_record_dropped(void) {
  return toma::obs::Recorder::instance().dropped();
}

toma_status_t toma_record_dump(const char* path) {
  if (path == nullptr || path[0] == '\0') return TOMA_ERR_INVALID;
  return toma::obs::Recorder::instance().dump(path) ? TOMA_OK
                                                    : TOMA_ERR_INVALID;
}

toma_status_t toma_metrics_export(const char* path,
                                  toma_metrics_format_t format) {
  if (path == nullptr || path[0] == '\0') return TOMA_ERR_INVALID;
  const toma::obs::Snapshot snap = toma::obs::registry().snapshot();
  bool ok = false;
  switch (format) {
    case TOMA_METRICS_PROMETHEUS:
      ok = toma::obs::write_prometheus(snap, path);
      break;
    case TOMA_METRICS_JSON:
      ok = toma::obs::write_stable_json(snap, path);
      break;
  }
  return ok ? TOMA_OK : TOMA_ERR_INVALID;
}

}  // extern "C"
