// Kernel launch geometry and the per-thread execution context.
//
// ThreadCtx is the simulated analogue of CUDA's builtin variables
// (threadIdx/blockIdx/blockDim/gridDim, %smid, %laneid) plus the scheduling
// hooks a cooperative simulator needs (`yield`, `sync_block`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/prng.hpp"

namespace toma::gpu {

class Device;
class Fiber;
struct BlockRun;
struct WarpCtx;
struct LaunchState;

/// CUDA-style 3D extent. Linearization is x-major (x fastest), matching
/// CUDA's thread enumeration order.
struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(std::uint32_t x_, std::uint32_t y_ = 1, std::uint32_t z_ = 1)
      : x(x_), y(y_), z(z_) {}

  constexpr std::uint64_t count() const {
    return std::uint64_t{x} * y * z;
  }

  /// Decompose a linear rank back into coordinates.
  constexpr Dim3 decode(std::uint64_t rank) const {
    return Dim3{static_cast<std::uint32_t>(rank % x),
                static_cast<std::uint32_t>((rank / x) % y),
                static_cast<std::uint32_t>(rank / (std::uint64_t{x} * y))};
  }
};

/// Execution context of one simulated GPU thread. Instances are owned by
/// the SM scheduler; kernels receive a reference and must not store it
/// beyond the kernel's lifetime.
class ThreadCtx {
 public:
  // --- identity -----------------------------------------------------------
  std::uint32_t thread_rank() const { return thread_rank_; }
  Dim3 thread_idx() const;
  std::uint64_t block_rank() const { return block_rank_; }
  Dim3 block_idx() const;
  Dim3 block_dim() const;
  Dim3 grid_dim() const;
  /// Globally unique linear thread id within the grid.
  std::uint64_t global_rank() const;
  std::uint32_t sm_id() const { return sm_id_; }
  std::uint32_t warp_rank() const { return warp_rank_; }
  std::uint32_t lane_id() const { return lane_id_; }

  // --- scheduling ---------------------------------------------------------
  /// Cooperatively give up the SM. Every spin loop in device code must
  /// yield; this is what provides forward progress for other threads.
  void yield();

  /// Block-wide barrier (CUDA __syncthreads). All live threads of the
  /// block must reach it; calling it divergently is undefined (as in CUDA).
  void sync_block();

  // --- resources ----------------------------------------------------------
  /// Base of the block's shared memory arena (same pointer for all threads
  /// of the block); zeroed before the block starts.
  void* shared_mem() const;
  std::size_t shared_mem_bytes() const;

  /// Per-thread PRNG, seeded from the global rank. Used to scatter
  /// concurrent searches (tree descent, bitmap probing).
  util::Xorshift& rng() { return rng_; }

  /// A fresh scatter seed (different on every call).
  std::uint64_t scatter_seed() { return rng_.next(); }

  Device& device() const { return *device_; }
  WarpCtx& warp() const { return *warp_; }
  BlockRun& block() const { return *block_; }

 private:
  friend class Sm;
  friend struct BlockRun;

  static void fiber_entry(void* arg);

  Device* device_ = nullptr;
  LaunchState* launch_ = nullptr;
  BlockRun* block_ = nullptr;
  WarpCtx* warp_ = nullptr;
  Fiber* fiber_ = nullptr;
  std::uint64_t block_rank_ = 0;
  std::uint32_t thread_rank_ = 0;
  std::uint32_t sm_id_ = 0;
  std::uint32_t warp_rank_ = 0;
  std::uint32_t lane_id_ = 0;
  util::Xorshift rng_;
};

/// A kernel body. One instance per launch, invoked concurrently by every
/// simulated thread; captures must be thread-safe.
using Kernel = std::function<void(ThreadCtx&)>;

}  // namespace toma::gpu
