// Resident thread-block state: barrier, warp contexts, shared memory and
// the fibers executing the block's threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/fiber.hpp"
#include "gpusim/kernel.hpp"
#include "util/hints.hpp"

namespace toma::gpu {

/// Counter/generation block barrier with CUDA-on-Volta semantics: the
/// barrier releases when every *non-exited* thread of the block has
/// arrived, so a kernel may early-return some threads (the ubiquitous
/// `if (rank >= n) return;` guard) and still barrier with the rest.
/// Generation and arrival count are packed into one atomic word so release
/// and reset are a single CAS. Correct under both cooperative scheduling
/// and true multi-worker parallelism.
class BlockBarrier {
 public:
  void init(std::uint32_t nthreads) {
    state_.store(0, std::memory_order_relaxed);
    live_.store(nthreads, std::memory_order_relaxed);
  }

  /// Called (by the fiber entry shim) when a thread finishes the kernel.
  void thread_exited() { live_.fetch_sub(1, std::memory_order_acq_rel); }

  /// Returns true for exactly one caller per generation: the thread that
  /// released the barrier (useful for electing post-barrier work).
  bool arrive_and_wait(ThreadCtx& ctx) {
    std::uint64_t s = state_.load(std::memory_order_acquire);
    std::uint32_t gen;
    for (;;) {  // arrival: either release (last) or count ourselves in
      gen = static_cast<std::uint32_t>(s >> 32);
      const std::uint32_t cnt = static_cast<std::uint32_t>(s);
      if (cnt + 1 >= live_.load(std::memory_order_acquire)) {
        if (state_.compare_exchange_weak(
                s, (std::uint64_t{gen} + 1) << 32,
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          return true;
        }
      } else if (state_.compare_exchange_weak(s, s + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        break;
      }
    }
    // Wait; re-check liveness so a thread exiting elsewhere releases us.
    for (;;) {
      ctx.yield();
      s = state_.load(std::memory_order_acquire);
      if (static_cast<std::uint32_t>(s >> 32) != gen) return false;
      const std::uint32_t cnt = static_cast<std::uint32_t>(s);
      if (cnt >= live_.load(std::memory_order_acquire)) {
        if (state_.compare_exchange_weak(
                s, (std::uint64_t{gen} + 1) << 32,
                std::memory_order_acq_rel, std::memory_order_relaxed)) {
          return true;
        }
      }
    }
  }

  std::uint32_t live() const { return live_.load(std::memory_order_acquire); }

 private:
  // state_ = generation:32 | arrived:32
  TOMA_CACHELINE_ALIGNED std::atomic<std::uint64_t> state_{0};
  std::atomic<std::uint32_t> live_{0};
};

/// Per-warp state. Lanes of a warp are co-scheduled on one SM worker and
/// only interleave at yield points, so sequences of warp-state operations
/// with no intervening yield are effectively atomic with respect to the
/// other lanes. The rendezvous protocol in warp.cpp relies on this.
struct WarpCtx {
  std::uint32_t nlanes = 0;  // last warp of a block may be partial

  // Rendezvous window state (see warp.cpp for the protocol).
  enum State : std::uint32_t { kIdle = 0, kOpen = 1, kClosed = 2 };
  std::atomic<std::uint32_t> rv_state{kIdle};
  std::atomic<const void*> rv_tag{nullptr};
  std::atomic<std::uint64_t> rv_mask{0};
  std::atomic<std::uint64_t> rv_final{0};
  std::atomic<std::uint32_t> rv_acks{0};
  std::atomic<std::uint64_t> rv_epoch{0};

  // Broadcast slot (see warp_broadcast in warp.hpp). bc_owner serializes
  // slot use across (possibly overlapping) groups; bc_token publishes a
  // prepared value to the owning group's members.
  std::atomic<std::uint64_t> bc_owner{0};
  std::atomic<std::uint64_t> bc_token{0};
  std::atomic<std::uint64_t> bc_value{0};
  std::atomic<std::uint32_t> bc_acks{0};

  void reset_rendezvous() {
    rv_state.store(kIdle, std::memory_order_relaxed);
    rv_tag.store(nullptr, std::memory_order_relaxed);
    rv_mask.store(0, std::memory_order_relaxed);
    rv_final.store(0, std::memory_order_relaxed);
    rv_acks.store(0, std::memory_order_relaxed);
    bc_owner.store(0, std::memory_order_relaxed);
    bc_token.store(0, std::memory_order_relaxed);
    bc_value.store(0, std::memory_order_relaxed);
    bc_acks.store(0, std::memory_order_relaxed);
  }
};

/// Everything a resident block needs while it executes. BlockRun objects
/// are recycled by the SM between blocks (stacks are pooled separately).
struct BlockRun {
  LaunchState* launch = nullptr;
  std::uint64_t block_rank = 0;
  std::uint32_t nthreads = 0;
  std::uint32_t finished = 0;  // scheduler-side count of finished fibers

  std::vector<Fiber> fibers;
  std::vector<ThreadCtx> ctxs;
  std::vector<WarpCtx> warps;
  BlockBarrier barrier;
  std::vector<std::byte> shared_mem;

  /// (Re)configure for a new block instance. Stacks are attached by the SM.
  void prepare(Device& dev, LaunchState& ls, std::uint64_t rank,
               std::uint32_t sm_id);
};

}  // namespace toma::gpu
