// Umbrella header for the GPU execution simulator.
#pragma once

#include "gpusim/block.hpp"
#include "gpusim/config.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/stream.hpp"
#include "gpusim/this_thread.hpp"
#include "gpusim/warp.hpp"
