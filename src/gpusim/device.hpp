// The simulated GPU device: owns the SMs, the fiber stack pool, and the
// launch machinery. Launches are synchronous: `launch` returns when every
// thread of the grid has finished, rethrowing the first kernel exception.
//
// Grids larger than the device's residency execute in waves, exactly like
// real hardware: an SM admits a new block as soon as a resident one
// retires, so fiber memory is bounded by residency, not grid size.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "gpusim/config.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/stack.hpp"

namespace toma::gpu {

class Sm;

/// Shared state of one grid launch.
struct LaunchState {
  const Kernel* kernel = nullptr;
  Dim3 grid;
  Dim3 block;
  std::uint64_t total_blocks = 0;
  std::uint32_t threads_per_block = 0;

  std::atomic<std::uint64_t> next_block{0};
  std::atomic<std::uint64_t> blocks_done{0};

  std::mutex error_mu;
  std::exception_ptr first_error;

  bool done() const {
    return blocks_done.load(std::memory_order_acquire) >= total_blocks;
  }
  void record_error(std::exception_ptr e);
};

/// Aggregate execution counters (monotonic across launches).
struct DeviceStats {
  std::uint64_t launches = 0;
  std::uint64_t blocks_executed = 0;
  std::uint64_t threads_executed = 0;
  std::uint64_t fiber_resumes = 0;
  std::uint64_t sched_rounds = 0;
};

class Device {
 public:
  explicit Device(DeviceConfig cfg = {});
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceConfig& config() const { return cfg_; }
  std::uint32_t num_sms() const { return cfg_.num_sms; }

  /// Run `kernel` over grid x block threads; blocks until completion.
  void launch(Dim3 grid, Dim3 block, const Kernel& kernel);

  /// Convenience: launch `total_threads` 1-D threads in blocks of
  /// `block_size` (last block untrimmed; kernels guard on global_rank).
  void launch_linear(std::uint64_t total_threads, std::uint32_t block_size,
                     const Kernel& kernel);

  StackPool& stack_pool() { return stack_pool_; }
  DeviceStats stats() const;

 private:
  friend class Sm;

  void worker_main(std::uint32_t worker_id, std::uint32_t num_workers,
                   LaunchState& ls);

  DeviceConfig cfg_;
  StackPool stack_pool_;
  std::vector<std::unique_ptr<Sm>> sms_;

  mutable std::mutex stats_mu_;
  DeviceStats stats_;
};

}  // namespace toma::gpu
