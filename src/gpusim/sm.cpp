#include "gpusim/sm.hpp"

#include <algorithm>

#include "gpusim/device.hpp"
#include "obs/telemetry.hpp"
#include "util/assert.hpp"

namespace toma::gpu {

namespace detail {
void set_current(ThreadCtx* ctx);  // defined in this_thread.cpp
}

void BlockRun::prepare(Device& dev, LaunchState& ls, std::uint64_t rank,
                       std::uint32_t sm_id) {
  const DeviceConfig& cfg = dev.config();
  launch = &ls;
  block_rank = rank;
  nthreads = ls.threads_per_block;
  finished = 0;

  const std::uint32_t nwarps = (nthreads + cfg.warp_size - 1) / cfg.warp_size;
  if (fibers.size() < nthreads) fibers = std::vector<Fiber>(nthreads);
  if (ctxs.size() < nthreads) ctxs = std::vector<ThreadCtx>(nthreads);
  if (warps.size() < nwarps) warps = std::vector<WarpCtx>(nwarps);
  if (shared_mem.size() != cfg.shared_mem_per_block)
    shared_mem.assign(cfg.shared_mem_per_block, std::byte{0});
  else
    std::fill(shared_mem.begin(), shared_mem.end(), std::byte{0});

  barrier.init(nthreads);
  for (std::uint32_t w = 0; w < nwarps; ++w) {
    warps[w].nlanes =
        std::min(cfg.warp_size, nthreads - w * cfg.warp_size);
    warps[w].reset_rendezvous();
  }

  for (std::uint32_t t = 0; t < nthreads; ++t) {
    ThreadCtx& ctx = ctxs[t];
    ctx.device_ = &dev;
    ctx.launch_ = &ls;
    ctx.block_ = this;
    ctx.warp_ = &warps[t / cfg.warp_size];
    ctx.fiber_ = &fibers[t];
    ctx.block_rank_ = rank;
    ctx.thread_rank_ = t;
    ctx.sm_id_ = sm_id;
    ctx.warp_rank_ = t / cfg.warp_size;
    ctx.lane_id_ = t % cfg.warp_size;
    ctx.rng_ = util::Xorshift(util::hash64(
        (rank * ls.threads_per_block + t) ^ 0x746f6d61ULL));
    fibers[t].reset(dev.stack_pool().acquire(), &ThreadCtx::fiber_entry,
                    &ctx);
  }
}

Sm::Sm(Device& dev, std::uint32_t id) : dev_(dev), id_(id) {}
Sm::~Sm() = default;

std::unique_ptr<BlockRun> Sm::obtain_block_run() {
  if (!recycled_.empty()) {
    auto br = std::move(recycled_.back());
    recycled_.pop_back();
    return br;
  }
  return std::make_unique<BlockRun>();
}

bool Sm::admit(LaunchState& ls) {
  const DeviceConfig& cfg = dev_.config();
  bool admitted = false;
  while (resident_.size() < cfg.max_blocks_per_sm &&
         resident_threads_ + ls.threads_per_block <= cfg.max_threads_per_sm) {
    const std::uint64_t rank =
        ls.next_block.fetch_add(1, std::memory_order_relaxed);
    if (rank >= ls.total_blocks) {
      // Undo the overshoot so `next_block` stays a claim counter other SMs
      // can also overshoot harmlessly (claims beyond total are ignored).
      break;
    }
    auto br = obtain_block_run();
    br->prepare(dev_, ls, rank, id_);
    resident_threads_ += br->nthreads;
    TOMA_CTR_INC("gpusim.blocks_admitted");
    TOMA_TRACE_BEGIN("block", rank);
    resident_.push_back(std::move(br));
    admitted = true;
  }
  return admitted;
}

void Sm::retire(std::size_t idx, LaunchState& ls) {
  BlockRun& br = *resident_[idx];
  TOMA_DASSERT(br.finished == br.nthreads);
  for (std::uint32_t t = 0; t < br.nthreads; ++t) {
    dev_.stack_pool().release(br.fibers[t].take_stack());
  }
  resident_threads_ -= br.nthreads;
  ++blocks_run_;
  TOMA_TRACE_END("block", br.block_rank);
  ls.blocks_done.fetch_add(1, std::memory_order_acq_rel);

  recycled_.push_back(std::move(resident_[idx]));
  resident_[idx] = std::move(resident_.back());
  resident_.pop_back();
}

bool Sm::step(LaunchState& ls) {
  admit(ls);
  if (resident_.empty()) return false;

  ++rounds_;
  // The simulated-time axis: one tick per SM scheduling round, shared by
  // every SM (concurrent rounds interleave, like cycles across real SMs).
  TOMA_OBS_TICK();
  // Round-robin every runnable fiber once. Iterate by index because
  // retire() compacts the vector (swap-with-last), in which case we
  // re-visit the swapped-in block on the next round.
  for (std::size_t b = 0; b < resident_.size();) {
    BlockRun& br = *resident_[b];
    for (std::uint32_t t = 0; t < br.nthreads; ++t) {
      Fiber& f = br.fibers[t];
      if (f.finished()) continue;
      detail::set_current(&br.ctxs[t]);
      TOMA_OBS_SET_THREAD(id_, br.ctxs[t].warp_rank());
      f.resume();
      detail::set_current(nullptr);
      TOMA_OBS_CLEAR_THREAD();
      ++fiber_resumes_;
      if (f.finished()) ++br.finished;
    }
    if (br.finished == br.nthreads) {
      retire(b, ls);  // do not advance b: swapped-in block takes this slot
    } else {
      ++b;
    }
  }
  return true;
}

}  // namespace toma::gpu
