#include "gpusim/fiber.hpp"

#include <cstdint>

#include "util/assert.hpp"

#if !defined(TOMA_USE_UCONTEXT)
extern "C" {
void toma_ctx_swap(void** save_sp, void* restore_sp);
void toma_ctx_trampoline();
}
#endif

namespace toma::gpu {

#if defined(TOMA_USE_UCONTEXT)

// makecontext only passes ints, so the FiberContext pointer is split into
// two 32-bit halves (the POSIX-sanctioned idiom for 64-bit hosts).
void uc_trampoline_dispatch(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<FiberContext*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  self->entry_(self->arg_);
  TOMA_UNREACHABLE();  // fiber entries must suspend-finish, not return
}

void FiberContext::init(const Stack& stack, Entry entry, void* arg) {
  entry_ = entry;
  arg_ = arg;
  TOMA_ASSERT(getcontext(&ctx_) == 0);
  ctx_.uc_stack.ss_sp =
      static_cast<char*>(stack.top()) - stack.usable_bytes();
  ctx_.uc_stack.ss_size = stack.usable_bytes();
  ctx_.uc_link = nullptr;
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&uc_trampoline_dispatch), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

void FiberContext::switch_to(FiberContext& target) {
  TOMA_ASSERT(swapcontext(&ctx_, &target.ctx_) == 0);
}

#else  // asm backend

void FiberContext::init(const Stack& stack, Entry entry, void* arg) {
  // Seed the initial frame consumed by toma_ctx_swap's pop sequence:
  // [r15=entry][r14=arg][r13][r12][rbx][rbp][ret=trampoline]
  auto* top = static_cast<void**>(stack.top());
  void** sp = top - 7;
  sp[0] = reinterpret_cast<void*>(entry);  // -> r15
  sp[1] = arg;                             // -> r14
  sp[2] = nullptr;                         // -> r13
  sp[3] = nullptr;                         // -> r12
  sp[4] = nullptr;                         // -> rbx
  sp[5] = nullptr;                         // -> rbp
  sp[6] = reinterpret_cast<void*>(&toma_ctx_trampoline);
  sp_ = sp;
}

void FiberContext::switch_to(FiberContext& target) {
  toma_ctx_swap(&sp_, target.sp_);
}

#endif

void Fiber::reset(Stack stack, Entry entry, void* arg) {
  TOMA_ASSERT_MSG(finished_, "resetting a live fiber");
  stack_ = std::move(stack);
  self_.init(stack_, entry, arg);
  finished_ = false;
}

Stack Fiber::take_stack() {
  TOMA_ASSERT(finished_);
  return std::move(stack_);
}

void Fiber::resume() {
  TOMA_DASSERT(!finished_);
  scheduler_.switch_to(self_);
}

void Fiber::suspend() { self_.switch_to(scheduler_); }

}  // namespace toma::gpu
