// Warp-level cooperation: coalesced groups.
//
// `coalesce_warp(ctx, tag)` gathers the lanes of the calling thread's warp
// that are concurrently requesting the same operation (identified by `tag`,
// typically the address of the contended object) into a group with a
// leader, ranks, and a shared token. This is the simulator analogue of
// CUDA's `coalesced_threads()` / `__match_any_sync` idiom the paper uses to
// detect "which threads are concurrently invoking [the allocator]" and take
// specialized single-thread vs multi-thread paths.
//
// Group formation is best-effort by design: a thread that arrives after a
// window closes simply forms (or joins) the next one, and a group of size
// one is always valid. Correctness of collective primitives never depends
// on who ends up grouped together.
#pragma once

#include <cstdint>

#include "gpusim/kernel.hpp"

namespace toma::gpu {

class CoalescedGroup {
 public:
  /// Number of member lanes.
  std::uint32_t size() const { return size_; }
  /// This thread's dense rank within the group (0 .. size-1).
  std::uint32_t rank() const { return rank_; }
  /// Exactly one member (rank 0) is the leader.
  bool is_leader() const { return rank_ == 0; }
  /// Bitmask of member lane ids.
  std::uint64_t mask() const { return mask_; }
  /// Token identifying this group instance; equal for all members,
  /// distinct across concurrently-live groups. Used by collective
  /// synchronization primitives to grant a lock to a whole group.
  std::uint64_t token() const { return token_; }

  /// A group of one with the given (non-zero) token. Used by code that can
  /// run outside a kernel, where warp coalescing is unavailable.
  static CoalescedGroup singleton(std::uint64_t token) {
    CoalescedGroup g;
    g.token_ = token | 1;
    return g;
  }

 private:
  friend CoalescedGroup coalesce_warp(ThreadCtx&, const void*);
  std::uint64_t mask_ = 1;
  std::uint64_t token_ = 0;
  std::uint32_t size_ = 1;
  std::uint32_t rank_ = 0;
};

/// Form a coalesced group among lanes of `ctx`'s warp that call this with
/// the same `tag` while the rendezvous window is open. Never blocks
/// indefinitely; returns a singleton group if no peers show up.
CoalescedGroup coalesce_warp(ThreadCtx& ctx, const void* tag);

/// Broadcast a 64-bit value from the group's leader to every member (the
/// simulator analogue of __shfl_sync from lane 0). EVERY member of `g`
/// must call this exactly once with the same group; the leader's `value`
/// is returned to all. At most one broadcast may be in flight per warp,
/// which the group protocol guarantees (a warp hosts one live group per
/// rendezvous window).
std::uint64_t warp_broadcast(ThreadCtx& ctx, const CoalescedGroup& g,
                             std::uint64_t value);

/// Pointer-typed convenience over warp_broadcast.
template <typename T>
T* warp_broadcast_ptr(ThreadCtx& ctx, const CoalescedGroup& g, T* value) {
  return reinterpret_cast<T*>(warp_broadcast(
      ctx, g, reinterpret_cast<std::uint64_t>(value)));
}

}  // namespace toma::gpu
