#include "gpusim/stream.hpp"

namespace toma::gpu {

namespace {
std::atomic<std::uint32_t> g_next_stream_id{0};
}  // namespace

Stream::Stream()
    : id_(g_next_stream_id.fetch_add(1, std::memory_order_relaxed)) {}

Stream& default_stream() {
  // Leaky singleton: deferred allocator batches keyed by the default
  // stream must stay resolvable during static teardown.
  static Stream* s = new Stream();
  return *s;
}

}  // namespace toma::gpu
