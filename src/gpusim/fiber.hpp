// Cooperative fibers: the simulated GPU threads.
//
// Each logical GPU thread is a fiber. A fiber runs until it voluntarily
// suspends (yield, barrier arrival) or finishes; the SM scheduler then
// resumes the next fiber. Volta's independent thread scheduling guarantee
// (every resident thread eventually makes progress) maps to the scheduler's
// round-robin policy over resident fibers.
//
// Two context-switch backends:
//  - default: hand-written x86-64 switch (fcontext_x86_64.S), ~10ns
//  - TOMA_USE_UCONTEXT: portable swapcontext(3) fallback
#pragma once

#include <cstddef>
#include <utility>

#if defined(TOMA_USE_UCONTEXT)
#include <ucontext.h>
#endif

#include "gpusim/stack.hpp"

namespace toma::gpu {

/// Low-level suspended execution context.
class FiberContext {
 public:
  using Entry = void (*)(void*);

  FiberContext() = default;

  /// Prepare the context to run `entry(arg)` on `stack` at first resume.
  void init(const Stack& stack, Entry entry, void* arg);

  /// Switch from the currently running context into `target`, saving the
  /// current execution state into *this. Returns when somebody switches
  /// back into *this.
  void switch_to(FiberContext& target);

 private:
#if defined(TOMA_USE_UCONTEXT)
  ucontext_t ctx_{};
  Entry entry_ = nullptr;  // stashed for the makecontext trampoline
  void* arg_ = nullptr;
  friend void uc_trampoline_dispatch(unsigned hi, unsigned lo);
#else
  void* sp_ = nullptr;
#endif
};

/// A fiber: a stack plus a context plus completion state. The scheduler
/// resumes it via `resume()` from its own (scheduler) context; the fiber
/// suspends back via `suspend()`.
class Fiber {
 public:
  using Entry = void (*)(void*);

  Fiber() = default;
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Bind a stack and an entry point. `arg` is the single argument passed
  /// to `entry` on first resume. May be called again after finish() to
  /// recycle the fiber for a new logical thread.
  void reset(Stack stack, Entry entry, void* arg);

  /// Take back the stack (after the fiber finished) for pooling.
  Stack take_stack();

  bool finished() const { return finished_; }
  void mark_finished() { finished_ = true; }

  /// Scheduler side: run the fiber until it suspends or finishes.
  void resume();

  /// Fiber side: suspend back to whoever resumed us.
  void suspend();

 private:
  Stack stack_;
  FiberContext self_;       // fiber's suspended state
  FiberContext scheduler_;  // where to go back on suspend
  bool finished_ = true;
};

}  // namespace toma::gpu
