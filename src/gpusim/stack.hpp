// Fiber stack management.
//
// Stacks are mmap'd with an inaccessible guard page below the usable range
// so a fiber overflow faults instead of silently corrupting a neighbouring
// fiber. A free-list pool recycles stacks across thread-block waves, since
// a large grid creates and destroys fibers continuously.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

namespace toma::gpu {

/// One mmap'd fiber stack. Movable, not copyable.
class Stack {
 public:
  Stack() = default;
  /// Maps `usable_bytes` of stack plus one guard page. Aborts on OOM
  /// (fiber stacks are infrastructure; failing lazily helps nobody).
  explicit Stack(std::size_t usable_bytes);
  ~Stack();

  Stack(Stack&& o) noexcept;
  Stack& operator=(Stack&& o) noexcept;
  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  bool valid() const { return base_ != nullptr; }
  /// Highest usable address (stacks grow down); 16-byte aligned.
  void* top() const;
  std::size_t usable_bytes() const { return usable_; }

 private:
  void* base_ = nullptr;   // mapping start (guard page)
  std::size_t mapped_ = 0; // total mapping length
  std::size_t usable_ = 0;
};

/// Thread-safe pool of equally-sized stacks.
class StackPool {
 public:
  explicit StackPool(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}

  Stack acquire();
  void release(Stack s);

  std::size_t stack_bytes() const { return stack_bytes_; }
  std::size_t pooled() const;

 private:
  std::size_t stack_bytes_;
  mutable std::mutex mu_;
  std::vector<Stack> free_;
};

}  // namespace toma::gpu
