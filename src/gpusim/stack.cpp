#include "gpusim/stack.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <utility>

#include "util/assert.hpp"
#include "util/bitops.hpp"

namespace toma::gpu {

namespace {
std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}
}  // namespace

Stack::Stack(std::size_t usable_bytes) {
  const std::size_t ps = page_size();
  usable_ = util::align_up(usable_bytes, ps);
  mapped_ = usable_ + ps;  // one guard page at the low end
  void* p = ::mmap(nullptr, mapped_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  TOMA_ASSERT_MSG(p != MAP_FAILED, "fiber stack mmap failed");
  const int rc = ::mprotect(p, ps, PROT_NONE);
  TOMA_ASSERT_MSG(rc == 0, "fiber stack guard mprotect failed");
  base_ = p;
}

Stack::~Stack() {
  if (base_ != nullptr) ::munmap(base_, mapped_);
}

Stack::Stack(Stack&& o) noexcept
    : base_(std::exchange(o.base_, nullptr)),
      mapped_(std::exchange(o.mapped_, 0)),
      usable_(std::exchange(o.usable_, 0)) {}

Stack& Stack::operator=(Stack&& o) noexcept {
  if (this != &o) {
    if (base_ != nullptr) ::munmap(base_, mapped_);
    base_ = std::exchange(o.base_, nullptr);
    mapped_ = std::exchange(o.mapped_, 0);
    usable_ = std::exchange(o.usable_, 0);
  }
  return *this;
}

void* Stack::top() const {
  TOMA_DASSERT(valid());
  const auto addr = reinterpret_cast<std::uintptr_t>(base_) + mapped_;
  return reinterpret_cast<void*>(util::align_down(addr, 16));
}

Stack StackPool::acquire() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!free_.empty()) {
      Stack s = std::move(free_.back());
      free_.pop_back();
      return s;
    }
  }
  return Stack(stack_bytes_);
}

void StackPool::release(Stack s) {
  std::lock_guard<std::mutex> g(mu_);
  free_.push_back(std::move(s));
}

std::size_t StackPool::pooled() const {
  std::lock_guard<std::mutex> g(mu_);
  return free_.size();
}

}  // namespace toma::gpu
