// Access to the current simulated thread, usable from any code.
//
// The synchronization primitives (bulk semaphores, RCU, mutexes) call
// `this_thread::yield()` in their wait loops. Inside a kernel this
// suspends the calling fiber; outside (plain unit tests on OS threads) it
// falls back to std::this_thread::yield(). This keeps every primitive
// testable both under gpusim and under ordinary preemptive threads.
#pragma once

#include <cstdint>

#include "gpusim/kernel.hpp"

namespace toma::gpu::this_thread {

/// The currently executing simulated thread, or nullptr outside a kernel.
ThreadCtx* current();

/// True when running inside a simulated kernel.
bool in_kernel();

/// Cooperative yield (fiber suspend in-kernel, OS yield otherwise).
void yield();

/// Per-thread PRNG (fiber-local in-kernel, thread_local otherwise).
util::Xorshift& rng();

/// Fresh scatter seed; different on every call.
std::uint64_t scatter_seed();

/// The SM the calling thread runs on, or a stable hash of the OS thread id
/// outside a kernel (so arena selection still works in plain tests).
std::uint32_t sm_id_or_hash(std::uint32_t num_sms);

}  // namespace toma::gpu::this_thread
