#include "gpusim/warp.hpp"

#include "gpusim/block.hpp"
#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/prng.hpp"

namespace toma::gpu {

namespace {
// Scheduling rounds the opener keeps the window open. One round suffices
// for every co-resident lane already at the join point; a little slack
// catches lanes that were a few instructions away.
constexpr int kWindowRounds = 3;

std::uint64_t group_token(const WarpCtx* w, std::uint64_t epoch) {
  // Non-zero for any live group: collective primitives reserve token 0 for
  // "unowned".
  return util::hash64(reinterpret_cast<std::uintptr_t>(w) ^
                      (epoch * 0x9e3779b97f4a7c15ULL)) |
         1;
}
}  // namespace

// Lanes of one warp never run in parallel (same SM worker) and interleave
// only at yield points, so each contiguous sequence below is atomic with
// respect to sibling lanes. The atomics keep the code well-defined and
// tool-clean anyway.
CoalescedGroup coalesce_warp(ThreadCtx& ctx, const void* tag) {
  WarpCtx& w = ctx.warp();
  const std::uint64_t mybit = std::uint64_t{1} << ctx.lane_id();

  for (;;) {
    const auto state = w.rv_state.load(std::memory_order_acquire);

    if (state == WarpCtx::kIdle) {
      // Open a window. No yield since the load above, so no sibling can
      // have raced us; still use CAS for defense in depth.
      auto expected = static_cast<std::uint32_t>(WarpCtx::kIdle);
      if (!w.rv_state.compare_exchange_strong(expected, WarpCtx::kOpen,
                                              std::memory_order_acq_rel)) {
        continue;
      }
      w.rv_tag.store(tag, std::memory_order_relaxed);
      w.rv_mask.store(mybit, std::memory_order_release);
      for (int i = 0; i < kWindowRounds; ++i) ctx.yield();
      // Close: snapshot-and-clear so stragglers land in the next window.
      const std::uint64_t final_mask =
          w.rv_mask.exchange(0, std::memory_order_acq_rel);
      const std::uint64_t epoch =
          w.rv_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
      w.rv_final.store(final_mask, std::memory_order_relaxed);
      w.rv_acks.store(0, std::memory_order_relaxed);
      w.rv_state.store(WarpCtx::kClosed, std::memory_order_release);

      CoalescedGroup g;
      g.mask_ = final_mask;
      g.size_ = util::popcount(final_mask);
      g.rank_ = util::popcount(final_mask & (mybit - 1));
      g.token_ = group_token(&w, epoch);
      if (w.rv_acks.fetch_add(1, std::memory_order_acq_rel) + 1 == g.size_) {
        w.rv_state.store(WarpCtx::kIdle, std::memory_order_release);
      }
      return g;
    }

    if (state == WarpCtx::kOpen &&
        w.rv_tag.load(std::memory_order_relaxed) == tag) {
      w.rv_mask.fetch_or(mybit, std::memory_order_acq_rel);
      while (w.rv_state.load(std::memory_order_acquire) == WarpCtx::kOpen) {
        ctx.yield();
      }
      const std::uint64_t final_mask =
          w.rv_final.load(std::memory_order_acquire);
      if (final_mask & mybit) {
        CoalescedGroup g;
        g.mask_ = final_mask;
        g.size_ = util::popcount(final_mask);
        g.rank_ = util::popcount(final_mask & (mybit - 1));
        g.token_ = group_token(&w, w.rv_epoch.load(std::memory_order_relaxed));
        if (w.rv_acks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            g.size_) {
          w.rv_state.store(WarpCtx::kIdle, std::memory_order_release);
        }
        return g;
      }
      continue;  // our OR landed after the close: try the next window
    }

    // Window busy with a different tag, or closed and draining acks.
    ctx.yield();
  }
}

std::uint64_t warp_broadcast(ThreadCtx& ctx, const CoalescedGroup& g,
                             std::uint64_t value) {
  if (g.size() == 1) return value;
  WarpCtx& w = ctx.warp();
  if (g.is_leader()) {
    // Acquire the warp's broadcast slot: groups overlap in time (a new
    // rendezvous window can open while a previous group is still
    // broadcasting), so the leader must own the slot before touching it,
    // or it would strand the previous group's members.
    std::uint64_t expected = 0;
    while (!w.bc_owner.compare_exchange_weak(expected, g.token(),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
      expected = 0;
      ctx.yield();
    }
    w.bc_value.store(value, std::memory_order_relaxed);
    w.bc_acks.store(0, std::memory_order_relaxed);
    w.bc_token.store(g.token(), std::memory_order_release);  // publish
    // Wait for every member to consume before releasing the slot, so a
    // subsequent group on this warp can broadcast safely.
    while (w.bc_acks.load(std::memory_order_acquire) != g.size() - 1) {
      ctx.yield();
    }
    w.bc_token.store(0, std::memory_order_relaxed);
    w.bc_owner.store(0, std::memory_order_release);
    return value;
  }
  while (w.bc_token.load(std::memory_order_acquire) != g.token()) {
    ctx.yield();
  }
  const std::uint64_t v = w.bc_value.load(std::memory_order_relaxed);
  w.bc_acks.fetch_add(1, std::memory_order_acq_rel);
  return v;
}

}  // namespace toma::gpu
