// Simulated device configuration.
//
// Defaults approximate a mid-size Volta-class part scaled for simulation:
// the paper's Titan V has 80 SMs x 2048 resident threads (163,840 resident,
// 172,032 architectural max including the GV100 full die). Simulated SM
// count is freely configurable; benchmarks use larger devices, unit tests
// smaller ones.
#pragma once

#include <cstddef>
#include <cstdint>

namespace toma::gpu {

struct DeviceConfig {
  /// Number of streaming multiprocessors.
  std::uint32_t num_sms = 8;
  /// Max resident threads per SM (Volta: 2048).
  std::uint32_t max_threads_per_sm = 2048;
  /// Max resident thread blocks per SM (Volta: 32).
  std::uint32_t max_blocks_per_sm = 32;
  /// Threads per warp (NVIDIA: 32).
  std::uint32_t warp_size = 32;
  /// Per-block shared memory arena (Volta: up to 96 KB; default 48 KB).
  std::size_t shared_mem_per_block = 48 * 1024;
  /// Usable stack bytes per fiber. Device-side code is shallow; 32 KB
  /// leaves generous headroom for std::function frames in the simulator.
  std::size_t stack_bytes = 32 * 1024;
  /// OS worker threads driving the SMs. 0 = min(hw concurrency, num_sms).
  std::uint32_t num_workers = 0;

  /// Architectural ceiling on simultaneously resident threads.
  std::uint64_t max_resident_threads() const {
    return std::uint64_t{num_sms} * max_threads_per_sm;
  }
};

}  // namespace toma::gpu
