#include "gpusim/device.hpp"

#include <algorithm>
#include <thread>

#include "gpusim/sm.hpp"
#include "util/assert.hpp"

namespace toma::gpu {

void LaunchState::record_error(std::exception_ptr e) {
  std::lock_guard<std::mutex> g(error_mu);
  if (!first_error) first_error = e;
}

Device::Device(DeviceConfig cfg) : cfg_(cfg), stack_pool_(cfg.stack_bytes) {
  TOMA_ASSERT(cfg_.num_sms > 0);
  TOMA_ASSERT(cfg_.warp_size > 0);
  TOMA_ASSERT(cfg_.max_threads_per_sm >= cfg_.warp_size);
  sms_.reserve(cfg_.num_sms);
  for (std::uint32_t i = 0; i < cfg_.num_sms; ++i) {
    sms_.push_back(std::make_unique<Sm>(*this, i));
  }
}

Device::~Device() = default;

void Device::launch_linear(std::uint64_t total_threads,
                           std::uint32_t block_size, const Kernel& kernel) {
  TOMA_ASSERT(block_size > 0);
  const std::uint64_t blocks =
      (total_threads + block_size - 1) / block_size;
  TOMA_ASSERT_MSG(blocks <= 0xffffffffu, "grid too large for Dim3.x");
  launch(Dim3{static_cast<std::uint32_t>(std::max<std::uint64_t>(blocks, 1))},
         Dim3{block_size}, kernel);
}

void Device::launch(Dim3 grid, Dim3 block, const Kernel& kernel) {
  TOMA_ASSERT(grid.count() > 0 && block.count() > 0);
  TOMA_ASSERT_MSG(block.count() <= cfg_.max_threads_per_sm,
                  "thread block larger than SM residency");

  LaunchState ls;
  ls.kernel = &kernel;
  ls.grid = grid;
  ls.block = block;
  ls.total_blocks = grid.count();
  ls.threads_per_block = static_cast<std::uint32_t>(block.count());

  std::uint32_t nw = cfg_.num_workers;
  if (nw == 0) {
    nw = std::max(1u, std::min(std::thread::hardware_concurrency(),
                               cfg_.num_sms));
  }
  nw = std::min(nw, cfg_.num_sms);

  if (nw == 1) {
    worker_main(0, 1, ls);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(nw);
    for (std::uint32_t w = 0; w < nw; ++w) {
      workers.emplace_back([this, w, nw, &ls] { worker_main(w, nw, ls); });
    }
    for (auto& t : workers) t.join();
  }

  {
    std::lock_guard<std::mutex> g(stats_mu_);
    ++stats_.launches;
    stats_.blocks_executed += ls.total_blocks;
    stats_.threads_executed += ls.total_blocks * ls.threads_per_block;
    stats_.fiber_resumes = 0;
    stats_.sched_rounds = 0;
    for (const auto& sm : sms_) {
      stats_.fiber_resumes += sm->fiber_resumes();
      stats_.sched_rounds += sm->rounds();
    }
  }

  if (ls.first_error) std::rethrow_exception(ls.first_error);
}

void Device::worker_main(std::uint32_t worker_id, std::uint32_t num_workers,
                         LaunchState& ls) {
  // Static SM ownership: SM i belongs to worker i % num_workers. A worker
  // spins its SMs until the whole grid retired; when it momentarily has no
  // resident blocks it backs off with an OS yield so co-workers progress.
  while (!ls.done()) {
    bool any = false;
    for (std::uint32_t s = worker_id; s < cfg_.num_sms; s += num_workers) {
      any = sms_[s]->step(ls) || any;
    }
    if (!any) std::this_thread::yield();
  }
}

DeviceStats Device::stats() const {
  std::lock_guard<std::mutex> g(stats_mu_);
  return stats_;
}

}  // namespace toma::gpu
