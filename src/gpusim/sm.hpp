// One streaming multiprocessor: admits thread blocks up to its residency
// limits and round-robins their fibers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/block.hpp"

namespace toma::gpu {

class Device;
struct LaunchState;

class Sm {
 public:
  Sm(Device& dev, std::uint32_t id);
  ~Sm();

  std::uint32_t id() const { return id_; }

  /// One scheduling round: admit blocks if capacity allows, then resume
  /// every runnable resident fiber once, retiring completed blocks.
  /// Returns true if the SM did any work (has or ran resident blocks).
  bool step(LaunchState& ls);

  bool idle() const { return resident_.empty(); }

  std::uint64_t fiber_resumes() const { return fiber_resumes_; }
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t blocks_run() const { return blocks_run_; }

 private:
  bool admit(LaunchState& ls);
  void retire(std::size_t idx, LaunchState& ls);
  std::unique_ptr<BlockRun> obtain_block_run();

  Device& dev_;
  std::uint32_t id_;
  std::vector<std::unique_ptr<BlockRun>> resident_;
  std::vector<std::unique_ptr<BlockRun>> recycled_;
  std::uint32_t resident_threads_ = 0;
  std::uint64_t fiber_resumes_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t blocks_run_ = 0;
};

}  // namespace toma::gpu
