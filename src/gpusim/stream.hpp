// Streams: ordering domains for asynchronous work, CUDA-style.
//
// Operations submitted to one stream are ordered by submission; distinct
// streams are unordered until a synchronization point. The simulator's
// kernel launches are synchronous, so a Stream carries no execution state
// of its own — it is an *identity* (a process-unique id the asynchronous
// allocator front-end keys its per-stream deferred batches by) plus a
// ticket pair that tracks how many submitted operations have reached a
// sync point, mirroring CUDA's event/fence progress queries.
#pragma once

#include <atomic>
#include <cstdint>

namespace toma::gpu {

class Stream {
 public:
  /// A fresh stream with a process-unique id.
  Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  std::uint32_t id() const { return id_; }

  /// Draw the next submission ticket (monotonic within the stream).
  /// Returns the 1-based position of the submitted operation.
  std::uint64_t ticket() {
    return next_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Tickets drawn so far.
  std::uint64_t submitted() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Mark every ticket <= `t` complete (monotonic: lower values no-op).
  void complete_to(std::uint64_t t) {
    std::uint64_t cur = completed_.load(std::memory_order_relaxed);
    while (cur < t && !completed_.compare_exchange_weak(
                          cur, t, std::memory_order_release)) {
    }
  }

  std::uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }

  /// No submitted operation is outstanding.
  bool idle() const { return completed() >= submitted(); }

 private:
  std::uint32_t id_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> completed_{0};
};

/// The process-wide default stream (CUDA's stream 0 analogue): what the
/// C facade uses when the caller passes a null stream handle.
Stream& default_stream();

}  // namespace toma::gpu
