#include "gpusim/this_thread.hpp"

#include <thread>

#include "gpusim/block.hpp"
#include "gpusim/device.hpp"
#include "gpusim/sm.hpp"
#include "util/assert.hpp"
#include "util/prng.hpp"

namespace toma::gpu {

namespace {
thread_local ThreadCtx* tl_current = nullptr;

std::uint64_t os_thread_hash() {
  return util::hash64(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

util::Xorshift& os_thread_rng() {
  thread_local util::Xorshift rng(os_thread_hash());
  return rng;
}
}  // namespace

namespace detail {
// Scheduler hook: the SM publishes the fiber it is about to resume.
void set_current(ThreadCtx* ctx) { tl_current = ctx; }
}  // namespace detail

namespace this_thread {

ThreadCtx* current() { return tl_current; }

bool in_kernel() { return tl_current != nullptr; }

void yield() {
  if (ThreadCtx* ctx = tl_current) {
    ctx->yield();
  } else {
    std::this_thread::yield();
  }
}

util::Xorshift& rng() {
  if (ThreadCtx* ctx = tl_current) return ctx->rng();
  return os_thread_rng();
}

std::uint64_t scatter_seed() { return rng().next(); }

std::uint32_t sm_id_or_hash(std::uint32_t num_sms) {
  TOMA_DASSERT(num_sms > 0);
  if (ThreadCtx* ctx = tl_current) return ctx->sm_id() % num_sms;
  return static_cast<std::uint32_t>(os_thread_hash() % num_sms);
}

}  // namespace this_thread

// ---- ThreadCtx methods that need full BlockRun/Fiber definitions --------

Dim3 ThreadCtx::thread_idx() const {
  return launch_->block.decode(thread_rank_);
}

Dim3 ThreadCtx::block_idx() const { return launch_->grid.decode(block_rank_); }

Dim3 ThreadCtx::block_dim() const { return launch_->block; }

Dim3 ThreadCtx::grid_dim() const { return launch_->grid; }

std::uint64_t ThreadCtx::global_rank() const {
  return block_rank_ * launch_->threads_per_block + thread_rank_;
}

void ThreadCtx::yield() {
  TOMA_DASSERT(tl_current == this);
  fiber_->suspend();
}

void ThreadCtx::sync_block() { block_->barrier.arrive_and_wait(*this); }

void* ThreadCtx::shared_mem() const { return block_->shared_mem.data(); }

std::size_t ThreadCtx::shared_mem_bytes() const {
  return block_->shared_mem.size();
}

void ThreadCtx::fiber_entry(void* arg) {
  auto* ctx = static_cast<ThreadCtx*>(arg);
  try {
    (*ctx->launch_->kernel)(*ctx);
  } catch (...) {
    ctx->launch_->record_error(std::current_exception());
  }
  ctx->block_->barrier.thread_exited();
  ctx->fiber_->mark_finished();
  ctx->fiber_->suspend();
  TOMA_UNREACHABLE();  // a finished fiber must never be resumed
}

}  // namespace toma::gpu
