// Intrusive doubly-linked list.
//
// Used for allocator metadata (bin free-lists, chunk lists) where nodes are
// embedded in memory the allocator itself manages, so no heap allocation may
// happen while manipulating the list. Mutation must be externally
// synchronized (the allocator uses RCU + a writer mutex); traversal during
// concurrent unlink is the RCU reader side and is handled in sync/rcu_list.
#pragma once

#include <cstddef>

#include "util/assert.hpp"

namespace toma::util {

struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return prev != nullptr || next != nullptr; }
  void clear() { prev = next = nullptr; }
};

/// Circular intrusive list with a sentinel head. `T` must derive from
/// ListNode via `Tag` (allows membership in several lists at once).
template <typename T, ListNode T::* Member>
class IntrusiveList {
 public:
  IntrusiveList() { head_.prev = head_.next = &head_; }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return head_.next == &head_; }

  std::size_t size() const {
    std::size_t n = 0;
    for (const ListNode* p = head_.next; p != &head_; p = p->next) ++n;
    return n;
  }

  void push_front(T* obj) { insert_after(&head_, node_of(obj)); }
  void push_back(T* obj) { insert_after(head_.prev, node_of(obj)); }

  T* front() const { return empty() ? nullptr : object_of(head_.next); }
  T* back() const { return empty() ? nullptr : object_of(head_.prev); }

  /// Unlink `obj`; the node's pointers are cleared.
  void erase(T* obj) {
    ListNode* n = node_of(obj);
    TOMA_DASSERT(n->linked());
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->clear();
  }

  T* pop_front() {
    if (empty()) return nullptr;
    T* obj = object_of(head_.next);
    erase(obj);
    return obj;
  }

  /// Forward iteration. Safe against erasing the *current* element if the
  /// caller saves `next` first; the allocator's RCU list handles the
  /// concurrent case instead.
  class iterator {
   public:
    iterator(ListNode* n, const ListNode* head) : n_(n), head_(head) {}
    T& operator*() const { return *object_of(n_); }
    T* operator->() const { return object_of(n_); }
    iterator& operator++() {
      n_ = n_->next;
      return *this;
    }
    bool operator==(const iterator& o) const { return n_ == o.n_; }

   private:
    ListNode* n_;
    const ListNode* head_;
  };

  iterator begin() { return iterator(head_.next, &head_); }
  iterator end() { return iterator(&head_, &head_); }

  static ListNode* node_of(T* obj) { return &(obj->*Member); }
  static T* object_of(ListNode* n) {
    // Standard-layout container_of via member pointer arithmetic.
    const auto offset = reinterpret_cast<std::size_t>(
        &(reinterpret_cast<T const volatile*>(kProbe)->*Member)) - kProbe;
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - offset);
  }

 private:
  static constexpr std::size_t kProbe = 0x1000;  // non-null probe address

  static void insert_after(ListNode* pos, ListNode* n) {
    TOMA_DASSERT(!n->linked());
    n->prev = pos;
    n->next = pos->next;
    pos->next->prev = n;
    pos->next = n;
  }

  ListNode head_;
};

}  // namespace toma::util
