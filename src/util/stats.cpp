#include "util/stats.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace toma::util {

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double total = static_cast<double>(n_ + o.n_);
  const double delta = o.mean_ - mean_;
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / total;
  mean_ += delta * static_cast<double>(o.n_) / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) {
  TOMA_ASSERT(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double SampleSet::min() { return quantile(0.0); }
double SampleSet::max() { return quantile(1.0); }

std::string eng_format(double v, int precision) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == 0.0) return "0";  // covers -0.0, which %g would print as "-0"
  // Scale by magnitude so negative values pick the same suffix as their
  // absolute value ("-1.5k", not "-1.5e+03").
  const double mag = std::fabs(v);
  const char* suffix = "";
  double scaled = v;
  if (mag >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (mag >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (mag >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g%s", precision, scaled, suffix);
  return buf;
}

}  // namespace toma::util
