// Bit manipulation and power-of-two arithmetic helpers.
//
// The allocator works exclusively with power-of-two sizes and alignments
// (buddy orders, size classes, chunk/bin geometry), so these helpers are on
// nearly every allocation path.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

namespace toma::util {

/// True iff `x` is a power of two. Zero is not a power of two.
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)). Precondition: x != 0.
constexpr unsigned log2_floor(std::uint64_t x) {
  TOMA_DASSERT(x != 0);
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// ceil(log2(x)). Precondition: x != 0.
constexpr unsigned log2_ceil(std::uint64_t x) {
  TOMA_DASSERT(x != 0);
  return x == 1 ? 0 : log2_floor(x - 1) + 1;
}

/// Smallest power of two >= x. Precondition: x != 0 and result fits u64.
constexpr std::uint64_t round_up_pow2(std::uint64_t x) {
  return std::uint64_t{1} << log2_ceil(x);
}

/// Round `v` up to a multiple of power-of-two `align`.
constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t align) {
  TOMA_DASSERT(is_pow2(align));
  return (v + align - 1) & ~(align - 1);
}

/// Round `v` down to a multiple of power-of-two `align`.
constexpr std::uint64_t align_down(std::uint64_t v, std::uint64_t align) {
  TOMA_DASSERT(is_pow2(align));
  return v & ~(align - 1);
}

/// True iff `v` is a multiple of power-of-two `align`.
constexpr bool is_aligned(std::uint64_t v, std::uint64_t align) {
  TOMA_DASSERT(is_pow2(align));
  return (v & (align - 1)) == 0;
}

inline bool is_aligned(const void* p, std::uint64_t align) {
  return is_aligned(reinterpret_cast<std::uintptr_t>(p), align);
}

/// Index of the lowest set bit. Precondition: x != 0.
constexpr unsigned ctz(std::uint64_t x) {
  TOMA_DASSERT(x != 0);
  return static_cast<unsigned>(std::countr_zero(x));
}

/// Number of set bits.
constexpr unsigned popcount(std::uint64_t x) {
  return static_cast<unsigned>(std::popcount(x));
}

/// Rotate a 64-bit word left by `r` (r in [0,63]).
constexpr std::uint64_t rotl64(std::uint64_t x, unsigned r) {
  return std::rotl(x, static_cast<int>(r));
}

}  // namespace toma::util
