// Small, fast pseudo-random number generators.
//
// Used for (a) scattering concurrent tree/bitmap searches so threads do not
// collide on the same word (the "hashing" technique the paper borrows from
// ScatterAlloc), and (b) workload generation in the benchmarks. These must
// be cheap (a few ALU ops) and per-thread seedable without shared state.
#pragma once

#include <cstdint>

namespace toma::util {

/// SplitMix64: used to expand a seed into well-distributed initial state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless hash of a 64-bit value (finalizer of MurmurHash3).
constexpr std::uint64_t hash64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Xorshift128+ generator: tiny state, passes BigCrush except binary rank.
class Xorshift {
 public:
  explicit constexpr Xorshift(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    s0_ = splitmix64(sm);
    s1_ = splitmix64(sm);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // all-zero state is absorbing
  }

  constexpr std::uint64_t next() {
    std::uint64_t x = s0_;
    const std::uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform value in [0, bound). Precondition: bound != 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping (slightly biased for
    // huge bounds, irrelevant for scatter/benchmark use).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace toma::util
