// ASCII table and CSV emission for the benchmark harness.
//
// Every figure-reproduction bench prints (a) a human-readable table with the
// same rows/series the paper plots, and (b) machine-readable CSV (when a
// path is given) so the results can be re-plotted.
#pragma once

#include <cstdio>
#include <string>
#include <type_traits>
#include <cstdint>
#include <utility>
#include <vector>

namespace toma::util {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> cols);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format heterogeneous cells.
  template <typename... Ts>
  void add(const Ts&... vals) {
    add_row({to_cell(vals)...});
  }

  /// Print aligned ASCII table to `out` (default stdout).
  void print(std::FILE* out = stdout) const;

  /// Write CSV to `path`; returns false on I/O error.
  bool write_csv(const std::string& path) const;

  /// Bumped whenever the JSON shape below changes, so downstream
  /// plotters can reject dumps they don't understand.
  static constexpr int kJsonSchemaVersion = 2;

  /// Attach a run-metadata pair (scale, device geometry, build toggles,
  /// ...) emitted in the JSON "meta" object. Last set of a key wins.
  void set_meta(const std::string& key, std::string value);

  /// Write JSON to `path`; returns false on I/O error. Shape:
  /// {"schema_version":N,"title":"...","meta":{"k":"v",...},
  ///  "header":[...],"rows":[[...],...]} — all cells as strings,
  /// exactly as formatted for the table.
  bool write_json(const std::string& path) const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(std::uint64_t v);
  static std::string to_cell(std::int64_t v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    if constexpr (std::is_signed_v<T>) return to_cell(std::int64_t{v});
    else return to_cell(std::uint64_t{v});
  }

  std::string title_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace toma::util
