#include "util/table.hpp"

#include <algorithm>
#include <cinttypes>

#include "util/assert.hpp"

namespace toma::util {

void Table::set_header(std::vector<std::string> cols) {
  TOMA_ASSERT(rows_.empty());
  header_ = std::move(cols);
}

void Table::set_meta(const std::string& key, std::string value) {
  for (auto& [k, v] : meta_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  meta_.emplace_back(key, std::move(value));
}

void Table::add_row(std::vector<std::string> cells) {
  TOMA_ASSERT_MSG(header_.empty() || cells.size() == header_.size(),
                  "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::to_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string Table::to_cell(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string Table::to_cell(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

void Table::print(std::FILE* out) const {
  const std::size_t ncols =
      header_.empty() ? (rows_.empty() ? 0 : rows_[0].size()) : header_.size();
  std::vector<std::size_t> widths(ncols, 0);
  for (std::size_t c = 0; c < ncols; ++c) {
    if (c < header_.size()) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_sep = [&] {
    std::fputc('+', out);
    for (std::size_t c = 0; c < ncols; ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
      std::fputc('+', out);
    }
    std::fputc('\n', out);
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputc('|', out);
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, " %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::fputc('\n', out);
  };

  if (!title_.empty()) std::fprintf(out, "\n== %s ==\n", title_.c_str());
  print_sep();
  if (!header_.empty()) {
    print_row(header_);
    print_sep();
  }
  for (const auto& row : rows_) print_row(row);
  print_sep();
  std::fflush(out);
}

bool Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) std::fputc(',', f);
      std::fputs(row[c].c_str(), f);
    }
    std::fputc('\n', f);
  };
  if (!header_.empty()) write_row(header_);
  for (const auto& row : rows_) write_row(row);
  std::fclose(f);
  return true;
}

bool Table::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  auto write_str = [&](const std::string& s) {
    std::fputc('"', f);
    for (const char c : s) {
      if (c == '"' || c == '\\') std::fputc('\\', f);
      if (static_cast<unsigned char>(c) < 0x20) {
        std::fprintf(f, "\\u%04x", c);
      } else {
        std::fputc(c, f);
      }
    }
    std::fputc('"', f);
  };
  auto write_row = [&](const std::vector<std::string>& row) {
    std::fputc('[', f);
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) std::fputc(',', f);
      write_str(row[c]);
    }
    std::fputc(']', f);
  };
  std::fprintf(f, "{\"schema_version\":%d,\n\"title\":", kJsonSchemaVersion);
  write_str(title_);
  std::fputs(",\n\"meta\":{", f);
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    if (i) std::fputc(',', f);
    write_str(meta_[i].first);
    std::fputc(':', f);
    write_str(meta_[i].second);
  }
  std::fputs("},\n\"header\":", f);
  write_row(header_);
  std::fputs(",\n\"rows\":[", f);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::fputs(r == 0 ? "\n" : ",\n", f);
    write_row(rows_[r]);
  }
  std::fputs("\n]}\n", f);
  return std::fclose(f) == 0;
}

}  // namespace toma::util
