// Compiler/layout hints shared across the library.
#pragma once

#include <cstddef>
#include <new>

#define TOMA_LIKELY(x) __builtin_expect(!!(x), 1)
#define TOMA_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define TOMA_NOINLINE __attribute__((noinline))
#define TOMA_ALWAYS_INLINE __attribute__((always_inline)) inline

namespace toma::util {

// Hardware destructive interference size. libstdc++ on x86-64 reports 64;
// we hard-code the common value so struct layouts are stable across
// toolchains (this is layout-affecting, not just a tuning knob).
inline constexpr std::size_t kCacheLine = 64;

}  // namespace toma::util

#define TOMA_CACHELINE_ALIGNED alignas(::toma::util::kCacheLine)
