// Concurrent fixed-capacity bitmaps.
//
// UAlloc tracks block occupancy inside a bin (up to 512 blocks) and bin
// occupancy inside a chunk (64 bins) with bitmaps updated by atomic RMW.
// To avoid every thread hammering word 0, searches are *scattered*: each
// caller starts at a word/bit derived from its own seed, the same trick
// ScatterAlloc uses and that the paper reuses for its tree descent.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"
#include "util/bitops.hpp"
#include "util/prng.hpp"

namespace toma::util {

/// View over an externally-owned array of atomic words forming a bitmap of
/// `nbits` bits. Bit i lives in word i/64 at position i%64. The storage is
/// plain uint64_t (so it can live inside raw allocator metadata); all
/// accesses go through std::atomic_ref.
class AtomicBitmapRef {
 public:
  AtomicBitmapRef(std::uint64_t* words, std::uint32_t nbits)
      : words_(words), nbits_(nbits) {}

  static constexpr std::uint32_t words_for(std::uint32_t nbits) {
    return (nbits + 63) / 64;
  }

  std::uint32_t size() const { return nbits_; }

  /// Atomically set bit `i`; returns true iff the bit was previously clear
  /// (i.e. this caller owns the transition).
  bool try_set(std::uint32_t i) {
    TOMA_DASSERT(i < nbits_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    std::atomic_ref<std::uint64_t> w(words_[i / 64]);
    return (w.fetch_or(mask, std::memory_order_acq_rel) & mask) == 0;
  }

  /// Atomically clear bit `i`; returns true iff the bit was previously set.
  bool try_clear(std::uint32_t i) {
    TOMA_DASSERT(i < nbits_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    std::atomic_ref<std::uint64_t> w(words_[i / 64]);
    return (w.fetch_and(~mask, std::memory_order_acq_rel) & mask) != 0;
  }

  bool test(std::uint32_t i) const {
    TOMA_DASSERT(i < nbits_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    std::atomic_ref<const std::uint64_t> w(words_[i / 64]);
    return (w.load(std::memory_order_acquire) & mask) != 0;
  }

  /// Find a clear bit and atomically set it, scattering the search start by
  /// `seed`. Returns the bit index, or kNone if no clear bit was found in a
  /// full pass. Callers that hold a unit from the accounting stage (the
  /// semaphore) retry until success, since a unit is guaranteed to exist.
  static constexpr std::uint32_t kNone = 0xffffffffu;

  std::uint32_t claim_clear_bit(std::uint64_t seed) {
    const std::uint32_t nwords = words_for(nbits_);
    const std::uint32_t start = static_cast<std::uint32_t>(
        hash64(seed) % nwords);
    for (std::uint32_t k = 0; k < nwords; ++k) {
      const std::uint32_t wi = (start + k) % nwords;
      std::atomic_ref<std::uint64_t> w(words_[wi]);
      std::uint64_t cur = w.load(std::memory_order_relaxed);
      while (true) {
        std::uint64_t avail = ~cur & valid_mask(wi);
        if (avail == 0) break;
        // Rotate so different seeds prefer different bits in the word.
        const unsigned rot = static_cast<unsigned>(hash64(seed ^ wi) & 63);
        const std::uint64_t rotated = rotl64(avail, rot);
        const unsigned bit = (ctz(rotated) + 64 - rot) % 64;
        const std::uint64_t mask = std::uint64_t{1} << bit;
        if (w.compare_exchange_weak(cur, cur | mask,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
          return wi * 64 + bit;
        }
        // cur reloaded by the failed CAS; retry within this word.
      }
    }
    return kNone;
  }

  /// Clear bit `i`; asserts the bit was set (double-free detection hook).
  /// Callers with more context (UAlloc's free paths) run try_clear()
  /// themselves and report the bin pointer and owning arena too.
  void release_bit(std::uint32_t i) {
    TOMA_ASSERT_FMT(try_clear(i),
                    "bitmap release of unset bit %u (of %u) at %p — double "
                    "free?",
                    i, nbits_, static_cast<const void*>(words_));
  }

  /// Population count over the whole map (not atomic as a whole; intended
  /// for tests/statistics on quiesced maps).
  std::uint32_t count() const {
    std::uint32_t n = 0;
    for (std::uint32_t wi = 0; wi < words_for(nbits_); ++wi) {
      std::atomic_ref<const std::uint64_t> w(words_[wi]);
      n += popcount(w.load(std::memory_order_acquire) & valid_mask(wi));
    }
    return n;
  }

  /// Set all bits >= nbits in the last word so they are never claimable,
  /// and clear all valid bits. Call once before concurrent use.
  void reset() {
    const std::uint32_t nwords = words_for(nbits_);
    for (std::uint32_t wi = 0; wi < nwords; ++wi) {
      std::atomic_ref<std::uint64_t> w(words_[wi]);
      w.store(~valid_mask(wi), std::memory_order_release);
    }
  }

 private:
  // Mask of bits in word `wi` that correspond to indices < nbits_.
  std::uint64_t valid_mask(std::uint32_t wi) const {
    const std::uint32_t base = wi * 64;
    if (base + 64 <= nbits_) return ~std::uint64_t{0};
    const std::uint32_t rem = nbits_ - base;
    return rem == 0 ? 0 : (~std::uint64_t{0} >> (64 - rem));
  }

  std::uint64_t* words_;
  std::uint32_t nbits_;
};

}  // namespace toma::util
