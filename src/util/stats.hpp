// Lightweight statistics accumulators for benchmarks and allocator
// introspection: streaming mean/min/max/variance (Welford) and a quantile
// sampler used by the benchmark harness to report run-to-run noise.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace toma::util {

/// Streaming accumulator (Welford's algorithm). O(1) space.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void merge(const RunningStats& o);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; supports exact quantiles. Intended for benchmark
/// repetitions (small n), not per-operation latencies.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double median() { return quantile(0.5); }
  /// Exact quantile by sorting a copy-on-demand; q in [0,1].
  double quantile(double q);
  double min();
  double max();

 private:
  std::vector<double> samples_;
};

/// Format a double with engineering suffixes (k, M, G) for table output,
/// e.g. 1.25e7 -> "12.5M".
std::string eng_format(double v, int precision = 3);

}  // namespace toma::util
