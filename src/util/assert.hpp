// Assertion and diagnostics macros for the toma library.
//
// TOMA_ASSERT   -- always-on invariant check (used on cold paths and in the
//                  allocator's consistency machinery).
// TOMA_DASSERT  -- debug-only check, compiled out in NDEBUG builds (used on
//                  hot paths such as semaphore CAS loops).
// TOMA_UNREACHABLE -- marks impossible control flow.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace toma::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "toma: assertion `%s` failed at %s:%d%s%s\n", expr,
               file, line, msg ? ": " : "", msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace toma::util

#define TOMA_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::toma::util::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define TOMA_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) ::toma::util::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define TOMA_DASSERT(expr) ((void)0)
#else
#define TOMA_DASSERT(expr) TOMA_ASSERT(expr)
#endif

#define TOMA_UNREACHABLE()                                                  \
  ::toma::util::assert_fail("unreachable", __FILE__, __LINE__, nullptr)
