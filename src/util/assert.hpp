// Assertion and diagnostics macros for the toma library.
//
// TOMA_ASSERT   -- always-on invariant check (used on cold paths and in the
//                  allocator's consistency machinery).
// TOMA_ASSERT_MSG -- always-on check with a static message.
// TOMA_ASSERT_FMT -- always-on check with a printf-formatted message, for
//                  diagnostics that must name the offending object (bit
//                  index, bin pointer, owning arena, ...).
// TOMA_DASSERT  -- debug-only check, compiled out in NDEBUG builds (used on
//                  hot paths such as semaphore CAS loops).
// TOMA_UNREACHABLE -- marks impossible control flow.
//
// A fatal hook (set_fatal_hook) runs once before abort: the obs layer
// installs a postmortem dump there (telemetry snapshot + the faulting SM's
// trace ring), so every fatal assert leaves a usable flight record. The
// hook is consumed on entry, which makes a crashing hook harmless.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace toma::util {

using FatalHook = void (*)();

namespace detail {
inline std::atomic<FatalHook> g_fatal_hook{nullptr};
}  // namespace detail

/// Install `hook` to run (once) before a fatal assert aborts. Returns the
/// previously installed hook. Pass nullptr to uninstall.
inline FatalHook set_fatal_hook(FatalHook hook) {
  return detail::g_fatal_hook.exchange(hook, std::memory_order_acq_rel);
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "toma: assertion `%s` failed at %s:%d%s%s\n", expr,
               file, line, msg ? ": " : "", msg ? msg : "");
  std::fflush(stderr);
  // One-shot: a hook that itself asserts must not recurse forever.
  if (FatalHook hook = detail::g_fatal_hook.exchange(
          nullptr, std::memory_order_acq_rel)) {
    hook();
  }
  std::abort();
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 4, 5)))
#endif
[[noreturn]] inline void
assert_fail_fmt(const char* expr, const char* file, int line, const char* fmt,
                ...) {
  char buf[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  assert_fail(expr, file, line, buf);
}

}  // namespace toma::util

#define TOMA_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) ::toma::util::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define TOMA_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) ::toma::util::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#define TOMA_ASSERT_FMT(expr, ...)                                         \
  do {                                                                     \
    if (!(expr))                                                           \
      ::toma::util::assert_fail_fmt(#expr, __FILE__, __LINE__, __VA_ARGS__); \
  } while (0)

#ifdef NDEBUG
#define TOMA_DASSERT(expr) ((void)0)
#else
#define TOMA_DASSERT(expr) TOMA_ASSERT(expr)
#endif

#define TOMA_UNREACHABLE()                                                  \
  ::toma::util::assert_fail("unreachable", __FILE__, __LINE__, nullptr)
