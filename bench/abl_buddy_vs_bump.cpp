// Ablation A4 — coarse allocator choice: buddy system vs atomic bump
// pointer (Vinkler & Havran, §2.2).
//
// The bump allocator is the throughput upper bound (one fetch_add per
// malloc) but cannot reclaim under churn; the buddy trades some rate for
// bounded external fragmentation. Protocol: alloc/free churn with a small
// live set and one pinned allocation, probing the largest allocatable
// block as fragmentation evolves.
#include <cinttypes>
#include <memory>

#include "alloc/tbuddy.hpp"
#include "baseline/bump_alloc.hpp"
#include "common/harness.hpp"

namespace toma::bench {
namespace {

constexpr std::size_t kPoolBytes = 64u << 20;

struct Out {
  double rate;         // churn ops/s
  double frag_pct;     // 100 * (1 - largest_free/free_bytes_expected)
  std::uint64_t fails; // failed allocations during the churn
};

template <typename A>
Out run(gpu::Device& dev, const Options& opt, A& alloc_obj,
        std::uint64_t threads, int rounds) {
  auto fails = std::make_shared<std::atomic<std::uint64_t>>(0);
  const double secs = time_launch(
      dev, threads, opt.block_sizes.front(),
      [&alloc_obj, fails, threads, rounds](gpu::ThreadCtx& t) {
        if (t.global_rank() >= threads) return;
        auto& rng = t.rng();
        for (int i = 0; i < rounds; ++i) {
          const std::size_t size = std::size_t{4096}
                                   << rng.next_below(3);  // 4..16 KB
          void* p = alloc_obj.malloc(size);
          if (p == nullptr) {
            fails->fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          t.yield();
          alloc_obj.free(p);
        }
      });
  const double expected_free = static_cast<double>(kPoolBytes) - 4096.0;
  Out out{};
  out.rate = static_cast<double>(threads) * rounds / secs;
  out.frag_pct = 100.0 * (1.0 - static_cast<double>(
                                    alloc_obj.largest_free_block()) /
                                    expected_free);
  out.fails = fails->load();
  return out;
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());
  const std::uint64_t threads = opt.quick ? 2048 : 8192;
  const int rounds = 4;

  util::Table table("Ablation A4: TBuddy vs bump allocator under churn");
  table.set_header({"allocator", "churn ops/s", "failed allocs",
                    "largest-block frag %"});

  {
    void* pool = std::aligned_alloc(kPoolBytes, kPoolBytes);
    alloc::TBuddy buddy(pool, kPoolBytes);
    // A pinned allocation forces the allocator to work around it.
    void* pin = buddy.allocate(0);
    struct Adapter {
      alloc::TBuddy& b;
      void* malloc(std::size_t s) { return b.allocate_bytes(s); }
      void free(void* p) { b.free(p); }
      std::size_t largest_free_block() const { return b.largest_free_block(); }
    } adapter{buddy};
    const Out o = run(dev, opt, adapter, threads, rounds);
    table.add("tbuddy", o.rate, o.fails, o.frag_pct);
    std::printf("  tbuddy: %s ops/s, %" PRIu64 " fails, %.2f%% frag\n",
                util::eng_format(o.rate).c_str(), o.fails, o.frag_pct);
    buddy.free(pin);
    std::free(pool);
  }
  {
    void* pool = std::aligned_alloc(4096, kPoolBytes);
    baseline::BumpAllocator bump(pool, kPoolBytes);
    void* pin = bump.malloc(4096);
    const Out o = run(dev, opt, bump, threads, rounds);
    table.add("bump", o.rate, o.fails, o.frag_pct);
    std::printf("  bump:   %s ops/s, %" PRIu64 " fails, %.2f%% frag\n",
                util::eng_format(o.rate).c_str(), o.fails, o.frag_pct);
    bump.free(pin);
    std::free(pool);
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
