// replay — record/replay/soak harness for the toma allocator.
//
// Drives multi-tenant allocation traffic through the *public C API*
// (include/toma/toma.h) in three modes:
//
//   * synthetic: --synth=poisson|bursty|kvcache|mixed generates
//     deterministic (seeded) traffic against N tenant pools — Poisson-ish
//     steady-state churn, bursty allocate/free-all phases, and
//     KV-cache-style append/evict lifetimes with realloc growth.
//     --record=PATH captures the run as a .tomarec flight-recorder trace.
//
//   * replay: --in=PATH re-executes a .tomarec event-for-event. Pools are
//     recreated from the trace header, streams and blocks from their
//     interned ids. Because the recorder interns identity in event order,
//     re-recording a replay (--in=a.tomarec --record=b.tomarec) of a
//     single-threaded trace reproduces it bit-for-bit — CI literally
//     `cmp`s the two files. --strict makes outcome mismatches fatal.
//
//   * soak: --soak=SECONDS loops synthetic rounds until the deadline,
//     draining and checking invariants between rounds: per-pool quota
//     respected, all bytes accounted after a full drain (leak check), and
//     zero HeapSan reports (use --heapsan to sanitize the pools).
//
// Exit status: 0 = clean, 1 = invariant violation / strict mismatch,
// 2 = usage or I/O error.
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "toma/toma.h"

namespace {

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

struct Options {
  std::string synth = "mixed";  // poisson | bursty | kvcache | mixed
  std::uint32_t tenants = 3;
  std::uint64_t ops = 20000;  // per round
  std::uint64_t seed = 1;
  std::uint32_t streams = 2;  // created streams per tenant (plus default)
  std::size_t pool_bytes = 16u << 20;
  std::size_t quota = 0;        // applied to tenant 0 when nonzero
  std::uint64_t slo_ns = 0;     // SLO target on every pool
  bool heapsan = false;         // sanitize every pool
  std::string record_path;      // dump a .tomarec after the run
  std::size_t record_cap = 0;   // 0 = sized from the workload
  std::string in_path;          // replay this trace instead of synth
  bool strict = false;          // replay: outcome mismatch is fatal
  double soak_seconds = 0;      // 0 = single round
  std::string prom_path;        // Prometheus metrics export
  std::string json_path;        // stable-JSON metrics export
  bool quiet = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--synth=poisson|bursty|kvcache|mixed] [--tenants=N]\n"
      "          [--ops=N] [--seed=S] [--streams=K] [--pool-bytes=B]\n"
      "          [--quota=B] [--slo=NS] [--heapsan] [--record=PATH]\n"
      "          [--record-cap=N] [--in=PATH] [--strict] [--soak=SECONDS]\n"
      "          [--metrics-prom=PATH] [--metrics-json=PATH] [--quiet]\n",
      argv0);
}

bool parse_args(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [a](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      return std::strncmp(a, flag, n) == 0 ? a + n : nullptr;
    };
    const char* v;
    if ((v = val("--synth="))) {
      o->synth = v;
    } else if ((v = val("--tenants="))) {
      o->tenants = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = val("--ops="))) {
      o->ops = std::strtoull(v, nullptr, 10);
    } else if ((v = val("--seed="))) {
      o->seed = std::strtoull(v, nullptr, 10);
    } else if ((v = val("--streams="))) {
      o->streams = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = val("--pool-bytes="))) {
      o->pool_bytes = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if ((v = val("--quota="))) {
      o->quota = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if ((v = val("--slo="))) {
      o->slo_ns = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(a, "--heapsan") == 0) {
      o->heapsan = true;
    } else if ((v = val("--record="))) {
      o->record_path = v;
    } else if ((v = val("--record-cap="))) {
      o->record_cap = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if ((v = val("--in="))) {
      o->in_path = v;
    } else if (std::strcmp(a, "--strict") == 0) {
      o->strict = true;
    } else if ((v = val("--soak="))) {
      o->soak_seconds = std::strtod(v, nullptr);
    } else if ((v = val("--metrics-prom="))) {
      o->prom_path = v;
    } else if ((v = val("--metrics-json="))) {
      o->json_path = v;
    } else if (std::strcmp(a, "--quiet") == 0) {
      o->quiet = true;
    } else {
      usage(argv[0]);
      return false;
    }
  }
  if (o->tenants == 0) o->tenants = 1;
  if (o->synth != "poisson" && o->synth != "bursty" && o->synth != "kvcache" &&
      o->synth != "mixed") {
    usage(argv[0]);
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64): every byte of traffic derives from
// --seed, never from time or pointer values, so a recorded run is exactly
// reproducible.
// ---------------------------------------------------------------------------

struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint32_t below(std::uint32_t n) {
    return n != 0 ? static_cast<std::uint32_t>(next() % n) : 0;
  }
  bool chance(std::uint32_t percent) { return below(100) < percent; }
};

// Hot-key size skew: 90% of requests hit a handful of hot size classes
// (the shape of real serving traffic), 10% spread uniformly.
std::size_t pick_size(Rng& rng) {
  static constexpr std::size_t kHot[] = {96,   256,  512,   1024,
                                         2048, 4096, 16384, 32768};
  if (rng.chance(90)) return kHot[rng.below(8)];
  return 8 + rng.below(65536 - 8);
}

// ---------------------------------------------------------------------------
// Tenants
// ---------------------------------------------------------------------------

/// One KV-cache-style sequence: a realloc-grown context block plus
/// per-token small allocations, evicted FIFO.
struct Sequence {
  void* kv = nullptr;
  std::size_t kv_size = 0;
  std::vector<void*> toks;
};

struct Tenant {
  std::string name;
  toma_pool_t pool = nullptr;
  std::vector<toma_stream_t> streams;  // [0] = NULL (default stream)
  std::string mode;

  std::vector<void*> live;       // blocks awaiting a (possibly async) free
  std::vector<Sequence> seqs;    // kvcache mode
  std::vector<void*> burst;      // bursty mode
  std::uint64_t quota_rejects = 0;
  std::uint64_t ops_issued = 0;
};

toma_stream_t pick_stream(Tenant& t, Rng& rng) {
  return t.streams[rng.below(static_cast<std::uint32_t>(t.streams.size()))];
}

void note_status(Tenant& t, toma_status_t st) {
  if (st == TOMA_ERR_QUOTA) ++t.quota_rejects;
}

// --- traffic shapes ---------------------------------------------------------

/// Steady-state churn: allocation pressure proportional to distance from
/// a target residency, mixed sync/async paths, periodic syncs.
void poisson_step(Tenant& t, Rng& rng) {
  constexpr std::size_t kTargetLive = 192;
  const bool alloc = t.live.size() < kTargetLive ? rng.chance(60)
                                                 : rng.chance(40);
  if (alloc || t.live.empty()) {
    toma_status_t st = TOMA_OK;
    const std::size_t size = pick_size(rng);
    void* p = rng.chance(50)
                  ? toma_malloc(t.pool, size, &st)
                  : toma_malloc_async(t.pool, size, pick_stream(t, rng), &st);
    note_status(t, st);
    if (p != nullptr) t.live.push_back(p);
  } else {
    const std::uint32_t i =
        rng.below(static_cast<std::uint32_t>(t.live.size()));
    void* p = t.live[i];
    t.live[i] = t.live.back();
    t.live.pop_back();
    if (rng.chance(50)) {
      toma_free(t.pool, p);
    } else {
      toma_free_async(t.pool, p, pick_stream(t, rng));
    }
  }
  ++t.ops_issued;
  if (rng.chance(1)) {
    toma_pool_sync(t.pool, pick_stream(t, rng));
    ++t.ops_issued;
  }
}

/// Burst phases: fill a burst of async allocations, then free-all on the
/// same stream and sync — the allocate/execute/release rhythm of batch
/// inference.
void bursty_step(Tenant& t, Rng& rng) {
  constexpr std::size_t kBurst = 64;
  toma_stream_t s = t.streams.back();
  if (t.burst.size() < kBurst) {
    toma_status_t st = TOMA_OK;
    void* p = toma_malloc_async(t.pool, pick_size(rng), s, &st);
    note_status(t, st);
    if (p != nullptr) t.burst.push_back(p);
    ++t.ops_issued;
    if (p == nullptr && t.burst.empty()) {
      // Pool can't serve even one block: nothing to release, bail out of
      // the phase so the step doesn't spin.
      toma_pool_sync(t.pool, s);
      ++t.ops_issued;
    }
  } else {
    for (void* p : t.burst) toma_free_async(t.pool, p, s);
    t.ops_issued += t.burst.size();
    t.burst.clear();
    toma_pool_sync(t.pool, s);
    ++t.ops_issued;
  }
}

/// KV-cache lifetimes: sequences append tokens (small blocks) and grow
/// their context block by doubling realloc; old sequences evict FIFO.
void kvcache_step(Tenant& t, Rng& rng) {
  constexpr std::size_t kMaxSeqs = 12;
  constexpr std::size_t kMaxToks = 48;
  if (t.seqs.empty() || (t.seqs.size() < kMaxSeqs && rng.chance(8))) {
    Sequence s;
    toma_status_t st = TOMA_OK;
    s.kv_size = 2048;
    s.kv = toma_malloc(t.pool, s.kv_size, &st);
    note_status(t, st);
    ++t.ops_issued;
    if (s.kv != nullptr) t.seqs.push_back(std::move(s));
    return;
  }
  Sequence& s = t.seqs[rng.below(static_cast<std::uint32_t>(t.seqs.size()))];
  if (s.toks.size() >= kMaxToks || t.seqs.size() >= kMaxSeqs) {
    // Evict the oldest sequence wholesale.
    Sequence victim = std::move(t.seqs.front());
    t.seqs.erase(t.seqs.begin());
    for (void* p : victim.toks) toma_free(t.pool, p);
    t.ops_issued += victim.toks.size();
    if (victim.kv != nullptr) {
      toma_free(t.pool, victim.kv);
      ++t.ops_issued;
    }
    return;
  }
  // Append a token; every 16th token doubles the context block.
  toma_status_t st = TOMA_OK;
  void* tok = toma_malloc(t.pool, 64 + rng.below(960), &st);
  note_status(t, st);
  ++t.ops_issued;
  if (tok != nullptr) s.toks.push_back(tok);
  if (s.toks.size() % 16 == 0 && s.kv != nullptr) {
    void* grown = toma_realloc(t.pool, s.kv, s.kv_size * 2, &st);
    note_status(t, st);
    ++t.ops_issued;
    if (grown != nullptr) {
      s.kv = grown;
      s.kv_size *= 2;
    }
  }
}

void step(Tenant& t, Rng& rng) {
  if (t.mode == "poisson") {
    poisson_step(t, rng);
  } else if (t.mode == "bursty") {
    bursty_step(t, rng);
  } else {
    kvcache_step(t, rng);
  }
}

/// One round of interleaved multi-tenant traffic, ending with a sync and
/// a trim per tenant (the trim exercises the release path under
/// recording).
void run_round(std::vector<Tenant>& tenants, Rng& rng, std::uint64_t ops) {
  for (std::uint64_t i = 0; i < ops; ++i) {
    Tenant& t = tenants[rng.below(static_cast<std::uint32_t>(tenants.size()))];
    step(t, rng);
  }
  for (Tenant& t : tenants) {
    toma_pool_sync_all(t.pool);
    if (rng.chance(50)) toma_trim(t.pool);
  }
}

/// Free every outstanding block (through the same C API), drain all
/// streams, and trim — after this the pools must be empty.
void drain_all(std::vector<Tenant>& tenants) {
  for (Tenant& t : tenants) {
    for (void* p : t.live) toma_free(t.pool, p);
    t.live.clear();
    for (void* p : t.burst) toma_free(t.pool, p);
    t.burst.clear();
    for (Sequence& s : t.seqs) {
      for (void* p : s.toks) toma_free(t.pool, p);
      if (s.kv != nullptr) toma_free(t.pool, s.kv);
    }
    t.seqs.clear();
    toma_pool_sync_all(t.pool);
    toma_trim(t.pool);
  }
}

// ---------------------------------------------------------------------------
// Invariant checks (soak mode and end-of-run)
// ---------------------------------------------------------------------------

struct Checker {
  std::uint64_t violations = 0;

  void expect(bool ok, const char* fmt, ...) {
    if (ok) return;
    ++violations;
    std::va_list ap;
    va_start(ap, fmt);
    std::fputs("INVARIANT VIOLATION: ", stderr);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
  }

  /// Quota ceiling: live bytes never exceed the pool's quota.
  void check_quota(const Tenant& t) {
    const std::size_t quota = toma_pool_quota(t.pool);
    if (quota == 0) return;
    const std::size_t used = toma_pool_bytes_in_use(t.pool);
    expect(used <= quota, "pool %s: bytes_in_use %zu > quota %zu",
           t.name.c_str(), used, quota);
  }

  /// Leak check: after drain_all, every pool accounts to zero bytes.
  void check_empty(const Tenant& t) {
    const std::size_t used = toma_pool_bytes_in_use(t.pool);
    expect(used == 0, "pool %s: %zu bytes still in use after full drain",
           t.name.c_str(), used);
  }

  /// HeapSan quiet: no OOB/UAF/double-free/invalid-free/leak reports.
  void check_heapsan() {
    static const char* kReports[] = {
        "san.report.oob", "san.report.uaf", "san.report.double_free",
        "san.report.invalid_free", "san.report.leak"};
    for (const char* name : kReports) {
      const std::uint64_t n = toma::obs::registry().counter(name).value();
      expect(n == 0, "%s = %" PRIu64, name, n);
    }
  }
};

// ---------------------------------------------------------------------------
// Synthetic driver
// ---------------------------------------------------------------------------

const char* mode_for(const Options& opt, std::uint32_t tenant_idx) {
  if (opt.synth != "mixed") return opt.synth.c_str();
  static const char* kModes[] = {"poisson", "kvcache", "bursty"};
  return kModes[tenant_idx % 3];
}

bool make_tenants(const Options& opt, std::vector<Tenant>* out) {
  for (std::uint32_t i = 0; i < opt.tenants; ++i) {
    Tenant t;
    t.name = "tenant-" + std::to_string(i);
    t.mode = mode_for(opt, i);
    toma_pool_config_t cfg = toma_pool_config_default();
    cfg.pool_bytes = opt.pool_bytes;
    cfg.heapsan = opt.heapsan ? 1 : 0;
    cfg.slo_latency_ns = opt.slo_ns;
    if (i == 0 && opt.quota != 0) cfg.quota_bytes = opt.quota;
    const toma_status_t st = toma_pool_create(t.name.c_str(), &cfg, &t.pool);
    if (st != TOMA_OK) {
      std::fprintf(stderr, "toma_pool_create(%s): %s\n", t.name.c_str(),
                   toma_status_str(st));
      return false;
    }
    t.streams.push_back(nullptr);  // the default stream
    for (std::uint32_t k = 0; k < opt.streams; ++k) {
      t.streams.push_back(toma_stream_create());
    }
    out->push_back(std::move(t));
  }
  return true;
}

/// Streams and pools are torn down only after recording has stopped, so
/// teardown events never leak into the dumped trace.
void destroy_tenants(std::vector<Tenant>& tenants) {
  for (Tenant& t : tenants) {
    for (toma_stream_t s : t.streams) {
      if (s != nullptr) toma_stream_destroy(s);
    }
    toma_pool_destroy(t.pool);
  }
  tenants.clear();
}

int run_synth(const Options& opt) {
  std::vector<Tenant> tenants;
  if (!make_tenants(opt, &tenants)) return 2;

  if (!opt.record_path.empty()) {
    // Size the buffer generously: a step can issue several events, and a
    // soak run loops rounds; drops would break the replay cmp.
    std::size_t cap = opt.record_cap;
    if (cap == 0) {
      cap = static_cast<std::size_t>(opt.ops) * 4 + 4096;
      if (opt.soak_seconds > 0) cap *= 64;
    }
    if (toma_record_start(cap) != TOMA_OK) {
      std::fprintf(stderr, "recorder already active\n");
      return 2;
    }
  }

  Rng rng{opt.seed * 0x9e3779b97f4a7c15ull + 1};
  Checker check;
  std::uint64_t rounds = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(opt.soak_seconds);
  do {
    run_round(tenants, rng, opt.ops);
    ++rounds;
    for (const Tenant& t : tenants) check.check_quota(t);
    // Every few soak rounds (and always at the end), drain to zero and
    // leak-check; this also keeps the recorded trace ending on a clean
    // heap so replays can verify the same invariant.
    const bool last = opt.soak_seconds <= 0 ||
                      std::chrono::steady_clock::now() >= deadline;
    if (last || rounds % 8 == 0) {
      drain_all(tenants);
      for (const Tenant& t : tenants) check.check_empty(t);
    }
    if (last) break;
  } while (true);

  if (!opt.record_path.empty()) {
    toma_record_stop();
    const std::uint64_t dropped = toma_record_dropped();
    if (toma_record_dump(opt.record_path.c_str()) != TOMA_OK) {
      std::fprintf(stderr, "failed to write %s\n", opt.record_path.c_str());
      return 2;
    }
    if (!opt.quiet) {
      std::printf("recorded %zu events (%" PRIu64 " dropped) -> %s\n",
                  toma_record_event_count(), dropped,
                  opt.record_path.c_str());
    }
    check.expect(dropped == 0, "recorder dropped %" PRIu64 " events",
                 dropped);
  }

  if (opt.heapsan) check.check_heapsan();

  std::uint64_t total_ops = 0, total_rejects = 0;
  for (const Tenant& t : tenants) {
    total_ops += t.ops_issued;
    total_rejects += t.quota_rejects;
  }
  if (!opt.quiet) {
    std::printf("synth %s: %u tenants, %" PRIu64 " rounds, %" PRIu64
                " ops (%" PRIu64 " quota rejects), %" PRIu64 " violations\n",
                opt.synth.c_str(), opt.tenants, rounds, total_ops,
                total_rejects, check.violations);
  }

  destroy_tenants(tenants);
  return check.violations != 0 ? 1 : 0;
}

// ---------------------------------------------------------------------------
// Trace replay
// ---------------------------------------------------------------------------

int run_replay(const Options& opt) {
  using toma::obs::RecOp;
  using toma::obs::RecordedTrace;

  RecordedTrace trace;
  if (!RecordedTrace::read(opt.in_path, &trace)) {
    std::fprintf(stderr, "cannot read trace %s\n", opt.in_path.c_str());
    return 2;
  }

  // Recreate the recorded pools from the header. A name collision (e.g. a
  // trace of the default pool) falls back to the existing pool.
  std::vector<toma_pool_t> pools;
  std::vector<bool> pool_created;
  for (const toma::obs::RecordedPool& rp : trace.pools) {
    toma_pool_config_t cfg = toma_pool_config_default();
    cfg.pool_bytes = static_cast<size_t>(rp.pool_bytes);
    cfg.quota_bytes = static_cast<size_t>(rp.quota_bytes);
    cfg.release_threshold = static_cast<size_t>(rp.release_threshold);
    if (rp.num_arenas != 0) cfg.num_arenas = rp.num_arenas;
    cfg.stream_async = (rp.flags & toma::obs::kRecPoolAsync) ? 1 : 0;
    cfg.heapsan = (rp.flags & toma::obs::kRecPoolHeapSan) ? 1 : 0;
    toma_pool_t pool = nullptr;
    const toma_status_t st = toma_pool_create(rp.name.c_str(), &cfg, &pool);
    if (st == TOMA_ERR_EXISTS) pool = toma_pool_find(rp.name.c_str());
    if (pool == nullptr) {
      std::fprintf(stderr, "cannot recreate pool %s: %s\n", rp.name.c_str(),
                   toma_status_str(st));
      return 2;
    }
    pools.push_back(pool);
    pool_created.push_back(st == TOMA_OK);
  }

  if (!opt.record_path.empty()) {
    const std::size_t cap =
        trace.events.size() < 1024 ? 1024 : trace.events.size();
    if (toma_record_start(opt.record_cap != 0 ? opt.record_cap : cap) !=
        TOMA_OK) {
      std::fprintf(stderr, "recorder already active\n");
      return 2;
    }
  }

  // Interned id -> live handle maps. Streams are created on first
  // appearance (matching the recorder's first-appearance interning);
  // blocks grow as alloc events grant ids. block_pool remembers each
  // block's owning pool so end-of-run cleanup can free leftovers.
  std::vector<toma_stream_t> streams = {nullptr};  // id 0 = default
  std::vector<bool> stream_dead = {false};
  std::vector<void*> blocks(1, nullptr);  // id 0 = "unknown" (skipped)
  std::vector<std::uint16_t> block_pool(1, 0);

  auto stream_at = [&](std::uint32_t id) -> toma_stream_t {
    while (streams.size() <= id) {
      streams.push_back(toma_stream_create());
      stream_dead.push_back(false);
    }
    return streams[id];
  };
  auto block_slot = [&](std::uint32_t id) -> void*& {
    if (blocks.size() <= id) {
      blocks.resize(id + 1, nullptr);
      block_pool.resize(id + 1, 0);
    }
    return blocks[id];
  };

  std::uint64_t mismatches = 0;
  auto check_outcome = [&](const toma::obs::RecordEvent& e,
                           toma_status_t got) {
    if (static_cast<std::uint8_t>(got) == e.outcome) return;
    ++mismatches;
    if (mismatches <= 10) {
      std::fprintf(stderr,
                   "outcome mismatch at seq %" PRIu64
                   ": recorded %u, replayed %d\n",
                   e.seq, e.outcome, static_cast<int>(got));
    }
  };

  for (const toma::obs::RecordEvent& e : trace.events) {
    if (e.pool >= pools.size()) {
      std::fprintf(stderr, "corrupt trace: pool id %u out of range\n",
                   e.pool);
      return 2;
    }
    toma_pool_t pool = pools[e.pool];
    toma_status_t st = TOMA_OK;
    switch (e.op) {
      case RecOp::kMalloc: {
        void* p = toma_malloc(pool, static_cast<size_t>(e.size), &st);
        if (e.block != 0) {
          block_slot(e.block) = p;
          block_pool[e.block] = e.pool;
        }
        check_outcome(e, st);
        break;
      }
      case RecOp::kCalloc: {
        void* p =
            toma_calloc(pool, 1, static_cast<size_t>(e.size), &st);
        if (e.block != 0) {
          block_slot(e.block) = p;
          block_pool[e.block] = e.pool;
        }
        check_outcome(e, st);
        break;
      }
      case RecOp::kRealloc: {
        void* old_p = e.block != 0 ? block_slot(e.block) : nullptr;
        void* q =
            toma_realloc(pool, old_p, static_cast<size_t>(e.size), &st);
        // Mirror the recorder's identity bookkeeping: success (or a
        // realloc-to-zero free) consumes the old id; a granted result
        // occupies the new id.
        if (e.block != 0 && (q != nullptr || e.size == 0)) {
          block_slot(e.block) = nullptr;
        }
        if (e.aux != 0) {
          block_slot(e.aux) = q;
          block_pool[e.aux] = e.pool;
        }
        check_outcome(e, st);
        break;
      }
      case RecOp::kFree: {
        if (e.block != 0) {
          toma_free(pool, block_slot(e.block));
          block_slot(e.block) = nullptr;
        }
        break;
      }
      case RecOp::kMallocAsync: {
        void* p = toma_malloc_async(pool, static_cast<size_t>(e.size),
                                    stream_at(e.stream), &st);
        if (e.block != 0) block_slot(e.block) = p;
        check_outcome(e, st);
        break;
      }
      case RecOp::kFreeAsync: {
        if (e.block != 0) {
          toma_free_async(pool, block_slot(e.block), stream_at(e.stream));
          block_slot(e.block) = nullptr;
        }
        break;
      }
      case RecOp::kSync:
        toma_pool_sync(pool, stream_at(e.stream));
        break;
      case RecOp::kSyncAll:
        toma_pool_sync_all(pool);
        break;
      case RecOp::kTrim:
        toma_trim(pool);
        break;
      case RecOp::kStreamRelease:
        // Recorded by toma_stream_destroy, which emits one event per
        // pool: act on the first sighting, skip the echoes.
        if (e.stream != 0 && e.stream < streams.size() &&
            !stream_dead[e.stream]) {
          toma_stream_destroy(streams[e.stream]);
          stream_dead[e.stream] = true;
        }
        break;
    }
  }

  std::size_t re_recorded = 0;
  if (!opt.record_path.empty()) {
    toma_record_stop();
    re_recorded = toma_record_event_count();
    if (toma_record_dump(opt.record_path.c_str()) != TOMA_OK) {
      std::fprintf(stderr, "failed to write %s\n", opt.record_path.c_str());
      return 2;
    }
  }

  // Cleanup (after any re-recording stopped): free blocks the trace left
  // live, then drain every pool so teardown sees an empty heap.
  std::size_t leftovers = 0;
  for (std::size_t b = 1; b < blocks.size(); ++b) {
    if (blocks[b] != nullptr) {
      toma_free(pools[block_pool[b]], blocks[b]);
      blocks[b] = nullptr;
      ++leftovers;
    }
  }
  for (toma_pool_t pool : pools) {
    toma_pool_sync_all(pool);
    toma_trim(pool);
  }

  if (!opt.quiet && leftovers != 0) {
    std::printf("freed %zu blocks the trace left live\n", leftovers);
  }
  if (!opt.quiet) {
    std::printf("replayed %zu events from %s (%" PRIu64
                " outcome mismatches)%s\n",
                trace.events.size(), opt.in_path.c_str(), mismatches,
                opt.record_path.empty()
                    ? ""
                    : (", re-recorded " + std::to_string(re_recorded) +
                       " -> " + opt.record_path)
                          .c_str());
  }

  for (std::size_t s = 1; s < streams.size(); ++s) {
    if (!stream_dead[s]) toma_stream_destroy(streams[s]);
  }
  for (std::size_t i = 0; i < pools.size(); ++i) {
    if (pool_created[i]) toma_pool_destroy(pools[i]);
  }

  return opt.strict && mismatches != 0 ? 1 : 0;
}

// ---------------------------------------------------------------------------

int export_metrics(const Options& opt) {
  if (!opt.prom_path.empty()) {
    if (toma_metrics_export(opt.prom_path.c_str(), TOMA_METRICS_PROMETHEUS) !=
        TOMA_OK) {
      std::fprintf(stderr, "failed to write %s\n", opt.prom_path.c_str());
      return 2;
    }
    if (!opt.quiet) std::printf("metrics -> %s\n", opt.prom_path.c_str());
  }
  if (!opt.json_path.empty()) {
    if (toma_metrics_export(opt.json_path.c_str(), TOMA_METRICS_JSON) !=
        TOMA_OK) {
      std::fprintf(stderr, "failed to write %s\n", opt.json_path.c_str());
      return 2;
    }
    if (!opt.quiet) std::printf("metrics -> %s\n", opt.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;
  const int rc = opt.in_path.empty() ? run_synth(opt) : run_replay(opt);
  const int mrc = export_metrics(opt);
  return rc != 0 ? rc : mrc;
}
