// Figure 6 — Speedup of RCU delegation (conditional barriers) over
// classical RCU (every writer runs a full barrier).
//
// Paper protocol (§5.2): a doubly linked list whose elements carry tags;
// an input tag vector contains every tag in the list. Each GPU thread
// processes one input tag: if its element is in the list, the thread
// removes it (writer); reader threads traverse searching for their tag.
// The writer:reader ratio is set by sizing the list (#writers) against
// the tag vector (#readers): ratios 1:32, 1:128, 1:512, 1:2048.
//
// Expected shape (paper): ~1x at low thread counts or few writers; up to
// ~14x once many writers pile onto the barrier path, because delegation
// releases blocked thread-blocks' hardware resources immediately. Worst
// case no slower than ~1% under classical.
#include <cinttypes>
#include <memory>
#include <vector>

#include "common/harness.hpp"
#include "sync/rcu.hpp"
#include "sync/rcu_list.hpp"

namespace toma::bench {
namespace {

struct Elem {
  sync::RcuListNode node;
  sync::RcuCallback cb;
  std::uint32_t tag = 0;
  std::atomic<std::uint32_t> removed{0};
};

Elem* elem_of(sync::RcuListNode* n) {
  return reinterpret_cast<Elem*>(reinterpret_cast<char*>(n) -
                                 offsetof(Elem, node));
}

struct RunOut {
  double secs = 0;
  std::uint64_t full_barriers = 0;
  std::uint64_t delegated_barriers = 0;
};

RunOut run_single(gpu::Device& dev, const Options& opt, std::uint64_t writers,
                  std::uint64_t readers, bool delegated);

/// One measurement: W writers (list elements) + R readers; returns the
/// median-time run of three (grace-period timing is scheduling-sensitive).
RunOut run_once(gpu::Device& dev, const Options& opt, std::uint64_t writers,
                std::uint64_t readers, bool delegated) {
  RunOut best{};
  util::SampleSet samples;
  std::vector<RunOut> runs;
  for (int rep = 0; rep < 3; ++rep) {
    runs.push_back(run_single(dev, opt, writers, readers, delegated));
    samples.add(runs.back().secs);
  }
  const double med = samples.median();
  for (const RunOut& r : runs) {
    if (r.secs == med) return r;
  }
  best = runs[1];
  best.secs = med;
  return best;
}

RunOut run_single(gpu::Device& dev, const Options& opt, std::uint64_t writers,
                  std::uint64_t readers, bool delegated) {
  RunOut out{};
  util::RunningStats times;
  for (std::uint32_t block : opt.block_sizes) {
    // Fresh domain + list per launch (the kernel consumes the list).
    auto dom = std::make_shared<sync::SrcuDomain>();
    auto list = std::make_shared<sync::RcuList>(*dom);
    auto elems = std::make_shared<std::vector<Elem>>(writers);
    list->writer_lock();
    for (std::uint64_t i = 0; i < writers; ++i) {
      (*elems)[i].tag = static_cast<std::uint32_t>(i);
      list->push_back_locked(&(*elems)[i].node);
    }
    list->writer_unlock();
    const std::uint64_t total = writers + readers;
    const std::uint64_t stride = total / writers;  // writers spread evenly
    gpu::Kernel kernel = gpu::Kernel([dom, list, elems, writers, total,
                                      stride, delegated](gpu::ThreadCtx& t) {
      const std::uint64_t id = t.global_rank();
      if (id >= total) return;
      // Writers are interleaved throughout the grid (the paper's input
      // tag vector mixes all tags): every execution wave contains some
      // writers, so a writer blocked on a barrier pins its thread block's
      // residency slot — the hardware-occupancy cost delegation removes.
      const bool is_writer = (id % stride == 0) && (id / stride < writers);
      if (is_writer) {
        // Writer: remove one element, then wait out (or delegate) the
        // grace period that makes the element reusable.
        Elem& e = (*elems)[id / stride];
        list->writer_lock();
        list->unlink_locked(&e.node);
        list->writer_unlock();
        e.cb.fn = [](sync::RcuCallback* cb) {
          reinterpret_cast<Elem*>(reinterpret_cast<char*>(cb) -
                                  offsetof(Elem, cb))
              ->removed.store(1, std::memory_order_release);
        };
        if (delegated) {
          dom->barrier_conditional(&e.cb);
        } else {
          dom->call(&e.cb);
          dom->synchronize();
        }
      } else {
        // Reader: search the list for a tag. The periodic yield models
        // the memory latency of chasing list pointers on real hardware;
        // without it a cooperative reader's whole critical section fits
        // in one uninterrupted fiber slice and grace periods never
        // actually overlap with readers (see EXPERIMENTS.md).
        const std::uint32_t target = static_cast<std::uint32_t>(id % writers);
        sync::RcuReadGuard g(*dom);
        int visited = 0;
        for (sync::RcuListNode* n = list->reader_begin(); !list->is_end(n);
             n = sync::RcuList::reader_next(n)) {
          if (elem_of(n)->tag == target) break;
          if ((++visited & 63) == 0) t.yield();
        }
      }
    });
    times.add(time_launch(dev, total, block, kernel));
    out.full_barriers += dom->full_barriers();
    out.delegated_barriers += dom->delegated_barriers();
  }
  out.secs = times.mean();
  return out;
}

int main_impl(int argc, char** argv) {
  Options opt = Options::parse(argc, argv);
  // Delegation pays off when blocked writers pin residency that queued
  // thread blocks need (paper §4.2.1/Figure 4). The paper runs up to
  // 262144 threads against a 163840-thread Titan V; to match that
  // grid:residency scale we default to a 4-SM device (8192 resident)
  // unless --sms overrides.
  if (opt.num_sms == 8) opt.num_sms = 4;
  gpu::Device dev(opt.device_config());

  const std::vector<std::uint64_t> ratios = {32, 128, 512, 2048};
  std::vector<std::uint64_t> thread_counts;
  if (opt.quick) {
    thread_counts = {4096, 16384};
  } else if (opt.full) {
    thread_counts = {4096, 16384, 65536, 131072, 262144};
  } else {
    thread_counts = {4096, 16384, 65536};
  }

  util::Table table(
      "Figure 6: speedup of RCU delegation vs classical RCU "
      "(writer:reader ratios; 'dNN%' = share of barriers delegated)");
  table.set_header({"threads", "ratio 1:32", "ratio 1:128", "ratio 1:512",
                    "ratio 1:2048"});
  for (const std::uint64_t n : thread_counts) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const std::uint64_t ratio : ratios) {
      std::uint64_t writers = n / (ratio + 1);
      if (writers == 0) writers = 1;
      const std::uint64_t readers = n - writers;
      const RunOut cls = run_once(dev, opt, writers, readers, false);
      const RunOut del = run_once(dev, opt, writers, readers, true);
      const double delegated_pct =
          100.0 * static_cast<double>(del.delegated_barriers) /
          static_cast<double>(del.delegated_barriers + del.full_barriers);
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.2fx (d%.0f%%)", cls.secs / del.secs,
                    delegated_pct);
      row.push_back(buf);
      std::printf("  threads=%" PRIu64 " ratio=1:%" PRIu64
                  " classical=%.3fs delegated=%.3fs speedup=%.2fx "
                  "(%.0f%% of barriers delegated)\n",
                  n, ratio, cls.secs, del.secs, cls.secs / del.secs,
                  delegated_pct);
    }
    table.add_row(row);
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
