// Ablation A1 — scattered vs leftmost-first tree descent in TBuddy.
//
// The paper borrows ScatterAlloc's hashing idea to scatter concurrent
// searches (§2.2): without it, every thread descends the same path and
// collides on the same Available node, converting parallel claims into a
// retry storm. Workload: a same-order allocation storm (every thread
// allocates one 4 KB page into a pool with plenty of space), then frees.
#include <cinttypes>
#include <memory>

#include "alloc/tbuddy.hpp"
#include "common/harness.hpp"

namespace toma::bench {
namespace {

struct RunOut {
  double secs;
  std::uint64_t retries;
};

RunOut run(gpu::Device& dev, const Options& opt, std::uint64_t threads,
           bool scatter) {
  const std::size_t pool_bytes = 64u << 20;  // 16K pages
  void* pool = std::aligned_alloc(pool_bytes, pool_bytes);
  auto buddy = std::make_unique<alloc::TBuddy>(pool, pool_bytes);
  buddy->set_scatter(scatter);
  // One scheduling point per level: the dependent node-state reads of a
  // real descent. Without it cooperative descents are atomic and never
  // collide, hiding what scattering exists to fix (EXPERIMENTS.md).
  buddy->set_descent_latency(1);
  auto slots =
      std::make_shared<std::vector<std::atomic<void*>>>(threads);
  const std::uint32_t block = opt.block_sizes.front();
  RunOut out{};
  out.secs = time_launch(dev, threads, block,
                         [&buddy, slots, threads](gpu::ThreadCtx& t) {
                           if (t.global_rank() >= threads) return;
                           (*slots)[t.global_rank()].store(
                               buddy->allocate(0));
                         });
  out.retries = buddy->stats().descent_retries;
  for (auto& s : *slots) {
    if (void* p = s.load()) buddy->free(p);
  }
  buddy.reset();
  std::free(pool);
  return out;
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());
  std::vector<std::uint64_t> counts =
      opt.quick ? std::vector<std::uint64_t>{1024, 4096}
                : std::vector<std::uint64_t>{1024, 4096, 8192, 12288};

  util::Table table("Ablation A1: TBuddy scattered vs leftmost descent");
  table.set_header({"threads", "leftmost (ops/s)", "lm retries",
                    "scattered (ops/s)", "sc retries", "scatter speedup"});
  for (std::uint64_t n : counts) {
    const RunOut lm = run(dev, opt, n, false);
    const RunOut sc = run(dev, opt, n, true);
    const double rl = static_cast<double>(n) / lm.secs;
    const double rs = static_cast<double>(n) / sc.secs;
    table.add(n, rl, lm.retries, rs, sc.retries, rs / rl);
    std::printf("  threads=%" PRIu64 " leftmost=%s/s scattered=%s/s x%.2f\n",
                n, util::eng_format(rl).c_str(), util::eng_format(rs).c_str(),
                rs / rl);
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
