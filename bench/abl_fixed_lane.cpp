// Ablation A10 — the constant-time fixed-size fast lane for the hot small
// classes, 8..64 B (docs/INTERNALS.md §4d, EXPERIMENTS.md A10; after
// Blelloch & Wei, arXiv:2008.04296).
//
// Workload: small-block churn through the full GpuAllocator facade. Every
// thread keeps a ring of live blocks and repeatedly frees the oldest slot
// and allocates a replacement of the same size — the malloc-follows-free
// pattern where the lane turns both operations into one O(1) lane-stack
// push/pop. With the lane ON a miss buys a whole slab in one bulk-
// semaphore transaction; OFF routes every operation through the magazine/
// semaphore path (the pre-lane front-end).
//
// Protocol: sizes x thread counts, lane on vs off on the same device and
// pool geometry; report churn ops/s (one op = a free or a malloc), the
// on/off speedup, and the lane hit rate. 128 B rides along as a control —
// it is above kFixedLaneMaxSize, so its speedup must be ~1.0x (the lane
// may not tax what it does not serve). Acceptance: the lane must engage
// (hit% > 50) and never lose to the magazine front-end it replaces
// (speedup >= 1.0x within noise) — on free-then-alloc churn the magazines
// are already near-optimal, so the measured win here is a modest
// 1.0-1.3x; the lane's headline effect is fig7's cold exhaustion sweep
// (no frees to recycle, where refill batching is the whole story).
#include <atomic>
#include <cinttypes>
#include <memory>

#include "alloc/alloc.hpp"
#include "common/harness.hpp"

namespace toma::bench {
namespace {

constexpr std::uint32_t kDepth = 4;

struct Out {
  double rate;     // churn ops (malloc+free) per second
  double hit_pct;  // lane hits / (hits + misses), in percent
};

Out run(gpu::Device& dev, const Options& opt, std::size_t size,
        std::uint64_t threads, bool lane_on) {
  const std::uint32_t rounds = opt.full ? 128 : 32;
  // Live set = threads * kDepth * size; x4 slack keeps exhaustion (a
  // different ablation's subject) out of the measurement.
  std::size_t pool_bytes = util::round_up_pow2(threads * kDepth * size * 4);
  if (pool_bytes < (32u << 20)) pool_bytes = 32u << 20;
  auto ga = std::make_unique<alloc::GpuAllocator>(
      alloc::HeapConfig{.pool_bytes = pool_bytes,
                        .num_arenas = opt.num_sms,
                        .heapsan = false,
                        .fixed_lane = lane_on});

  const alloc::GpuAllocatorStats before = ga->stats();
  const double secs = time_launch(
      dev, threads, opt.block_sizes.front(),
      [&ga, threads, size, rounds](gpu::ThreadCtx& t) {
        if (t.global_rank() >= threads) return;
        void* slots[kDepth] = {};
        for (std::uint32_t r = 0; r < rounds; ++r) {
          const std::uint32_t i = r % kDepth;
          if (slots[i] != nullptr) ga->free(slots[i]);
          slots[i] = ga->malloc(size);
        }
        for (std::uint32_t i = 0; i < kDepth; ++i) {
          if (slots[i] != nullptr) ga->free(slots[i]);
        }
      });
  const alloc::GpuAllocatorStats after = ga->stats();

  const std::uint64_t hits = after.lane.hits - before.lane.hits;
  const std::uint64_t misses = after.lane.misses - before.lane.misses;
  // Each round is one malloc plus (except the first kDepth rounds) one
  // free; the drain adds the deferred frees back: ops = 2 * rounds/thread.
  return Out{static_cast<double>(2ull * rounds * threads) / secs,
             hits + misses == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(hits) /
                       static_cast<double>(hits + misses)};
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());

  std::vector<std::uint64_t> thread_counts{2048, 8192};
  if (opt.quick) thread_counts = {2048};
  if (opt.full) thread_counts.push_back(16384);

  util::Table table("Ablation A10: fixed-size fast lane on/off (churn)");
  table.set_header({"size", "threads", "on (ops/s)", "off (ops/s)", "speedup",
                    "on hit%"});
  // 128 B is the out-of-lane control: both runs take the magazine path.
  for (std::size_t size : {8, 16, 32, 64, 128}) {
    for (std::uint64_t threads : thread_counts) {
      const Out on = run(dev, opt, size, threads, true);
      const Out off = run(dev, opt, size, threads, false);
      table.add(util::eng_format(static_cast<double>(size)) + "B", threads,
                on.rate, off.rate, on.rate / off.rate, on.hit_pct);
      std::printf("  size=%zu threads=%" PRIu64 " on=%.3g off=%.3g "
                  "speedup=%.2fx hit=%.1f%%\n",
                  size, threads, on.rate, off.rate, on.rate / off.rate,
                  on.hit_pct);
    }
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
