// Figure 7 — Allocation throughput of the CUDA system allocator (stand-in:
// baseline::SerialHeapAllocator) vs our allocator, across allocation sizes
// 8 B .. 512 KB, with the failed-allocation fraction reported (the paper's
// gray bar; failures are the fragmentation probe, since the thread count
// is sized to exhaust the pool exactly).
//
// Paper protocol (§5.3): every thread performs a single malloc of a fixed
// size; the number of threads is pool/size, so with zero fragmentation no
// allocation fails and no memory remains. Pool: 8 MB at 8 B, growing to
// 512 MB at 512 B, then fixed at 512 MB with fewer threads. We scale the
// pool (default 1/8 of paper scale; --full = paper scale) to keep runtime
// sane on a single-core simulator host.
//
// Expected shape (paper): ours wins by 1-2 orders of magnitude for UAlloc
// sizes (8 B..1 KB); 2 KB is our degenerate case (rounds to 4 KB, ~50%
// failures); for buddy-handled sizes (>= 4 KB) our rate is roughly flat
// and the baseline can win at some sizes; our failure rate is ~0 for
// >= 4 KB, moderate at 512 B..2 KB (header overhead), small below that.
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "alloc/alloc.hpp"
#include "baseline/scatter_alloc.hpp"
#include "baseline/serial_heap.hpp"
#include "common/harness.hpp"

namespace toma::bench {
namespace {

struct SizeCase {
  std::size_t alloc_size;
  std::size_t pool_bytes;
  std::uint64_t threads;
};

std::vector<SizeCase> build_cases(bool full, bool quick) {
  // Paper: pool 8 MB at 8 B -> 512 MB at 512 B (1M threads each), then
  // 512 MB fixed, halving the thread count each doubling. We cap the
  // thread count (and shrink the pool with it, preserving the exact-
  // exhaustion property the failure metric depends on) because the
  // serialized baseline runs at a fixed ops-per-round rate: 1M threads
  // against it would take hours of single-core wall clock. --full uses
  // paper-exact sizing.
  const std::size_t pool_cap = full ? (512u << 20) : (64u << 20);
  const std::uint64_t thread_cap = full ? (1u << 20)
                                        : (quick ? 32768 : 65536);
  std::vector<SizeCase> cases;
  for (std::size_t size = 8; size <= (512u << 10); size *= 2) {
    std::size_t pool = size << 20;  // 1M threads' worth
    if (pool > pool_cap) pool = pool_cap;
    std::uint64_t threads = pool / size;
    if (threads > thread_cap) {
      threads = thread_cap;
      pool = threads * size;  // keep "exactly exhausts the pool"
    }
    cases.push_back({size, pool, threads});
  }
  return cases;
}

struct Result {
  double secs = 0;
  std::uint64_t attempts = 0;
  std::uint64_t failures = 0;
};

template <typename MallocFn>
Result run_case(gpu::Device& dev, const Options& opt, const SizeCase& c,
                MallocFn&& do_malloc) {
  Result r;
  r.attempts = c.threads;
  auto failures = std::make_shared<std::atomic<std::uint64_t>>(0);
  // One launch per configured block size would exhaust the pool several
  // times; instead run one launch with the first block size (the paper
  // averages; we note the choice in EXPERIMENTS.md).
  const std::uint32_t block = opt.block_sizes.front();
  const std::uint64_t threads = c.threads;
  gpu::Kernel k = [&do_malloc, failures, threads,
                   size = c.alloc_size](gpu::ThreadCtx& t) {
    if (t.global_rank() >= threads) return;
    void* p = do_malloc(size);
    if (p == nullptr) failures->fetch_add(1, std::memory_order_relaxed);
  };
  r.secs = time_launch(dev, c.threads, block, k);
  r.failures = failures->load();
  return r;
}

int main_impl(int argc, char** argv) {
  // Local pre-scan: --only=BYTES restricts the sweep to one size case and
  // --ours-only skips the two baseline allocators (iterating/profiling a
  // single row without the 17-case three-allocator sweep). Stripped
  // before the shared parser sees them.
  std::size_t only = 0;
  bool ours_only = false;
  {
    int w = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--only=", 7) == 0) {
        only = static_cast<std::size_t>(std::atoll(argv[i] + 7));
      } else if (std::strcmp(argv[i], "--ours-only") == 0) {
        ours_only = true;
      } else {
        argv[w++] = argv[i];
      }
    }
    argc = w;
  }
  Options opt = Options::parse(argc, argv);
  // Smaller device by default: the baseline's serialized throughput is
  // one allocation per scheduling round, and round length scales with
  // residency — 2 SMs keeps the full sweep within minutes while leaving
  // the contention profile intact. Override with --sms.
  if (opt.num_sms == 8) opt.num_sms = 2;
  gpu::Device dev(opt.device_config());

  util::Table table(
      "Figure 7: allocation throughput vs size (pool exactly exhausted; "
      "scatter = ScatterAllocLite research comparator, in-range sizes)");
  table.set_header({"size", "threads", "cuda-like (ops/s)", "cuda fail%",
                    "scatter (ops/s)", "scatter fail%", "ours (ops/s)",
                    "ours fail%", "ours/cuda", "tb grows", "tb retries",
                    "ua binmiss"});

  for (const SizeCase& c : build_cases(opt.full, opt.quick)) {
    if (only != 0 && c.alloc_size != only) continue;
    // --- CUDA-toolkit-allocator stand-in --------------------------------
    Result base;
    base.attempts = c.threads;
    base.secs = 1.0;  // placeholder when --ours-only skips the baseline
    if (!ours_only) {
      auto pool = std::aligned_alloc(4096, c.pool_bytes);
      auto heap = std::make_unique<baseline::SerialHeapAllocator>(
          pool, c.pool_bytes);
      // Contention model: the serialized critical section spans one
      // scheduling point (its real-world cost is serialized memory
      // latency); without this a cooperative scheduler never observes
      // the lock held and the baseline is artificially parallel-free.
      // See EXPERIMENTS.md, Figure 7 methodology.
      heap->set_contention_latency(1);
      base = run_case(dev, opt, c,
                      [&](std::size_t s) { return heap->malloc(s); });
      heap.reset();
      std::free(pool);
    }
    // --- ScatterAllocLite (research comparator, sizes <= one page) -------
    Result scatter;
    bool scatter_ran = false;
    if (!ours_only && c.alloc_size <= baseline::ScatterAllocLite::kMaxAlloc) {
      auto pool = std::aligned_alloc(4096, c.pool_bytes);
      auto sa = std::make_unique<baseline::ScatterAllocLite>(pool,
                                                             c.pool_bytes);
      scatter = run_case(dev, opt, c,
                         [&](std::size_t s) { return sa->malloc(s); });
      scatter_ran = true;
      sa.reset();
      std::free(pool);
    }
    // --- our allocator ---------------------------------------------------
    Result ours;
    alloc::GpuAllocatorStats gstats;
    {
      auto ga = std::make_unique<alloc::GpuAllocator>(c.pool_bytes,
                                                      dev.num_sms());
      ours = run_case(dev, opt, c,
                      [&](std::size_t s) { return ga->malloc(s); });
      // Per-case counter deltas (the allocator is fresh, so absolute
      // values ARE the deltas): buddy grow/split calls, scattered-descent
      // retries, and size-class bin misses (each miss creates a bin).
      gstats = ga->stats();
    }

    const double rb = static_cast<double>(base.attempts) / base.secs;
    const double ro = static_cast<double>(ours.attempts) / ours.secs;
    const double fb = 100.0 * static_cast<double>(base.failures) /
                      static_cast<double>(base.attempts);
    const double fo = 100.0 * static_cast<double>(ours.failures) /
                      static_cast<double>(ours.attempts);
    const double rs = scatter_ran
                          ? static_cast<double>(scatter.attempts) /
                                scatter.secs
                          : 0.0;
    const double fs = scatter_ran
                          ? 100.0 * static_cast<double>(scatter.failures) /
                                static_cast<double>(scatter.attempts)
                          : 0.0;
    table.add_row({util::eng_format(static_cast<double>(c.alloc_size)) + "B",
                   std::to_string(c.threads), util::eng_format(rb),
                   std::to_string(fb).substr(0, 5),
                   scatter_ran ? util::eng_format(rs) : "-",
                   scatter_ran ? std::to_string(fs).substr(0, 5) : "-",
                   util::eng_format(ro), std::to_string(fo).substr(0, 5),
                   std::to_string(ro / rb).substr(0, 6),
                   std::to_string(gstats.buddy.splits),
                   std::to_string(gstats.buddy.descent_retries),
                   std::to_string(gstats.ualloc.bins_created)});
    std::printf("  size=%zu threads=%" PRIu64
                " cuda=%s/s(%0.1f%%) scatter=%s/s(%0.1f%%) "
                "ours=%s/s(%0.1f%%) ours/cuda=x%.2f\n",
                c.alloc_size, c.threads, util::eng_format(rb).c_str(), fb,
                scatter_ran ? util::eng_format(rs).c_str() : "-", fs,
                util::eng_format(ro).c_str(), fo, ro / rb);
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
