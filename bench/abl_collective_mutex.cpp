// Ablation A2 — collective mutex vs plain mutex for group critical
// sections (§4.2.2).
//
// Workload mirrors the paper's chunk-allocation example: every thread of a
// warp must perform one list operation under the mutex. With a plain
// mutex the operations serialize one-by-one; with a collective mutex the
// warp coalesces, acquires once, and its members work in parallel inside
// the critical section (each member handling the element at its rank).
#include <cinttypes>
#include <memory>

#include "common/harness.hpp"
#include "sync/collective_mutex.hpp"

namespace toma::bench {
namespace {

constexpr int kListWork = 64;  // elements touched per critical section

double run(gpu::Device& dev, const Options& opt, std::uint64_t threads,
           bool collective) {
  auto mu = std::make_shared<sync::CollectiveMutex>();
  auto work = std::make_shared<std::vector<std::uint64_t>>(4096, 1);
  auto sink = std::make_shared<std::atomic<std::uint64_t>>(0);
  const std::uint32_t block = opt.block_sizes.front();
  return time_launch(
      dev, threads, block,
      [mu, work, sink, threads, collective](gpu::ThreadCtx& t) {
        if (t.global_rank() >= threads) return;
        std::uint64_t acc = 0;
        // The yield inside each critical section models its serialized
        // memory latency; without it a cooperative critical section is
        // never observed held and both variants are artificially free
        // (see EXPERIMENTS.md cost-model notes).
        if (collective) {
          gpu::CoalescedGroup g = gpu::coalesce_warp(t, mu.get());
          sync::CollectiveLockGuard lock(*mu, g);
          // Members partition the walk by rank: the whole group's work
          // (including its latency) overlaps inside ONE acquisition.
          t.yield();
          for (int i = g.rank(); i < kListWork; i += g.size()) {
            acc += (*work)[(t.global_rank() + i) % work->size()];
          }
        } else {
          mu->lock();
          t.yield();
          for (int i = 0; i < kListWork; ++i) {
            acc += (*work)[(t.global_rank() + i) % work->size()];
          }
          mu->unlock();
        }
        sink->fetch_add(acc, std::memory_order_relaxed);
      });
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());
  std::vector<std::uint64_t> counts =
      opt.quick ? std::vector<std::uint64_t>{1024, 4096}
                : std::vector<std::uint64_t>{1024, 4096, 16384, 65536};

  util::Table table("Ablation A2: collective vs plain mutex, group work");
  table.set_header(
      {"threads", "plain (crit-secs/s)", "collective (crit-secs/s)",
       "collective speedup"});
  for (std::uint64_t n : counts) {
    const double tp = run(dev, opt, n, false);
    const double tc = run(dev, opt, n, true);
    const double rp = static_cast<double>(n) / tp;
    const double rc = static_cast<double>(n) / tc;
    table.add(n, rp, rc, rc / rp);
    std::printf("  threads=%" PRIu64 " plain=%s/s collective=%s/s x%.2f\n",
                n, util::eng_format(rp).c_str(), util::eng_format(rc).c_str(),
                rc / rp);
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
