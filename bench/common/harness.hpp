// Shared machinery for the figure-reproduction benchmarks.
//
// Every bench binary:
//   * accepts --quick (shrink sweep for smoke runs), --full (paper-scale
//     sweep), --csv=PATH / --json=PATH (machine-readable copies of the
//     result table), --blocks=N (thread-block
//     size; default sweeps a small set and averages, as the paper
//     averages over block sizes 1..1024);
//   * prints an ASCII table with the same rows/series the paper plots.
//
// Throughput numbers are simulator-absolute (one CPU core driving fibers),
// so EXPERIMENTS.md compares *shapes and ratios* against the paper, never
// absolute rates.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/config.hpp"  // TOMA_FIXED_LANE default for the run meta
#include "gpusim/gpusim.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "obs/telemetry.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace toma::bench {

struct Options {
  bool quick = false;
  bool full = false;
  std::string csv_path;
  std::string json_path;
  std::string trace_path;
  std::string record_path;  // flight-recorder dump (.tomarec)
  std::string prom_path;    // Prometheus text-format metrics export
  bool metrics = false;
  std::string metrics_path;
  std::vector<std::uint32_t> block_sizes = {64, 256, 1024};
  std::uint32_t num_sms = 8;
  std::uint32_t threads_per_sm = 2048;
  std::uint32_t workers = 1;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--quick") == 0) {
        o.quick = true;
      } else if (std::strcmp(a, "--full") == 0) {
        o.full = true;
      } else if (std::strncmp(a, "--csv=", 6) == 0) {
        o.csv_path = a + 6;
      } else if (std::strncmp(a, "--json=", 7) == 0) {
        o.json_path = a + 7;
      } else if (std::strncmp(a, "--trace=", 8) == 0) {
        o.trace_path = a + 8;
      } else if (std::strncmp(a, "--record=", 9) == 0) {
        o.record_path = a + 9;
      } else if (std::strncmp(a, "--prom=", 7) == 0) {
        o.prom_path = a + 7;
      } else if (std::strcmp(a, "--metrics") == 0) {
        o.metrics = true;
      } else if (std::strncmp(a, "--metrics=", 10) == 0) {
        o.metrics = true;
        o.metrics_path = a + 10;
      } else if (std::strncmp(a, "--blocks=", 9) == 0) {
        o.block_sizes = {static_cast<std::uint32_t>(std::atoi(a + 9))};
      } else if (std::strncmp(a, "--sms=", 6) == 0) {
        o.num_sms = static_cast<std::uint32_t>(std::atoi(a + 6));
      } else if (std::strncmp(a, "--workers=", 10) == 0) {
        o.workers = static_cast<std::uint32_t>(std::atoi(a + 10));
      } else {
        std::fprintf(stderr,
                     "usage: %s [--quick|--full] [--csv=PATH] "
                     "[--json=PATH] [--trace=PATH] [--record=PATH] "
                     "[--prom=PATH] [--metrics[=PATH]] "
                     "[--blocks=N] [--sms=N] [--workers=N]\n",
                     argv[0]);
        std::exit(2);
      }
    }
#if !TOMA_TELEMETRY
    if (!o.trace_path.empty() || o.metrics || !o.prom_path.empty()) {
      std::fprintf(stderr,
                   "note: built with -DTOMA_TELEMETRY=OFF; --trace/--metrics "
                   "output will be empty\n");
    }
#endif
    if (!o.trace_path.empty()) obs::enable_tracing();
    if (!o.record_path.empty()) {
      obs::Recorder::instance().start();  // dumped by finish_telemetry
    }
    return o;
  }

  gpu::DeviceConfig device_config() const {
    gpu::DeviceConfig cfg;
    cfg.num_sms = num_sms;
    cfg.max_threads_per_sm = threads_per_sm;
    cfg.num_workers = workers;
    return cfg;
  }
};

/// Populate the device's fiber-stack pool (and warm scheduler paths) so a
/// timed launch does not pay one mmap+mprotect per logical thread. Call
/// before the first timed launch at a given residency.
inline void warm_device(gpu::Device& dev, std::uint64_t threads,
                        std::uint32_t block) {
  dev.launch_linear(threads, block, [](gpu::ThreadCtx&) {});
}

/// Wall-clock seconds of one synchronous grid launch (device pre-warmed).
inline double time_launch(gpu::Device& dev, std::uint64_t threads,
                          std::uint32_t block, const gpu::Kernel& k) {
  warm_device(dev, threads, block);
  const auto t0 = std::chrono::steady_clock::now();
  dev.launch_linear(threads, block, k);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Launch once per configured block size and return the mean seconds
/// (the paper averages execution time across block sizes).
template <typename MakeKernel>
double mean_time_over_blocks(gpu::Device& dev, const Options& opt,
                             std::uint64_t threads, MakeKernel&& make) {
  util::RunningStats s;
  for (std::uint32_t b : opt.block_sizes) {
    gpu::Kernel k = make();
    s.add(time_launch(dev, threads, b, k));
  }
  return s.mean();
}

/// Telemetry epilogue: dump the Chrome trace and/or the metrics snapshot
/// requested on the command line. Works (producing empty output) even when
/// the build compiled instrumentation out.
inline void finish_telemetry(const Options& opt) {
  if (!opt.trace_path.empty()) {
    obs::disable_tracing();
    if (obs::dump_chrome_trace(opt.trace_path.c_str())) {
      std::printf("trace written to %s (%llu events, %llu dropped)\n",
                  opt.trace_path.c_str(),
                  static_cast<unsigned long long>(obs::trace_records().size()),
                  static_cast<unsigned long long>(obs::trace_dropped()));
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.trace_path.c_str());
    }
  }
  if (!opt.record_path.empty()) {
    obs::Recorder& rec = obs::Recorder::instance();
    rec.stop();
    if (rec.dump(opt.record_path)) {
      std::printf("flight record written to %s (%zu events, %llu dropped)\n",
                  opt.record_path.c_str(), rec.event_count(),
                  static_cast<unsigned long long>(rec.dropped()));
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.record_path.c_str());
    }
  }
  if (!opt.prom_path.empty()) {
    if (obs::write_prometheus(obs::registry().snapshot(), opt.prom_path)) {
      std::printf("prometheus metrics written to %s\n", opt.prom_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.prom_path.c_str());
    }
  }
  if (opt.metrics) {
    const obs::Snapshot snap = obs::registry().snapshot();
    if (!opt.metrics_path.empty()) {
      if (snap.write_json(opt.metrics_path.c_str())) {
        std::printf("metrics written to %s\n", opt.metrics_path.c_str());
      } else {
        std::fprintf(stderr, "failed to write %s\n",
                     opt.metrics_path.c_str());
      }
    } else {
      std::fputs("\n-- telemetry snapshot --\n", stdout);
      std::fputs(snap.to_text().c_str(), stdout);
    }
  }
}

/// Stamp the run's provenance into the table so every --json dump carries
/// it (schema_version comes from Table itself).
inline void stamp_run_meta(const Options& opt, util::Table& table) {
  table.set_meta("scale",
                 opt.quick ? "quick" : (opt.full ? "full" : "default"));
  std::string blocks;
  for (std::uint32_t b : opt.block_sizes) {
    if (!blocks.empty()) blocks += ",";
    blocks += std::to_string(b);
  }
  table.set_meta("block_sizes", blocks);
  table.set_meta("sms", std::to_string(opt.num_sms));
  table.set_meta("threads_per_sm", std::to_string(opt.threads_per_sm));
  table.set_meta("workers", std::to_string(opt.workers));
  table.set_meta("telemetry", TOMA_TELEMETRY ? "on" : "off");
  table.set_meta("fixed_lane", TOMA_FIXED_LANE ? "on" : "off");
}

inline void finish_table(const Options& opt, util::Table& table) {
  stamp_run_meta(opt, table);
  table.print();
  if (!opt.csv_path.empty()) {
    if (table.write_csv(opt.csv_path)) {
      std::printf("csv written to %s\n", opt.csv_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.csv_path.c_str());
    }
  }
  if (!opt.json_path.empty()) {
    if (table.write_json(opt.json_path)) {
      std::printf("json written to %s\n", opt.json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.json_path.c_str());
    }
  }
  finish_telemetry(opt);
}

}  // namespace toma::bench
