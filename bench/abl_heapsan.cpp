// Ablation A8 — HeapSan overhead (docs/INTERNALS.md §5, EXPERIMENTS.md A8).
//
// Workload: ring churn through the full GpuAllocator facade, at a small
// (UAlloc), a large (TBuddy) and a mixed size profile. Each thread keeps
// `depth` live blocks and repeatedly frees the oldest and allocates a
// replacement, touching the first and last payload byte (so redzone
// placement is in the measured path). ON adds redzone paint+verify,
// poison fills, the shadow-table round trip, and quarantine recycling;
// OFF is the production configuration.
//
// Protocol: identical device, pool geometry and thread schedule, heapsan
// on vs off; report churn ops/s, the off/on slowdown, and the quarantine
// eviction count. Acceptance: sanitizer overhead is reported, not bounded
// — this is a diagnostic build knob, not a production path (A8).
#include <atomic>
#include <cinttypes>
#include <cstring>
#include <memory>

#include "alloc/alloc.hpp"
#include "common/harness.hpp"

namespace toma::bench {
namespace {

constexpr std::uint32_t kDepth = 8;

struct Profile {
  const char* name;
  std::size_t sizes[4];  // cycled per round
};

struct Out {
  double rate;            // churn ops (malloc+free) per second
  std::uint64_t evicted;  // quarantine evictions (ON only; 0 when OFF)
};

Out run(gpu::Device& dev, const Options& opt, const Profile& prof,
        bool sanitize) {
  const std::uint64_t threads = opt.quick ? 2048 : 8192;
  const std::uint32_t rounds = opt.full ? 128 : 32;
  std::size_t max_size = 0;
  for (std::size_t s : prof.sizes) max_size = std::max(max_size, s);
  // Live set at worst all-max-size, doubled for redzone/order growth and
  // again for slack: exhaustion is a different ablation's subject.
  std::size_t pool_bytes =
      util::round_up_pow2(threads * kDepth * max_size * 4);
  if (pool_bytes < (64u << 20)) pool_bytes = 64u << 20;
  auto ga = std::make_unique<alloc::GpuAllocator>(pool_bytes, opt.num_sms);
  ga->set_heapsan(sanitize);

  const double secs = time_launch(
      dev, threads, opt.block_sizes.front(),
      [&ga, &prof, threads, rounds](gpu::ThreadCtx& t) {
        if (t.global_rank() >= threads) return;
        void* slots[kDepth] = {};
        for (std::uint32_t r = 0; r < rounds; ++r) {
          const std::uint32_t i = r % kDepth;
          if (slots[i] != nullptr) ga->free(slots[i]);
          const std::size_t size = prof.sizes[(r + t.global_rank()) % 4];
          auto* p = static_cast<unsigned char*>(ga->malloc(size));
          if (p != nullptr) {  // touch both payload edges
            p[0] = 0x42;
            p[size - 1] = 0x24;
          }
          slots[i] = p;
        }
        for (std::uint32_t i = 0; i < kDepth; ++i) {
          if (slots[i] != nullptr) ga->free(slots[i]);
        }
      });

  const auto st = ga->stats();
  return Out{static_cast<double>(2ull * rounds * threads) / secs,
             st.heapsan.quarantine_evictions};
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());

  const Profile profiles[] = {
      {"small", {16, 64, 96, 256}},
      {"large", {4096, 8192, 4096, 8192}},
      {"mixed", {64, 8192, 256, 1024}},
  };

  util::Table table("Ablation A8: HeapSan overhead (churn)");
  table.set_header(
      {"profile", "off (ops/s)", "on (ops/s)", "slowdown", "evictions"});
  for (const Profile& prof : profiles) {
    const Out off = run(dev, opt, prof, false);
    const Out on = run(dev, opt, prof, true);
    table.add(prof.name, off.rate, on.rate, off.rate / on.rate, on.evicted);
    std::printf("  profile=%s off=%.3g on=%.3g slowdown=%.2fx "
                "evictions=%" PRIu64 "\n",
                prof.name, off.rate, on.rate, off.rate / on.rate, on.evicted);
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
