// Ablation A3 — the bin-tail optimisation (§4.2).
//
// Each 4 KB bin spends its first 128 B on a header; for size classes
// <= 128 B the design logically appends a 128 B tail (carved from the
// chunk's two header bins) so the usable payload is a full 4 KB. Without
// tails, a bin of size s holds floor(3968/s) blocks instead of 4096/s —
// pure internal fragmentation.
//
// Protocol: Figure 7's exhaustion workload at the tail-eligible sizes;
// report the failed-allocation fraction with tails on vs off. Throughput
// is reported too (expected roughly unchanged — the paper notes the tail
// design targets fragmentation, not rate).
#include <cinttypes>
#include <memory>

#include "alloc/alloc.hpp"
#include "common/harness.hpp"

namespace toma::bench {
namespace {

struct Out {
  double rate;
  double fail_pct;
};

Out run(gpu::Device& dev, const Options& opt, std::size_t size,
        bool use_tails) {
  // Pool large enough that per-arena chunk imbalance does not mask the
  // tail effect (sub-MB pools give each arena at most one chunk).
  const std::size_t pool_bytes = opt.full ? (size << 20) : (size << 18);
  void* pool = std::aligned_alloc(pool_bytes, pool_bytes);
  auto buddy = std::make_unique<alloc::TBuddy>(pool, pool_bytes);
  auto ua = std::make_unique<alloc::UAlloc>(*buddy, /*num_arenas=*/2,
                                            use_tails);
  const std::uint64_t threads = pool_bytes / size;
  auto failures = std::make_shared<std::atomic<std::uint64_t>>(0);
  const double secs = time_launch(
      dev, threads, opt.block_sizes.front(),
      [&ua, failures, threads, size](gpu::ThreadCtx& t) {
        if (t.global_rank() >= threads) return;
        if (ua->allocate(size) == nullptr) {
          failures->fetch_add(1, std::memory_order_relaxed);
        }
      });
  Out out{static_cast<double>(threads) / secs,
          100.0 * static_cast<double>(failures->load()) /
              static_cast<double>(threads)};
  ua.reset();
  buddy.reset();
  std::free(pool);
  return out;
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());

  util::Table table("Ablation A3: bin tails on/off (pool exhaustion)");
  table.set_header({"size", "tails fail%", "no-tails fail%",
                    "tails (ops/s)", "no-tails (ops/s)"});
  for (std::size_t size : {8, 16, 32, 64, 128}) {
    const Out on = run(dev, opt, size, true);
    const Out off = run(dev, opt, size, false);
    table.add(util::eng_format(static_cast<double>(size)) + "B",
              on.fail_pct, off.fail_pct, on.rate, off.rate);
    std::printf("  size=%zu tails: %.2f%% fail, no-tails: %.2f%% fail\n",
                size, on.fail_pct, off.fail_pct);
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
