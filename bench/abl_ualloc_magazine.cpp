// Ablation A6 — the per-(SM, size-class) magazine front-end (not in the
// paper; docs/INTERNALS.md §4b).
//
// Workload: small-block churn. Every thread keeps a ring of `depth` live
// blocks and repeatedly frees the oldest slot and allocates a replacement
// of the same size — the malloc-follows-free pattern the magazines target.
// With magazines ON a free parks the block in the freeing SM's magazine
// and the next allocate of that class pops it back without touching the
// bulk semaphore or the RCU bin lists; OFF is the paper's exact path.
//
// Protocol: sizes x ring depths, magazines on vs off on the same device
// and pool geometry; report churn ops/s (one op = a free or a malloc),
// the on/off speedup, and the magazine hit rate. Acceptance: >= 1.3x on
// small-block churn (see EXPERIMENTS.md A6).
#include <atomic>
#include <cinttypes>
#include <memory>

#include "alloc/alloc.hpp"
#include "common/harness.hpp"

namespace toma::bench {
namespace {

constexpr std::uint32_t kMaxDepth = 16;

struct Out {
  double rate;     // churn ops (malloc+free) per second
  double hit_pct;  // magazine hits / (hits + misses), in percent
};

Out run(gpu::Device& dev, const Options& opt, std::size_t size,
        std::uint32_t depth, bool magazines) {
  const std::uint64_t threads = opt.quick ? 2048 : 8192;
  const std::uint32_t rounds = opt.full ? 128 : 32;
  // Live set = threads * depth * size; x4 slack keeps exhaustion (a
  // different ablation's subject) out of the measurement.
  std::size_t pool_bytes = util::round_up_pow2(threads * depth * size * 4);
  if (pool_bytes < (16u << 20)) pool_bytes = 16u << 20;
  void* pool = std::aligned_alloc(pool_bytes, pool_bytes);
  auto buddy = std::make_unique<alloc::TBuddy>(pool, pool_bytes);
  auto ua = std::make_unique<alloc::UAlloc>(*buddy, opt.num_sms);
  ua->set_magazines(magazines);

  const alloc::UAllocStats before = ua->stats();
  const double secs = time_launch(
      dev, threads, opt.block_sizes.front(),
      [&ua, threads, size, depth, rounds](gpu::ThreadCtx& t) {
        if (t.global_rank() >= threads) return;
        void* slots[kMaxDepth] = {};
        for (std::uint32_t r = 0; r < rounds; ++r) {
          const std::uint32_t i = r % depth;
          if (slots[i] != nullptr) ua->free(slots[i]);
          slots[i] = ua->allocate(size);
        }
        for (std::uint32_t i = 0; i < depth; ++i) {
          if (slots[i] != nullptr) ua->free(slots[i]);
        }
      });
  const alloc::UAllocStats after = ua->stats();

  const std::uint64_t hits = after.magazine_hits - before.magazine_hits;
  const std::uint64_t misses = after.magazine_misses - before.magazine_misses;
  // Each round is one malloc plus (except the first depth rounds) one free;
  // the drain adds the deferred frees back, so ops = 2 * rounds per thread.
  Out out{static_cast<double>(2ull * rounds * threads) / secs,
          hits + misses == 0
              ? 0.0
              : 100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses)};
  ua.reset();
  buddy.reset();
  std::free(pool);
  return out;
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());

  util::Table table("Ablation A6: UAlloc magazines on/off (churn)");
  table.set_header({"size", "depth", "on (ops/s)", "off (ops/s)", "speedup",
                    "on hit%"});
  for (std::size_t size : {16, 64, 256}) {
    for (std::uint32_t depth : {1u, 4u, 16u}) {
      const Out on = run(dev, opt, size, depth, true);
      const Out off = run(dev, opt, size, depth, false);
      table.add(util::eng_format(static_cast<double>(size)) + "B",
                std::uint64_t{depth}, on.rate, off.rate, on.rate / off.rate,
                on.hit_pct);
      std::printf("  size=%zu depth=%u on=%.3g off=%.3g speedup=%.2fx "
                  "hit=%.1f%%\n",
                  size, depth, on.rate, off.rate, on.rate / off.rate,
                  on.hit_pct);
    }
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
