// Ablation A9 — the stream-ordered async front-end and pool quota
// isolation (not in the paper; docs/INTERNALS.md §6, docs/API.md).
//
// Part 1, batching: small-block churn (16..512 B) where every thread
// keeps a ring of live blocks and replaces the oldest each round. The
// sync arm frees through pool.free (the paper's path, possibly fronted
// by the magazines); the async arm parks frees with free_async on a
// per-SM stream and lets malloc_async reuse them in stream order, with
// the residue draining in one batch at the final stream sync — the
// drain clusters the RCU conditional barriers of bin unlink/retire so
// delegation collapses them into ~one grace period per batch (visible
// in the pool.stream.drain_batch histogram with --metrics). Run with
// the magazine/quicklist fast paths both ON (production default: the
// async arm must still win or tie) and OFF (the paper-faithful
// configuration, where every deferred free would otherwise pay the bin
// machinery — the batching headroom shows undiluted).
//
// Part 2, isolation: pool A pinned at its byte quota while a grid
// hammers it with doomed allocations; pool B churns normally on the
// same device. Acceptance (EXPERIMENTS.md A9): async >= sync on churn
// with fast paths OFF, and B's throughput within 10% of its solo run
// while A rejects with the quota status.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <vector>

#include "alloc/alloc.hpp"
#include "common/harness.hpp"

namespace toma::bench {
namespace {

constexpr std::uint32_t kDepth = 8;  // live blocks per thread

struct Out {
  double rate;       // churn ops (malloc+free) per second
  double reuse_pct;  // stream reuse hits / (hits+misses), percent
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

alloc::HeapConfig churn_cfg(bool fastpaths) {
  alloc::HeapConfig cfg;
  cfg.pool_bytes = 64u << 20;
  cfg.num_arenas = 8;
  cfg.magazines = fastpaths;
  cfg.quicklist = fastpaths;
  // The fixed lane is a fast path too (it re-routes sub-64 B async frees
  // around the pending list entirely); the OFF arm must be the paper's
  // exact front-end or the 16 B leg measures the lane, not the batching.
  cfg.fixed_lane = fastpaths;
  return cfg;
}

Out run_churn(gpu::Device& dev, const Options& opt, std::size_t size,
              bool fastpaths, bool async) {
  alloc::Pool pool(async ? "a9-async" : "a9-sync", churn_cfg(fastpaths));
  const std::uint64_t threads = opt.quick ? 2048 : 8192;
  const std::uint32_t rounds = opt.full ? 64 : 16;
  std::vector<gpu::Stream> streams(opt.num_sms);

  warm_device(dev, threads, opt.block_sizes.front());
  const auto t0 = std::chrono::steady_clock::now();
  dev.launch_linear(
      threads, opt.block_sizes.front(), [&](gpu::ThreadCtx& t) {
        gpu::Stream& s = streams[t.sm_id() % streams.size()];
        void* slots[kDepth] = {};
        for (std::uint32_t r = 0; r < rounds; ++r) {
          const std::uint32_t i = r % kDepth;
          if (slots[i] != nullptr) {
            if (async) {
              pool.free_async(slots[i], s);
            } else {
              pool.free(slots[i]);
            }
          }
          slots[i] = async ? pool.malloc_async(size, s) : pool.malloc(size);
        }
        for (std::uint32_t i = 0; i < kDepth; ++i) {
          if (slots[i] == nullptr) continue;
          if (async) {
            pool.free_async(slots[i], s);
          } else {
            pool.free(slots[i]);
          }
        }
      });
  // The batch drain is part of the async arm's cost: time it too.
  for (auto& s : streams) pool.sync(s);
  const double secs = seconds_since(t0);

  const alloc::StreamFrontEndStats st = pool.stats().stream;
  const std::uint64_t lookups = st.reuse_hits + st.reuse_misses;
  return Out{static_cast<double>(2ull * (rounds + kDepth) * threads) / secs,
             lookups == 0 ? 0.0
                          : 100.0 * static_cast<double>(st.reuse_hits) /
                                static_cast<double>(lookups)};
}

/// Ops/s of a grid half churning pool B while the other half occupies
/// pool A. Both arms schedule the same thread count — the fiber
/// simulator drives every SM from a shared worker pool, so the control
/// must be "B next to a well-behaved tenant on A" (A unpinned, normal
/// churn), not "B alone" (which would measure CPU sharing, not
/// allocator interference). The measured arm pins A at its quota first,
/// so A's half thrashes the quota-rejection path the whole launch.
double run_isolation(gpu::Device& dev, const Options& opt,
                     bool pin_a_at_quota,
                     std::uint64_t* quota_rejects_out) {
  alloc::HeapConfig cfg_a = churn_cfg(true);
  cfg_a.pool_bytes = 16u << 20;
  cfg_a.quota_bytes = 256u << 10;
  alloc::Pool pool_a("a9-tenant-a", cfg_a);
  alloc::Pool pool_b("a9-tenant-b", churn_cfg(true));

  std::vector<void*> pin;
  if (pin_a_at_quota) {
    for (;;) {
      void* p = pool_a.malloc(1024);
      if (p == nullptr) break;
      pin.push_back(p);
    }
  }

  const std::uint64_t b_threads = opt.quick ? 2048 : 4096;
  const std::uint64_t total = 2 * b_threads;
  const std::uint32_t rounds = opt.full ? 64 : 16;
  std::atomic<std::uint64_t> rejects{0};

  warm_device(dev, total, opt.block_sizes.front());
  const auto t0 = std::chrono::steady_clock::now();
  dev.launch_linear(total, opt.block_sizes.front(), [&](gpu::ThreadCtx& t) {
    if (t.global_rank() < b_threads) {
      void* slots[kDepth] = {};
      for (std::uint32_t r = 0; r < rounds; ++r) {
        const std::uint32_t i = r % kDepth;
        if (slots[i] != nullptr) pool_b.free(slots[i]);
        slots[i] = pool_b.malloc(256);
      }
      for (std::uint32_t i = 0; i < kDepth; ++i) {
        if (slots[i] != nullptr) pool_b.free(slots[i]);
      }
    } else {
      // Tenant A: ring churn like B's when the quota admits; at quota
      // every attempt takes the rejection path instead.
      void* slots[kDepth] = {};
      std::uint64_t mine = 0;
      for (std::uint32_t r = 0; r < rounds; ++r) {
        const std::uint32_t i = r % kDepth;
        if (slots[i] != nullptr) pool_a.free(slots[i]);
        alloc::AllocStatus st;
        slots[i] = pool_a.malloc(1024, &st);
        if (slots[i] == nullptr && st == alloc::AllocStatus::kQuota) ++mine;
      }
      for (std::uint32_t i = 0; i < kDepth; ++i) {
        if (slots[i] != nullptr) pool_a.free(slots[i]);
      }
      rejects.fetch_add(mine, std::memory_order_relaxed);
    }
  });
  const double secs = seconds_since(t0);

  for (void* p : pin) pool_a.free(p);
  if (quota_rejects_out != nullptr) *quota_rejects_out = rejects.load();
  return static_cast<double>(2ull * (rounds + kDepth) * b_threads) / secs;
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());

  util::Table churn(
      "Ablation A9a: stream-ordered async vs sync free (small-block churn)");
  churn.set_header({"size", "fastpaths", "sync (ops/s)", "async (ops/s)",
                    "speedup", "reuse hit%"});
  for (bool fastpaths : {true, false}) {
    for (std::size_t size : {std::size_t{16}, std::size_t{64},
                             std::size_t{256}, std::size_t{512}}) {
      const Out sync_arm = run_churn(dev, opt, size, fastpaths, false);
      const Out async_arm = run_churn(dev, opt, size, fastpaths, true);
      churn.add(util::eng_format(static_cast<double>(size)) + "B",
                fastpaths ? "on" : "off", sync_arm.rate, async_arm.rate,
                async_arm.rate / sync_arm.rate, async_arm.reuse_pct);
      std::printf(
          "  size=%zu fastpaths=%s sync=%.3g async=%.3g speedup=%.2fx "
          "reuse=%.1f%%\n",
          size, fastpaths ? "on" : "off", sync_arm.rate, async_arm.rate,
          async_arm.rate / sync_arm.rate, async_arm.reuse_pct);
    }
  }
  finish_table(opt, churn);

  std::uint64_t rejects = 0;
  const double baseline = run_isolation(dev, opt, false, nullptr);
  const double at_quota = run_isolation(dev, opt, true, &rejects);
  util::Table iso("Ablation A9b: quota isolation (B churns while A rejects)");
  iso.set_header({"B baseline (ops/s)", "B vs quota-thrash (ops/s)",
                  "retained", "A quota rejects"});
  iso.add(baseline, at_quota, at_quota / baseline,
          static_cast<double>(rejects));
  iso.print();
  std::printf(
      "  baseline=%.3g at_quota=%.3g retained=%.2f rejects=%" PRIu64
      " (acceptance: retained >= 0.9, rejects > 0)\n",
      baseline, at_quota, at_quota / baseline, rejects);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
