// Ablation A5 — transparent warp-coalesced allocation (paper §2.2).
//
// With coalescing, warp-mates allocating the same size class elect a
// leader that performs one bulk-semaphore wait for the whole group, and a
// grow produces one bin that serves every member. Without it, each lane
// pays its own accounting round-trip. Workload: full warps allocating the
// same size simultaneously (the common data-parallel pattern), then
// freeing.
#include <cinttypes>
#include <memory>

#include "alloc/alloc.hpp"
#include "common/harness.hpp"

namespace toma::bench {
namespace {

double run(gpu::Device& dev, const Options& opt, std::uint64_t threads,
           std::size_t size, bool coalesce) {
  auto ga = std::make_unique<alloc::GpuAllocator>(128u << 20, dev.num_sms());
  ga->ualloc().set_coalescing(coalesce);
  const std::uint32_t block = opt.block_sizes.front();
  return time_launch(dev, threads, block,
                     [&ga, threads, size](gpu::ThreadCtx& t) {
                       if (t.global_rank() >= threads) return;
                       void* p = ga->malloc(size);
                       if (p != nullptr) ga->free(p);
                     });
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());
  std::vector<std::uint64_t> counts =
      opt.quick ? std::vector<std::uint64_t>{4096, 16384}
                : std::vector<std::uint64_t>{4096, 16384, 65536};

  util::Table table("Ablation A5: warp-coalesced malloc on/off (64 B)");
  table.set_header({"threads", "uncoalesced (ops/s)", "coalesced (ops/s)",
                    "coalesce speedup"});
  for (std::uint64_t n : counts) {
    const double toff = run(dev, opt, n, 64, false);
    const double ton = run(dev, opt, n, 64, true);
    const double roff = static_cast<double>(n) / toff;
    const double ron = static_cast<double>(n) / ton;
    table.add(n, roff, ron, ron / roff);
    std::printf("  threads=%" PRIu64 " off=%s/s on=%s/s x%.2f\n", n,
                util::eng_format(roff).c_str(), util::eng_format(ron).c_str(),
                ron / roff);
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
