// Figure 5 — Upper-limit allocation throughput of two-stage resource
// management using counting vs bulk semaphores.
//
// Paper protocol (§5.1): each thread allocates one unit of a resource from
// a batch; batches are allocated as they become empty; batch size 512
// (UAlloc's largest bin capacity). Thread counts sweep to ~512K; execution
// time is averaged over several thread-block sizes.
//
// Modeling note (see EXPERIMENTS.md): on hardware the counting semaphore
// collapses because every arrival during a grow spins on the semaphore
// word, and that atomic storm also delays the single grower. A
// cooperative simulator has no per-atomic contention cost, so we model
// the batch-allocation *latency* explicitly: the grower yields kGrowCost
// times between election and signal (in the real allocator this latency
// is the TBuddy tree descent / bin initialisation). This is precisely the
// latency whose overlap Figure 1(b) illustrates: counting semaphores
// serialize grows (everyone blocks behind one grower), bulk semaphores
// overlap them (new arrivals become additional growers).
//
// Expected shape (paper): bulk >= counting everywhere; the gap widens
// with concurrency (paper: ~5-10x at high thread counts).
#include <cinttypes>

#include "common/harness.hpp"
#include "sync/bulk_semaphore.hpp"
#include "sync/counting_semaphore.hpp"

namespace toma::bench {
namespace {

constexpr std::uint64_t kBatch = 512;
constexpr int kGrowCost = 8;  // scheduling points per batch allocation

void grow_latency(gpu::ThreadCtx& t) {
  for (int i = 0; i < kGrowCost; ++i) t.yield();
}

double run_counting(gpu::Device& dev, const Options& opt,
                    std::uint64_t threads) {
  return mean_time_over_blocks(dev, opt, threads, [&] {
    // Fresh semaphore per launch: the pool starts empty.
    auto sem = std::make_shared<sync::CountingSemaphore>(0);
    return gpu::Kernel([sem, threads](gpu::ThreadCtx& t) {
      if (t.global_rank() >= threads) return;
      const std::int64_t got = sem->wait(1);
      if (got < 1) {
        // We are the (single) grower; everyone else blocks meanwhile.
        grow_latency(t);
        sem->signal(kBatch - got);  // publish batch, keep one unit
      }
    });
  });
}

double run_bulk(gpu::Device& dev, const Options& opt, std::uint64_t threads) {
  return mean_time_over_blocks(dev, opt, threads, [&] {
    auto sem = std::make_shared<sync::BulkSemaphore>(0);
    return gpu::Kernel([sem, threads](gpu::ThreadCtx& t) {
      if (t.global_rank() >= threads) return;
      if (sem->wait(1, kBatch) == sync::BulkSemaphore::WaitResult::kMustGrow) {
        // One of possibly many concurrent growers.
        grow_latency(t);
        sem->signal(kBatch - 1, kBatch - 1);
      }
    });
  });
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());

  std::vector<std::uint64_t> thread_counts;
  if (opt.quick) {
    thread_counts = {1024, 8192, 32768};
  } else if (opt.full) {
    thread_counts = {1024, 4096, 16384, 65536, 131072, 262144, 524288};
  } else {
    thread_counts = {1024, 4096, 16384, 65536, 131072};
  }

  util::Table table(
      "Figure 5: allocation throughput upper limit, batch 512, grow cost " +
      std::to_string(kGrowCost));
  table.set_header({"threads", "counting (ops/s)", "bulk (ops/s)",
                    "bulk/counting"});
  for (const std::uint64_t n : thread_counts) {
    const double tc = run_counting(dev, opt, n);
    const double tb = run_bulk(dev, opt, n);
    const double rc = static_cast<double>(n) / tc;
    const double rb = static_cast<double>(n) / tb;
    table.add(n, rc, rb, rb / rc);
    std::printf("  threads=%" PRIu64 " counting=%s/s bulk=%s/s x%.2f\n", n,
                util::eng_format(rc).c_str(), util::eng_format(rb).c_str(),
                rb / rc);
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
