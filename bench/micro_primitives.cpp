// Micro-benchmarks (google-benchmark) for the individual primitives:
// op-level costs of the semaphores, mutexes, RCU, bitmap claims and the
// fiber context switch. These are the building-block costs underlying the
// figure benches; run with --benchmark_filter=... to select.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "alloc/alloc.hpp"
#include "baseline/serial_heap.hpp"
#include "gpusim/gpusim.hpp"
#include "sync/sync.hpp"
#include "util/atomic_bitmap.hpp"

namespace toma {
namespace {

// ---- semaphores -----------------------------------------------------------

void BM_BulkSemaphoreWaitSignal(benchmark::State& state) {
  sync::BulkSemaphore sem(1u << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sem.wait(1, 512));
    sem.signal(1, 0);
  }
}
BENCHMARK(BM_BulkSemaphoreWaitSignal)->ThreadRange(1, 4);

void BM_BulkSemaphoreTryWait(benchmark::State& state) {
  sync::BulkSemaphore sem(1u << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sem.try_wait(1));
    sem.signal(1, 0);
  }
}
BENCHMARK(BM_BulkSemaphoreTryWait)->ThreadRange(1, 4);

void BM_CountingSemaphoreWaitSignal(benchmark::State& state) {
  sync::CountingSemaphore sem(1u << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sem.wait(1));
    sem.signal(1);
  }
}
BENCHMARK(BM_CountingSemaphoreWaitSignal)->ThreadRange(1, 4);

// ---- mutexes ----------------------------------------------------------------

void BM_SpinMutexLockUnlock(benchmark::State& state) {
  static sync::SpinMutex mu;
  for (auto _ : state) {
    mu.lock();
    mu.unlock();
  }
}
BENCHMARK(BM_SpinMutexLockUnlock)->ThreadRange(1, 4);

void BM_CollectiveMutexSingleton(benchmark::State& state) {
  static sync::CollectiveMutex mu;
  const auto g = gpu::CoalescedGroup::singleton(42);
  for (auto _ : state) {
    mu.lock(g);
    mu.unlock(g);
  }
}
BENCHMARK(BM_CollectiveMutexSingleton);

// ---- RCU -------------------------------------------------------------------

void BM_RcuReadLockUnlock(benchmark::State& state) {
  static sync::SrcuDomain dom;
  for (auto _ : state) {
    const unsigned idx = dom.read_lock();
    dom.read_unlock(idx);
  }
}
BENCHMARK(BM_RcuReadLockUnlock)->ThreadRange(1, 4);

void BM_RcuSynchronizeUncontended(benchmark::State& state) {
  sync::SrcuDomain dom;
  for (auto _ : state) {
    dom.synchronize();
  }
}
BENCHMARK(BM_RcuSynchronizeUncontended);

// ---- bitmap -----------------------------------------------------------------

void BM_BitmapClaimRelease(benchmark::State& state) {
  std::vector<std::uint64_t> words(8, 0);
  util::AtomicBitmapRef map(words.data(), 512);
  map.reset();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const std::uint32_t idx = map.claim_clear_bit(seed++);
    map.release_bit(idx);
  }
}
BENCHMARK(BM_BitmapClaimRelease);

// ---- fibers -----------------------------------------------------------------

void BM_FiberSwitch(benchmark::State& state) {
  gpu::StackPool pool(32 * 1024);
  struct Hot {
    gpu::Fiber fiber;
    static void entry(void* arg) {
      auto* self = static_cast<Hot*>(arg);
      for (;;) self->fiber.suspend();
    }
  };
  Hot hot;
  hot.fiber.reset(pool.acquire(), &Hot::entry, &hot);
  for (auto _ : state) {
    hot.fiber.resume();  // two context switches (in and out)
  }
  state.SetItemsProcessed(state.iterations() * 2);
  // The fiber never finishes; leak its stack intentionally (process ends).
  state.counters["switches/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FiberSwitch);

// ---- allocators (host-side single thread floor) ----------------------------

void BM_GpuAllocatorMallocFree(benchmark::State& state) {
  static alloc::GpuAllocator ga(
      alloc::HeapConfig{.pool_bytes = 64u << 20, .num_arenas = 4});
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = ga.malloc(size);
    benchmark::DoNotOptimize(p);
    ga.free(p);
  }
}
BENCHMARK(BM_GpuAllocatorMallocFree)->Arg(8)->Arg(64)->Arg(1024)->Arg(4096)
    ->Arg(65536);

void BM_SerialHeapMallocFree(benchmark::State& state) {
  static void* pool = std::aligned_alloc(4096, 64u << 20);
  static baseline::SerialHeapAllocator heap(pool, 64u << 20);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = heap.malloc(size);
    benchmark::DoNotOptimize(p);
    heap.free(p);
  }
}
BENCHMARK(BM_SerialHeapMallocFree)->Arg(8)->Arg(64)->Arg(1024)->Arg(4096)
    ->Arg(65536);

}  // namespace
}  // namespace toma

BENCHMARK_MAIN();
