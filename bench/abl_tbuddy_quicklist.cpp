// Ablation A7 — the TBuddy per-order quicklist and optimistic CAS claim
// (not in the paper; docs/INTERNALS.md §4c).
//
// Workload: same-order block churn. Every thread keeps a ring of `depth`
// live blocks of one size (4 KB .. 512 KB, i.e. TBuddy orders 0..7) and
// repeatedly frees the oldest slot and allocates a replacement — the
// malloc-follows-free pattern the quicklist turns into a pop/push pair.
// With the quicklist ON a free parks the block (node stays Busy, no merge
// cascade) and the next allocate pops it back without touching the bulk
// semaphore or the tree; OFF is the paper's exact split/merge path. The
// CAS-claim axis isolates the descent-claim protocol: ON claims with one
// uncontended CAS, OFF always takes the (parent, node) locks.
//
// Protocol: sizes x the {quicklist, cas} matrix on the same device and
// pool geometry; report churn ops/s (one op = a free or a malloc), the
// both-on/both-off speedup, and the quicklist hit rate. Acceptance:
// >= 2x on same-order churn at >= 4 KB with the quicklist on (see
// EXPERIMENTS.md A7).
#include <atomic>
#include <cinttypes>
#include <memory>

#include "alloc/alloc.hpp"
#include "common/harness.hpp"

namespace toma::bench {
namespace {

constexpr std::uint32_t kDepth = 4;  // live blocks per thread

struct Out {
  double rate;     // churn ops (malloc+free) per second
  double hit_pct;  // quicklist hits / (hits + misses), in percent
};

Out run(gpu::Device& dev, const Options& opt, std::size_t size,
        bool quicklist, bool cas_claim) {
  // Scale the thread count so the live set stays within a fixed budget —
  // 512 KB blocks cannot have 8192 holders the way 4 KB blocks can.
  const std::uint64_t base = opt.quick ? 2048 : 4096;
  const std::uint64_t budget = 32ull << 20;  // live bytes across threads
  std::uint64_t threads = budget / (kDepth * size);
  if (threads > base) threads = base;
  if (threads < 64) threads = 64;
  const std::uint32_t rounds = opt.full ? 128 : 32;
  // x2 slack over the live set keeps exhaustion (a different ablation's
  // subject) out of the measurement.
  std::size_t pool_bytes =
      util::round_up_pow2(threads * kDepth * size * 2);
  if (pool_bytes < (16u << 20)) pool_bytes = 16u << 20;
  void* pool = std::aligned_alloc(pool_bytes, pool_bytes);
  auto buddy = std::make_unique<alloc::TBuddy>(pool, pool_bytes);
  buddy->set_quicklist(quicklist);
  buddy->set_cas_claim(cas_claim);

  const alloc::TBuddyStats before = buddy->stats();
  const double secs = time_launch(
      dev, threads, opt.block_sizes.front(),
      [&buddy, threads, size, rounds](gpu::ThreadCtx& t) {
        if (t.global_rank() >= threads) return;
        void* slots[kDepth] = {};
        for (std::uint32_t r = 0; r < rounds; ++r) {
          const std::uint32_t i = r % kDepth;
          if (slots[i] != nullptr) buddy->free(slots[i]);
          slots[i] = buddy->allocate_bytes(size);
        }
        for (std::uint32_t i = 0; i < kDepth; ++i) {
          if (slots[i] != nullptr) buddy->free(slots[i]);
        }
      });
  const alloc::TBuddyStats after = buddy->stats();

  const std::uint64_t hits = after.quicklist_hits - before.quicklist_hits;
  const std::uint64_t misses =
      after.quicklist_misses - before.quicklist_misses;
  Out out{static_cast<double>(2ull * rounds * threads) / secs,
          hits + misses == 0
              ? 0.0
              : 100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses)};
  buddy.reset();
  std::free(pool);
  return out;
}

int main_impl(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  gpu::Device dev(opt.device_config());

  util::Table table(
      "Ablation A7: TBuddy quicklist x CAS claim (same-order churn)");
  table.set_header({"size", "ql+cas (ops/s)", "ql only", "cas only",
                    "off (ops/s)", "speedup", "ql hit%"});
  for (std::size_t size :
       {std::size_t{4} << 10, std::size_t{32} << 10, std::size_t{128} << 10,
        std::size_t{512} << 10}) {
    const Out on = run(dev, opt, size, true, true);
    const Out ql = run(dev, opt, size, true, false);
    const Out cas = run(dev, opt, size, false, true);
    const Out off = run(dev, opt, size, false, false);
    table.add(util::eng_format(static_cast<double>(size)) + "B", on.rate,
              ql.rate, cas.rate, off.rate, on.rate / off.rate, on.hit_pct);
    std::printf(
        "  size=%zu on=%.3g ql=%.3g cas=%.3g off=%.3g speedup=%.2fx "
        "hit=%.1f%%\n",
        size, on.rate, ql.rate, cas.rate, off.rate, on.rate / off.rate,
        on.hit_pct);
  }
  finish_table(opt, table);
  return 0;
}

}  // namespace
}  // namespace toma::bench

int main(int argc, char** argv) { return toma::bench::main_impl(argc, argv); }
