#!/usr/bin/env python3
"""Lint a Prometheus text-exposition file (the toma metrics export).

Fails (exit 1) on:
  * unnamed or illegally named series (metric names must match
    [a-zA-Z_:][a-zA-Z0-9_:]*; label names [a-zA-Z_][a-zA-Z0-9_]*)
  * duplicate series (same metric name + identical label set twice)
  * a sample line that cannot be parsed at all
  * a # TYPE line for a metric that then never appears (and vice versa:
    samples with no preceding # TYPE)
  * non-numeric sample values

With --require=PREFIX (repeatable), additionally fails unless at least one
sampled metric starts with each PREFIX — CI uses this to prove a subsystem
(e.g. the fixed-lane counters, toma_ualloc_lane_*) actually exported.

Usage: lint_prometheus.py [--require=PREFIX ...] FILE [FILE...]
"""

import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[^\s{]+)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>\S+))?$"
)
LABEL_PAIR_RE = re.compile(r'([^=,]+)="((?:[^"\\]|\\.)*)"')


def is_number(s: str) -> bool:
    if s in ("+Inf", "-Inf", "NaN"):
        return True
    try:
        float(s)
        return True
    except ValueError:
        return False


def lint(path: str, require=()) -> int:
    errors = 0

    def err(lineno, msg):
        nonlocal errors
        errors += 1
        print(f"{path}:{lineno}: {msg}", file=sys.stderr)

    typed = {}  # metric name -> (lineno, type)
    sampled = set()  # metric names that had at least one sample
    seen_series = {}  # (name, frozen labels) -> first lineno

    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 2 and parts[1] == "TYPE":
                    if len(parts) < 4:
                        err(lineno, f"malformed TYPE line: {line!r}")
                        continue
                    name, mtype = parts[2], parts[3]
                    if not METRIC_RE.match(name):
                        err(lineno, f"illegal metric name in TYPE: {name!r}")
                    if mtype not in ("counter", "gauge", "histogram",
                                     "summary", "untyped"):
                        err(lineno, f"unknown metric type {mtype!r}")
                    if name in typed:
                        err(lineno,
                            f"duplicate TYPE for {name} "
                            f"(first at line {typed[name][0]})")
                    typed[name] = (lineno, mtype)
                continue

            m = SAMPLE_RE.match(line)
            if not m:
                err(lineno, f"unparseable sample line: {line!r}")
                continue
            name = m.group("name")
            if not name:
                err(lineno, "unnamed series")
                continue
            if not METRIC_RE.match(name):
                err(lineno, f"illegal metric name: {name!r}")
                continue
            labels = []
            if m.group("labels"):
                body = m.group("labels")
                consumed = 0
                for pm in LABEL_PAIR_RE.finditer(body):
                    lname = pm.group(1).strip().lstrip(",").strip()
                    if not LABEL_RE.match(lname):
                        err(lineno, f"illegal label name: {lname!r}")
                    labels.append((lname, pm.group(2)))
                    consumed += len(pm.group(0))
                if not labels and body.strip():
                    err(lineno, f"unparseable label block: {body!r}")
                lnames = [k for k, _ in labels]
                if len(set(lnames)) != len(lnames):
                    err(lineno, f"repeated label name in: {body!r}")
            if not is_number(m.group("value")):
                err(lineno, f"non-numeric value: {m.group('value')!r}")

            # Histogram/summary family samples hang off the TYPE'd base
            # name (name, name_bucket, name_sum, name_count).
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in typed:
                    base = name[: -len(suffix)]
                    break
            if base not in typed:
                err(lineno, f"sample for {name} has no preceding # TYPE")
            sampled.add(base)

            key = (name, frozenset(labels))
            if key in seen_series:
                err(lineno,
                    f"duplicate series {name}{{{dict(labels)}}} "
                    f"(first at line {seen_series[key]})")
            else:
                seen_series[key] = lineno

    for name, (lineno, _) in typed.items():
        if name not in sampled:
            err(lineno, f"# TYPE {name} declared but no samples follow")

    all_names = {name for name, _ in seen_series}
    for prefix in require:
        if not any(n.startswith(prefix) for n in all_names):
            err(0, f"no sampled metric starts with required prefix "
                   f"{prefix!r}")

    if errors == 0:
        print(f"{path}: OK ({len(seen_series)} series, "
              f"{len(typed)} metrics)")
    return errors


def main() -> int:
    require = []
    files = []
    for arg in sys.argv[1:]:
        if arg.startswith("--require="):
            require.append(arg[len("--require="):])
        else:
            files.append(arg)
    if not files:
        print(__doc__, file=sys.stderr)
        return 2
    total = sum(lint(p, require) for p in files)
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
