/* toma.h — the stable C facade of the toma allocator.
 *
 * This is the only header external applications should include. It is
 * plain C99 (compiles as C or C++), exposes opaque handles only, and is
 * implemented on top of the C++ Pool/PoolManager/StreamFrontEnd layers
 * (src/alloc). See docs/API.md for the full tour and the migration
 * table from the legacy device_malloc/device_free globals.
 *
 * Quick start:
 *
 *   toma_pool_config_t cfg = toma_pool_config_default();
 *   cfg.pool_bytes  = 16u << 20;
 *   cfg.quota_bytes = 4u << 20;
 *   toma_pool_t pool;
 *   if (toma_pool_create("tenant-a", &cfg, &pool) != TOMA_OK) { ... }
 *
 *   toma_stream_t s = toma_stream_create();
 *   void* p = toma_malloc_async(pool, 256, s, NULL);
 *   toma_free_async(pool, p, s);      // O(1): parked on the stream
 *   toma_stream_sync(s);              // batch drains here
 *   toma_stream_destroy(s);
 *   toma_pool_destroy(pool);
 *
 * Passing a NULL pool to any allocation call means "the default pool"
 * (created on first use; shared with the legacy device_malloc). Passing
 * a NULL stream means the process-wide default stream.
 */
#ifndef TOMA_TOMA_H
#define TOMA_TOMA_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* --- handles and status ------------------------------------------------- */

/* Opaque handles. A toma_pool_t stays valid until toma_pool_destroy; a
 * toma_stream_t until toma_stream_destroy. */
typedef struct toma_pool_s* toma_pool_t;
typedef struct toma_stream_s* toma_stream_t;

/* Why a call failed. A quota rejection (this pool's byte budget) and
 * true pool exhaustion are different operational events — one alerts the
 * tenant, the other the operator. */
typedef enum toma_status {
  TOMA_OK = 0,
  TOMA_ERR_INVALID = 1,   /* bad argument (size 0, overflow, bad config) */
  TOMA_ERR_OOM = 2,       /* pool exhausted at the requested size */
  TOMA_ERR_QUOTA = 3,     /* the pool's quota_bytes would be exceeded */
  TOMA_ERR_EXISTS = 4,    /* pool name already taken */
  TOMA_ERR_NOT_FOUND = 5  /* no pool by that name */
} toma_status_t;

/* Human-readable name of a status ("TOMA_OK", "TOMA_ERR_QUOTA", ...). */
const char* toma_status_str(toma_status_t s);

/* --- pool lifecycle ------------------------------------------------------ */

/* release_threshold value meaning "never trim at sync points". */
#define TOMA_RELEASE_RETAIN_ALL ((size_t)-1)

typedef struct toma_pool_config {
  size_t pool_bytes;        /* 0 = library default; else a power of two */
  unsigned num_arenas;      /* 0 = library default (UAlloc arena count)  */
  size_t quota_bytes;       /* cap on live bytes; 0 = unlimited          */
  size_t release_threshold; /* trim at sync when more than this many
                             * bytes sit stranded in caches; 0 = trim
                             * everything (the CUDA default),
                             * TOMA_RELEASE_RETAIN_ALL = never           */
  int heapsan;              /* -1 = build default, 0 = off, 1 = on       */
  int magazines;            /* -1 = build default, 0 = off, 1 = on       */
  int quicklist;            /* -1 = build default, 0 = off, 1 = on       */
  int stream_async;         /* -1 = build default, 0 = off, 1 = on       */
  uint64_t slo_latency_ns;  /* per-op latency SLO target in ns; an op
                             * slower than this bumps the pool's
                             * SLO-violation counter. 0 = no SLO         */
  int fixed_lane;           /* constant-time 8-64 B fast lane:
                             * -1 = build default, 0 = off, 1 = on       */
} toma_pool_config_t;

/* The library defaults (64 MiB pool, unlimited quota, retain-all
 * threshold, build-default front-ends). Always start from this rather
 * than zero-initializing: {0} means "trim everything at every sync",
 * which is CUDA's default but probably not what you want. */
toma_pool_config_t toma_pool_config_default(void);

/* Create a named pool. `cfg` may be NULL for defaults; `out` may be NULL
 * when only the side effect matters. TOMA_ERR_EXISTS when the name is
 * taken, TOMA_ERR_INVALID for a bad name/config. */
toma_status_t toma_pool_create(const char* name,
                               const toma_pool_config_t* cfg,
                               toma_pool_t* out);

/* Destroy a pool: drains pending async frees, then tears the heap down.
 * All blocks from the pool must already have been freed. The default
 * pool cannot be destroyed (TOMA_ERR_INVALID). */
toma_status_t toma_pool_destroy(toma_pool_t pool);

/* Look up a pool by name; NULL when absent. */
toma_pool_t toma_pool_find(const char* name);

/* The default pool (created on first use with library defaults; the same
 * heap the legacy device_malloc uses). */
toma_pool_t toma_default_pool(void);

/* --- synchronous allocation ---------------------------------------------- */
/* `pool` may be NULL in every call below: the default pool is used. */

void* toma_malloc(toma_pool_t pool, size_t size, toma_status_t* status);
void toma_free(toma_pool_t pool, void* p);
void* toma_calloc(toma_pool_t pool, size_t n, size_t size,
                  toma_status_t* status);
void* toma_realloc(toma_pool_t pool, void* p, size_t size,
                   toma_status_t* status);

/* Actual capacity of a live allocation (>= the requested size). */
size_t toma_usable_size(toma_pool_t pool, void* p);

/* --- stream-ordered allocation ------------------------------------------- */

/* Create/destroy an execution stream. Destroying drains the stream's
 * pending frees on every pool. NULL stream arguments below mean the
 * process default stream. */
toma_stream_t toma_stream_create(void);
void toma_stream_destroy(toma_stream_t s);

/* malloc ordered after prior work on `s`; may directly reuse a block
 * pending free on the same stream (no allocator round trip). */
void* toma_malloc_async(toma_pool_t pool, size_t size, toma_stream_t s,
                        toma_status_t* status);

/* Defer freeing `p` until `s` next synchronizes. O(1). */
void toma_free_async(toma_pool_t pool, void* p, toma_stream_t s);

/* Drain `s`'s deferred frees on one pool / on every pool, then apply the
 * release threshold. Returns the number of frees drained. */
size_t toma_pool_sync(toma_pool_t pool, toma_stream_t s);
size_t toma_stream_sync(toma_stream_t s);

/* Drain every stream's deferred frees on one pool (device-sync
 * analogue), then apply the release threshold. Returns frees drained. */
size_t toma_pool_sync_all(toma_pool_t pool);

/* --- maintenance / introspection ----------------------------------------- */

/* Drain pending frees and scavenge cached memory back to maximal buddy
 * blocks (malloc_trim analogue). Returns UAlloc chunks released. */
size_t toma_trim(toma_pool_t pool);

/* Live bytes (block granularity) / quota / release threshold. */
size_t toma_pool_bytes_in_use(toma_pool_t pool);
size_t toma_pool_quota(toma_pool_t pool);
void toma_pool_set_quota(toma_pool_t pool, size_t bytes);
size_t toma_pool_release_threshold(toma_pool_t pool);
void toma_pool_set_release_threshold(toma_pool_t pool, size_t bytes);

/* The pool's name (borrowed pointer, valid while the pool lives). */
const char* toma_pool_name(toma_pool_t pool);

/* --- latency SLOs --------------------------------------------------------- */

/* Per-operation latency SLO target in ns for the pool's host-facing
 * surface (malloc/free and the async forms). An operation slower than
 * the target bumps the pool's SLO-violation counter
 * (`pool.slo_violation{pool="..."}` in the metrics export). 0 disables
 * the check. Builds with telemetry compiled out never observe
 * violations (the clock is compiled out with it). */
void toma_pool_set_slo(toma_pool_t pool, uint64_t target_ns);
uint64_t toma_pool_slo(toma_pool_t pool);

/* Operations that exceeded the SLO target since pool creation. */
uint64_t toma_pool_slo_violations(toma_pool_t pool);

/* --- flight recorder ------------------------------------------------------ */
/* A bounded in-memory log of allocator front-end events (alloc/free/
 * realloc/sync, with pool, stream, size, and outcome), dumpable as a
 * compact versioned binary trace (.tomarec) that `replay` (see
 * docs/OBSERVABILITY.md) re-runs through this same C API. Recording
 * never blocks allocation: when the buffer fills, new events are dropped
 * and counted. Also armable at process start via the TOMA_RECORD
 * environment variable (TOMA_RECORD=1 for the default buffer,
 * TOMA_RECORD=<n> for an n-event buffer). */

/* Begin a recording session into a fresh buffer of at most
 * `capacity_events` events (0 = library default, 1M). Discards any
 * previous recording. TOMA_ERR_EXISTS when already recording. */
toma_status_t toma_record_start(size_t capacity_events);

/* Stop recording. The captured trace stays dumpable until the next
 * toma_record_start. */
void toma_record_stop(void);

/* Is a recording session active? */
int toma_record_active(void);

/* Events captured so far / events dropped because the buffer was full. */
size_t toma_record_event_count(void);
uint64_t toma_record_dropped(void);

/* Write the captured trace to `path` as a .tomarec file. Call
 * toma_record_stop first for a stable snapshot. TOMA_ERR_INVALID when
 * nothing has been recorded or the file cannot be written. */
toma_status_t toma_record_dump(const char* path);

/* --- metrics export ------------------------------------------------------- */

typedef enum toma_metrics_format {
  TOMA_METRICS_PROMETHEUS = 0, /* Prometheus text exposition format */
  TOMA_METRICS_JSON = 1        /* stable JSON (schema_version'd)    */
} toma_metrics_format_t;

/* Snapshot the telemetry registry (counters, derived rates, latency
 * histograms, per-pool SLO quantiles) and write it to `path` in the
 * requested format. With telemetry compiled out the export succeeds but
 * contains no series. TOMA_ERR_INVALID on I/O failure. */
toma_status_t toma_metrics_export(const char* path,
                                  toma_metrics_format_t format);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* TOMA_TOMA_H */
