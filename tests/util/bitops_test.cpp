#include "util/bitops.hpp"

#include <gtest/gtest.h>

namespace toma::util {
namespace {

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2((1ull << 63) + 1));
}

TEST(Bitops, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(4096), 12u);
  EXPECT_EQ(log2_floor(~0ull), 63u);
}

TEST(Bitops, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil(4097), 13u);
}

TEST(Bitops, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(1), 1ull);
  EXPECT_EQ(round_up_pow2(3), 4ull);
  EXPECT_EQ(round_up_pow2(4), 4ull);
  EXPECT_EQ(round_up_pow2(1000), 1024ull);
}

TEST(Bitops, AlignUpDown) {
  EXPECT_EQ(align_up(0, 16), 0ull);
  EXPECT_EQ(align_up(1, 16), 16ull);
  EXPECT_EQ(align_up(16, 16), 16ull);
  EXPECT_EQ(align_up(17, 16), 32ull);
  EXPECT_EQ(align_down(17, 16), 16ull);
  EXPECT_EQ(align_down(15, 16), 0ull);
}

TEST(Bitops, IsAligned) {
  EXPECT_TRUE(is_aligned(std::uint64_t{0}, 4096));
  EXPECT_TRUE(is_aligned(std::uint64_t{8192}, 4096));
  EXPECT_FALSE(is_aligned(std::uint64_t{8192 + 128}, 4096));
  int x;
  EXPECT_TRUE(is_aligned(&x, alignof(int)));
}

TEST(Bitops, CtzPopcount) {
  EXPECT_EQ(ctz(1), 0u);
  EXPECT_EQ(ctz(8), 3u);
  EXPECT_EQ(ctz(1ull << 63), 63u);
  EXPECT_EQ(popcount(0), 0u);
  EXPECT_EQ(popcount(0xFF), 8u);
  EXPECT_EQ(popcount(~0ull), 64u);
}

// Property sweep: log2/round/align identities over a range of values.
class BitopsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitopsProperty, Identities) {
  const std::uint64_t x = GetParam();
  ASSERT_NE(x, 0u);
  const unsigned lf = log2_floor(x);
  const unsigned lc = log2_ceil(x);
  EXPECT_LE(1ull << lf, x);
  if (lf < 63) EXPECT_GT(1ull << (lf + 1), x);
  EXPECT_GE(1ull << lc, x);
  EXPECT_TRUE(lc == lf || lc == lf + 1);
  EXPECT_EQ(lc == lf, is_pow2(x));
  if (x <= (1ull << 62)) {
    EXPECT_EQ(round_up_pow2(x), 1ull << lc);
    EXPECT_TRUE(is_pow2(round_up_pow2(x)));
  }
  for (std::uint64_t a : {std::uint64_t{8}, std::uint64_t{4096}}) {
    EXPECT_EQ(align_up(x, a) % a, 0u);
    EXPECT_GE(align_up(x, a), x);
    EXPECT_LT(align_up(x, a) - x, a);
    EXPECT_EQ(align_down(x, a) % a, 0u);
    EXPECT_LE(align_down(x, a), x);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitopsProperty,
    ::testing::Values(1, 2, 3, 7, 8, 9, 100, 127, 128, 129, 4095, 4096, 4097,
                      65535, 65536, 1u << 20, (1u << 20) + 1, 123456789,
                      (1ull << 40) + 17));

}  // namespace
}  // namespace toma::util
