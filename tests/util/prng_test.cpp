#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace toma::util {
namespace {

TEST(Prng, Deterministic) {
  Xorshift a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, SeedsDiverge) {
  Xorshift a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Prng, ZeroSeedIsNotAbsorbing) {
  Xorshift r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 60u);
}

TEST(Prng, NextBelowInRange) {
  Xorshift r(7);
  for (std::uint64_t bound :
       {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 31}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Prng, NextBelowCoversRange) {
  Xorshift r(11);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) hits[r.next_below(8)]++;
  for (int h : hits) {
    EXPECT_GT(h, 700);  // ~1000 expected; catch gross skew only
    EXPECT_LT(h, 1300);
  }
}

TEST(Prng, DoubleInUnitInterval) {
  Xorshift r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Prng, Hash64AvalanchesLowBits) {
  // Consecutive inputs should produce well-spread low bits (the property
  // the scattered bitmap/tree searches rely on).
  std::vector<int> buckets(16, 0);
  for (std::uint64_t i = 0; i < 1600; ++i) buckets[hash64(i) & 15]++;
  for (int b : buckets) {
    EXPECT_GT(b, 50);
    EXPECT_LT(b, 150);
  }
}

TEST(Prng, SplitmixDistinct) {
  std::uint64_t s = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(splitmix64(s));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace toma::util
