#include "util/atomic_bitmap.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "support/test_support.hpp"

namespace toma::util {
namespace {

class BitmapTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void SetUp() override {
    nbits_ = GetParam();
    words_.assign(AtomicBitmapRef::words_for(nbits_), 0);
    map().reset();
  }
  AtomicBitmapRef map() { return AtomicBitmapRef(words_.data(), nbits_); }
  std::uint32_t nbits_;
  std::vector<std::uint64_t> words_;
};

TEST_P(BitmapTest, ResetClearsAll) {
  EXPECT_EQ(map().count(), 0u);
  for (std::uint32_t i = 0; i < nbits_; ++i) EXPECT_FALSE(map().test(i));
}

TEST_P(BitmapTest, SetTestClear) {
  auto m = map();
  EXPECT_TRUE(m.try_set(0));
  EXPECT_FALSE(m.try_set(0));  // already set
  EXPECT_TRUE(m.test(0));
  EXPECT_EQ(m.count(), 1u);
  EXPECT_TRUE(m.try_clear(0));
  EXPECT_FALSE(m.try_clear(0));
  EXPECT_EQ(m.count(), 0u);
}

TEST_P(BitmapTest, ClaimAllBitsExactlyOnce) {
  auto m = map();
  std::set<std::uint32_t> claimed;
  for (std::uint32_t i = 0; i < nbits_; ++i) {
    const std::uint32_t idx = m.claim_clear_bit(/*seed=*/i * 7919);
    ASSERT_NE(idx, AtomicBitmapRef::kNone);
    ASSERT_LT(idx, nbits_);
    EXPECT_TRUE(claimed.insert(idx).second) << "bit claimed twice";
  }
  EXPECT_EQ(m.claim_clear_bit(1), AtomicBitmapRef::kNone);  // full
  EXPECT_EQ(m.count(), nbits_);
}

TEST_P(BitmapTest, ScatterSpreadsClaims) {
  if (nbits_ < 128) GTEST_SKIP();
  auto m = map();
  // First claims with different seeds should not all pile into word 0.
  std::set<std::uint32_t> words_hit;
  for (std::uint32_t s = 0; s < 16; ++s) {
    const std::uint32_t idx = m.claim_clear_bit(hash64(s));
    ASSERT_NE(idx, AtomicBitmapRef::kNone);
    words_hit.insert(idx / 64);
  }
  EXPECT_GT(words_hit.size(), 1u);
}

TEST_P(BitmapTest, OutOfRangeBitsNeverClaimable) {
  auto m = map();
  for (std::uint32_t i = 0; i < nbits_; ++i) {
    ASSERT_NE(m.claim_clear_bit(i), AtomicBitmapRef::kNone);
  }
  // All valid bits set; padding bits in the last word must stay set too
  // (reset() pre-sets them) so count never exceeds nbits.
  EXPECT_EQ(m.count(), nbits_);
  EXPECT_EQ(m.claim_clear_bit(0), AtomicBitmapRef::kNone);
}

TEST_P(BitmapTest, ConcurrentClaimsAreUnique) {
  auto m = map();
  const unsigned nthreads = 4;
  std::vector<std::vector<std::uint32_t>> got(nthreads);
  test::run_os_threads(nthreads, [&](unsigned tid) {
    for (;;) {
      const std::uint32_t idx = m.claim_clear_bit(hash64(tid * 1031 + 7));
      if (idx == AtomicBitmapRef::kNone) break;
      got[tid].push_back(idx);
    }
  });
  std::set<std::uint32_t> all;
  std::size_t total = 0;
  for (const auto& v : got) {
    total += v.size();
    for (std::uint32_t idx : v) {
      EXPECT_TRUE(all.insert(idx).second) << "bit " << idx << " double claimed";
    }
  }
  EXPECT_EQ(total, nbits_);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitmapTest,
                         ::testing::Values(1, 3, 62, 63, 64, 65, 127, 128,
                                           200, 512));

TEST(BitmapRelease, ReleaseMakesBitClaimable) {
  std::vector<std::uint64_t> words(1, 0);
  AtomicBitmapRef m(words.data(), 8);
  m.reset();
  for (int i = 0; i < 8; ++i) ASSERT_NE(m.claim_clear_bit(i), AtomicBitmapRef::kNone);
  m.release_bit(3);
  EXPECT_EQ(m.claim_clear_bit(99), 3u);
}

}  // namespace
}  // namespace toma::util
