#include "util/intrusive_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace toma::util {
namespace {

struct Item {
  int value = 0;
  ListNode node;
};

using List = IntrusiveList<Item, &Item::node>;

TEST(IntrusiveList, EmptyInvariants) {
  List l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.size(), 0u);
  EXPECT_EQ(l.front(), nullptr);
  EXPECT_EQ(l.back(), nullptr);
  EXPECT_EQ(l.pop_front(), nullptr);
}

TEST(IntrusiveList, PushFrontOrder) {
  List l;
  Item a{1}, b{2}, c{3};
  l.push_front(&a);
  l.push_front(&b);
  l.push_front(&c);
  EXPECT_EQ(l.front()->value, 3);
  EXPECT_EQ(l.back()->value, 1);
  EXPECT_EQ(l.size(), 3u);
}

TEST(IntrusiveList, PushBackOrder) {
  List l;
  Item a{1}, b{2}, c{3};
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  std::vector<int> vals;
  for (Item& it : l) vals.push_back(it.value);
  EXPECT_EQ(vals, (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveList, EraseMiddle) {
  List l;
  Item a{1}, b{2}, c{3};
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  l.erase(&b);
  EXPECT_FALSE(b.node.linked());
  std::vector<int> vals;
  for (Item& it : l) vals.push_back(it.value);
  EXPECT_EQ(vals, (std::vector<int>{1, 3}));
}

TEST(IntrusiveList, EraseEnds) {
  List l;
  Item a{1}, b{2}, c{3};
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  l.erase(&a);
  l.erase(&c);
  EXPECT_EQ(l.size(), 1u);
  EXPECT_EQ(l.front(), &b);
  EXPECT_EQ(l.back(), &b);
  l.erase(&b);
  EXPECT_TRUE(l.empty());
}

TEST(IntrusiveList, PopFrontDrains) {
  List l;
  Item items[5];
  for (int i = 0; i < 5; ++i) {
    items[i].value = i;
    l.push_back(&items[i]);
  }
  for (int i = 0; i < 5; ++i) {
    Item* it = l.pop_front();
    ASSERT_NE(it, nullptr);
    EXPECT_EQ(it->value, i);
  }
  EXPECT_TRUE(l.empty());
}

TEST(IntrusiveList, RelinkAfterErase) {
  List l;
  Item a{7};
  l.push_back(&a);
  l.erase(&a);
  l.push_front(&a);
  EXPECT_EQ(l.front(), &a);
  EXPECT_EQ(l.size(), 1u);
}

TEST(IntrusiveList, ObjectOfRoundTrip) {
  Item a{42};
  EXPECT_EQ(List::object_of(List::node_of(&a)), &a);
}

}  // namespace
}  // namespace toma::util
