#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace toma::util {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);
}

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.9), 90.1, 0.2);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, EmptyIsSafe) {
  SampleSet s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SampleSet, SingleSampleEveryQuantile) {
  SampleSet s;
  s.add(42.0);
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), 42.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(SampleSet, TwoSamplesInterpolate) {
  SampleSet s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 20.0);
}

TEST(EngFormat, Suffixes) {
  EXPECT_EQ(eng_format(950), "950");
  EXPECT_EQ(eng_format(1500), "1.5k");
  EXPECT_EQ(eng_format(2.5e6), "2.5M");
  EXPECT_EQ(eng_format(3.25e9, 3), "3.25G");
}

TEST(EngFormat, ZeroAndNegativeZero) {
  EXPECT_EQ(eng_format(0.0), "0");
  EXPECT_EQ(eng_format(-0.0), "0");
}

TEST(EngFormat, NegativeValuesGetSuffixes) {
  EXPECT_EQ(eng_format(-950), "-950");
  EXPECT_EQ(eng_format(-1500), "-1.5k");
  EXPECT_EQ(eng_format(-2.5e6), "-2.5M");
  EXPECT_EQ(eng_format(-3.25e9, 3), "-3.25G");
}

TEST(EngFormat, NonFinite) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(eng_format(inf), "inf");
  EXPECT_EQ(eng_format(-inf), "-inf");
  EXPECT_EQ(eng_format(std::numeric_limits<double>::quiet_NaN()), "nan");
}

}  // namespace
}  // namespace toma::util
