#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace toma::util {
namespace {

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.variance(), 2.5, 1e-12);
}

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.9), 90.1, 0.2);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(EngFormat, Suffixes) {
  EXPECT_EQ(eng_format(950), "950");
  EXPECT_EQ(eng_format(1500), "1.5k");
  EXPECT_EQ(eng_format(2.5e6), "2.5M");
  EXPECT_EQ(eng_format(3.25e9, 3), "3.25G");
}

}  // namespace
}  // namespace toma::util
