// Log2 histogram bucketing, quantile interpolation, snapshot diffing, and
// concurrent recording.
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include "support/test_support.hpp"

namespace toma::obs {
namespace {

TEST(HistBuckets, BoundsConvention) {
  // Bucket 0 holds exactly {0}; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(hist_bucket_of(0), 0u);
  EXPECT_EQ(hist_bucket_of(1), 1u);
  EXPECT_EQ(hist_bucket_of(2), 2u);
  EXPECT_EQ(hist_bucket_of(3), 2u);
  EXPECT_EQ(hist_bucket_of(4), 3u);
  EXPECT_EQ(hist_bucket_of(1023), 10u);
  EXPECT_EQ(hist_bucket_of(1024), 11u);
  EXPECT_EQ(hist_bucket_of(UINT64_MAX), kHistBuckets - 1);
  for (std::uint32_t b = 1; b < kHistBuckets - 1; ++b) {
    EXPECT_EQ(hist_bucket_of(hist_bucket_lo(b)), b);
    EXPECT_EQ(hist_bucket_of(hist_bucket_hi(b) - 1), b);
  }
}

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 7ull, 100ull, 4096ull}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 0u + 1 + 7 + 100 + 4096);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 4096u);
  EXPECT_EQ(s.buckets[0], 1u);                   // the 0
  EXPECT_EQ(s.buckets[hist_bucket_of(7)], 1u);
  EXPECT_DOUBLE_EQ(s.mean(), (0.0 + 1 + 7 + 100 + 4096) / 5.0);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.p99(), 0.0);
}

TEST(Histogram, QuantilesLandInTheRightBucket) {
  Histogram h;
  // 90 fast ops (~16 ns), 10 slow ops (~64k ns): p50 must sit in the fast
  // bucket, p99 in the slow one.
  for (int i = 0; i < 90; ++i) h.record(16);
  for (int i = 0; i < 10; ++i) h.record(65536);
  const HistogramSnapshot s = h.snapshot();
  const double p50 = s.p50();
  EXPECT_GE(p50, static_cast<double>(hist_bucket_lo(hist_bucket_of(16))));
  EXPECT_LT(p50, static_cast<double>(hist_bucket_hi(hist_bucket_of(16))));
  const double p99 = s.p99();
  EXPECT_GE(p99, static_cast<double>(hist_bucket_lo(hist_bucket_of(65536))));
  EXPECT_LT(p99, static_cast<double>(hist_bucket_hi(hist_bucket_of(65536))));
  // q=1 returns the exact max.
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 65536.0);
}

TEST(Histogram, SingleSampleQuantiles) {
  Histogram h;
  h.record(100);
  const HistogramSnapshot s = h.snapshot();
  const double lo = static_cast<double>(hist_bucket_lo(hist_bucket_of(100)));
  const double hi = static_cast<double>(hist_bucket_hi(hist_bucket_of(100)));
  for (double q : {0.0, 0.5, 0.99}) {
    EXPECT_GE(s.quantile(q), lo) << "q=" << q;
    EXPECT_LT(s.quantile(q), hi) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(Histogram, QuantileEdgeCases) {
  // Empty histogram: every quantile is 0, including the endpoints.
  const HistogramSnapshot empty = Histogram().snapshot();
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);

  // All mass in bucket 0 (value 0): quantiles are exactly 0 with no
  // interpolation drift.
  Histogram zeros;
  for (int i = 0; i < 10; ++i) zeros.record(0);
  const HistogramSnapshot z = zeros.snapshot();
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(z.quantile(q), 0.0) << "q=" << q;
  }

  // All mass in one power-of-two bucket: interpolation must stay clamped
  // to the observed [min, max], not the bucket bounds.
  Histogram one;
  one.record(100);
  one.record(120);
  const HistogramSnapshot s = one.snapshot();
  EXPECT_GE(s.quantile(0.0), 100.0) << "p0 clamps up to the observed min";
  EXPECT_LE(s.quantile(0.999), 120.0) << "quantiles clamp to observed max";
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 120.0) << "p100 is the exact max";
}

TEST(Histogram, DiffSinceSubtractsCounts) {
  Histogram h;
  h.record(10);
  h.record(20);
  const HistogramSnapshot before = h.snapshot();
  h.record(10);
  h.record(1000);
  const HistogramSnapshot d = h.snapshot().diff_since(before);
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.sum, 1010u);
  EXPECT_EQ(d.buckets[hist_bucket_of(10)], 1u);
  EXPECT_EQ(d.buckets[hist_bucket_of(1000)], 1u);
}

TEST(Histogram, ConcurrentRecordsDontLose) {
  Histogram h;
  test::run_os_threads(8, [&](unsigned t) {
    for (int i = 0; i < 5000; ++i) h.record(t * 100 + 1);
  });
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 8u * 5000u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 701u);
}

TEST(HistogramVec, ClampsLikeCounterVec) {
  HistogramVec v(2);
  v.at(0).record(1);
  v.at(7).record(2);  // clamps to index 1
  EXPECT_EQ(v.get(0).snapshot().count, 1u);
  EXPECT_EQ(v.get(1).snapshot().count, 1u);
}

TEST(ScopedTimer, RecordsOnScopeExit) {
  Histogram h;
  {
    ScopedTimer t(h);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

}  // namespace
}  // namespace toma::obs
