// Sharded-counter semantics: aggregation, per-SM shard routing from
// inside simulated kernels, host-thread fallback sharding, and totals
// under concurrent fibers and OS threads.
#include "obs/counter.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "support/test_support.hpp"

namespace toma::obs {
namespace {

TEST(Counter, StartsAtZeroAndAggregates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(5);
  c.inc();
  EXPECT_EQ(c.value(), 6u);
}

TEST(Counter, HostThreadsLandOnStableShards) {
  Counter c;
  test::run_os_threads(4, [&](unsigned) {
    for (int i = 0; i < 1000; ++i) c.inc();
  });
  EXPECT_EQ(c.value(), 4000u);
  // Each host thread hashes to one fixed shard, so the per-shard sums must
  // be multiples of its per-thread contribution.
  std::uint64_t shard_sum = 0;
  for (std::uint32_t s = 0; s < Counter::shard_count(); ++s) {
    EXPECT_EQ(c.shard_value(s) % 1000, 0u);
    shard_sum += c.shard_value(s);
  }
  EXPECT_EQ(shard_sum, 4000u);
}

TEST(Counter, KernelFibersShardBySm) {
  // Each simulated thread bumps once; the scheduler pushes SM identity, so
  // every bump must land on the shard of the SM that ran the fiber.
  Counter c;
  gpu::Device dev(test::small_device(/*num_sms=*/2));
  constexpr std::uint64_t kThreads = 512;
  dev.launch_linear(kThreads, 64, [&](gpu::ThreadCtx& t) {
    c.inc();
#if TOMA_TELEMETRY
    // Sharding must match the SM the scheduler placed us on.
    EXPECT_EQ(current_shard(), t.sm_id() % kShards);
#else
    (void)t;
#endif
  });
  EXPECT_EQ(c.value(), kThreads);
#if TOMA_TELEMETRY
  // With a 2-SM device only shards 0 and 1 may be non-zero.
  std::uint64_t on_sm_shards = c.shard_value(0) + c.shard_value(1);
  EXPECT_EQ(on_sm_shards, kThreads);
#else
  // With telemetry off the scheduler does not push SM identity; bumps fall
  // back to the host-thread shard, so only totals are meaningful.
#endif
}

TEST(Counter, ConcurrentFibersAndHostThreadsDontLose) {
  Counter c;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> host_bumps{0};
  std::thread host([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      c.inc();
      host_bumps.fetch_add(1, std::memory_order_relaxed);
    }
  });
  gpu::Device dev(test::small_device());
  constexpr std::uint64_t kThreads = 2048;
  dev.launch_linear(kThreads, 128, [&](gpu::ThreadCtx& t) {
    c.inc();
    if ((t.global_rank() & 7) == 0) gpu::this_thread::yield();
    c.inc();
  });
  stop.store(true);
  host.join();
  EXPECT_EQ(c.value(), 2 * kThreads + host_bumps.load());
}

TEST(CounterVec, ClampsOutOfRangeIndices) {
  CounterVec v(4);
  v.at(0).inc();
  v.at(3).inc();
  v.at(99).inc();  // clamps to last
  EXPECT_EQ(v.get(0).value(), 1u);
  EXPECT_EQ(v.get(3).value(), 2u);
  EXPECT_EQ(v.width(), 4u);
}

TEST(Registry, HandlesAreStableAndFindOrCreate) {
  Registry r;
  Counter& a = r.counter("test.a");
  Counter& a2 = r.counter("test.a");
  EXPECT_EQ(&a, &a2);
  a.add(3);
  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.counters.at("test.a"), 3u);
}

TEST(Registry, SnapshotDiffSubtracts) {
  Registry r;
  r.counter("d.x").add(10);
  const Snapshot before = r.snapshot();
  r.counter("d.x").add(7);
  r.counter("d.y").inc();
  const Snapshot delta = r.snapshot().diff_since(before);
  EXPECT_EQ(delta.counters.at("d.x"), 7u);
  EXPECT_EQ(delta.counters.at("d.y"), 1u);
}

#if TOMA_TELEMETRY
TEST(Macros, CounterMacroHitsGlobalRegistry) {
  const Snapshot before = registry().snapshot();
  for (int i = 0; i < 5; ++i) TOMA_CTR_INC("test.macro_counter");
  TOMA_CTR_ADD("test.macro_counter", 10);
  TOMA_CTRV_INC("test.macro_vec", 3, 1);
  const Snapshot delta = registry().snapshot().diff_since(before);
  EXPECT_EQ(delta.counters.at("test.macro_counter"), 15u);
  EXPECT_EQ(delta.counters.at("test.macro_vec[1]"), 1u);
}
#endif

}  // namespace
}  // namespace toma::obs
