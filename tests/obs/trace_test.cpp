// Trace-ring behavior: capture, per-SM attribution, wraparound accounting,
// and the runtime enable gate.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string_view>
#include <vector>

#include "obs/telemetry.hpp"
#include "support/test_support.hpp"

namespace toma::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    enable_tracing(/*capacity_per_ring=*/64);
    reset_trace();
  }
  void TearDown() override { disable_tracing(); }
};

TEST_F(TraceTest, CapturesInOrderWithPayload) {
  trace_event("alpha", TracePhase::kInstant, 7);
  trace_event("beta", TracePhase::kBegin, 42);
  trace_event("beta", TracePhase::kEnd, 42);
  const auto recs = trace_records();
  ASSERT_EQ(recs.size(), 3u);
  // Same tick, same ring: stable sort keeps push order.
  EXPECT_STREQ(recs[0].name, "alpha");
  EXPECT_EQ(recs[0].arg, 7u);
  EXPECT_EQ(recs[0].phase, TracePhase::kInstant);
  EXPECT_EQ(recs[1].phase, TracePhase::kBegin);
  EXPECT_EQ(recs[2].phase, TracePhase::kEnd);
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST_F(TraceTest, DisabledGateDropsEverything) {
  disable_tracing();
  trace_event("ignored", TracePhase::kInstant, 0);
  EXPECT_TRUE(trace_records().empty());
}

TEST_F(TraceTest, WraparoundKeepsNewestAndCountsDropped) {
  // 100 pushes into a 64-slot ring from one host thread: 36 dropped, and
  // the survivors are exactly the newest 64 (args 36..99).
  for (std::uint64_t i = 0; i < 100; ++i) {
    trace_event("spin", TracePhase::kInstant, i);
  }
  const auto recs = trace_records();
  ASSERT_EQ(recs.size(), 64u);
  EXPECT_EQ(trace_dropped(), 36u);
  std::vector<std::uint64_t> args;
  for (const auto& r : recs) args.push_back(r.arg);
  std::sort(args.begin(), args.end());
  EXPECT_EQ(args.front(), 36u);
  EXPECT_EQ(args.back(), 99u);
}

TEST_F(TraceTest, KernelEventsCarrySmIdentity) {
  gpu::Device dev(test::small_device(/*num_sms=*/2));
  dev.launch_linear(256, 64, [](gpu::ThreadCtx&) {
#if TOMA_TELEMETRY
    TOMA_TRACE("kernel.mark", 1);
#endif
  });
  const auto recs = trace_records();
  bool saw_kernel_mark = false;
  for (const auto& r : recs) {
    if (std::string_view(r.name) == "kernel.mark") {
      saw_kernel_mark = true;
      EXPECT_LT(r.sm, 2u);  // attributed to a real SM, not a host shard
    }
  }
#if TOMA_TELEMETRY
  EXPECT_TRUE(saw_kernel_mark);
  // The scheduler's block lifecycle events are async begin/end pairs.
  std::uint64_t begins = 0, ends = 0;
  for (const auto& r : recs) {
    if (std::string_view(r.name) == "block") {
      if (r.phase == TracePhase::kBegin) ++begins;
      if (r.phase == TracePhase::kEnd) ++ends;
    }
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
#else
  (void)saw_kernel_mark;
#endif
}

TEST_F(TraceTest, TicksAreMonotoneInTheMergedStream) {
  gpu::Device dev(test::small_device());
  dev.launch_linear(512, 64, [](gpu::ThreadCtx&) {});
  const auto recs = trace_records();
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LE(recs[i - 1].tick, recs[i].tick);
  }
}

TEST_F(TraceTest, ResetDiscardsRecords) {
  trace_event("gone", TracePhase::kInstant, 0);
  reset_trace();
  EXPECT_TRUE(trace_records().empty());
  EXPECT_EQ(trace_dropped(), 0u);
}

}  // namespace
}  // namespace toma::obs
