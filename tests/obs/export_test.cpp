// Snapshot export formats: text report, JSON (golden structural check with
// a minimal validating parser), and the Chrome trace-event file.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace toma::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Minimal JSON validator: checks balanced braces/brackets outside strings,
// string escaping, and that the document is a single object. Not a full
// parser, but enough to catch the classic emitter bugs (trailing commas
// are caught by the golden-substring checks below).
bool json_shape_ok(const std::string& s) {
  int depth = 0;
  bool in_str = false;
  bool esc = false;
  bool seen_root = false;
  for (const char c : s) {
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      ++depth;
      seen_root = true;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    } else if (depth == 0 && !std::isspace(static_cast<unsigned char>(c)) &&
               seen_root) {
      return false;  // trailing garbage after the root value
    }
  }
  return depth == 0 && !in_str && seen_root;
}

class TempFile {
 public:
  explicit TempFile(const char* name)
      : path_(::testing::TempDir() + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(SnapshotExport, TextReportListsEverything) {
  Registry r;
  r.counter("x.count").add(1234);
  r.histogram("x.lat_ns").record(100);
  const std::string text = r.snapshot().to_text();
  EXPECT_NE(text.find("x.count"), std::string::npos);
  EXPECT_NE(text.find("1234"), std::string::npos);
  EXPECT_NE(text.find("x.lat_ns"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(SnapshotExport, JsonGolden) {
  Registry r;
  r.counter("a.one").add(1);
  r.counter("b \"quoted\"").add(2);  // name needing escaping
  Histogram& h = r.histogram("lat");
  h.record(0);
  h.record(5);
  h.record(5);
  const std::string json = r.snapshot().to_json();

  EXPECT_TRUE(json_shape_ok(json)) << json;
  // Golden structural substrings (stable: maps iterate sorted by name).
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"a.one\":1"), std::string::npos);
  EXPECT_NE(json.find("\"b \\\"quoted\\\"\":2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":10"), std::string::npos);
  EXPECT_NE(json.find("\"min\":0"), std::string::npos);
  EXPECT_NE(json.find("\"max\":5"), std::string::npos);
  // 0 lands in bucket 0, the two 5s in bucket 3 = [4,8); trailing zero
  // buckets are elided.
  EXPECT_NE(json.find("\"buckets\":[1,0,0,2]"), std::string::npos);
}

TEST(SnapshotExport, DerivedHitRates) {
  Registry r;
  r.counter("cache.hit").add(3);
  r.counter("cache.miss").add(1);
  r.counter("lonely.hit").add(5);      // no .miss partner: no rate
  r.counter("other_hit").add(7);       // '_hit' suffix does not pair
  r.counter("cold.hit").add(0);        // hit+miss == 0: no rate
  r.counter("cold.miss").add(0);
  const Snapshot s = r.snapshot();

  const auto rates = s.derived_rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates.at("cache.hit_rate"), 0.75);

  const std::string json = s.to_json();
  EXPECT_TRUE(json_shape_ok(json)) << json;
  EXPECT_NE(json.find("\"derived\":{"), std::string::npos);
  EXPECT_NE(json.find("\"cache.hit_rate\":0.75"), std::string::npos);
  // Raw counters stay integral alongside the derived section.
  EXPECT_NE(json.find("\"cache.hit\":3"), std::string::npos);

  const std::string text = s.to_text();
  EXPECT_NE(text.find("cache.hit_rate"), std::string::npos);
  EXPECT_NE(text.find("75.00%"), std::string::npos);
}

TEST(SnapshotExport, WriteJsonRoundTripsThroughDisk) {
  Registry r;
  r.counter("disk.count").add(9);
  TempFile f("obs_export_test.json");
  ASSERT_TRUE(r.snapshot().write_json(f.path()));
  const std::string loaded = slurp(f.path());
  EXPECT_EQ(loaded, r.snapshot().to_json());
  EXPECT_TRUE(json_shape_ok(loaded));
}

TEST(SnapshotExport, EmptySnapshotIsStillValidJson) {
  Registry r;
  EXPECT_TRUE(json_shape_ok(r.snapshot().to_json()));
}

TEST(ChromeTrace, FileIsValidTraceEventJson) {
  enable_tracing(64);
  reset_trace();
  trace_event("evt", TracePhase::kInstant, 3);
  trace_event("span", TracePhase::kBegin, 1);
  trace_event("span", TracePhase::kEnd, 1);
  disable_tracing();

  TempFile f("obs_trace_test.json");
  ASSERT_TRUE(dump_chrome_trace(f.path()));
  const std::string json = slurp(f.path());
  EXPECT_TRUE(json_shape_ok(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"evt\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ChromeTrace, EmptyTraceStillDumps) {
  enable_tracing(64);
  reset_trace();
  disable_tracing();
  TempFile f("obs_trace_empty.json");
  ASSERT_TRUE(dump_chrome_trace(f.path()));
  EXPECT_TRUE(json_shape_ok(slurp(f.path())));
}

}  // namespace
}  // namespace toma::obs
