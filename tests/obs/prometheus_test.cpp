// Metrics exporter (obs/export.hpp): series-name parsing, Prometheus
// text exposition validated by a round-trip parser (the C++ twin of
// tools/lint_prometheus.py), SLO summaries, stable JSON, and snapshot
// diffing over the pool.* counter namespace.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/registry.hpp"

namespace toma::obs {
namespace {

// --- a minimal Prometheus text-format parser for round-trip checks -------

struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

bool legal_metric_name(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

/// Parse exposition text; fails the test on any malformed line,
/// duplicate series, or sample without a preceding # TYPE.
std::vector<PromSample> parse_prometheus(const std::string& text) {
  std::vector<PromSample> out;
  std::set<std::string> typed;
  std::set<std::string> series_seen;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kw, name, type;
      ls >> hash >> kw >> name >> type;
      if (kw == "TYPE") {
        EXPECT_TRUE(legal_metric_name(name)) << "line " << lineno;
        EXPECT_TRUE(typed.insert(name).second)
            << "duplicate TYPE for " << name << " at line " << lineno;
      }
      continue;
    }
    PromSample s;
    std::size_t i = line.find_first_of("{ ");
    if (i == std::string::npos) {
      ADD_FAILURE() << "unparseable line " << lineno << ": " << line;
      continue;
    }
    s.name = line.substr(0, i);
    EXPECT_TRUE(legal_metric_name(s.name))
        << "illegal name at line " << lineno << ": " << s.name;
    std::string key = s.name;
    if (line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string::npos) {
        ADD_FAILURE() << "unclosed label block at line " << lineno;
        continue;
      }
      std::string body = line.substr(i + 1, close - i - 1);
      key += "{" + body + "}";
      // label pairs: k="v" (values may contain escaped quotes)
      std::size_t pos = 0;
      bool labels_ok = true;
      while (pos < body.size()) {
        const std::size_t eq = body.find('=', pos);
        if (eq == std::string::npos || eq + 1 >= body.size() ||
            body[eq + 1] != '"') {
          ADD_FAILURE() << "malformed label pair at line " << lineno;
          labels_ok = false;
          break;
        }
        const std::string lname = body.substr(pos, eq - pos);
        std::string val;
        std::size_t j = eq + 2;
        for (; j < body.size() && body[j] != '"'; ++j) {
          if (body[j] == '\\' && j + 1 < body.size()) ++j;
          val.push_back(body[j]);
        }
        if (j >= body.size()) {
          ADD_FAILURE() << "unterminated label at line " << lineno;
          labels_ok = false;
          break;
        }
        s.labels[lname] = val;
        pos = j + 1;
        if (pos < body.size() && body[pos] == ',') ++pos;
      }
      if (!labels_ok) continue;
      i = close + 1;
    }
    const std::string rest = line.substr(i);
    char* end = nullptr;
    s.value = std::strtod(rest.c_str(), &end);
    EXPECT_NE(end, rest.c_str()) << "non-numeric value at line " << lineno;
    EXPECT_TRUE(series_seen.insert(key).second)
        << "duplicate series at line " << lineno << ": " << key;
    // A histogram family's samples hang off the TYPE'd base name.
    std::string base = s.name;
    for (const char* suf : {"_bucket", "_sum", "_count"}) {
      const std::string sufs(suf);
      if (base.size() > sufs.size() &&
          base.compare(base.size() - sufs.size(), sufs.size(), sufs) == 0 &&
          typed.count(base.substr(0, base.size() - sufs.size()))) {
        base = base.substr(0, base.size() - sufs.size());
        break;
      }
    }
    EXPECT_TRUE(typed.count(base))
        << "sample without # TYPE at line " << lineno << ": " << s.name;
    out.push_back(std::move(s));
  }
  return out;
}

HistogramSnapshot make_hist(std::initializer_list<std::uint64_t> values) {
  Histogram h;
  for (const std::uint64_t v : values) h.record(v);
  return h.snapshot();
}

// --- series-name parsing ---------------------------------------------------

TEST(SeriesName, PlainIndexedAndLabeled) {
  SeriesName plain = parse_series_name("alloc.malloc");
  EXPECT_EQ(plain.metric, "alloc.malloc");
  EXPECT_TRUE(plain.labels.empty());

  SeriesName indexed = parse_series_name("ualloc.arena_alloc[5]");
  EXPECT_EQ(indexed.metric, "ualloc.arena_alloc");
  ASSERT_EQ(indexed.labels.size(), 1u);
  EXPECT_EQ(indexed.labels[0].first, "index");
  EXPECT_EQ(indexed.labels[0].second, "5");

  SeriesName labeled =
      parse_series_name("pool.malloc_ns{pool=\"tenant-a\"}");
  EXPECT_EQ(labeled.metric, "pool.malloc_ns");
  ASSERT_EQ(labeled.labels.size(), 1u);
  EXPECT_EQ(labeled.labels[0].first, "pool");
  EXPECT_EQ(labeled.labels[0].second, "tenant-a");
}

TEST(SeriesName, UnescapesLabelValues) {
  SeriesName s =
      parse_series_name("pool.free_ns{pool=\"a\\\"b\\\\c\",op=\"free\"}");
  EXPECT_EQ(s.metric, "pool.free_ns");
  ASSERT_EQ(s.labels.size(), 2u);
  EXPECT_EQ(s.labels[0].second, "a\"b\\c");
  EXPECT_EQ(s.labels[1].first, "op");
}

TEST(SeriesName, MetricNameSanitization) {
  EXPECT_EQ(prometheus_metric_name("pool.malloc_ns", "toma"),
            "toma_pool_malloc_ns");
  EXPECT_EQ(prometheus_metric_name("weird name!", "toma"),
            "toma_weird_name_");
}

// --- Prometheus exposition -------------------------------------------------

Snapshot sample_snapshot() {
  Snapshot s;
  s.counters["alloc.malloc"] = 100;
  s.counters["alloc.free"] = 90;
  s.counters["ualloc.magazine.hit"] = 30;
  s.counters["ualloc.magazine.miss"] = 10;
  s.counters["ualloc.arena_alloc[0]"] = 7;
  s.counters["ualloc.arena_alloc[1]"] = 9;
  s.counters["pool.slo_violation{pool=\"a\"}"] = 3;
  s.histograms["pool.malloc_ns{pool=\"a\"}"] = make_hist({5, 9, 17, 33, 90});
  s.histograms["pool.free_ns{pool=\"a\"}"] = make_hist({4, 4, 4});
  return s;
}

TEST(Prometheus, RoundTripsThroughAParser) {
  const Snapshot snap = sample_snapshot();
  const std::string text = to_prometheus(snap);
  const std::vector<PromSample> samples = parse_prometheus(text);
  ASSERT_FALSE(samples.empty());

  // Counters come back with their exact values and labels.
  std::uint64_t found = 0;
  for (const PromSample& s : samples) {
    if (s.name == "toma_alloc_malloc") {
      EXPECT_EQ(s.value, 100.0);
      ++found;
    } else if (s.name == "toma_ualloc_arena_alloc" &&
               s.labels.count("index") && s.labels.at("index") == "1") {
      EXPECT_EQ(s.value, 9.0);
      ++found;
    } else if (s.name == "toma_pool_slo_violation") {
      EXPECT_EQ(s.labels.at("pool"), "a");
      EXPECT_EQ(s.value, 3.0);
      ++found;
    }
  }
  EXPECT_EQ(found, 3u);
}

TEST(Prometheus, HistogramBucketsAreCumulative) {
  Snapshot snap;
  snap.histograms["pool.malloc_ns{pool=\"t\"}"] = make_hist({1, 2, 2, 300});
  const std::string text = to_prometheus(snap);
  const std::vector<PromSample> samples = parse_prometheus(text);

  double last_bucket = 0.0, inf_bucket = -1.0, count = -1.0, sum = -1.0;
  for (const PromSample& s : samples) {
    if (s.name == "toma_pool_malloc_ns_bucket") {
      EXPECT_EQ(s.labels.at("pool"), "t");
      ASSERT_TRUE(s.labels.count("le"));
      if (s.labels.at("le") == "+Inf") {
        inf_bucket = s.value;
      } else {
        EXPECT_GE(s.value, last_bucket) << "buckets must be cumulative";
        last_bucket = s.value;
      }
    } else if (s.name == "toma_pool_malloc_ns_count") {
      count = s.value;
    } else if (s.name == "toma_pool_malloc_ns_sum") {
      sum = s.value;
    }
  }
  EXPECT_EQ(inf_bucket, 4.0);
  EXPECT_EQ(count, 4.0);
  EXPECT_EQ(sum, 305.0);
}

TEST(Prometheus, SloQuantileGauges) {
  const Snapshot snap = sample_snapshot();
  const std::string text = to_prometheus(snap);
  const std::vector<PromSample> samples = parse_prometheus(text);
  std::set<std::string> quantiles;
  for (const PromSample& s : samples) {
    if (s.name != "toma_slo_latency_ns") continue;
    EXPECT_EQ(s.labels.at("pool"), "a");
    quantiles.insert(s.labels.at("op") + "/" + s.labels.at("quantile"));
    EXPECT_GT(s.value, 0.0);
  }
  EXPECT_EQ(quantiles.size(), 6u) << "2 ops x 3 quantiles";
  EXPECT_TRUE(quantiles.count("malloc/0.99"));
  EXPECT_TRUE(quantiles.count("free/0.5"));
}

TEST(Prometheus, EmptySnapshotIsEmptyButValid) {
  const Snapshot empty;
  const std::string text = to_prometheus(empty);
  EXPECT_TRUE(parse_prometheus(text).empty());
}

// --- SLO summaries ---------------------------------------------------------

TEST(SloSummaries, ExtractsPerPoolPerOp) {
  const Snapshot snap = sample_snapshot();
  const std::vector<SloSummary> slo = slo_summaries(snap);
  ASSERT_EQ(slo.size(), 2u);
  EXPECT_EQ(slo[0].pool, "a");
  EXPECT_EQ(slo[0].op, "free");
  EXPECT_EQ(slo[0].count, 3u);
  EXPECT_EQ(slo[0].violations, 3u);
  EXPECT_EQ(slo[1].op, "malloc");
  EXPECT_EQ(slo[1].count, 5u);
  EXPECT_GT(slo[1].p99, 0.0);
  EXPECT_LE(slo[1].p50, slo[1].p95);
  EXPECT_LE(slo[1].p95, slo[1].p99);
}

// --- stable JSON -----------------------------------------------------------

TEST(StableJson, CarriesSchemaVersionAndSlo) {
  const Snapshot snap = sample_snapshot();
  const std::string json = to_stable_json(snap);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"slo\""), std::string::npos);
  EXPECT_NE(json.find("\"violations\":3"), std::string::npos);
  // Brace balance outside strings (cheap structural validity check).
  int depth = 0;
  bool in_str = false, esc = false;
  for (const char c : json) {
    if (in_str) {
      if (esc) esc = false;
      else if (c == '\\') esc = true;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
}

// --- snapshot diff over the pool.* namespace -------------------------------

TEST(SnapshotDiff, PoolCounterNamespace) {
  Registry& reg = registry();
  Counter& syncs = reg.counter("pool.difftest.sync");
  Counter& trims = reg.counter("pool.difftest.trim");
  syncs.add(5);
  const Snapshot before = reg.snapshot();
  syncs.add(3);
  trims.add(2);
  const Snapshot after = reg.snapshot();
  const Snapshot d = after.diff_since(before);
  EXPECT_EQ(d.counters.at("pool.difftest.sync"), 3u);
  EXPECT_EQ(d.counters.at("pool.difftest.trim"), 2u);
  // The diff renders like any snapshot — exporters work on intervals.
  const std::string text = to_prometheus(d);
  bool found = false;
  for (const PromSample& s : parse_prometheus(text)) {
    if (s.name == "toma_pool_difftest_sync") {
      EXPECT_EQ(s.value, 3.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace toma::obs
