// Flight recorder: session lifecycle, identity interning (pools, streams,
// blocks), bounded-buffer drop accounting, and .tomarec round-tripping.
//
// The Recorder is a process-wide singleton, so every test starts its own
// session (start() discards the previous one) and stops before asserting.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "obs/recorder.hpp"

namespace toma::obs {
namespace {

std::string tmp_path(const char* name) {
  return testing::TempDir() + name;
}

// Convenient fake "pointers" — the recorder only uses identity.
void* ptr(std::uintptr_t v) { return reinterpret_cast<void*>(v); }

RecordedPool pool_info(const std::string& name) {
  RecordedPool p;
  p.name = name;
  p.pool_bytes = 1 << 20;
  p.quota_bytes = 1 << 18;
  p.release_threshold = 4096;
  p.num_arenas = 4;
  p.flags = kRecPoolAsync;
  return p;
}

TEST(Recorder, SessionLifecycle) {
  Recorder& r = Recorder::instance();
  const std::uint64_t gen0 = r.generation();
  ASSERT_TRUE(r.start());
  EXPECT_TRUE(r.active());
  EXPECT_TRUE(recording_enabled());
  EXPECT_EQ(r.generation(), gen0 + 1);
  EXPECT_FALSE(r.start()) << "double start must fail";
  r.stop();
  EXPECT_FALSE(r.active());
  // A stopped session's events stay dumpable; a new start discards them.
  ASSERT_TRUE(r.start());
  EXPECT_EQ(r.generation(), gen0 + 2);
  EXPECT_EQ(r.event_count(), 0u);
  r.stop();
}

TEST(Recorder, InternPoolIsIdempotentPerSession) {
  Recorder& r = Recorder::instance();
  ASSERT_TRUE(r.start());
  const std::uint16_t a = r.intern_pool(pool_info("a"));
  const std::uint16_t b = r.intern_pool(pool_info("b"));
  EXPECT_NE(a, b);
  EXPECT_EQ(r.intern_pool(pool_info("a")), a);
  r.stop();
  const RecordedTrace t = r.trace();
  ASSERT_EQ(t.pools.size(), 2u);
  EXPECT_EQ(t.pools[a].name, "a");
  EXPECT_EQ(t.pools[b].name, "b");
  EXPECT_EQ(t.pools[a].quota_bytes, 1u << 18);
  EXPECT_EQ(t.pools[a].flags, kRecPoolAsync);
}

TEST(Recorder, BlockIdsAreDenseAndFreeResolvesThem) {
  Recorder& r = Recorder::instance();
  ASSERT_TRUE(r.start());
  const std::uint16_t p = r.intern_pool(pool_info("p"));
  const std::uint32_t b1 =
      r.on_alloc(p, RecOp::kMalloc, 64, 0, true, ptr(0x1000), 0);
  const std::uint32_t b2 =
      r.on_alloc(p, RecOp::kMalloc, 128, 0, true, ptr(0x2000), 0);
  EXPECT_EQ(b1, 1u);
  EXPECT_EQ(b2, 2u);
  // Failed allocation: no block id granted.
  EXPECT_EQ(r.on_alloc(p, RecOp::kMalloc, 64, 0, true, nullptr, 2), 0u);
  r.on_free(p, RecOp::kFree, ptr(0x1000), 0, true);
  // Re-allocating the same address gets a *new* id (the old one was
  // consumed by the free).
  const std::uint32_t b3 =
      r.on_alloc(p, RecOp::kMalloc, 64, 0, true, ptr(0x1000), 0);
  EXPECT_EQ(b3, 3u);
  // A pointer the recorder never saw frees as block 0 (replay skips it).
  r.on_free(p, RecOp::kFree, ptr(0xdead), 0, true);
  r.stop();

  const RecordedTrace t = r.trace();
  ASSERT_EQ(t.events.size(), 6u);
  EXPECT_EQ(t.events[0].block, 1u);
  EXPECT_EQ(t.events[1].block, 2u);
  EXPECT_EQ(t.events[2].block, 0u);
  EXPECT_EQ(t.events[2].outcome, 2u);
  EXPECT_EQ(t.events[3].block, 1u);
  EXPECT_EQ(t.events[3].op, RecOp::kFree);
  EXPECT_EQ(t.events[4].block, 3u);
  EXPECT_EQ(t.events[5].block, 0u);
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(t.events[i].seq, i) << "seq must be the event index";
  }
}

TEST(Recorder, StreamsInternInFirstAppearanceOrder) {
  Recorder& r = Recorder::instance();
  ASSERT_TRUE(r.start());
  const std::uint16_t p = r.intern_pool(pool_info("p"));
  r.on_alloc(p, RecOp::kMallocAsync, 64, 77, false, ptr(0x10), 0);
  r.on_alloc(p, RecOp::kMallocAsync, 64, 42, false, ptr(0x20), 0);
  r.on_alloc(p, RecOp::kMallocAsync, 64, 77, false, ptr(0x30), 0);
  r.on_sync(p, RecOp::kSync, 99, true, 0);  // default stream pins id 0
  r.stop();
  const RecordedTrace t = r.trace();
  ASSERT_EQ(t.events.size(), 4u);
  EXPECT_EQ(t.events[0].stream, 1u);
  EXPECT_EQ(t.events[1].stream, 2u);
  EXPECT_EQ(t.events[2].stream, 1u) << "same gpu stream, same interned id";
  EXPECT_EQ(t.events[3].stream, 0u) << "default stream is always id 0";
}

TEST(Recorder, FullBufferDropsAndCounts) {
  Recorder& r = Recorder::instance();
  ASSERT_TRUE(r.start(1));  // clamps to the 1024-event minimum
  const std::uint16_t p = r.intern_pool(pool_info("p"));
  for (int i = 0; i < 1500; ++i) {
    r.on_sync(p, RecOp::kSync, 0, true, 0);
  }
  r.stop();
  EXPECT_EQ(r.event_count(), 1024u);
  EXPECT_EQ(r.dropped(), 1500u - 1024u);
  EXPECT_EQ(r.trace().dropped, 1500u - 1024u);
}

TEST(Recorder, ReallocMovesBlockIdentity) {
  Recorder& r = Recorder::instance();
  ASSERT_TRUE(r.start());
  const std::uint16_t p = r.intern_pool(pool_info("p"));
  r.on_alloc(p, RecOp::kMalloc, 64, 0, true, ptr(0x1000), 0);
  // Successful move: old id consumed, new id granted.
  r.on_realloc(p, ptr(0x1000), ptr(0x3000), 256, 0);
  // The old pointer is gone from the map now.
  r.on_free(p, RecOp::kFree, ptr(0x1000), 0, true);
  // Failed grow: old block stays live.
  r.on_realloc(p, ptr(0x3000), nullptr, 1 << 30, 2);
  r.on_free(p, RecOp::kFree, ptr(0x3000), 0, true);
  r.stop();

  const RecordedTrace t = r.trace();
  ASSERT_EQ(t.events.size(), 5u);
  EXPECT_EQ(t.events[1].op, RecOp::kRealloc);
  EXPECT_EQ(t.events[1].block, 1u);
  EXPECT_EQ(t.events[1].aux, 2u);
  EXPECT_EQ(t.events[2].block, 0u) << "old pointer no longer resolves";
  EXPECT_EQ(t.events[3].block, 2u);
  EXPECT_EQ(t.events[3].aux, 0u) << "failed realloc grants no block";
  EXPECT_EQ(t.events[4].block, 2u) << "failed realloc keeps the block live";
}

TEST(RecordedTrace, RoundTripsThroughDisk) {
  Recorder& r = Recorder::instance();
  ASSERT_TRUE(r.start());
  const std::uint16_t a = r.intern_pool(pool_info("tenant-a"));
  const std::uint16_t b = r.intern_pool(pool_info("tenant-b"));
  r.on_alloc(a, RecOp::kMalloc, 4096, 0, true, ptr(0x1000), 0);
  r.on_alloc(b, RecOp::kMallocAsync, 64, 7, false, ptr(0x2000), 0);
  r.on_free(a, RecOp::kFree, ptr(0x1000), 0, true);
  r.on_sync(b, RecOp::kTrim, 0, true, 3);
  r.stop();

  const std::string path = tmp_path("roundtrip.tomarec");
  ASSERT_TRUE(r.dump(path));

  RecordedTrace back;
  ASSERT_TRUE(RecordedTrace::read(path, &back));
  EXPECT_EQ(back.version, kTomarecVersion);
  ASSERT_EQ(back.pools.size(), 2u);
  EXPECT_EQ(back.pools[0].name, "tenant-a");
  EXPECT_EQ(back.pools[1].name, "tenant-b");
  EXPECT_EQ(back.pools[1].num_arenas, 4u);
  EXPECT_EQ(back.dropped, 0u);
  const RecordedTrace orig = r.trace();
  ASSERT_EQ(back.events.size(), orig.events.size());
  for (std::size_t i = 0; i < back.events.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&back.events[i], &orig.events[i],
                             sizeof(RecordEvent)))
        << "event " << i << " changed across the disk round trip";
  }
  std::remove(path.c_str());
}

TEST(RecordedTrace, ReadRejectsGarbage) {
  const std::string path = tmp_path("garbage.tomarec");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a trace", f);
  std::fclose(f);
  RecordedTrace t;
  EXPECT_FALSE(RecordedTrace::read(path, &t));
  EXPECT_FALSE(RecordedTrace::read(tmp_path("missing.tomarec"), &t));
  std::remove(path.c_str());
}

TEST(RecordedTrace, ReadRejectsTruncatedBody) {
  Recorder& r = Recorder::instance();
  ASSERT_TRUE(r.start());
  const std::uint16_t p = r.intern_pool(pool_info("p"));
  for (int i = 0; i < 16; ++i) r.on_sync(p, RecOp::kSync, 0, true, 0);
  r.stop();
  const std::string path = tmp_path("truncated.tomarec");
  ASSERT_TRUE(r.dump(path));
  // Chop the last event in half: the event-count / file-size cross-check
  // must refuse.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 16), 0);
  RecordedTrace t;
  EXPECT_FALSE(RecordedTrace::read(path, &t));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace toma::obs
