#include "baseline/scatter_alloc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <vector>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"
#include "util/prng.hpp"

namespace toma::baseline {
namespace {

class ScatterAllocTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPool = 4 * 1024 * 1024;
  ScatterAllocTest() : pool_(kPool, 4096), sa_(pool_.get(), kPool) {}
  test::AlignedPool pool_;
  ScatterAllocLite sa_;
};

TEST_F(ScatterAllocTest, RoundTripSizes) {
  for (std::size_t size : {1, 8, 16, 100, 512, 1024, 4000, 4096}) {
    void* p = sa_.malloc(size);
    ASSERT_NE(p, nullptr) << "size " << size;
    std::memset(p, 0xAD, size);
    sa_.free(p);
  }
  EXPECT_TRUE(sa_.check_consistency());
  EXPECT_EQ(sa_.free_bytes(), kPool);
}

TEST_F(ScatterAllocTest, OversizedRefused) {
  EXPECT_EQ(sa_.malloc(4097), nullptr);
  EXPECT_EQ(sa_.malloc(0), nullptr);
  EXPECT_EQ(sa_.stats().failed_allocs, 1u);
}

TEST_F(ScatterAllocTest, DistinctNonOverlapping) {
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    void* p = sa_.malloc(64);
    ASSERT_NE(p, nullptr);
    std::memset(p, i & 0xff, 64);
    ptrs.push_back(p);
  }
  std::set<void*> unique(ptrs.begin(), ptrs.end());
  EXPECT_EQ(unique.size(), ptrs.size());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    auto* c = static_cast<unsigned char*>(ptrs[i]);
    for (int b = 0; b < 64; ++b) ASSERT_EQ(c[b], i & 0xff);
    sa_.free(ptrs[i]);
  }
  EXPECT_TRUE(sa_.check_consistency());
  EXPECT_EQ(sa_.free_bytes(), kPool);
}

TEST_F(ScatterAllocTest, PagesServeSingleClass) {
  // A page assigned to 64 B never hands out space to a 512 B request;
  // exhaust a small pool with one class, then the other must fail.
  test::AlignedPool small_pool(8192, 4096);  // two pages
  ScatterAllocLite sa(small_pool.get(), 8192);
  void* a = sa.malloc(2048);  // page 1 -> class 2048 (capacity 1)
  void* b = sa.malloc(2048);  // page 2 -> class 2048
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(sa.malloc(64), nullptr);  // no free page for class 64
  sa.free(a);
  EXPECT_NE(sa.malloc(64), nullptr);  // page recycled for the new class
}

TEST_F(ScatterAllocTest, ChurnKeepsConsistency) {
  util::Xorshift rng(21);
  std::vector<void*> live;
  for (int iter = 0; iter < 5000; ++iter) {
    if (!live.empty() && (rng.next() & 1)) {
      const std::size_t k = rng.next_below(live.size());
      sa_.free(live[k]);
      live[k] = live.back();
      live.pop_back();
    } else {
      const std::size_t size = std::size_t{8} << rng.next_below(10);
      if (void* p = sa_.malloc(size)) live.push_back(p);
    }
  }
  EXPECT_TRUE(sa_.check_consistency());
  for (void* p : live) sa_.free(p);
  EXPECT_TRUE(sa_.check_consistency());
  EXPECT_EQ(sa_.free_bytes(), kPool);
}

TEST_F(ScatterAllocTest, ConcurrentGpuThreads) {
  gpu::Device dev(test::small_device());
  std::atomic<std::uint64_t> failed{0};
  dev.launch_linear(4096, 128, [&](gpu::ThreadCtx& t) {
    auto& rng = t.rng();
    const std::size_t size = std::size_t{8} << rng.next_below(8);
    void* p = sa_.malloc(size);
    if (p == nullptr) {
      failed.fetch_add(1);
      return;
    }
    std::memset(p, 0x31, size);
    t.yield();
    sa_.free(p);
  });
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_TRUE(sa_.check_consistency());
  EXPECT_EQ(sa_.free_bytes(), kPool);
}

TEST_F(ScatterAllocTest, ScatterSpreadsPages) {
  // Different threads' first allocations should not all land in page 0.
  std::set<std::size_t> pages;
  test::run_os_threads(8, [&](unsigned) {
    void* p = sa_.malloc(64);
    ASSERT_NE(p, nullptr);
    static std::mutex mu;
    std::lock_guard<std::mutex> g(mu);
    pages.insert((static_cast<char*>(p) -
                  static_cast<char*>(pool_.get())) /
                 ScatterAllocLite::kPageSize);
    // Leak intentionally: we only probe placement.
  });
  EXPECT_GT(pages.size(), 1u);
}

}  // namespace
}  // namespace toma::baseline
