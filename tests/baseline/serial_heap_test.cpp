#include "baseline/serial_heap.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"
#include "util/prng.hpp"

namespace toma::baseline {
namespace {

class SerialHeapTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPool = 4 * 1024 * 1024;
  SerialHeapTest() : pool_(kPool, 4096), heap_(pool_.get(), kPool) {}
  test::AlignedPool pool_;
  SerialHeapAllocator heap_;
};

TEST_F(SerialHeapTest, SimpleRoundTrip) {
  void* p = heap_.malloc(100);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 100);
  heap_.free(p);
  EXPECT_TRUE(heap_.check_consistency());
}

TEST_F(SerialHeapTest, ZeroAndNull) {
  EXPECT_EQ(heap_.malloc(0), nullptr);
  heap_.free(nullptr);
  EXPECT_TRUE(heap_.check_consistency());
}

TEST_F(SerialHeapTest, CoalescingRestoresPool) {
  const std::size_t before = heap_.largest_free_block();
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = heap_.malloc(1000);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  // Free in interleaved order to exercise both-neighbour coalescing.
  for (std::size_t i = 0; i < ptrs.size(); i += 2) heap_.free(ptrs[i]);
  for (std::size_t i = 1; i < ptrs.size(); i += 2) heap_.free(ptrs[i]);
  EXPECT_EQ(heap_.largest_free_block(), before);
  EXPECT_TRUE(heap_.check_consistency());
}

TEST_F(SerialHeapTest, DistinctNonOverlapping) {
  std::vector<void*> ptrs;
  util::Xorshift rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::size_t size = 16 + rng.next_below(512);
    void* p = heap_.malloc(size);
    ASSERT_NE(p, nullptr);
    std::memset(p, i & 0xff, size);
    ptrs.push_back(p);
  }
  std::set<void*> unique(ptrs.begin(), ptrs.end());
  EXPECT_EQ(unique.size(), ptrs.size());
  for (void* p : ptrs) heap_.free(p);
  EXPECT_TRUE(heap_.check_consistency());
}

TEST_F(SerialHeapTest, ExhaustionFailsCleanly) {
  std::vector<void*> ptrs;
  for (;;) {
    void* p = heap_.malloc(64 * 1024);
    if (p == nullptr) break;
    ptrs.push_back(p);
  }
  EXPECT_GT(heap_.stats().failed_allocs, 0u);
  for (void* p : ptrs) heap_.free(p);
  EXPECT_TRUE(heap_.check_consistency());
}

TEST_F(SerialHeapTest, ChurnKeepsIntegrity) {
  util::Xorshift rng(11);
  std::vector<std::pair<void*, std::size_t>> live;
  for (int iter = 0; iter < 5000; ++iter) {
    if (!live.empty() && (rng.next() & 1)) {
      const std::size_t k = rng.next_below(live.size());
      heap_.free(live[k].first);
      live[k] = live.back();
      live.pop_back();
    } else {
      const std::size_t size = 8 + rng.next_below(4096);
      if (void* p = heap_.malloc(size)) live.emplace_back(p, size);
    }
  }
  EXPECT_TRUE(heap_.check_consistency());
  for (auto& [p, s] : live) heap_.free(p);
  EXPECT_TRUE(heap_.check_consistency());
}

TEST_F(SerialHeapTest, ConcurrentGpuThreads) {
  gpu::Device dev(test::small_device());
  std::atomic<std::uint64_t> ok{0};
  dev.launch_linear(1024, 64, [&](gpu::ThreadCtx& t) {
    void* p = heap_.malloc(64);
    if (p != nullptr) {
      std::memset(p, 1, 64);
      t.yield();
      heap_.free(p);
      ok.fetch_add(1);
    }
  });
  EXPECT_EQ(ok.load(), 1024u);
  EXPECT_TRUE(heap_.check_consistency());
}

}  // namespace
}  // namespace toma::baseline
