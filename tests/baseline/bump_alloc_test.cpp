#include "baseline/bump_alloc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::baseline {
namespace {

TEST(BumpAllocator, SequentialAllocations) {
  test::AlignedPool pool(64 * 1024, 4096);
  BumpAllocator bump(pool.get(), pool.size());
  void* a = bump.malloc(100);
  void* b = bump.malloc(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_GE(static_cast<char*>(b) - static_cast<char*>(a), 100);
  EXPECT_EQ(bump.used_bytes(), 224u);  // 2 x align_up(100,16)
}

TEST(BumpAllocator, FreeReclaimsNothingUntilAllFreed) {
  test::AlignedPool pool(64 * 1024, 4096);
  BumpAllocator bump(pool.get(), pool.size());
  void* a = bump.malloc(1024);
  void* b = bump.malloc(1024);
  bump.free(a);
  EXPECT_EQ(bump.used_bytes(), 2048u);  // a's space is NOT reusable
  bump.free(b);
  EXPECT_EQ(bump.used_bytes(), 0u);  // whole-pool reset on last free
}

TEST(BumpAllocator, ExhaustionFails) {
  test::AlignedPool pool(4096, 4096);
  BumpAllocator bump(pool.get(), pool.size());
  EXPECT_NE(bump.malloc(4096), nullptr);
  EXPECT_EQ(bump.malloc(16), nullptr);
  EXPECT_EQ(bump.failed_allocs(), 1u);
}

TEST(BumpAllocator, FragmentationUnderChurn) {
  // The pathology the paper cites: with one long-lived allocation, churn
  // leaks the pool even though live bytes stay tiny.
  test::AlignedPool pool(1024 * 1024, 4096);
  BumpAllocator bump(pool.get(), pool.size());
  void* pin = bump.malloc(16);  // never freed during the churn
  ASSERT_NE(pin, nullptr);
  std::size_t failures = 0;
  for (int i = 0; i < 100000; ++i) {
    void* p = bump.malloc(64);
    if (p == nullptr) {
      ++failures;
      break;
    }
    bump.free(p);
  }
  EXPECT_GT(failures, 0u) << "bump allocator should have leaked the pool";
  bump.free(pin);
  EXPECT_EQ(bump.used_bytes(), 0u);
}

TEST(BumpAllocator, ConcurrentUniqueRanges) {
  test::AlignedPool pool(1024 * 1024, 4096);
  BumpAllocator bump(pool.get(), pool.size());
  gpu::Device dev(test::small_device());
  std::vector<std::atomic<void*>> slots(2048);
  dev.launch_linear(2048, 128, [&](gpu::ThreadCtx& t) {
    slots[t.global_rank()].store(bump.malloc(64));
  });
  // All distinct, 64+ bytes apart.
  std::vector<char*> ptrs;
  for (auto& s : slots) {
    auto* p = static_cast<char*>(s.load());
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  std::sort(ptrs.begin(), ptrs.end());
  for (std::size_t i = 1; i < ptrs.size(); ++i) {
    EXPECT_GE(ptrs[i] - ptrs[i - 1], 64);
  }
}

}  // namespace
}  // namespace toma::baseline
