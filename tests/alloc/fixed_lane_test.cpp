// FixedLane: the constant-time fixed-size fast lane for the hot small
// classes (8..64 B). Covers the lane's O(1) hit path, slab-grained refill,
// spill hysteresis, the claimed-while-cached invariant (trim/flush drain,
// truthful exhaustion), cross-SM free-to-foreign-lane handoff, and the
// full front-end toggle matrix. The stream-ordered interplay lives in
// stream_async_test.cpp (lane routing of sub-64 B async frees); the
// OS-thread/TSan leg lives in integration/host_stress_test.cpp.
#include "alloc/fixed_lane.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include "alloc/alloc.hpp"
#include "gpusim/gpusim.hpp"
#include "gpusim/this_thread.hpp"
#include "support/test_support.hpp"
#include "util/prng.hpp"

namespace toma::alloc {
namespace {

constexpr std::size_t kMiB = 1024 * 1024;

TEST(FixedLane, GeometryConstants) {
  // 8, 16, 32, 64 B are lane-served; 128 B and up are not.
  EXPECT_EQ(kFixedLaneClasses, 4u);
  EXPECT_TRUE(FixedLane::eligible_size(8));
  EXPECT_TRUE(FixedLane::eligible_size(64));
  EXPECT_FALSE(FixedLane::eligible_size(128));
  for (std::uint32_t c = 0; c < kFixedLaneClasses; ++c) {
    // A refill slab must fit the capacity bound with room for concurrent
    // frees (the hysteresis drains to low water, which sits above the
    // refill size so a fresh slab is never immediately spilled back).
    EXPECT_LE(fixed_lane_refill(c), fixed_lane_low_water(c));
    EXPECT_LT(fixed_lane_low_water(c), fixed_lane_capacity(c));
    EXPECT_LE(fixed_lane_refill(c), kFixedLaneMaxRefill);
    // The proactive top-up trigger sits below the refill target, so a
    // top-up always has room to restock before the next spill crossing.
    EXPECT_GT(fixed_lane_top_trigger(c), 0u);
    EXPECT_LT(fixed_lane_top_trigger(c), fixed_lane_low_water(c));
    // The refill loop can reach the low-water target within its batch
    // ceiling (otherwise every gated refill would stop short).
    EXPECT_GE(kFixedLaneRefillBatches * fixed_lane_refill(c),
              fixed_lane_low_water(c) + 1);
  }
}

TEST(FixedLane, MissRefillsSlabThenHitsLifo) {
  GpuAllocator ga(HeapConfig{.pool_bytes = 8 * kMiB,
                             .num_arenas = 2,
                             .heapsan = false,
                             .fixed_lane = true});
  ASSERT_TRUE(ga.fixed_lane_enabled());
  const std::uint32_t cls = size_class_of(16);
  const std::uint32_t want = fixed_lane_refill(cls);
  // A solo (host) miss refills until the lane reaches the low-water
  // target: after b batches the lane holds b*want - 1 (one block went to
  // the caller), so the loop runs ceil((target + 1) / want) batches.
  const std::uint32_t target = fixed_lane_low_water(cls);
  const std::uint32_t batches = (target + 1 + want - 1) / want;

  // First allocation: a miss that buys whole slabs, one bulk-semaphore
  // transaction each.
  void* p1 = ga.malloc(16);
  ASSERT_NE(p1, nullptr);
  auto st = ga.stats();
  EXPECT_EQ(st.lane.hits, 0u);
  EXPECT_EQ(st.lane.misses, 1u);
  EXPECT_EQ(st.lane.refills, batches);
  EXPECT_EQ(st.lane.refill_blocks, batches * want);
  EXPECT_EQ(st.lane.cached, batches * want - 1);
  // The batches left UAlloc through the ordinary accounting boundary.
  EXPECT_EQ(st.ualloc.allocs, batches * want);

  // Free caches on the lane; the next malloc pops it back, LIFO. (The
  // lane sits well above the top-up trigger, so the pop stays a pure hit.)
  ga.free(p1);
  st = ga.stats();
  EXPECT_EQ(st.lane.cached, batches * want);
  void* p2 = ga.malloc(16);
  EXPECT_EQ(p2, p1);
  st = ga.stats();
  EXPECT_EQ(st.lane.hits, 1u);
  EXPECT_EQ(st.lane.misses, 1u);  // still just the initial refill

  ga.free(p2);
  EXPECT_TRUE(ga.check_consistency());
}

TEST(FixedLane, LargeClassesBypassTheLane) {
  GpuAllocator ga(HeapConfig{.pool_bytes = 8 * kMiB,
                             .num_arenas = 2,
                             .heapsan = false,
                             .fixed_lane = true});
  for (std::size_t size : {128, 256, 1024, 4096}) {
    void* p = ga.malloc(size);
    ASSERT_NE(p, nullptr);
    ga.free(p);
  }
  const auto st = ga.stats();
  EXPECT_EQ(st.lane.hits + st.lane.misses, 0u);
  EXPECT_EQ(st.lane.cached, 0u);
  EXPECT_TRUE(ga.check_consistency());
}

TEST(FixedLane, SpillHysteresisBoundsLaneOccupancy) {
  GpuAllocator ga(HeapConfig{.pool_bytes = 8 * kMiB,
                             .num_arenas = 2,
                             .heapsan = false,
                             .fixed_lane = true});
  const std::uint32_t cls = size_class_of(64);
  const std::uint32_t cap = fixed_lane_capacity(cls);

  // Hold three capacities' worth of live 64 B blocks, then free them all
  // from this one thread: the pushes must repeatedly cross the high water
  // and drain back to the low-water mark — never past the bound.
  std::vector<void*> held;
  std::set<void*> seen;
  for (std::uint32_t i = 0; i < 3 * cap; ++i) {
    void* p = ga.malloc(64);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate address";
    held.push_back(p);
  }
  for (void* p : held) ga.free(p);

  const auto st = ga.stats();
  EXPECT_GE(st.lane.spills, 2u);
  EXPECT_GT(st.lane.spill_blocks, 0u);
  EXPECT_LE(st.lane.cached, static_cast<std::uint64_t>(cap));
  EXPECT_TRUE(ga.check_consistency());  // re-checks every lane's bound

  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
}

TEST(FixedLane, TrimDrainsLanes) {
  GpuAllocator ga(HeapConfig{.pool_bytes = 8 * kMiB,
                             .num_arenas = 2,
                             .heapsan = false,
                             .fixed_lane = true});
  std::vector<void*> held;
  for (int i = 0; i < 100; ++i) {
    void* p = ga.malloc(8);
    ASSERT_NE(p, nullptr);
    held.push_back(p);
  }
  for (void* p : held) ga.free(p);
  ASSERT_GT(ga.stats().lane.cached, 0u);

  // Lane-resident blocks pin their bins (claimed-while-cached); trim must
  // drain the lanes first or the pool could never coalesce.
  ga.trim();
  const auto st = ga.stats();
  EXPECT_EQ(st.lane.cached, 0u);
  EXPECT_GT(st.lane.flushes, 0u);
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
  EXPECT_TRUE(ga.check_consistency());
}

TEST(FixedLane, RuntimeToggleFlushesAndReroutes) {
  GpuAllocator ga(HeapConfig{.pool_bytes = 8 * kMiB,
                             .num_arenas = 2,
                             .heapsan = false,
                             .fixed_lane = true});
  void* p = ga.malloc(32);
  ASSERT_NE(p, nullptr);
  ga.free(p);
  ASSERT_GT(ga.stats().lane.cached, 0u);

  // Disabling flushes every cached block back into the bin accounting.
  ga.set_fixed_lane(false);
  EXPECT_FALSE(ga.fixed_lane_enabled());
  auto st = ga.stats();
  EXPECT_EQ(st.lane.cached, 0u);
  EXPECT_GT(st.lane.flushes, 0u);

  // While off, small allocations take the ordinary path: no lane traffic.
  const std::uint64_t hits = st.lane.hits;
  const std::uint64_t misses = st.lane.misses;
  void* q = ga.malloc(32);
  ASSERT_NE(q, nullptr);
  ga.free(q);
  st = ga.stats();
  EXPECT_EQ(st.lane.hits, hits);
  EXPECT_EQ(st.lane.misses, misses);
  EXPECT_EQ(st.lane.cached, 0u);

  // Re-enabling restores the fast path.
  ga.set_fixed_lane(true);
  void* r = ga.malloc(32);
  ASSERT_NE(r, nullptr);
  ga.free(r);
  st = ga.stats();
  EXPECT_GT(st.lane.hits + st.lane.misses, hits + misses);
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
}

TEST(FixedLane, ToggleMatrixChurn) {
  // The lane must compose with every front-end configuration: magazines,
  // buddy quicklists, and HeapSan each ON/OFF, with the lane ON and OFF.
  // (stream_async is a compile-time pool toggle; its lane interplay is
  // covered in stream_async_test.cpp and the CI feature-OFF legs.)
  for (int mask = 0; mask < 16; ++mask) {
    const bool lane_on = (mask & 1) != 0;
    const bool mags = (mask & 2) != 0;
    const bool quick = (mask & 4) != 0;
    const bool hsan = (mask & 8) != 0;
    SCOPED_TRACE(::testing::Message()
                 << "lane=" << lane_on << " magazines=" << mags
                 << " quicklist=" << quick << " heapsan=" << hsan);
    GpuAllocator ga(HeapConfig{.pool_bytes = 8 * kMiB,
                               .num_arenas = 2,
                               .heapsan = hsan,
                               .magazines = mags,
                               .quicklist = quick,
                               .fixed_lane = lane_on});
    test::run_os_threads(4, [&](unsigned tid) {
      util::Xorshift rng(tid * 977 + mask);
      void* held[4] = {};
      std::size_t sizes[4] = {};
      for (int i = 0; i < 800; ++i) {
        const int slot = static_cast<int>(rng.next_below(4));
        if (held[slot] != nullptr) {
          auto* c = static_cast<unsigned char*>(held[slot]);
          ASSERT_EQ(c[0], 0x42);
          ASSERT_EQ(c[sizes[slot] - 1], 0x24);
          ga.free(held[slot]);
          held[slot] = nullptr;
        }
        // Mostly lane-served sizes, with excursions above the threshold.
        const std::size_t size = std::size_t{8} << rng.next_below(6);
        void* p = ga.malloc(size);
        if (p != nullptr) {
          auto* c = static_cast<unsigned char*>(p);
          c[0] = 0x42;
          c[size - 1] = 0x24;
          held[slot] = p;
          sizes[slot] = size;
        }
      }
      for (void* p : held) {
        if (p != nullptr) ga.free(p);
      }
    });
    const auto st = ga.stats();
    if (!lane_on) {
      EXPECT_EQ(st.lane.hits + st.lane.misses, 0u);
      EXPECT_EQ(st.lane.cached, 0u);
    } else {
      EXPECT_GT(st.lane.misses, 0u);  // the lane actually engaged
    }
    EXPECT_TRUE(ga.check_consistency());
    ga.trim();
    EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
    EXPECT_EQ(ga.stats().lane.cached, 0u);
  }
}

TEST(FixedLane, CrossSmFreeLandsOnFreeingSmLane) {
  // Producer threads on SM 0 allocate; consumers on SM 1 free. The frees
  // must cache on the *freeing* SM's lane (like magazine pushes), and the
  // next SM-1 allocations must recycle exactly those blocks.
  gpu::Device dev(test::small_device(2, 512, 1));
  alloc::GpuAllocator ga(HeapConfig{.pool_bytes = 16 * kMiB,
                                    .num_arenas = 2,
                                    .heapsan = false,
                             .fixed_lane = true});
  constexpr std::uint32_t kN = 64;
  constexpr std::size_t kSize = 32;
  const std::uint32_t cls = size_class_of(kSize);
  ASSERT_LT(kN, fixed_lane_low_water(cls));  // no spill interferes

  std::vector<std::atomic<void*>> slots(kN);
  std::atomic<std::uint32_t> claimed{0};

  // Phase A: the first kN threads on SM 0 allocate.
  dev.launch_linear(1024, 512, [&](gpu::ThreadCtx&) {
    if (gpu::this_thread::sm_id_or_hash(2) != 0) return;
    const std::uint32_t i = claimed.fetch_add(1, std::memory_order_relaxed);
    if (i >= kN) return;
    void* p = ga.malloc(kSize);
    if (p != nullptr) std::memset(p, 0x5A, kSize);
    slots[i].store(p, std::memory_order_release);
  });
  ASSERT_GE(claimed.load(), kN) << "SM 0 hosted too few threads";
  std::set<void*> produced;
  for (auto& s : slots) {
    ASSERT_NE(s.load(), nullptr);
    produced.insert(s.load());
  }
  const std::uint32_t sm0_before = ga.fixed_lane().lane_count(0, cls);
  ASSERT_EQ(ga.fixed_lane().lane_count(1, cls), 0u);

  // Phase B: the first kN threads on SM 1 free them.
  claimed.store(0);
  dev.launch_linear(1024, 512, [&](gpu::ThreadCtx&) {
    if (gpu::this_thread::sm_id_or_hash(2) != 1) return;
    const std::uint32_t i = claimed.fetch_add(1, std::memory_order_relaxed);
    if (i >= kN) return;
    void* p = slots[i].exchange(nullptr);
    auto* c = static_cast<unsigned char*>(p);
    if (c[0] != 0x5A || c[kSize - 1] != 0x5A) std::abort();
    ga.free(p);
  });
  ASSERT_GE(claimed.load(), kN) << "SM 1 hosted too few threads";
  EXPECT_EQ(ga.fixed_lane().lane_count(1, cls), kN);
  EXPECT_EQ(ga.fixed_lane().lane_count(0, cls), sm0_before);

  // Phase C: SM 1 reallocates — every block must come from its own lane.
  const std::uint64_t hits_before = ga.stats().lane.hits;
  claimed.store(0);
  dev.launch_linear(1024, 512, [&](gpu::ThreadCtx&) {
    if (gpu::this_thread::sm_id_or_hash(2) != 1) return;
    const std::uint32_t i = claimed.fetch_add(1, std::memory_order_relaxed);
    if (i >= kN) return;
    slots[i].store(ga.malloc(kSize), std::memory_order_release);
  });
  // The drain dips below the top-up trigger, so the first popper restocks
  // the lane proactively — it ends re-stocked, not empty. The recycling
  // proof below is the real invariant: every *produced* block popped out
  // before the top-up's fresh blocks landed on top.
  EXPECT_GE(ga.stats().lane.topups, 1u);
  EXPECT_LE(ga.fixed_lane().lane_count(1, cls), fixed_lane_capacity(cls));
  EXPECT_GE(ga.stats().lane.hits - hits_before, kN);
  std::set<void*> recycled;
  for (auto& s : slots) {
    ASSERT_NE(s.load(), nullptr);
    recycled.insert(s.load());
  }
  EXPECT_EQ(recycled, produced) << "SM 1 did not recycle the freed blocks";

  for (auto& s : slots) ga.free(s.load());
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
}

TEST(FixedLane, ExhaustionYieldsSameCapacityAcrossRounds) {
  // The lane must not shrink the pool's effective capacity: a second
  // allocate-to-exhaustion round through lane-cached blocks must reach
  // exactly the same count as the first round on a fresh pool.
  GpuAllocator ga(HeapConfig{.pool_bytes = 512 * 1024,
                             .num_arenas = 2,
                             .heapsan = false,
                             .fixed_lane = true});
  const auto fill = [&](std::vector<void*>& out) {
    while (void* p = ga.malloc(64)) out.push_back(p);
  };
  std::vector<void*> round1;
  fill(round1);
  ASSERT_GT(round1.size(), 1000u);
  for (void* p : round1) ga.free(p);

  std::vector<void*> round2;
  fill(round2);
  EXPECT_EQ(round2.size(), round1.size())
      << "lane caching changed the pool's effective capacity";
  for (void* p : round2) ga.free(p);

  ga.trim();
  EXPECT_EQ(ga.stats().lane.cached, 0u);
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
  EXPECT_TRUE(ga.check_consistency());
  const auto st = ga.stats();
  EXPECT_EQ(st.mallocs, st.frees + st.failed_mallocs);
}

TEST(FixedLane, OomFlushRetryMakesForeignLaneBlocksReachable) {
  // Exhaustion-truthfulness proof: blocks cached on SM 1's lane are, to
  // the bins, still allocated — SM 0's refill and single-block paths both
  // find nothing. malloc's zero-block lane flush + retry must republish
  // them, so the pool never reports OOM while lanes hold memory.
  gpu::Device dev(test::small_device(2, 512, 1));
  alloc::GpuAllocator ga(HeapConfig{.pool_bytes = 512 * 1024,
                                    .num_arenas = 2,
                                    .heapsan = false,
                             .fixed_lane = true});
  std::vector<void*> held;
  held.reserve(16 * 1024);
  std::atomic<std::uint32_t> claimed{0};

  // Phase 1: one SM-0 thread exhausts the pool at 64 B.
  dev.launch_linear(1024, 512, [&](gpu::ThreadCtx&) {
    if (gpu::this_thread::sm_id_or_hash(2) != 0) return;
    if (claimed.fetch_add(1, std::memory_order_relaxed) != 0) return;
    while (void* p = ga.malloc(64)) held.push_back(p);
  });
  ASSERT_GT(held.size(), 1000u);
  ASSERT_EQ(ga.stats().lane.cached, 0u);  // exhaustion drained every lane

  // Phase 2: one SM-1 thread frees a handful — they cache on SM 1's lane.
  constexpr std::uint32_t kFreed = 32;
  const std::uint32_t cls = size_class_of(64);
  ASSERT_LT(kFreed, fixed_lane_low_water(cls));
  claimed.store(0);
  dev.launch_linear(1024, 512, [&](gpu::ThreadCtx&) {
    if (gpu::this_thread::sm_id_or_hash(2) != 1) return;
    if (claimed.fetch_add(1, std::memory_order_relaxed) != 0) return;
    for (std::uint32_t i = 0; i < kFreed; ++i) {
      ga.free(held.back());
      held.pop_back();
    }
  });
  ASSERT_EQ(ga.fixed_lane().lane_count(1, cls), kFreed);

  // Phase 3: one SM-0 thread allocates kFreed blocks. Its own lane is
  // empty and the bins are full, so only the flush retry can serve these.
  std::atomic<std::uint32_t> got{0};
  claimed.store(0);
  dev.launch_linear(1024, 512, [&](gpu::ThreadCtx&) {
    if (gpu::this_thread::sm_id_or_hash(2) != 0) return;
    if (claimed.fetch_add(1, std::memory_order_relaxed) != 0) return;
    for (std::uint32_t i = 0; i < kFreed; ++i) {
      if (void* p = ga.malloc(64)) {
        held.push_back(p);
        got.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(got.load(), kFreed)
      << "OOM reported while lane-cached blocks existed";
  EXPECT_GE(ga.stats().lane.flushes, static_cast<std::uint64_t>(kFreed));

  for (void* p : held) ga.free(p);
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
  const auto st = ga.stats();
  EXPECT_EQ(st.mallocs, st.frees + st.failed_mallocs);
}

}  // namespace
}  // namespace toma::alloc
