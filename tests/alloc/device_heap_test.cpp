#include "alloc/device_heap.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "alloc/pool.hpp"
#include "gpusim/gpusim.hpp"
#include "obs/telemetry.hpp"
#include "support/test_support.hpp"

namespace toma::alloc {
namespace {

TEST(DeviceHeap, InstallAndUninstall) {
  GpuAllocator heap(4 * 1024 * 1024, 2);
  GpuAllocator* prev = set_device_heap(&heap);
  EXPECT_EQ(device_heap(), &heap);
  void* p = device_malloc(64);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(heap.stats().mallocs, 1u);
  device_free(p);
  EXPECT_EQ(heap.stats().frees, 1u);
  set_device_heap(prev);
}

TEST(DeviceHeap, ScopeRestoresPrevious) {
  GpuAllocator outer(4 * 1024 * 1024, 2);
  GpuAllocator inner(4 * 1024 * 1024, 2);
  GpuAllocator* prev = set_device_heap(&outer);
  {
    DeviceHeapScope scope(inner);
    EXPECT_EQ(device_heap(), &inner);
  }
  EXPECT_EQ(device_heap(), &outer);
  set_device_heap(prev);
}

TEST(DeviceHeap, FreeNullWithoutHeapIsSafe) {
  GpuAllocator* prev = set_device_heap(nullptr);
  device_free(nullptr);
  set_device_heap(prev);
}

TEST(DeviceHeap, KernelUsesGlobalInterface) {
  // The paper's usage shape: kernels call the standard interface without
  // threading an allocator handle through every function.
  GpuAllocator heap(16 * 1024 * 1024, 2);
  DeviceHeapScope scope(heap);
  gpu::Device dev(test::small_device());
  std::atomic<std::uint64_t> ok{0};
  dev.launch_linear(2048, 128, [&](gpu::ThreadCtx& t) {
    auto* p = static_cast<std::uint8_t*>(device_malloc(48));
    if (p == nullptr) return;
    std::memset(p, 0x44, 48);
    t.yield();
    if (p[47] == 0x44) ok.fetch_add(1);
    device_free(p);
  });
  EXPECT_EQ(ok.load(), 2048u);
  EXPECT_TRUE(heap.check_consistency());
}

TEST(DeviceHeap, EnsureMismatchIsReportedNotSilent) {
  // Regression: ensure_device_heap used to ignore a conflicting
  // pool_bytes request silently. It still returns the existing heap, but
  // the mismatch must now be observable.
  GpuAllocator heap(4 * 1024 * 1024, 2);
  GpuAllocator* prev = set_device_heap(&heap);
#if TOMA_TELEMETRY
  const std::uint64_t before =
      obs::registry().counter("device_heap.ensure_mismatch").value();
#endif
  GpuAllocator& got = ensure_device_heap(8 * 1024 * 1024);
  EXPECT_EQ(&got, &heap);  // the request did NOT resize/replace the heap
#if TOMA_TELEMETRY
  EXPECT_EQ(obs::registry().counter("device_heap.ensure_mismatch").value(),
            before + 1);
#endif
  // "Don't care" (0) and matching sizes are not mismatches.
  ensure_device_heap();
  ensure_device_heap(4 * 1024 * 1024);
#if TOMA_TELEMETRY
  EXPECT_EQ(obs::registry().counter("device_heap.ensure_mismatch").value(),
            before + 1);
#endif
  set_device_heap(prev);
}

TEST(DeviceHeap, LazyCreationRoutesThroughDefaultPool) {
  // The implicit heap is the PoolManager's default pool, so the legacy
  // globals and the toma_* C API share one heap.
  GpuAllocator* prev = set_device_heap(nullptr);
  GpuAllocator& heap = ensure_device_heap();
  EXPECT_TRUE(PoolManager::instance().has_default());
  EXPECT_EQ(&heap, &PoolManager::instance().default_pool().allocator());
  EXPECT_EQ(device_heap(), &heap);
  set_device_heap(prev);
}

}  // namespace
}  // namespace toma::alloc
