#include "alloc/ualloc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include "alloc/config.hpp"
#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"
#include "util/bitops.hpp"

namespace toma::alloc {
namespace {

class UAllocTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPool = 16 * 1024 * 1024;
  UAllocTest()
      : pool_(kPool), buddy_(pool_.get(), kPool), ua_(buddy_, /*arenas=*/2) {}
  test::AlignedPool pool_;
  TBuddy buddy_;
  UAlloc ua_;
};

TEST_F(UAllocTest, GeometryConstants) {
  EXPECT_EQ(bin_capacity(size_class_of(8)), 512u);
  EXPECT_EQ(bin_capacity(size_class_of(16)), 256u);
  EXPECT_EQ(bin_capacity(size_class_of(128)), 32u);
  EXPECT_EQ(bin_capacity(size_class_of(256)), 15u);  // no tail: 3968/256
  EXPECT_EQ(bin_capacity(size_class_of(512)), 7u);
  EXPECT_EQ(bin_capacity(size_class_of(1024)), 3u);
}

TEST_F(UAllocTest, NeverPageAligned) {
  for (std::size_t size : {8, 16, 32, 64, 128, 256, 512, 1024}) {
    void* p = ua_.allocate(size);
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(util::is_aligned(p, kPageSize))
        << "UAlloc returned page-aligned block for size " << size;
    ua_.free(p);
  }
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, RoundTripAllSizes) {
  for (std::size_t size : {8, 16, 32, 64, 128, 256, 512, 1024}) {
    void* p = ua_.allocate(size);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xCD, size);
    ua_.free(p);
  }
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, DistinctAddressesWithinBin) {
  std::set<void*> seen;
  std::vector<void*> ptrs;
  for (int i = 0; i < 600; ++i) {  // more than one 8B bin (512 cap)
    void* p = ua_.allocate(8);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate address";
    ptrs.push_back(p);
  }
  for (void* p : ptrs) ua_.free(p);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, BlocksDoNotOverlap) {
  // Write a distinct pattern into every allocation, then verify all.
  constexpr int kN = 256;
  std::vector<void*> ptrs(kN);
  std::vector<std::size_t> sizes(kN);
  util::Xorshift rng(5);
  for (int i = 0; i < kN; ++i) {
    sizes[i] = std::size_t{8} << rng.next_below(8);
    ptrs[i] = ua_.allocate(sizes[i]);
    ASSERT_NE(ptrs[i], nullptr);
    std::memset(ptrs[i], i & 0xff, sizes[i]);
  }
  for (int i = 0; i < kN; ++i) {
    auto* c = static_cast<unsigned char*>(ptrs[i]);
    for (std::size_t k = 0; k < sizes[i]; ++k) {
      ASSERT_EQ(c[k], i & 0xff) << "allocation " << i << " corrupted";
    }
    ua_.free(ptrs[i]);
  }
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, TailBlocksUsedForSmallSizes) {
  // Fill a whole 8 B bin: 512 blocks only fit because the 128 B tail is
  // appended (3968/8 = 496 without it). Verify the tail blocks land in
  // header bins 0/1 of the chunk and round-trip correctly.
  std::vector<void*> ptrs;
  int tail_blocks = 0;
  for (int i = 0; i < 512; ++i) {
    void* p = ua_.allocate(8);
    ASSERT_NE(p, nullptr);
    const std::uintptr_t off =
        reinterpret_cast<std::uintptr_t>(p) % kChunkSize;
    if (off / kBinSize < kHeaderBins) ++tail_blocks;
    std::memset(p, 0x77, 8);
    ptrs.push_back(p);
  }
  EXPECT_GT(tail_blocks, 0) << "no allocations used the tail space";
  for (void* p : ptrs) ua_.free(p);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, ExhaustedBinUnlinksAndRelists) {
  // Exhaust one bin of 1 KB blocks (capacity 3), then free: the bin must
  // leave the free-list when empty and return when blocks come back.
  std::vector<void*> ptrs;
  for (int i = 0; i < 3; ++i) {
    void* p = ua_.allocate(1024);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  const auto st1 = ua_.stats();
  EXPECT_GE(st1.bin_unlinks, 1u);
  for (void* p : ptrs) ua_.free(p);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, FullyFreedBinsRetire) {
  // Allocate enough 1 KB blocks for several bins, free all, and confirm
  // bins were retired back to their chunks.
  std::vector<void*> ptrs;
  for (int i = 0; i < 30; ++i) {
    void* p = ua_.allocate(1024);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) ua_.free(p);
  const auto st = ua_.stats();
  EXPECT_GT(st.bins_created, 0u);
  EXPECT_GT(st.bins_retired, 0u);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, ChunkRetirementReturnsMemoryToBuddy) {
  const std::size_t before = buddy_.free_bytes();
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    void* p = ua_.allocate(64);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  EXPECT_LT(buddy_.free_bytes(), before);
  for (void* p : ptrs) ua_.free(p);
  EXPECT_TRUE(ua_.check_consistency());
  // Retire hysteresis keeps the last bin of the class cached; an explicit
  // trim scavenges it and every chunk returns to the buddy.
  ua_.trim();
  // Retired chunks land in the buddy's order-6 quicklist (deferred
  // coalescing); flush it so they show up in the free-space accounting.
  buddy_.trim();
  EXPECT_EQ(ua_.stats().chunks_created, ua_.stats().chunks_retired);
  EXPECT_EQ(buddy_.free_bytes(), before);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(UAllocTest, ConcurrentSameClassGpu) {
  gpu::Device dev(test::small_device());
  std::atomic<std::uint64_t> failed{0};
  dev.launch_linear(4096, 128, [&](gpu::ThreadCtx& t) {
    void* p = ua_.allocate(32);
    if (p == nullptr) {
      failed.fetch_add(1);
      return;
    }
    std::memset(p, static_cast<int>(t.global_rank() & 0xff), 32);
    t.yield();
    auto* c = static_cast<unsigned char*>(p);
    for (int k = 0; k < 32; ++k) {
      if (c[k] != (t.global_rank() & 0xff)) std::abort();
    }
    ua_.free(p);
  });
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, ConcurrentMixedClassesChurnGpu) {
  gpu::Device dev(test::small_device());
  dev.launch_linear(2048, 64, [&](gpu::ThreadCtx& t) {
    auto& rng = t.rng();
    void* held[3] = {};
    std::size_t held_size[3] = {};
    for (int round = 0; round < 6; ++round) {
      const int slot = static_cast<int>(rng.next_below(3));
      if (held[slot] != nullptr) {
        // Verify canary before freeing.
        auto* c = static_cast<unsigned char*>(held[slot]);
        if (c[0] != 0xEE || c[held_size[slot] - 1] != 0xEF) std::abort();
        ua_.free(held[slot]);
        held[slot] = nullptr;
      }
      const std::size_t size = std::size_t{8} << rng.next_below(8);
      void* p = ua_.allocate(size);
      if (p != nullptr) {
        auto* c = static_cast<unsigned char*>(p);
        c[0] = 0xEE;
        c[size - 1] = 0xEF;
        held[slot] = p;
        held_size[slot] = size;
      }
      t.yield();
    }
    for (auto& p : held) {
      if (p != nullptr) ua_.free(p);
    }
  });
  EXPECT_TRUE(ua_.check_consistency());
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(UAllocTest, CrossArenaFree) {
  // Allocate from arena 0's SM, free from a thread on the other SM: the
  // free must route to the owning arena via the chunk header.
  gpu::Device dev(test::small_device(2, 256, 1));
  std::atomic<void*> handoff{nullptr};
  std::atomic<int> phase{0};
  dev.launch(gpu::Dim3{2}, gpu::Dim3{1}, [&](gpu::ThreadCtx& t) {
    if (t.block_rank() == 0) {
      handoff.store(ua_.allocate(64), std::memory_order_release);
      phase.store(1, std::memory_order_release);
    } else {
      while (phase.load(std::memory_order_acquire) == 0) t.yield();
      void* p = handoff.load(std::memory_order_acquire);
      ASSERT_NE(p, nullptr);
      ua_.free(p);
    }
  });
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, CoalescedWarpAllocationsAreDistinct) {
  // Full warps allocating the same class exercise the coalesced path:
  // one semaphore wait / one grown bin per group. Every member must get
  // a distinct block, and all blocks free cleanly.
  gpu::Device dev(test::small_device());
  constexpr std::uint64_t kThreads = 2048;
  std::vector<std::atomic<void*>> slots(kThreads);
  dev.launch_linear(kThreads, 128, [&](gpu::ThreadCtx& t) {
    void* p = ua_.allocate(64);
    ASSERT_NE(p, nullptr);
    std::memset(p, static_cast<int>(t.global_rank() & 0xff), 64);
    slots[t.global_rank()].store(p);
    t.yield();
    auto* c = static_cast<unsigned char*>(p);
    for (int i = 0; i < 64; ++i) {
      if (c[i] != (t.global_rank() & 0xff)) std::abort();
    }
  });
  std::set<void*> unique;
  for (auto& s : slots) {
    void* p = s.load();
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(unique.insert(p).second) << "duplicate block";
  }
  for (auto& s : slots) ua_.free(s.load());
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, CoalescingTogglesOff) {
  ua_.set_coalescing(false);
  gpu::Device dev(test::small_device());
  std::atomic<std::uint64_t> failed{0};
  dev.launch_linear(1024, 64, [&](gpu::ThreadCtx& t) {
    void* p = ua_.allocate(32);
    if (p == nullptr) {
      failed.fetch_add(1);
      return;
    }
    t.yield();
    ua_.free(p);
  });
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_TRUE(ua_.check_consistency());
  ua_.set_coalescing(true);
}

TEST_F(UAllocTest, CoalescedMixedWithIndividual) {
  // Half the lanes allocate a coalescable class (64 B), half a class too
  // small to coalesce (1 KB, capacity 3): groups and singletons interleave.
  gpu::Device dev(test::small_device());
  std::atomic<std::uint64_t> failed{0};
  dev.launch_linear(2048, 128, [&](gpu::ThreadCtx& t) {
    const std::size_t size = (t.lane_id() % 2 == 0) ? 64 : 1024;
    void* p = ua_.allocate(size);
    if (p == nullptr) {
      failed.fetch_add(1);
      return;
    }
    std::memset(p, 0x5E, size);
    t.yield();
    ua_.free(p);
  });
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, HostThreadsFallbackPath) {
  // UAlloc works from plain OS threads too (arena chosen by thread hash).
  test::run_os_threads(4, [&](unsigned tid) {
    util::Xorshift rng(tid);
    std::vector<void*> held;
    for (int i = 0; i < 500; ++i) {
      if (!held.empty() && (rng.next() & 1)) {
        ua_.free(held.back());
        held.pop_back();
      } else {
        const std::size_t size = std::size_t{8} << rng.next_below(8);
        if (void* p = ua_.allocate(size)) held.push_back(p);
      }
    }
    for (void* p : held) ua_.free(p);
  });
  EXPECT_TRUE(ua_.check_consistency());
}

// ---------------------------------------------------------------------------
// Magazine front-end (docs/INTERNALS.md §4b)
// ---------------------------------------------------------------------------

TEST_F(UAllocTest, MagazineHitReusesFreedBlock) {
  if (!ua_.magazines_enabled()) GTEST_SKIP() << "magazines compiled off";
  void* p = ua_.allocate(64);
  ASSERT_NE(p, nullptr);
  ua_.free(p);
  // The block parks in this thread's arena magazine, bitmap bit still set.
  EXPECT_EQ(ua_.stats().magazine_cached, 1u);
  void* q = ua_.allocate(64);
  EXPECT_EQ(q, p) << "LIFO magazine must return the block just freed";
  const auto st = ua_.stats();
  EXPECT_EQ(st.magazine_hits, 1u);
  EXPECT_EQ(st.magazine_cached, 0u);
  ua_.free(q);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, MagazineBoundedAndSpills) {
  if (!ua_.magazines_enabled()) GTEST_SKIP() << "magazines compiled off";
  // 1 KB class: bin capacity 3, so the magazine caps at 6. Freeing 10
  // blocks from one host thread parks 6 and spills 4 through the paper's
  // free path.
  const std::uint32_t cls = size_class_of(1024);
  const std::uint32_t cap = magazine_capacity(cls);
  ASSERT_EQ(cap, 6u);
  std::vector<void*> ptrs;
  for (int i = 0; i < 10; ++i) {
    void* p = ua_.allocate(1024);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) ua_.free(p);
  const auto st = ua_.stats();
  EXPECT_EQ(st.magazine_cached, cap);
  EXPECT_EQ(st.magazine_spills, 10u - cap);
  std::uint32_t total = 0;
  for (std::uint32_t a = 0; a < ua_.num_arenas(); ++a) {
    total += ua_.arena(a).magazine_count(cls);
    EXPECT_LE(ua_.arena(a).magazine_count(cls), cap);
  }
  EXPECT_EQ(total, cap);
  EXPECT_TRUE(ua_.check_consistency());  // validates cached-bit integrity
  EXPECT_EQ(ua_.release_cached(), cap);
  EXPECT_EQ(ua_.stats().magazine_cached, 0u);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, MagazineAccountingInvariantAfterFlush) {
  if (!ua_.magazines_enabled()) GTEST_SKIP() << "magazines compiled off";
  // Every free either spills or parks, and every parked block is later
  // popped (hit) or flushed: frees - spills == hits + flushes once the
  // magazines are drained.
  util::Xorshift rng(11);
  std::vector<void*> held;
  for (int i = 0; i < 2000; ++i) {
    if (!held.empty() && (rng.next() & 1)) {
      ua_.free(held.back());
      held.pop_back();
    } else {
      const std::size_t size = std::size_t{8} << rng.next_below(8);
      if (void* p = ua_.allocate(size)) held.push_back(p);
    }
  }
  for (void* p : held) ua_.free(p);
  ua_.release_cached();
  const auto st = ua_.stats();
  EXPECT_EQ(st.magazine_cached, 0u);
  EXPECT_EQ(st.frees - st.magazine_spills,
            st.magazine_hits + st.magazine_flushes);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, MagazinesDisabledMatchesPaperPath) {
  ua_.set_magazines(false);
  void* p = ua_.allocate(64);
  ASSERT_NE(p, nullptr);
  ua_.free(p);
  const auto st = ua_.stats();
  EXPECT_EQ(st.magazine_hits, 0u);
  EXPECT_EQ(st.magazine_misses, 0u);
  EXPECT_EQ(st.magazine_cached, 0u);
  // Disabled means the free went straight through publish_free_block, so
  // the block is claimable again without any flush.
  EXPECT_EQ(ua_.release_cached(), 0u);
  EXPECT_TRUE(ua_.check_consistency());
  ua_.set_magazines(TOMA_UALLOC_MAGAZINES != 0);
}

TEST_F(UAllocTest, DisablingMagazinesFlushesCachedBlocks) {
  if (!ua_.magazines_enabled()) GTEST_SKIP() << "magazines compiled off";
  void* p = ua_.allocate(128);
  ASSERT_NE(p, nullptr);
  ua_.free(p);
  ASSERT_EQ(ua_.stats().magazine_cached, 1u);
  ua_.set_magazines(false);
  const auto st = ua_.stats();
  EXPECT_EQ(st.magazine_cached, 0u);
  EXPECT_EQ(st.magazine_flushes, 1u);
  EXPECT_TRUE(ua_.check_consistency());
  ua_.set_magazines(TOMA_UALLOC_MAGAZINES != 0);
}

TEST_F(UAllocTest, CrossSmFreeParksInFreeingSmsMagazine) {
  if (!ua_.magazines_enabled()) GTEST_SKIP() << "magazines compiled off";
  // Alloc on SM i, free on SM j: the block must land in arena j's
  // magazine (the freeing SM reuses it locally next), never arena i's.
  gpu::Device dev(test::small_device(2, 256, 1));
  std::atomic<void*> handoff{nullptr};
  std::atomic<int> phase{0};
  std::atomic<std::uint32_t> alloc_sm{0}, free_sm{0};
  dev.launch(gpu::Dim3{2}, gpu::Dim3{1}, [&](gpu::ThreadCtx& t) {
    if (t.block_rank() == 0) {
      alloc_sm.store(t.sm_id());
      handoff.store(ua_.allocate(64), std::memory_order_release);
      phase.store(1, std::memory_order_release);
    } else {
      while (phase.load(std::memory_order_acquire) == 0) t.yield();
      free_sm.store(t.sm_id());
      void* p = handoff.load(std::memory_order_acquire);
      ASSERT_NE(p, nullptr);
      ua_.free(p);
    }
  });
  const std::uint32_t cls = size_class_of(64);
  const std::uint32_t freeing_arena = free_sm.load() % ua_.num_arenas();
  EXPECT_EQ(ua_.arena(freeing_arena).magazine_count(cls), 1u);
  if (alloc_sm.load() % ua_.num_arenas() != freeing_arena) {
    EXPECT_EQ(
        ua_.arena(alloc_sm.load() % ua_.num_arenas()).magazine_count(cls),
        0u);
  }
  EXPECT_EQ(ua_.stats().magazine_cached, 1u);
  EXPECT_TRUE(ua_.check_consistency());
  EXPECT_EQ(ua_.release_cached(), 1u);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, HostThreadFreeOfDeviceAllocation) {
  if (!ua_.magazines_enabled()) GTEST_SKIP() << "magazines compiled off";
  // Device threads allocate; plain OS threads free. The host-side frees
  // park in hash-chosen arenas and the accounting still closes.
  gpu::Device dev(test::small_device());
  constexpr std::uint64_t kThreads = 512;
  std::vector<std::atomic<void*>> slots(kThreads);
  dev.launch_linear(kThreads, 64, [&](gpu::ThreadCtx& t) {
    slots[t.global_rank()].store(ua_.allocate(32));
  });
  test::run_os_threads(4, [&](unsigned tid) {
    for (std::uint64_t i = tid; i < kThreads; i += 4) {
      if (void* p = slots[i].load()) ua_.free(p);
    }
  });
  const std::uint32_t cls = size_class_of(32);
  const std::uint32_t cap = magazine_capacity(cls);
  std::uint64_t cached = 0;
  for (std::uint32_t a = 0; a < ua_.num_arenas(); ++a) {
    EXPECT_LE(ua_.arena(a).magazine_count(cls), cap);
    cached += ua_.arena(a).magazine_count(cls);
  }
  const auto st = ua_.stats();
  EXPECT_EQ(st.magazine_cached, cached);
  EXPECT_EQ(st.frees, kThreads);
  EXPECT_EQ(st.magazine_spills, kThreads - cached);
  EXPECT_TRUE(ua_.check_consistency());
  ua_.release_cached();
  EXPECT_EQ(ua_.stats().magazine_cached, 0u);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, CoalescedWarpDrawsFromMagazineFirst) {
  if (!ua_.magazines_enabled()) GTEST_SKIP() << "magazines compiled off";
  // Churn a full warp through alloc/free twice: round two's allocations
  // should be satisfied by the magazines the round-one frees filled, so
  // lanes peel off before the coalescing rendezvous.
  gpu::Device dev(test::small_device());
  dev.launch_linear(2048, 128, [&](gpu::ThreadCtx& t) {
    for (int round = 0; round < 4; ++round) {
      void* p = ua_.allocate(64);
      ASSERT_NE(p, nullptr);
      std::memset(p, 0xA5, 64);
      t.yield();
      ua_.free(p);
    }
  });
  const auto st = ua_.stats();
  EXPECT_GT(st.magazine_hits, 0u);
  EXPECT_TRUE(ua_.check_consistency());
  ua_.release_cached();
  EXPECT_TRUE(ua_.check_consistency());
}

TEST_F(UAllocTest, TrimFlushesMagazines) {
  if (!ua_.magazines_enabled()) GTEST_SKIP() << "magazines compiled off";
  const std::size_t before = buddy_.free_bytes();
  std::vector<void*> ptrs;
  for (int i = 0; i < 200; ++i) {
    void* p = ua_.allocate(256);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) ua_.free(p);
  EXPECT_GT(ua_.stats().magazine_cached, 0u);
  // trim() must flush the magazines first or cached blocks pin their bins
  // (and chunks) forever.
  ua_.trim();
  buddy_.trim();  // retired chunks sit in the buddy quicklist until flushed
  EXPECT_EQ(ua_.stats().magazine_cached, 0u);
  EXPECT_EQ(buddy_.free_bytes(), before);
  EXPECT_TRUE(ua_.check_consistency());
}

TEST(UAllocArenaFallback, SingleChunkPoolServesAllArenas) {
  // Regression for the fig7 8 B anomaly: with a pool of exactly one chunk
  // and two arenas, whichever arena won the chunk race was the only one
  // that could ever allocate — chunks are arena-private, so every thread
  // routed to the losing arena failed while the pool sat mostly free
  // (the 8 B row showed a 67% failure rate against ~3% for its
  // neighbours). allocate() must sweep the sibling arenas before
  // reporting OOM.
  constexpr std::size_t kPool = kChunkSize;
  test::AlignedPool pool(kPool);
  TBuddy buddy(pool.get(), kPool);
  UAlloc ua(buddy, /*num_arenas=*/2);

  // Home arena 0 acquires the pool's only chunk.
  void* a0 = ua.allocate_from(0, 8);
  ASSERT_NE(a0, nullptr);
  // Arena 1 owns no chunk and cannot grow one; the fallback sweep must
  // serve it from arena 0's chunk instead of failing.
  void* a1 = ua.allocate_from(1, 8);
  ASSERT_NE(a1, nullptr);
  EXPECT_GE(ua.stats().arena_fallbacks, 1u);

  ua.free(a0);
  ua.free(a1);
  EXPECT_TRUE(ua.check_consistency());
}

}  // namespace
}  // namespace toma::alloc
