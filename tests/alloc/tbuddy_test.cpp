#include "alloc/tbuddy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include "alloc/config.hpp"
#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"
#include "util/bitops.hpp"

namespace toma::alloc {
namespace {

class TBuddyTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPool = 4 * 1024 * 1024;  // 1024 pages
  TBuddyTest() : pool_(kPool), buddy_(pool_.get(), kPool) {}
  test::AlignedPool pool_;
  TBuddy buddy_;
};

TEST_F(TBuddyTest, InitialState) {
  EXPECT_EQ(buddy_.max_order(), 10u);  // 2^10 pages
  EXPECT_EQ(buddy_.available(10), 1u);
  for (std::uint32_t h = 0; h < 10; ++h) EXPECT_EQ(buddy_.available(h), 0u);
  EXPECT_EQ(buddy_.free_bytes(), kPool);
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, SingleAllocFree) {
  void* p = buddy_.allocate(0);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(buddy_.contains(p));
  EXPECT_TRUE(util::is_aligned(p, kPageSize));
  EXPECT_EQ(buddy_.free_bytes(), kPool - kPageSize);
  buddy_.free(p);
  EXPECT_EQ(buddy_.free_bytes(), kPool);
  // Full merge back to a single root block.
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, AlignmentMatchesOrder) {
  for (std::uint32_t order = 0; order <= 5; ++order) {
    void* p = buddy_.allocate(order);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(util::is_aligned(p, kPageSize << order))
        << "order " << order << " block not size-aligned";
    buddy_.free(p);
  }
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, DisjointAllocations) {
  std::vector<void*> ptrs;
  std::set<std::uintptr_t> starts;
  for (int i = 0; i < 64; ++i) {
    void* p = buddy_.allocate(2);  // 16 KB each
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(starts.insert(reinterpret_cast<std::uintptr_t>(p)).second);
    std::memset(p, i, kPageSize << 2);  // touch the whole block
    ptrs.push_back(p);
  }
  // Ranges must not overlap: starts are 16 KB apart at least.
  std::uintptr_t prev = 0;
  for (std::uintptr_t s : starts) {
    if (prev != 0) EXPECT_GE(s - prev, kPageSize << 2);
    prev = s;
  }
  for (void* p : ptrs) buddy_.free(p);
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
}

TEST_F(TBuddyTest, ExhaustionAtOrderZero) {
  const std::size_t pages = kPool / kPageSize;
  std::vector<void*> ptrs;
  for (std::size_t i = 0; i < pages; ++i) {
    void* p = buddy_.allocate(0);
    ASSERT_NE(p, nullptr) << "failed at page " << i;
    ptrs.push_back(p);
  }
  // Pool exactly exhausted: no fragmentation in the buddy range.
  EXPECT_EQ(buddy_.allocate(0), nullptr);
  EXPECT_EQ(buddy_.free_bytes(), 0u);
  for (void* p : ptrs) buddy_.free(p);
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, WholePoolAllocation) {
  void* p = buddy_.allocate(buddy_.max_order());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p, pool_.get());
  EXPECT_EQ(buddy_.allocate(0), nullptr);  // nothing left
  buddy_.free(p);
  EXPECT_EQ(buddy_.available(buddy_.max_order()), 1u);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, OversizedOrderFails) {
  EXPECT_EQ(buddy_.allocate(buddy_.max_order() + 1), nullptr);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, AllocateBytesRounds) {
  void* p = buddy_.allocate_bytes(kPageSize + 1);  // -> order 1
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(util::is_aligned(p, 2 * kPageSize));
  buddy_.free(p);
  EXPECT_EQ(buddy_.allocate_bytes(0), nullptr);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, MergeCascadesAcrossOrders) {
  // Allocate 4 sibling order-0 pages, free them all: they must cascade
  // into one order-2 block (observable via the order-2 semaphore or a
  // subsequent aligned allocation).
  std::vector<void*> ptrs;
  for (int i = 0; i < 4; ++i) ptrs.push_back(buddy_.allocate(0));
  for (void* p : ptrs) ASSERT_NE(p, nullptr);
  for (void* p : ptrs) buddy_.free(p);
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_GT(buddy_.stats().merges, 0u);
}

TEST_F(TBuddyTest, MixedOrdersChurn) {
  util::Xorshift rng(99);
  std::vector<std::pair<void*, int>> live;
  for (int iter = 0; iter < 2000; ++iter) {
    if (!live.empty() && (rng.next() & 1)) {
      const std::size_t k = rng.next_below(live.size());
      buddy_.free(live[k].first);
      live[k] = live.back();
      live.pop_back();
    } else {
      const std::uint32_t order = static_cast<std::uint32_t>(
          rng.next_below(6));
      void* p = buddy_.allocate(order);
      if (p != nullptr) {
        // Write a canary at both ends.
        auto* c = static_cast<unsigned char*>(p);
        c[0] = 0xAA;
        c[(kPageSize << order) - 1] = 0xBB;
        live.emplace_back(p, order);
      }
    }
  }
  for (auto& [p, order] : live) buddy_.free(p);
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
}

TEST_F(TBuddyTest, ConcurrentAllocFreeGpu) {
  gpu::Device dev(test::small_device());
  std::atomic<std::uint64_t> failures{0};
  dev.launch_linear(2048, 128, [&](gpu::ThreadCtx& t) {
    auto& rng = t.rng();
    for (int round = 0; round < 4; ++round) {
      const std::uint32_t order = static_cast<std::uint32_t>(
          rng.next_below(4));
      void* p = buddy_.allocate(order);
      if (p == nullptr) {
        failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::memset(p, 0x5A, 64);  // touch start of block
      t.yield();
      buddy_.free(p);
    }
  });
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.free_bytes(), kPool);
  EXPECT_EQ(buddy_.largest_free_block(), kPool)
      << "free blocks failed to merge back";
}

TEST_F(TBuddyTest, ConcurrentDistinctOrdersConserveMemory) {
  gpu::Device dev(test::small_device());
  // Threads allocate-and-hold; total handed out must never exceed pool.
  std::atomic<std::uint64_t> granted_bytes{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::atomic<void*>> slots(1024);
  dev.launch_linear(1024, 64, [&](gpu::ThreadCtx& t) {
    const std::uint32_t order = t.global_rank() % 3;
    void* p = buddy_.allocate(order);
    if (p == nullptr) {
      failed.fetch_add(1);
      return;
    }
    granted_bytes.fetch_add(kPageSize << order);
    slots[t.global_rank()].store(p);
  });
  EXPECT_LE(granted_bytes.load(), kPool);
  // Everything granted is disjoint: free them all and expect full merge.
  for (auto& s : slots) {
    if (void* p = s.load()) buddy_.free(p);
  }
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
}

// Property sweep over pool sizes: invariants hold after heavy churn.
class TBuddyProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TBuddyProperty, ChurnPreservesInvariants) {
  const std::size_t pool_bytes = GetParam();
  test::AlignedPool pool(pool_bytes);
  TBuddy buddy(pool.get(), pool_bytes);
  util::Xorshift rng(pool_bytes);
  std::vector<void*> live;
  for (int iter = 0; iter < 1500; ++iter) {
    if (!live.empty() && rng.next_below(100) < 45) {
      const std::size_t k = rng.next_below(live.size());
      buddy.free(live[k]);
      live[k] = live.back();
      live.pop_back();
    } else {
      const std::uint32_t order = static_cast<std::uint32_t>(
          rng.next_below(buddy.max_order() + 1));
      if (void* p = buddy.allocate(order)) live.push_back(p);
    }
  }
  EXPECT_TRUE(buddy.check_consistency());
  for (void* p : live) buddy.free(p);
  EXPECT_TRUE(buddy.check_consistency());
  EXPECT_EQ(buddy.largest_free_block(), pool_bytes);
}

INSTANTIATE_TEST_SUITE_P(Pools, TBuddyProperty,
                         ::testing::Values(64 * 1024, 256 * 1024,
                                           1024 * 1024, 8 * 1024 * 1024));

TEST(TBuddySmall, MinimalPoolSinglePage) {
  test::AlignedPool pool(kPageSize);
  TBuddy buddy(pool.get(), kPageSize);
  EXPECT_EQ(buddy.max_order(), 0u);
  void* p = buddy.allocate(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(buddy.allocate(0), nullptr);
  buddy.free(p);
  EXPECT_EQ(buddy.available(0), 1u);
  EXPECT_TRUE(buddy.check_consistency());
}

}  // namespace
}  // namespace toma::alloc
