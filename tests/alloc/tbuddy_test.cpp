#include "alloc/tbuddy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include "alloc/config.hpp"
#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"
#include "util/bitops.hpp"

namespace toma::alloc {
namespace {

class TBuddyTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPool = 4 * 1024 * 1024;  // 1024 pages
  TBuddyTest() : pool_(kPool), buddy_(pool_.get(), kPool) {}
  test::AlignedPool pool_;
  TBuddy buddy_;
};

TEST_F(TBuddyTest, InitialState) {
  EXPECT_EQ(buddy_.max_order(), 10u);  // 2^10 pages
  EXPECT_EQ(buddy_.available(10), 1u);
  for (std::uint32_t h = 0; h < 10; ++h) EXPECT_EQ(buddy_.available(h), 0u);
  EXPECT_EQ(buddy_.free_bytes(), kPool);
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, SingleAllocFree) {
  void* p = buddy_.allocate(0);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(buddy_.contains(p));
  EXPECT_TRUE(util::is_aligned(p, kPageSize));
  EXPECT_EQ(buddy_.free_bytes(), kPool - kPageSize);
  buddy_.free(p);
  if (buddy_.quicklist_enabled()) {
    // Deferred coalescing parks the freed page in the order-0 quicklist,
    // invisible to the free-space accounting until flushed.
    EXPECT_EQ(buddy_.quicklist_count(0), 1u);
    EXPECT_EQ(buddy_.trim(), 1u);
  }
  EXPECT_EQ(buddy_.free_bytes(), kPool);
  // Full merge back to a single root block.
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, AlignmentMatchesOrder) {
  for (std::uint32_t order = 0; order <= 5; ++order) {
    void* p = buddy_.allocate(order);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(util::is_aligned(p, kPageSize << order))
        << "order " << order << " block not size-aligned";
    buddy_.free(p);
  }
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, DisjointAllocations) {
  std::vector<void*> ptrs;
  std::set<std::uintptr_t> starts;
  for (int i = 0; i < 64; ++i) {
    void* p = buddy_.allocate(2);  // 16 KB each
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(starts.insert(reinterpret_cast<std::uintptr_t>(p)).second);
    std::memset(p, i, kPageSize << 2);  // touch the whole block
    ptrs.push_back(p);
  }
  // Ranges must not overlap: starts are 16 KB apart at least.
  std::uintptr_t prev = 0;
  for (std::uintptr_t s : starts) {
    if (prev != 0) {
      EXPECT_GE(s - prev, kPageSize << 2);
    }
    prev = s;
  }
  for (void* p : ptrs) buddy_.free(p);
  buddy_.trim();  // flush deferred coalescing before asserting full merge
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
}

TEST_F(TBuddyTest, ExhaustionAtOrderZero) {
  const std::size_t pages = kPool / kPageSize;
  std::vector<void*> ptrs;
  for (std::size_t i = 0; i < pages; ++i) {
    void* p = buddy_.allocate(0);
    ASSERT_NE(p, nullptr) << "failed at page " << i;
    ptrs.push_back(p);
  }
  // Pool exactly exhausted: no fragmentation in the buddy range.
  EXPECT_EQ(buddy_.allocate(0), nullptr);
  EXPECT_EQ(buddy_.free_bytes(), 0u);
  for (void* p : ptrs) buddy_.free(p);
  buddy_.trim();
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, WholePoolAllocation) {
  void* p = buddy_.allocate(buddy_.max_order());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p, pool_.get());
  EXPECT_EQ(buddy_.allocate(0), nullptr);  // nothing left
  buddy_.free(p);
  EXPECT_EQ(buddy_.available(buddy_.max_order()), 1u);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, OversizedOrderFails) {
  EXPECT_EQ(buddy_.allocate(buddy_.max_order() + 1), nullptr);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, AllocateBytesRounds) {
  void* p = buddy_.allocate_bytes(kPageSize + 1);  // -> order 1
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(util::is_aligned(p, 2 * kPageSize));
  buddy_.free(p);
  EXPECT_EQ(buddy_.allocate_bytes(0), nullptr);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, MergeCascadesAcrossOrders) {
  // Allocate 4 sibling order-0 pages, free them all: they must cascade
  // into one order-2 block (observable via the order-2 semaphore or a
  // subsequent aligned allocation).
  std::vector<void*> ptrs;
  for (int i = 0; i < 4; ++i) ptrs.push_back(buddy_.allocate(0));
  for (void* p : ptrs) ASSERT_NE(p, nullptr);
  for (void* p : ptrs) buddy_.free(p);
  buddy_.trim();  // cached frees only cascade once flushed
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_GT(buddy_.stats().merges, 0u);
}

TEST_F(TBuddyTest, MixedOrdersChurn) {
  util::Xorshift rng(99);
  std::vector<std::pair<void*, int>> live;
  for (int iter = 0; iter < 2000; ++iter) {
    if (!live.empty() && (rng.next() & 1)) {
      const std::size_t k = rng.next_below(live.size());
      buddy_.free(live[k].first);
      live[k] = live.back();
      live.pop_back();
    } else {
      const std::uint32_t order = static_cast<std::uint32_t>(
          rng.next_below(6));
      void* p = buddy_.allocate(order);
      if (p != nullptr) {
        // Write a canary at both ends.
        auto* c = static_cast<unsigned char*>(p);
        c[0] = 0xAA;
        c[(kPageSize << order) - 1] = 0xBB;
        live.emplace_back(p, order);
      }
    }
  }
  for (auto& [p, order] : live) buddy_.free(p);
  buddy_.trim();
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
}

TEST_F(TBuddyTest, ConcurrentAllocFreeGpu) {
  gpu::Device dev(test::small_device());
  std::atomic<std::uint64_t> failures{0};
  dev.launch_linear(2048, 128, [&](gpu::ThreadCtx& t) {
    auto& rng = t.rng();
    for (int round = 0; round < 4; ++round) {
      const std::uint32_t order = static_cast<std::uint32_t>(
          rng.next_below(4));
      void* p = buddy_.allocate(order);
      if (p == nullptr) {
        failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::memset(p, 0x5A, 64);  // touch start of block
      t.yield();
      buddy_.free(p);
    }
  });
  buddy_.trim();
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.free_bytes(), kPool);
  EXPECT_EQ(buddy_.largest_free_block(), kPool)
      << "free blocks failed to merge back";
}

TEST_F(TBuddyTest, ConcurrentDistinctOrdersConserveMemory) {
  gpu::Device dev(test::small_device());
  // Threads allocate-and-hold; total handed out must never exceed pool.
  std::atomic<std::uint64_t> granted_bytes{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::atomic<void*>> slots(1024);
  dev.launch_linear(1024, 64, [&](gpu::ThreadCtx& t) {
    const std::uint32_t order = t.global_rank() % 3;
    void* p = buddy_.allocate(order);
    if (p == nullptr) {
      failed.fetch_add(1);
      return;
    }
    granted_bytes.fetch_add(kPageSize << order);
    slots[t.global_rank()].store(p);
  });
  EXPECT_LE(granted_bytes.load(), kPool);
  // Everything granted is disjoint: free them all and expect full merge.
  for (auto& s : slots) {
    if (void* p = s.load()) buddy_.free(p);
  }
  buddy_.trim();
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
}

// --- quicklist front-end (deferred coalescing; INTERNALS §4c) --------------

TEST_F(TBuddyTest, QuicklistLifoReuse) {
  if (!buddy_.quicklist_enabled()) GTEST_SKIP() << "quicklist compiled off";
  void* p1 = buddy_.allocate(0);
  void* p2 = buddy_.allocate(0);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  buddy_.free(p2);
  buddy_.free(p1);
  EXPECT_EQ(buddy_.quicklist_count(0), 2u);
  // Most recently freed block comes back first, straight off the stack.
  EXPECT_EQ(buddy_.allocate(0), p1);
  EXPECT_EQ(buddy_.allocate(0), p2);
  EXPECT_EQ(buddy_.stats().quicklist_hits, 2u);
  EXPECT_EQ(buddy_.quicklist_count(0), 0u);
  buddy_.free(p1);
  buddy_.free(p2);
  buddy_.trim();
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, QuicklistInvisibleToAccounting) {
  if (!buddy_.quicklist_enabled()) GTEST_SKIP() << "quicklist compiled off";
  void* p = buddy_.allocate(3);
  ASSERT_NE(p, nullptr);
  const std::size_t free_before = buddy_.free_bytes();
  const std::uint64_t avail_before = buddy_.available(3);
  const std::size_t largest_before = buddy_.largest_free_block();
  buddy_.free(p);
  // The cached block keeps its node Busy and its semaphore unit consumed:
  // every accounting probe must read exactly as if it were still
  // allocated. This is the invariant that keeps largest_free_block() and
  // exhaustion decisions correct with the cache on.
  EXPECT_EQ(buddy_.quicklist_count(3), 1u);
  EXPECT_EQ(buddy_.free_bytes(), free_before);
  EXPECT_EQ(buddy_.available(3), avail_before);
  EXPECT_EQ(buddy_.largest_free_block(), largest_before);
  EXPECT_TRUE(buddy_.check_consistency());
  EXPECT_EQ(buddy_.trim(), 1u);
  EXPECT_EQ(buddy_.free_bytes(), kPool);
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, QuicklistHighWaterSpillFlushesToLowWater) {
  if (!buddy_.quicklist_enabled()) GTEST_SKIP() << "quicklist compiled off";
  const std::uint32_t cap = quicklist_capacity(0, buddy_.max_order());
  ASSERT_EQ(cap, 32u);  // kQuicklistHighWater at this pool size
  const std::uint32_t low = quicklist_low_water(cap);
  std::vector<void*> ptrs;
  for (std::uint32_t i = 0; i < cap + 8; ++i) {
    void* p = buddy_.allocate(0);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  for (std::uint32_t i = 0; i < cap; ++i) buddy_.free(ptrs[i]);
  EXPECT_EQ(buddy_.quicklist_count(0), cap);
  EXPECT_EQ(buddy_.stats().quicklist_spills, 0u);
  // The next free overflows the high-water mark: hysteresis drains the
  // list down to low-water and sends the overflowing block through the
  // merging free path, buying cap/2 more O(1) frees before the next spill.
  buddy_.free(ptrs[cap]);
  EXPECT_EQ(buddy_.stats().quicklist_spills, 1u);
  EXPECT_EQ(buddy_.stats().quicklist_flushes, cap - low);
  EXPECT_EQ(buddy_.quicklist_count(0), low);
  for (std::uint32_t i = cap + 1; i < cap + 8; ++i) buddy_.free(ptrs[i]);
  EXPECT_EQ(buddy_.quicklist_count(0), low + 7);
  EXPECT_EQ(buddy_.stats().quicklist_spills, 1u);  // no further spill
  buddy_.trim();
  EXPECT_EQ(buddy_.quicklist_count(0), 0u);
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, QuicklistFlushOnTrimReformsMaximalBlocks) {
  if (!buddy_.quicklist_enabled()) GTEST_SKIP() << "quicklist compiled off";
  std::vector<void*> ptrs;
  for (int i = 0; i < 16; ++i) {
    void* p = buddy_.allocate(0);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) buddy_.free(p);
  // Deferred coalescing: the freed siblings sit unmerged in the cache.
  EXPECT_EQ(buddy_.quicklist_count(0), 16u);
  EXPECT_LT(buddy_.largest_free_block(), kPool);
  const std::uint64_t merges_before = buddy_.stats().merges;
  EXPECT_EQ(buddy_.trim(), 16u);
  // The flush pushed them through the real free path: merges cascaded
  // and the pool is one maximal block again.
  EXPECT_GT(buddy_.stats().merges, merges_before);
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, DisablingQuicklistFlushes) {
  void* p = buddy_.allocate(0);
  ASSERT_NE(p, nullptr);
  buddy_.set_quicklist(true);
  buddy_.free(p);
  EXPECT_EQ(buddy_.quicklist_count(0), 1u);
  buddy_.set_quicklist(false);  // flushes: paper-faithful config reachable
  EXPECT_EQ(buddy_.quicklist_count(0), 0u);
  EXPECT_EQ(buddy_.free_bytes(), kPool);
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  // With the cache off, frees take the merging path directly.
  void* q = buddy_.allocate(0);
  buddy_.free(q);
  EXPECT_EQ(buddy_.quicklist_count(0), 0u);
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, QuicklistServesBeforeTreeUnderExhaustion) {
  if (!buddy_.quicklist_enabled()) GTEST_SKIP() << "quicklist compiled off";
  // Exhaust the pool, free a handful (they cache), and reallocate: the
  // cached blocks must be handed out even though the tree itself reports
  // nothing available (pops run before the semaphore).
  const std::size_t pages = kPool / kPageSize;
  std::vector<void*> ptrs;
  for (std::size_t i = 0; i < pages; ++i) {
    void* p = buddy_.allocate(0);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 8; ++i) buddy_.free(ptrs[i]);
  EXPECT_EQ(buddy_.quicklist_count(0), 8u);
  EXPECT_EQ(buddy_.free_bytes(), 0u);  // cached blocks stay invisible
  for (int i = 0; i < 8; ++i) {
    ptrs[i] = buddy_.allocate(0);
    EXPECT_NE(ptrs[i], nullptr) << "cached block not served at exhaustion";
  }
  EXPECT_EQ(buddy_.allocate(0), nullptr);  // now truly exhausted
  for (void* p : ptrs) buddy_.free(p);
  buddy_.trim();
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, PoolPressureFlushesQuicklistsAndRetries) {
  if (!buddy_.quicklist_enabled()) GTEST_SKIP() << "quicklist compiled off";
  // Fill the pool with order-0 pages, free them all (32 stay cached at
  // order 0, the rest merge), then ask for a block larger than anything
  // the tree can currently form: the allocation must flush the cached
  // pages, let them coalesce, and succeed instead of reporting OOM.
  const std::size_t pages = kPool / kPageSize;
  std::vector<void*> ptrs;
  for (std::size_t i = 0; i < pages; ++i) {
    void* p = buddy_.allocate(0);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) buddy_.free(p);
  ASSERT_GT(buddy_.quicklist_count(0), 0u);
  void* big = buddy_.allocate(buddy_.max_order());
  EXPECT_NE(big, nullptr)
      << "pool pressure failed to reclaim quicklisted blocks";
  buddy_.free(big);
  buddy_.trim();
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, CasClaimTogglesAndCounts) {
  buddy_.set_quicklist(false);  // force every allocation through the tree
  buddy_.set_cas_claim(true);
  void* p = buddy_.allocate(0);
  ASSERT_NE(p, nullptr);
  // Uncontended, the optimistic CAS always wins.
  EXPECT_GT(buddy_.stats().cas_claims, 0u);
  EXPECT_EQ(buddy_.stats().lock_claims, 0u);
  buddy_.free(p);
  buddy_.set_cas_claim(false);
  void* q = buddy_.allocate(0);
  ASSERT_NE(q, nullptr);
  EXPECT_GT(buddy_.stats().lock_claims, 0u);
  buddy_.free(q);
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

TEST_F(TBuddyTest, QuicklistConcurrentChurnPreservesInvariants) {
  if (!buddy_.quicklist_enabled()) GTEST_SKIP() << "quicklist compiled off";
  gpu::Device dev(test::small_device());
  dev.launch_linear(2048, 128, [&](gpu::ThreadCtx& t) {
    auto& rng = t.rng();
    for (int round = 0; round < 4; ++round) {
      const std::uint32_t order =
          static_cast<std::uint32_t>(rng.next_below(4));
      void* p = buddy_.allocate(order);
      if (p == nullptr) continue;
      std::memset(p, 0x5A, 64);
      t.yield();
      buddy_.free(p);
    }
  });
  // Quiescent: cached bytes + accounted free bytes must equal the pool
  // (every block is either cached-Busy or semaphore-visible, never both).
  std::size_t cached_bytes = 0;
  for (std::uint32_t h = 0; h <= buddy_.max_order(); ++h) {
    cached_bytes += static_cast<std::size_t>(buddy_.quicklist_count(h)) *
                    (kPageSize << h);
  }
  EXPECT_EQ(buddy_.free_bytes() + cached_bytes, kPool);
  EXPECT_TRUE(buddy_.check_consistency());
  buddy_.trim();
  EXPECT_EQ(buddy_.free_bytes(), kPool);
  EXPECT_EQ(buddy_.largest_free_block(), kPool);
  EXPECT_TRUE(buddy_.check_consistency());
}

// Property sweep over pool sizes: invariants hold after heavy churn.
class TBuddyProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TBuddyProperty, ChurnPreservesInvariants) {
  const std::size_t pool_bytes = GetParam();
  test::AlignedPool pool(pool_bytes);
  TBuddy buddy(pool.get(), pool_bytes);
  util::Xorshift rng(pool_bytes);
  std::vector<void*> live;
  for (int iter = 0; iter < 1500; ++iter) {
    if (!live.empty() && rng.next_below(100) < 45) {
      const std::size_t k = rng.next_below(live.size());
      buddy.free(live[k]);
      live[k] = live.back();
      live.pop_back();
    } else {
      const std::uint32_t order = static_cast<std::uint32_t>(
          rng.next_below(buddy.max_order() + 1));
      if (void* p = buddy.allocate(order)) live.push_back(p);
    }
  }
  EXPECT_TRUE(buddy.check_consistency());
  for (void* p : live) buddy.free(p);
  buddy.trim();
  EXPECT_TRUE(buddy.check_consistency());
  EXPECT_EQ(buddy.largest_free_block(), pool_bytes);
}

INSTANTIATE_TEST_SUITE_P(Pools, TBuddyProperty,
                         ::testing::Values(64 * 1024, 256 * 1024,
                                           1024 * 1024, 8 * 1024 * 1024));

TEST(TBuddySmall, MinimalPoolSinglePage) {
  test::AlignedPool pool(kPageSize);
  TBuddy buddy(pool.get(), kPageSize);
  EXPECT_EQ(buddy.max_order(), 0u);
  void* p = buddy.allocate(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(buddy.allocate(0), nullptr);
  buddy.free(p);
  EXPECT_EQ(buddy.available(0), 1u);
  EXPECT_TRUE(buddy.check_consistency());
}

}  // namespace
}  // namespace toma::alloc
