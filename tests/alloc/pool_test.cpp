#include "alloc/pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "alloc/device_heap.hpp"
#include "gpusim/gpusim.hpp"
#include "obs/telemetry.hpp"
#include "support/test_support.hpp"

namespace toma::alloc {
namespace {

constexpr std::size_t kMiB = 1024 * 1024;

HeapConfig small_cfg() {
  return HeapConfig{.pool_bytes = 4 * kMiB, .num_arenas = 2};
}

TEST(HeapConfig, DefaultsMatchLegacyConstructor) {
  GpuAllocator legacy(4 * kMiB, 2);
  GpuAllocator configured(small_cfg());
  EXPECT_EQ(legacy.pool_bytes(), configured.pool_bytes());
  EXPECT_EQ(legacy.quota_bytes(), 0u);
  EXPECT_EQ(configured.quota_bytes(), 0u);
}

TEST(HeapConfig, Validity) {
  EXPECT_TRUE(HeapConfig{}.valid());
  EXPECT_FALSE(HeapConfig{.pool_bytes = 3 * kMiB}.valid());       // not pow2
  EXPECT_FALSE(HeapConfig{.pool_bytes = kChunkSize / 2}.valid());  // too small
  EXPECT_FALSE(HeapConfig{.num_arenas = 0}.valid());
}

TEST(Quota, RejectsWithQuotaStatusAndRecovers) {
  HeapConfig cfg = small_cfg();
  cfg.quota_bytes = 64 * 1024;
  GpuAllocator a(cfg);

  std::vector<void*> held;
  AllocStatus st = AllocStatus::kOk;
  for (;;) {
    void* p = a.malloc(1024, &st);
    if (p == nullptr) break;
    held.push_back(p);
  }
  EXPECT_EQ(st, AllocStatus::kQuota);
  EXPECT_EQ(held.size(), 64u);  // 64 KiB quota / 1 KiB blocks
  EXPECT_EQ(a.bytes_in_use(), cfg.quota_bytes);
  EXPECT_GE(a.stats().quota_rejects, 1u);

  // Usage drains -> the quota admits again.
  a.free(held.back());
  held.pop_back();
  void* p = a.malloc(1024, &st);
  EXPECT_NE(p, nullptr);
  EXPECT_EQ(st, AllocStatus::kOk);
  held.push_back(p);

  for (void* q : held) a.free(q);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  EXPECT_TRUE(a.check_consistency());
}

TEST(Quota, ChargesBlockGranularityForLargeAllocs) {
  HeapConfig cfg = small_cfg();
  cfg.quota_bytes = 64 * 1024;
  GpuAllocator a(cfg);
  // 5000 B rounds to an order-1 buddy block (8 KiB) — that is what the
  // quota must charge, not the request.
  void* p = a.malloc(5000);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.bytes_in_use(), 8u * 1024u);
  a.free(p);
  EXPECT_EQ(a.bytes_in_use(), 0u);
}

TEST(Quota, LoweringBelowUsageRejectsUntilDrained) {
  GpuAllocator a(small_cfg());
  void* p = a.malloc(1024);
  ASSERT_NE(p, nullptr);
  a.set_quota(512);  // below the 1 KiB already live
  AllocStatus st;
  EXPECT_EQ(a.malloc(64, &st), nullptr);
  EXPECT_EQ(st, AllocStatus::kQuota);
  a.free(p);
  EXPECT_NE(p = a.malloc(64, &st), nullptr);
  EXPECT_EQ(st, AllocStatus::kOk);
  a.free(p);
}

TEST(PoolManager, CreateFindDestroy) {
  PoolManager& mgr = PoolManager::instance();
  ASSERT_EQ(mgr.find("pm-basic"), nullptr);
  Pool* pool = mgr.create("pm-basic", small_cfg());
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->name(), "pm-basic");
  EXPECT_EQ(mgr.find("pm-basic"), pool);
  EXPECT_EQ(mgr.create("pm-basic", small_cfg()), nullptr);  // duplicate
  EXPECT_TRUE(mgr.destroy("pm-basic"));
  EXPECT_EQ(mgr.find("pm-basic"), nullptr);
  EXPECT_FALSE(mgr.destroy("pm-basic"));
}

TEST(PoolManager, RejectsInvalidConfigAndEmptyName) {
  PoolManager& mgr = PoolManager::instance();
  EXPECT_EQ(mgr.create("", small_cfg()), nullptr);
  EXPECT_EQ(mgr.create("pm-bad", HeapConfig{.pool_bytes = 12345}), nullptr);
}

TEST(PoolManager, DefaultPoolRefusesDestroy) {
  PoolManager& mgr = PoolManager::instance();
  Pool& pool = mgr.default_pool(small_cfg());
  EXPECT_EQ(pool.name(), PoolManager::kDefaultName);
  EXPECT_TRUE(mgr.has_default());
  EXPECT_FALSE(mgr.destroy(PoolManager::kDefaultName));
  EXPECT_TRUE(mgr.has_default());
}

TEST(PoolManager, QuotaIsolationBetweenPools) {
  // The tenant story: pool A at quota fails with kQuota while pool B,
  // sharing nothing with A, keeps allocating at full speed.
  PoolManager& mgr = PoolManager::instance();
  HeapConfig cfg_a = small_cfg();
  cfg_a.quota_bytes = 32 * 1024;
  Pool* a = mgr.create("pm-tenant-a", cfg_a);
  Pool* b = mgr.create("pm-tenant-b", small_cfg());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  std::vector<void*> held_a;
  AllocStatus st = AllocStatus::kOk;
  for (;;) {
    void* p = a->malloc(512, &st);
    if (p == nullptr) break;
    held_a.push_back(p);
  }
  EXPECT_EQ(st, AllocStatus::kQuota);

  // B is unaffected: every allocation succeeds while A is pinned at
  // quota, and A still rejects throughout.
  std::vector<void*> held_b;
  for (int i = 0; i < 1000; ++i) {
    void* p = b->malloc(512, &st);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(st, AllocStatus::kOk);
    held_b.push_back(p);
  }
  EXPECT_EQ(a->malloc(512, &st), nullptr);
  EXPECT_EQ(st, AllocStatus::kQuota);

  for (void* p : held_a) a->free(p);
  for (void* p : held_b) b->free(p);
  EXPECT_TRUE(a->check_consistency());
  EXPECT_TRUE(b->check_consistency());
  EXPECT_TRUE(mgr.destroy("pm-tenant-a"));
  EXPECT_TRUE(mgr.destroy("pm-tenant-b"));
}

TEST(Pool, ReleaseThresholdTrimsAtSync) {
  HeapConfig cfg = small_cfg();
  cfg.release_threshold = 0;  // CUDA default: release everything at sync
  Pool pool("rt-test", cfg);
  pool.set_async(true);  // deferral is required; don't rely on build default
  gpu::Stream s;

  // Churn enough 128 B blocks to strand whole chunks in the UAlloc caches
  // (above the fixed-lane threshold, so the frees actually defer).
  std::vector<void*> held;
  for (int i = 0; i < 2000; ++i) held.push_back(pool.malloc(128));
  for (void* p : held) pool.free_async(p, s);
  EXPECT_GT(pool.stats().stream.pending, 0u);

  const std::size_t n = pool.sync(s);
  EXPECT_EQ(n, held.size());
  EXPECT_GE(pool.stats().threshold_trims, 1u);
  // Everything the caches strand returns to the buddy tree: nothing is
  // live, so nothing may stay stranded above the (zero) threshold.
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_EQ(pool.stranded_bytes(), 0u);
  EXPECT_TRUE(pool.check_consistency());
}

TEST(Pool, RetainAllNeverTrims) {
  Pool pool("rt-retain", small_cfg());  // default: kReleaseRetainAll
  gpu::Stream s;
  std::vector<void*> held;
  for (int i = 0; i < 500; ++i) held.push_back(pool.malloc(64));
  for (void* p : held) pool.free_async(p, s);
  pool.sync(s);
  EXPECT_EQ(pool.stats().threshold_trims, 0u);
}

TEST(Pool, SloTargetAndViolationAccounting) {
  HeapConfig cfg = small_cfg();
  cfg.slo_latency_ns = 7500;
  Pool pool("slo-test", cfg);
  EXPECT_EQ(pool.slo_latency(), 7500u);
  EXPECT_EQ(pool.stats().slo_target_ns, 7500u);
  EXPECT_EQ(pool.stats().slo_violations, 0u);

  // A 1 ns target makes every timed op a violation (telemetry builds
  // only: without instrumentation the latency path compiles out).
  pool.set_slo_latency(1);
  for (int i = 0; i < 64; ++i) {
    void* p = pool.malloc(64);
    ASSERT_NE(p, nullptr);
    pool.free(p);
  }
#if TOMA_TELEMETRY
  EXPECT_GE(pool.stats().slo_violations, 64u)
      << "every op must breach a 1 ns SLO";
#else
  EXPECT_EQ(pool.stats().slo_violations, 0u);
#endif

  // 0 disables tracking: the count freezes.
  pool.set_slo_latency(0);
  const std::uint64_t frozen = pool.stats().slo_violations;
  void* p = pool.malloc(64);
  pool.free(p);
  EXPECT_EQ(pool.stats().slo_violations, frozen);
}

TEST(Pool, DtorUninstallsItsOwnDeviceHeap) {
  GpuAllocator* prev = set_device_heap(nullptr);
  {
    auto pool = std::make_unique<Pool>("dh-owner", small_cfg());
    set_device_heap(&pool->allocator());
    EXPECT_EQ(device_heap(), &pool->allocator());
    pool.reset();  // must not leave a dangling installed heap
  }
  EXPECT_EQ(device_heap(), nullptr);
  set_device_heap(prev);
}

TEST(Pool, DeviceHeapScopeNestsOverPools) {
  // A scoped heap override shadows the default pool's heap and restores
  // it on exit — the test-fixture pattern pools must not break.
  PoolManager& mgr = PoolManager::instance();
  Pool& def = mgr.default_pool(small_cfg());
  GpuAllocator* prev = set_device_heap(&def.allocator());

  Pool scratch("dh-scope", small_cfg());
  {
    DeviceHeapScope scope(scratch.allocator());
    EXPECT_EQ(device_heap(), &scratch.allocator());
    void* p = device_malloc(64);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(scratch.bytes_in_use(), 64u);
    {
      DeviceHeapScope inner(def.allocator());
      EXPECT_EQ(device_heap(), &def.allocator());
    }
    EXPECT_EQ(device_heap(), &scratch.allocator());
    device_free(p);
  }
  EXPECT_EQ(device_heap(), &def.allocator());
  EXPECT_EQ(scratch.bytes_in_use(), 0u);
  set_device_heap(prev);
}

TEST(Pool, KernelChurnThroughPool) {
  Pool pool("kernel-pool", HeapConfig{.pool_bytes = 16 * kMiB, .num_arenas = 2});
  gpu::Device dev(test::small_device());
  gpu::Stream s;
  std::atomic<std::uint64_t> ok{0};
  dev.launch_linear(1024, 128, [&](gpu::ThreadCtx& t) {
    auto* p = static_cast<std::uint8_t*>(pool.malloc_async(96, s));
    if (p == nullptr) return;
    std::memset(p, 0x5a, 96);
    t.yield();
    if (p[95] == 0x5a) ok.fetch_add(1);
    pool.free_async(p, s);
  });
  EXPECT_EQ(ok.load(), 1024u);
  pool.sync(s);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_TRUE(pool.check_consistency());
}

}  // namespace
}  // namespace toma::alloc
