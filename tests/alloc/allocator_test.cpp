#include "alloc/allocator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <vector>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"
#include "util/bitops.hpp"

namespace toma::alloc {
namespace {

class GpuAllocatorTest : public ::testing::Test {
 protected:
  GpuAllocatorTest() : ga_(32 * 1024 * 1024, 2) {}
  GpuAllocator ga_;
};

TEST_F(GpuAllocatorTest, ZeroSizeReturnsNull) {
  EXPECT_EQ(ga_.malloc(0), nullptr);
  ga_.free(nullptr);  // must be a no-op
}

TEST_F(GpuAllocatorTest, EffectiveSizeRouting) {
  EXPECT_EQ(GpuAllocator::effective_size(1), 8u);     // min alloc
  EXPECT_EQ(GpuAllocator::effective_size(8), 8u);
  EXPECT_EQ(GpuAllocator::effective_size(9), 16u);
  EXPECT_EQ(GpuAllocator::effective_size(1000), 1024u);
  EXPECT_EQ(GpuAllocator::effective_size(1025), 4096u);  // 2 KB degenerate
  EXPECT_EQ(GpuAllocator::effective_size(2048), 4096u);
  EXPECT_EQ(GpuAllocator::effective_size(4096), 4096u);
  EXPECT_EQ(GpuAllocator::effective_size(5000), 8192u);
  EXPECT_EQ(GpuAllocator::effective_size(512 * 1024), 512u * 1024);
}

TEST_F(GpuAllocatorTest, SmallSizesComeFromUAlloc) {
  for (std::size_t size : {1, 8, 100, 1024}) {
    void* p = ga_.malloc(size);
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(util::is_aligned(p, kPageSize)) << "size " << size;
    ga_.free(p);
  }
}

TEST_F(GpuAllocatorTest, LargeSizesComeFromTBuddy) {
  for (std::size_t size : {2048, 4096, 10000, 262144}) {
    void* p = ga_.malloc(size);
    ASSERT_NE(p, nullptr);
    if (ga_.heapsan_enabled()) {
      // HeapSan returns base + left redzone, so the *user* pointer is
      // deliberately unaligned; the underlying block is still page-aligned.
      EXPECT_FALSE(util::is_aligned(p, kPageSize)) << "size " << size;
    } else {
      EXPECT_TRUE(util::is_aligned(p, kPageSize)) << "size " << size;
    }
    ga_.free(p);
  }
  EXPECT_TRUE(ga_.check_consistency());
}

TEST_F(GpuAllocatorTest, FreeRoutesByAlignment) {
  // Interleave small and large allocations, free in shuffled order; the
  // alignment-based routing must send each pointer home.
  util::Xorshift rng(17);
  std::vector<void*> ptrs;
  for (int i = 0; i < 400; ++i) {
    const std::size_t size =
        (i % 2 == 0) ? (std::size_t{8} << rng.next_below(8))
                     : (std::size_t{4096} << rng.next_below(4));
    void* p = ga_.malloc(size);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  // Shuffle.
  for (std::size_t i = ptrs.size(); i > 1; --i) {
    std::swap(ptrs[i - 1], ptrs[rng.next_below(i)]);
  }
  for (void* p : ptrs) ga_.free(p);
  EXPECT_TRUE(ga_.check_consistency());
  ga_.trim();  // scavenge hysteresis-cached bins
  EXPECT_EQ(ga_.buddy().largest_free_block(), ga_.pool_bytes());
}

TEST_F(GpuAllocatorTest, OversizedRequestFailsCleanly) {
  EXPECT_EQ(ga_.malloc(ga_.pool_bytes() * 2), nullptr);
  EXPECT_EQ(ga_.stats().failed_mallocs, 1u);
  EXPECT_TRUE(ga_.check_consistency());
}

TEST_F(GpuAllocatorTest, WholePoolRoundTrip) {
  // Under HeapSan the redzones count against the block, so the largest
  // satisfiable request is the pool minus both zones.
  const std::size_t overhead =
      ga_.heapsan_enabled() ? ga_.heapsan().wrap_size(0) : 0;
  void* p = ga_.malloc(ga_.pool_bytes() - overhead);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(ga_.malloc(8), nullptr);  // UAlloc cannot grow a chunk now
  ga_.free(p);
  void* q = ga_.malloc(8);
  EXPECT_NE(q, nullptr);
  ga_.free(q);
  EXPECT_TRUE(ga_.check_consistency());
}

TEST_F(GpuAllocatorTest, StatsCount) {
  void* a = ga_.malloc(64);
  void* b = ga_.malloc(8192);
  ga_.free(a);
  ga_.free(b);
  const auto st = ga_.stats();
  EXPECT_EQ(st.mallocs, 2u);
  EXPECT_EQ(st.frees, 2u);
  EXPECT_EQ(st.failed_mallocs, 0u);
}

TEST_F(GpuAllocatorTest, UsableSize) {
  void* small = ga_.malloc(50);
  void* big = ga_.malloc(5000);
  if (ga_.heapsan_enabled()) {
    // Class slack beyond the request is redzone: usable == requested.
    EXPECT_EQ(ga_.usable_size(small), 50u);
    EXPECT_EQ(ga_.usable_size(big), 5000u);
  } else {
    EXPECT_EQ(ga_.usable_size(small), 64u);    // rounded to the class
    EXPECT_EQ(ga_.usable_size(big), 8192u);    // rounded to the order
  }
  ga_.free(small);
  ga_.free(big);
}

TEST_F(GpuAllocatorTest, CallocZeroesAndChecksOverflow) {
  auto* p = static_cast<unsigned char*>(ga_.calloc(16, 33));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 16 * 33; ++i) ASSERT_EQ(p[i], 0);
  ga_.free(p);
  EXPECT_EQ(ga_.calloc(SIZE_MAX / 2, 4), nullptr);  // overflow
  EXPECT_EQ(ga_.calloc(0, 8), nullptr);
}

TEST_F(GpuAllocatorTest, CallocOverflowCountsAsFailedAttempt) {
  const auto before = ga_.stats();
  EXPECT_EQ(ga_.calloc(SIZE_MAX / 2, 4), nullptr);
  const auto after = ga_.stats();
  // The overflow early-return is still an allocation attempt: it must bump
  // both counters, keeping mallocs == frees + failed_mallocs.
  EXPECT_EQ(after.mallocs, before.mallocs + 1);
  EXPECT_EQ(after.failed_mallocs, before.failed_mallocs + 1);
  EXPECT_EQ(after.frees, before.frees);
  EXPECT_EQ(after.mallocs, after.frees + after.failed_mallocs);
}

TEST_F(GpuAllocatorTest, CallocAndReallocKeepStatsConsistent) {
  void* a = ga_.calloc(4, 16);
  ASSERT_NE(a, nullptr);
  void* b = ga_.realloc(nullptr, 32);   // malloc path
  ASSERT_NE(b, nullptr);
  b = ga_.realloc(b, 20);               // same class: no new allocation
  b = ga_.realloc(b, 4096);             // cross-class: malloc + free
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(ga_.realloc(b, 0), nullptr);  // free path
  ga_.free(a);
  EXPECT_EQ(ga_.calloc(0, 8), nullptr);   // zero-size: not an attempt
  const auto st = ga_.stats();
  EXPECT_EQ(st.mallocs, 3u);  // calloc, realloc(nullptr), cross-class grow
  EXPECT_EQ(st.frees, 3u);    // cross-class free, realloc(b,0), free(a)
  EXPECT_EQ(st.failed_mallocs, 0u);
  EXPECT_EQ(st.mallocs, st.frees + st.failed_mallocs);
}

TEST_F(GpuAllocatorTest, ReallocSemantics) {
  // nullptr -> malloc.
  auto* p = static_cast<unsigned char*>(ga_.realloc(nullptr, 40));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, 40);

  // Grow within the same class: pointer unchanged.
  void* same = ga_.realloc(p, 60);
  EXPECT_EQ(same, p);

  // Grow across classes: contents preserved.
  auto* q = static_cast<unsigned char*>(ga_.realloc(p, 500));
  ASSERT_NE(q, nullptr);
  EXPECT_NE(q, static_cast<void*>(p));
  for (int i = 0; i < 40; ++i) ASSERT_EQ(q[i], 0x5A);

  // Grow into the buddy range.
  auto* r = static_cast<unsigned char*>(ga_.realloc(q, 10000));
  ASSERT_NE(r, nullptr);
  for (int i = 0; i < 40; ++i) ASSERT_EQ(r[i], 0x5A);

  // Shrink back to a small class.
  auto* s = static_cast<unsigned char*>(ga_.realloc(r, 16));
  ASSERT_NE(s, nullptr);
  for (int i = 0; i < 16; ++i) ASSERT_EQ(s[i], 0x5A);

  // realloc(p, 0) frees.
  EXPECT_EQ(ga_.realloc(s, 0), nullptr);
  EXPECT_TRUE(ga_.check_consistency());
  ga_.trim();
  EXPECT_EQ(ga_.buddy().largest_free_block(), ga_.pool_bytes());
}

TEST_F(GpuAllocatorTest, ReallocInPlaceFastPath) {
  if (ga_.heapsan_enabled()) {
    // The exact class-boundary arithmetic below assumes no redzone
    // overhead; HeapSanTest.ReallocMovesAndResizesInPlace covers the
    // sanitized equivalent.
    GTEST_SKIP() << "boundary sizes assume redzone-free classes";
  }
  // Any size that rounds to the block's existing capacity returns the same
  // pointer with no copy and no malloc/free — counted in reallocs_inplace.
  auto* p = static_cast<unsigned char*>(ga_.malloc(40));  // 64 B class
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, 40);
  const auto before = ga_.stats();
  EXPECT_EQ(ga_.realloc(p, 33), p);  // shrink within class
  EXPECT_EQ(ga_.realloc(p, 64), p);  // grow to exact capacity
  EXPECT_EQ(ga_.realloc(p, 64), p);  // same size again
  const auto mid = ga_.stats();
  EXPECT_EQ(mid.reallocs, before.reallocs + 3);
  EXPECT_EQ(mid.reallocs_inplace, before.reallocs_inplace + 3);
  EXPECT_EQ(mid.mallocs, before.mallocs);  // no round trip happened
  EXPECT_EQ(mid.frees, before.frees);
  for (int i = 0; i < 33; ++i) ASSERT_EQ(p[i], 0x5A);

  // The buddy side takes the same fast path: 8 KB order, resized within.
  void* big = ga_.malloc(5000);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(ga_.realloc(big, 8192), big);
  EXPECT_EQ(ga_.realloc(big, 4097), big);
  const auto after = ga_.stats();
  EXPECT_EQ(after.reallocs_inplace, mid.reallocs_inplace + 2);

  // Crossing a class boundary still moves (and counts as a plain realloc).
  void* moved = ga_.realloc(p, 65);
  EXPECT_NE(moved, static_cast<void*>(p));
  const auto last = ga_.stats();
  EXPECT_EQ(last.reallocs, after.reallocs + 1);
  EXPECT_EQ(last.reallocs_inplace, after.reallocs_inplace);
  ga_.free(moved);
  ga_.free(big);
  EXPECT_TRUE(ga_.check_consistency());
}

TEST_F(GpuAllocatorTest, ReallocInKernel) {
  gpu::Device dev(test::small_device());
  std::atomic<std::uint64_t> bad{0};
  dev.launch_linear(512, 64, [&](gpu::ThreadCtx& t) {
    auto* p = static_cast<std::uint32_t*>(ga_.malloc(8));
    if (p == nullptr) return;
    p[0] = static_cast<std::uint32_t>(t.global_rank());
    std::size_t cur = 8;
    for (int g = 0; g < 6; ++g) {  // grow 8 -> 16 KB doubling
      cur *= 4;
      auto* np = static_cast<std::uint32_t*>(ga_.realloc(p, cur));
      if (np == nullptr) break;
      p = np;
      if (p[0] != t.global_rank()) bad.fetch_add(1);
      t.yield();
    }
    ga_.free(p);
  });
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_TRUE(ga_.check_consistency());
}

TEST_F(GpuAllocatorTest, ConcurrentMixedKernel) {
  gpu::Device dev(test::small_device());
  std::atomic<std::uint64_t> failed{0};
  dev.launch_linear(4096, 128, [&](gpu::ThreadCtx& t) {
    auto& rng = t.rng();
    const std::size_t size = std::size_t{8} << rng.next_below(11);  // 8B..8KB
    void* p = ga_.malloc(size);
    if (p == nullptr) {
      failed.fetch_add(1);
      return;
    }
    std::memset(p, 0x3C, std::min<std::size_t>(size, 128));
    t.yield();
    ga_.free(p);
  });
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_TRUE(ga_.check_consistency());
  ga_.trim();
  EXPECT_EQ(ga_.buddy().largest_free_block(), ga_.pool_bytes());
}

}  // namespace
}  // namespace toma::alloc
