#include "alloc/stream.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "alloc/pool.hpp"
#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::alloc {
namespace {

constexpr std::size_t kMiB = 1024 * 1024;

HeapConfig small_cfg() {
  return HeapConfig{.pool_bytes = 8 * kMiB, .num_arenas = 2};
}

TEST(StreamAsync, FreeIsDeferredUntilSync) {
  Pool pool("sa-defer", small_cfg());
  pool.set_async(true);  // the suite tests the machinery, not the build default
  gpu::Stream s;
  void* p = pool.malloc(128);
  ASSERT_NE(p, nullptr);

  pool.free_async(p, s);
  // Nothing reached the allocator: the block is parked on the stream,
  // still charged to the accounting.
  EXPECT_EQ(pool.stats().alloc.frees, 0u);
  EXPECT_EQ(pool.stats().stream.pending, 1u);
  EXPECT_EQ(pool.bytes_in_use(), 128u);
  EXPECT_FALSE(s.idle());

  EXPECT_EQ(pool.sync(s), 1u);
  EXPECT_EQ(pool.stats().alloc.frees, 1u);
  EXPECT_EQ(pool.stats().stream.pending, 0u);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_TRUE(s.idle());
  EXPECT_TRUE(pool.check_consistency());
}

TEST(StreamAsync, SameStreamReusesPendingBlock) {
  Pool pool("sa-reuse", small_cfg());
  pool.set_async(true);
  gpu::Stream s;
  void* p = pool.malloc(256);
  ASSERT_NE(p, nullptr);
  pool.free_async(p, s);

  // Stream order makes the pending block reusable without touching the
  // allocator: same pointer, no new malloc, no drain.
  void* q = pool.malloc_async(256, s);
  EXPECT_EQ(q, p);
  EXPECT_EQ(pool.stats().stream.reuse_hits, 1u);
  EXPECT_EQ(pool.stats().stream.pending, 0u);
  EXPECT_EQ(pool.stats().alloc.mallocs, 1u);  // only the original
  EXPECT_EQ(pool.bytes_in_use(), 256u);

  pool.free(q);
  pool.sync(s);
  EXPECT_TRUE(pool.check_consistency());
}

TEST(StreamAsync, ReuseRequiresExactCapacity) {
  Pool pool("sa-exact", small_cfg());
  pool.set_async(true);
  gpu::Stream s;
  void* p = pool.malloc(128);
  ASSERT_NE(p, nullptr);
  pool.free_async(p, s);

  // A different size class cannot take the pending block.
  void* q = pool.malloc_async(256, s);
  EXPECT_NE(q, p);
  ASSERT_NE(q, nullptr);
  EXPECT_GE(pool.stats().stream.reuse_misses, 1u);
  pool.free(q);
  pool.sync(s);
}

TEST(StreamAsync, CrossStreamNeverReuses) {
  Pool pool("sa-cross", small_cfg());
  pool.set_async(true);
  gpu::Stream s1, s2;
  void* p = pool.malloc(256);
  ASSERT_NE(p, nullptr);
  pool.free_async(p, s1);

  // s2 has no ordering relationship with s1's pending free: the block
  // must not be handed out until s1 synchronizes.
  void* q = pool.malloc_async(256, s2);
  EXPECT_NE(q, p);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(pool.stats().stream.reuse_hits, 0u);
  EXPECT_EQ(pool.stats().stream.pending, 1u);

  pool.free(q);
  pool.sync(s1);
  pool.sync(s2);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
}

TEST(StreamAsync, LargeBlocksReuseByExactSize) {
  Pool pool("sa-large", small_cfg());
  pool.set_async(true);
  gpu::Stream s;
  void* p = pool.malloc(8 * 1024);  // TBuddy route, page aligned
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(reinterpret_cast<std::uintptr_t>(p) % kPageSize, 0u);
  pool.free_async(p, s);

  void* q = pool.malloc_async(8 * 1024, s);
  EXPECT_EQ(q, p);
  EXPECT_EQ(pool.stats().stream.reuse_hits, 1u);
  pool.free(q);
  pool.sync(s);
  EXPECT_TRUE(pool.check_consistency());
}

TEST(StreamAsync, OverflowCapForcesInlineDrain) {
  Pool pool("sa-overflow", small_cfg());
  pool.set_async(true);
  gpu::Stream s;
  std::vector<void*> held;
  held.reserve(kStreamPendingCap);
  for (std::uint32_t i = 0; i < kStreamPendingCap; ++i) {
    void* p = pool.malloc(128);  // above the fixed-lane threshold: defers
    ASSERT_NE(p, nullptr);
    held.push_back(p);
  }
  for (void* p : held) pool.free_async(p, s);
  // The cap-th deferred free drained the slot inline — an unsynchronized
  // stream cannot strand unbounded memory.
  EXPECT_GE(pool.stats().stream.overflow_drains, 1u);
  EXPECT_EQ(pool.stats().stream.pending, 0u);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  pool.sync(s);
  EXPECT_TRUE(pool.check_consistency());
}

TEST(StreamAsync, AsyncOffDegeneratesToImmediateFree) {
  Pool pool("sa-off", small_cfg());
  pool.set_async(false);
  gpu::Stream s;
  void* p = pool.malloc(128);
  ASSERT_NE(p, nullptr);
  pool.free_async(p, s);
  EXPECT_EQ(pool.stats().alloc.frees, 1u);
  EXPECT_EQ(pool.stats().stream.pending, 0u);
  EXPECT_EQ(pool.bytes_in_use(), 0u);

  // malloc_async still works; it is plain malloc.
  void* q = pool.malloc_async(128, s);
  ASSERT_NE(q, nullptr);
  pool.free(q);
}

TEST(StreamAsync, TurningAsyncOffDrainsPending) {
  Pool pool("sa-toggle", small_cfg());
  pool.set_async(true);
  gpu::Stream s;
  void* p = pool.malloc(128);
  pool.free_async(p, s);
  EXPECT_EQ(pool.stats().stream.pending, 1u);
  pool.set_async(false);
  EXPECT_EQ(pool.stats().stream.pending, 0u);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
}

TEST(StreamAsync, HeapSanEngagedBypassesDeferral) {
  HeapConfig cfg = small_cfg();
  cfg.heapsan = true;
  Pool pool("sa-san", cfg);
  pool.set_async(true);
  gpu::Stream s;
  void* p = pool.malloc(128);
  ASSERT_NE(p, nullptr);
  // Sanitized pointers are not raw block bases; deferring them would
  // blind the sanitizer, so free_async must free immediately...
  pool.free_async(p, s);
  EXPECT_EQ(pool.stats().stream.pending, 0u);
  // ...and malloc_async must never serve reuse.
  void* q = pool.malloc_async(128, s);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(pool.stats().stream.reuse_hits, 0u);
  pool.free(q);
  pool.sync(s);
}

TEST(StreamAsync, TrimDrainsPendingFirst) {
  Pool pool("sa-trim", small_cfg());
  pool.set_async(true);
  gpu::Stream s;
  void* p = pool.malloc(128);
  pool.free_async(p, s);
  pool.trim();
  EXPECT_EQ(pool.stats().stream.pending, 0u);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
}

TEST(StreamAsync, ReleaseStreamForgetsSlot) {
  Pool pool("sa-release", small_cfg());
  pool.set_async(true);
  gpu::Stream s;
  void* p = pool.malloc(128);
  pool.free_async(p, s);
  EXPECT_EQ(pool.release_stream(s), 1u);
  EXPECT_EQ(pool.stats().stream.pending, 0u);
  EXPECT_TRUE(s.idle());
}

TEST(StreamAsync, DrainBatchesAreCounted) {
  Pool pool("sa-batch", small_cfg());
  pool.set_async(true);
  gpu::Stream s;
  std::vector<void*> held;
  for (int i = 0; i < 100; ++i) held.push_back(pool.malloc(128));
  for (void* p : held) pool.free_async(p, s);
  pool.sync(s);
  const StreamFrontEndStats st = pool.stats().stream;
  EXPECT_EQ(st.deferred, 100u);
  EXPECT_EQ(st.drained, 100u);
  EXPECT_EQ(st.drain_batches, 1u);  // one batch, one grace-period cluster
}

TEST(StreamAsync, SmallFreesRouteThroughLaneNotPendingList) {
  Pool pool("sa-lane", small_cfg());
  pool.set_async(true);
  pool.allocator().set_fixed_lane(true);
  gpu::Stream s;
  void* p = pool.malloc(16);
  ASSERT_NE(p, nullptr);

  // Lane-served sizes bypass the per-(pool, stream) pending machinery:
  // the free completes immediately and the block lands on the lane.
  pool.free_async(p, s);
  EXPECT_EQ(pool.stats().stream.pending, 0u);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_TRUE(s.idle());
  EXPECT_GE(pool.stats().alloc.lane.cached, 1u);

  // The next small malloc_async picks the block up from the lane in O(1)
  // — same recycling the pending scan provided, without the scan.
  void* q = pool.malloc_async(16, s);
  EXPECT_EQ(q, p);
  EXPECT_EQ(pool.stats().stream.reuse_hits, 0u);
  EXPECT_GE(pool.stats().alloc.lane.hits, 1u);
  pool.free(q);
  pool.sync(s);
  EXPECT_TRUE(pool.check_consistency());
}

TEST(StreamAsync, LaneOffRestoresPendingDeferral) {
  Pool pool("sa-lane-off", small_cfg());
  pool.set_async(true);
  pool.allocator().set_fixed_lane(false);
  gpu::Stream s;
  void* p = pool.malloc(16);
  ASSERT_NE(p, nullptr);
  pool.free_async(p, s);
  // Without the lane, small frees defer exactly as before.
  EXPECT_EQ(pool.stats().stream.pending, 1u);
  EXPECT_EQ(pool.sync(s), 1u);
  EXPECT_TRUE(pool.check_consistency());
}

TEST(StreamAsync, KernelChurnWithPerWarpStreams) {
  // Device-side shape: concurrent fibers allocate, write, and free_async
  // onto a handful of streams; host syncs them all afterwards.
  Pool pool("sa-kernel", HeapConfig{.pool_bytes = 16 * kMiB, .num_arenas = 2});
  gpu::Device dev(test::small_device());
  constexpr int kStreams = 4;
  gpu::Stream streams[kStreams];
  std::atomic<std::uint64_t> ok{0};
  dev.launch_linear(2048, 128, [&](gpu::ThreadCtx& t) {
    gpu::Stream& s = streams[t.global_rank() % kStreams];
    const std::size_t size = 16u << (t.global_rank() % 5);  // 16..256 B
    auto* p = static_cast<std::uint8_t*>(pool.malloc_async(size, s));
    if (p == nullptr) return;
    p[0] = static_cast<std::uint8_t>(t.global_rank());
    p[size - 1] = 0x7f;
    t.yield();
    if (p[size - 1] == 0x7f) ok.fetch_add(1);
    pool.free_async(p, s);
  });
  EXPECT_EQ(ok.load(), 2048u);
  for (auto& s : streams) pool.sync(s);
  EXPECT_EQ(pool.stats().stream.pending, 0u);
  EXPECT_EQ(pool.bytes_in_use(), 0u);
  EXPECT_TRUE(pool.check_consistency());
}

}  // namespace
}  // namespace toma::alloc
