// Model-based randomized testing of GpuAllocator.
//
// A shadow model tracks every live allocation (address, size, fill byte).
// Random malloc/free sequences — sequential, OS-thread-parallel, and
// GPU-kernel-parallel — are validated against the model:
//   * returned ranges lie inside the pool and are suitably aligned;
//   * no two live allocations overlap;
//   * canary bytes survive until free (no allocator metadata stomps
//     user data, no user data stomps another allocation);
//   * after freeing everything and trimming, the pool fully coalesces.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "alloc/alloc.hpp"
#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"
#include "util/prng.hpp"

namespace toma::alloc {
namespace {

class ShadowModel {
 public:
  void on_alloc(void* p, std::size_t size, std::uint8_t fill,
                std::uintptr_t pool_base, std::size_t pool_bytes) {
    std::lock_guard<std::mutex> g(mu_);
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    ASSERT_GE(a, pool_base) << "allocation below pool";
    ASSERT_LE(a + size, pool_base + pool_bytes) << "allocation beyond pool";
    // No overlap with any live allocation.
    auto it = live_.upper_bound(a);
    if (it != live_.begin()) {
      auto prev = std::prev(it);
      ASSERT_LE(prev->first + prev->second.size, a)
          << "overlaps predecessor";
    }
    if (it != live_.end()) {
      ASSERT_LE(a + size, it->first) << "overlaps successor";
    }
    live_.emplace(a, Rec{size, fill});
  }

  // Returns the expected fill byte.
  std::uint8_t on_free(void* p, std::size_t* size_out) {
    std::lock_guard<std::mutex> g(mu_);
    const auto a = reinterpret_cast<std::uintptr_t>(p);
    auto it = live_.find(a);
    EXPECT_NE(it, live_.end()) << "free of unknown pointer";
    const std::uint8_t fill = it->second.fill;
    *size_out = it->second.size;
    live_.erase(it);
    return fill;
  }

  std::size_t live_count() {
    std::lock_guard<std::mutex> g(mu_);
    return live_.size();
  }

 private:
  struct Rec {
    std::size_t size;
    std::uint8_t fill;
  };
  std::mutex mu_;
  std::map<std::uintptr_t, Rec> live_;
};

struct Held {
  void* p = nullptr;
  std::size_t size = 0;
  std::uint8_t fill = 0;
};

void fuzz_worker(GpuAllocator& ga, ShadowModel& model, std::uint64_t seed,
                 int iters, std::size_t max_size_log2,
                 const std::function<void()>& pause) {
  util::Xorshift rng(seed);
  std::vector<Held> held;
  const auto base = reinterpret_cast<std::uintptr_t>(ga.buddy().pool_base());
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t roll = rng.next_below(100);
    const bool do_free = !held.empty() && roll < 40;
    const bool do_realloc = !held.empty() && !do_free && roll < 52;
    if (do_realloc) {
      // Resize a held block: contents up to min(old, new) must survive,
      // whether the allocator resized in place or moved the block.
      const std::size_t k = rng.next_below(held.size());
      Held h = held[k];
      const std::size_t new_size =
          1 + (std::size_t{1} << rng.next_below(max_size_log2));
      void* np = ga.realloc(h.p, new_size);
      if (np == nullptr) continue;  // OOM: the old block is untouched
      auto* c = static_cast<std::uint8_t*>(np);
      const std::size_t keep = std::min(h.size, new_size);
      for (std::size_t b = 0; b < keep; ++b) {
        ASSERT_EQ(c[b], h.fill) << "realloc lost byte " << b;
      }
      std::size_t msize;
      const std::uint8_t fill = model.on_free(h.p, &msize);
      EXPECT_EQ(fill, h.fill);
      EXPECT_EQ(msize, h.size);
      const auto nfill = static_cast<std::uint8_t>(rng.next() | 1);
      std::memset(np, nfill, new_size);
      model.on_alloc(np, new_size, nfill, base, ga.pool_bytes());
      held[k] = Held{np, new_size, nfill};
    } else if (do_free) {
      const std::size_t k = rng.next_below(held.size());
      Held h = held[k];
      held[k] = held.back();
      held.pop_back();
      // Canary check over the whole range.
      auto* c = static_cast<std::uint8_t*>(h.p);
      for (std::size_t b = 0; b < h.size; ++b) {
        ASSERT_EQ(c[b], h.fill) << "corruption at byte " << b;
      }
      std::size_t msize;
      const std::uint8_t fill = model.on_free(h.p, &msize);
      EXPECT_EQ(fill, h.fill);
      EXPECT_EQ(msize, h.size);
      ga.free(h.p);
    } else {
      // Sizes biased small, occasionally huge (buddy range).
      const std::size_t size =
          1 + (std::size_t{1} << rng.next_below(max_size_log2));
      void* p = ga.malloc(size);
      if (p == nullptr) continue;  // OOM is legal under pressure
      const std::size_t eff = GpuAllocator::effective_size(size);
      const auto fill = static_cast<std::uint8_t>(rng.next() | 1);
      std::memset(p, fill, size);
      model.on_alloc(p, size, fill, base, ga.pool_bytes());
      (void)eff;
      held.push_back(Held{p, size, fill});
    }
    if ((i & 15) == 0) pause();
  }
  for (Held& h : held) {
    auto* c = static_cast<std::uint8_t*>(h.p);
    for (std::size_t b = 0; b < h.size; ++b) {
      ASSERT_EQ(c[b], h.fill);
    }
    std::size_t msize;
    model.on_free(h.p, &msize);
    ga.free(h.p);
  }
}

TEST(FuzzModel, Sequential) {
  GpuAllocator ga(32 * 1024 * 1024, 2);
  ShadowModel model;
  fuzz_worker(ga, model, 0xF00D, 8000, 16, [] {});
  EXPECT_EQ(model.live_count(), 0u);
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
}

TEST(FuzzModel, OsThreads) {
  GpuAllocator ga(32 * 1024 * 1024, 4);
  ShadowModel model;
  test::run_os_threads(4, [&](unsigned tid) {
    fuzz_worker(ga, model, 0xBEEF + tid, 3000, 14,
                [] { std::this_thread::yield(); });
  });
  EXPECT_EQ(model.live_count(), 0u);
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
}

TEST(FuzzModel, GpuKernel) {
  gpu::Device dev(test::small_device(4, 512, 1));
  GpuAllocator ga(64 * 1024 * 1024, dev.num_sms());
  ShadowModel model;
  dev.launch_linear(512, 64, [&](gpu::ThreadCtx& t) {
    fuzz_worker(ga, model, 0xCAFE + t.global_rank(), 60, 13,
                [&t] { t.yield(); });
  });
  EXPECT_EQ(model.live_count(), 0u);
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
}

// The caching front-ends (UAlloc magazines, TBuddy quicklists) reroute the
// hot paths entirely, so the model must hold under every toggle
// combination — not just the build's compile-time default.
TEST(FuzzModel, ToggleMatrix) {
  for (const bool magazines : {false, true}) {
    for (const bool quicklist : {false, true}) {
      SCOPED_TRACE(testing::Message() << "magazines=" << magazines
                                      << " quicklist=" << quicklist);
      GpuAllocator ga(32 * 1024 * 1024, 2);
      ga.ualloc().set_magazines(magazines);
      ga.buddy().set_quicklist(quicklist);
      ShadowModel model;
      const std::uint64_t seed =
          0xAB1E + (magazines ? 2u : 0u) + (quicklist ? 1u : 0u);
      fuzz_worker(ga, model, seed, 4000, 15, [] {});
      EXPECT_EQ(model.live_count(), 0u);
      EXPECT_TRUE(ga.check_consistency());
      ga.trim();
      EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
    }
  }
}

// Same model, HeapSan interposed: redzones, poison and the quarantine must
// be invisible to a correct client (canaries intact, pool still coalesces).
TEST(FuzzModel, SequentialHeapSan) {
  GpuAllocator ga(32 * 1024 * 1024, 2);
  ga.set_heapsan(true);
  ShadowModel model;
  fuzz_worker(ga, model, 0x5A17, 6000, 15, [] {});
  EXPECT_EQ(model.live_count(), 0u);
  EXPECT_TRUE(ga.check_consistency());
  EXPECT_EQ(ga.stats().heapsan.live_blocks, 0u);
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
}

TEST(FuzzModel, GpuKernelMultiWorker) {
  gpu::Device dev(test::small_device(4, 256, 2));
  GpuAllocator ga(64 * 1024 * 1024, dev.num_sms());
  ShadowModel model;
  dev.launch_linear(256, 64, [&](gpu::ThreadCtx& t) {
    fuzz_worker(ga, model, 0xD00D + t.global_rank(), 40, 13,
                [&t] { t.yield(); });
  });
  EXPECT_EQ(model.live_count(), 0u);
  EXPECT_TRUE(ga.check_consistency());
}

}  // namespace
}  // namespace toma::alloc
