#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::gpu {
namespace {

TEST(BlockBarrier, PhasesAreOrdered) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  dev.launch(Dim3{4}, Dim3{96}, [&](ThreadCtx& t) {
    auto* phase = static_cast<std::atomic<std::uint32_t>*>(t.shared_mem());
    // Phase 0: everyone increments counter 0; after the barrier, every
    // thread must observe the full count — the defining property.
    phase[0].fetch_add(1);
    t.sync_block();
    if (phase[0].load() != 96) bad.fetch_add(1);
    phase[1].fetch_add(1);
    t.sync_block();
    if (phase[1].load() != 96) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(BlockBarrier, ManyIterations) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  dev.launch(Dim3{2}, Dim3{64}, [&](ThreadCtx& t) {
    auto* counter = static_cast<std::atomic<std::uint32_t>*>(t.shared_mem());
    for (int round = 1; round <= 50; ++round) {
      counter->fetch_add(1);
      t.sync_block();
      if (counter->load() != static_cast<std::uint32_t>(round) * 64)
        bad.fetch_add(1);
      t.sync_block();
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(BlockBarrier, ExactlyOneReleaserPerGeneration) {
  Device dev(test::small_device());
  std::atomic<std::uint32_t> releasers{0};
  dev.launch(Dim3{1}, Dim3{128}, [&](ThreadCtx& t) {
    for (int round = 0; round < 10; ++round) {
      if (t.block().barrier.arrive_and_wait(t)) {
        releasers.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(releasers.load(), 10u);
}

TEST(BlockBarrier, ToleratesEarlyThreadExit) {
  // CUDA-on-Volta semantics: threads that returned do not participate.
  Device dev(test::small_device());
  std::atomic<std::uint32_t> past_barrier{0};
  dev.launch(Dim3{4}, Dim3{100}, [&](ThreadCtx& t) {
    if (t.thread_rank() >= 25) return;  // 75 of 100 exit immediately
    t.sync_block();
    past_barrier.fetch_add(1);
  });
  EXPECT_EQ(past_barrier.load(), 4u * 25);
}

TEST(BlockBarrier, ExitAfterSomeArrivalsReleasesWaiters) {
  // Half the threads barrier once and exit; the others barrier twice.
  // The second barrier must release with only the survivors.
  Device dev(test::small_device());
  std::atomic<std::uint32_t> finished{0};
  dev.launch(Dim3{2}, Dim3{64}, [&](ThreadCtx& t) {
    t.sync_block();
    if (t.thread_rank() % 2 == 0) return;
    t.sync_block();  // only 32 arrive; 32 exited after the first barrier
    finished.fetch_add(1);
  });
  EXPECT_EQ(finished.load(), 64u);
}

TEST(BlockBarrier, SingleThreadBlockTrivial) {
  Device dev(test::small_device());
  std::atomic<int> ran{0};
  dev.launch(Dim3{8}, Dim3{1}, [&](ThreadCtx& t) {
    t.sync_block();
    t.sync_block();
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace toma::gpu
