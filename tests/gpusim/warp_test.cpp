#include "gpusim/warp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::gpu {
namespace {

TEST(CoalescedGroup, FullWarpsCoalesce) {
  Device dev(test::small_device());
  std::atomic<std::uint32_t> leaders{0}, members{0};
  int tag;
  dev.launch(Dim3{4}, Dim3{128}, [&](ThreadCtx& t) {
    CoalescedGroup g = coalesce_warp(t, &tag);
    members.fetch_add(1);
    if (g.is_leader()) leaders.fetch_add(1);
    // Groups are warp-local, so never larger than a warp.
    if (g.size() > 32) std::abort();
  });
  EXPECT_EQ(members.load(), 512u);
  // All 32 lanes of every warp arrive at the same call; with co-scheduled
  // lanes they coalesce into one group per warp (16 warps total). Allow a
  // bit of slack in case the scheduler splits a window, but the typical
  // result is exactly 16.
  EXPECT_GE(leaders.load(), 16u);
  EXPECT_LE(leaders.load(), 32u);
}

TEST(CoalescedGroup, RanksAreDenseAndLeaderUnique) {
  Device dev(test::small_device());
  std::mutex mu;
  std::map<std::uint64_t, std::vector<std::uint32_t>> by_token;
  int tag;
  dev.launch(Dim3{2}, Dim3{64}, [&](ThreadCtx& t) {
    CoalescedGroup g = coalesce_warp(t, &tag);
    std::lock_guard<std::mutex> lock(mu);
    by_token[g.token()].push_back(g.rank());
  });
  ASSERT_FALSE(by_token.empty());
  for (auto& [token, ranks] : by_token) {
    EXPECT_NE(token, 0u);
    std::vector<std::uint32_t> sorted = ranks;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < sorted.size(); ++i) {
      EXPECT_EQ(sorted[i], i) << "ranks not dense for token " << token;
    }
  }
}

TEST(CoalescedGroup, DifferentTagsDoNotMix) {
  Device dev(test::small_device());
  int tag_a, tag_b;
  std::atomic<int> bad{0};
  dev.launch(Dim3{2}, Dim3{64}, [&](ThreadCtx& t) {
    const bool is_a = (t.thread_rank() % 2) == 0;
    CoalescedGroup g = coalesce_warp(t, is_a ? &tag_a : &tag_b);
    // A group formed around tag A must contain at most the 16 even lanes
    // of the warp (and vice versa).
    if (g.size() > 16) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(CoalescedGroup, SingleThreadGroup) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  int tag;
  dev.launch(Dim3{1}, Dim3{1}, [&](ThreadCtx& t) {
    CoalescedGroup g = coalesce_warp(t, &tag);
    if (g.size() != 1 || g.rank() != 0 || !g.is_leader()) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(CoalescedGroup, RepeatedWindowsOnSameWarp) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  int tag;
  dev.launch(Dim3{1}, Dim3{32}, [&](ThreadCtx& t) {
    std::uint64_t last_token = 0;
    for (int i = 0; i < 8; ++i) {
      CoalescedGroup g = coalesce_warp(t, &tag);
      if (g.size() == 0 || g.rank() >= g.size()) bad.fetch_add(1);
      if (g.token() == last_token) bad.fetch_add(1);  // fresh window, fresh token
      last_token = g.token();
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(CoalescedGroup, SingletonFactory) {
  CoalescedGroup g = CoalescedGroup::singleton(42);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.rank(), 0u);
  EXPECT_TRUE(g.is_leader());
  EXPECT_NE(g.token(), 0u);
  // Token 0 input still yields a non-zero token.
  EXPECT_NE(CoalescedGroup::singleton(0).token(), 0u);
}

TEST(WarpBroadcast, LeaderValueReachesAllMembers) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  int tag;
  dev.launch(Dim3{4}, Dim3{64}, [&](ThreadCtx& t) {
    CoalescedGroup g = coalesce_warp(t, &tag);
    // Leader contributes a group-specific value; members must receive it.
    const std::uint64_t mine = g.is_leader() ? g.token() : 0xdead;
    const std::uint64_t got = warp_broadcast(t, g, mine);
    if (got != g.token()) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(WarpBroadcast, SingletonReturnsOwnValue) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  dev.launch(Dim3{1}, Dim3{1}, [&](ThreadCtx& t) {
    CoalescedGroup g = CoalescedGroup::singleton(9);
    if (warp_broadcast(t, g, 1234) != 1234) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(WarpBroadcast, RepeatedBroadcastsOnSameWarp) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  int tag;
  dev.launch(Dim3{1}, Dim3{32}, [&](ThreadCtx& t) {
    for (int round = 0; round < 6; ++round) {
      CoalescedGroup g = coalesce_warp(t, &tag);
      const std::uint64_t v =
          warp_broadcast(t, g, g.is_leader() ? g.token() + round : 0);
      if (v != g.token() + round) bad.fetch_add(1);
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(WarpBroadcast, PointerConvenience) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  int tag;
  int payload = 7;
  dev.launch(Dim3{1}, Dim3{64}, [&](ThreadCtx& t) {
    CoalescedGroup g = coalesce_warp(t, &tag);
    int* got = warp_broadcast_ptr(t, g, g.is_leader() ? &payload : nullptr);
    if (got != &payload || *got != 7) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(CoalescedGroup, PartialWarpCoalesces) {
  Device dev(test::small_device());
  std::atomic<std::uint32_t> max_size{0};
  int tag;
  dev.launch(Dim3{1}, Dim3{20}, [&](ThreadCtx& t) {  // one partial warp
    CoalescedGroup g = coalesce_warp(t, &tag);
    std::uint32_t cur = max_size.load();
    while (g.size() > cur && !max_size.compare_exchange_weak(cur, g.size())) {
    }
  });
  EXPECT_LE(max_size.load(), 20u);
  EXPECT_GE(max_size.load(), 1u);
}

}  // namespace
}  // namespace toma::gpu
