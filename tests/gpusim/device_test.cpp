#include "gpusim/device.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "gpusim/this_thread.hpp"
#include "support/test_support.hpp"

namespace toma::gpu {
namespace {

TEST(Device, EveryThreadRunsOnce) {
  Device dev(test::small_device());
  std::atomic<std::uint64_t> count{0};
  dev.launch(Dim3{10}, Dim3{100}, [&](ThreadCtx&) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 1000u);
}

TEST(Device, GlobalRanksAreUniqueAndDense) {
  Device dev(test::small_device());
  const std::uint64_t total = 7 * 96;
  std::vector<std::atomic<int>> seen(total);
  dev.launch(Dim3{7}, Dim3{96}, [&](ThreadCtx& t) {
    seen[t.global_rank()].fetch_add(1);
  });
  for (std::uint64_t i = 0; i < total; ++i) EXPECT_EQ(seen[i].load(), 1);
}

TEST(Device, ThreadIdentityFields) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  dev.launch(Dim3{4}, Dim3{70}, [&](ThreadCtx& t) {
    if (t.thread_rank() >= 70) bad.fetch_add(1);
    if (t.block_rank() >= 4) bad.fetch_add(1);
    if (t.warp_rank() != t.thread_rank() / 32) bad.fetch_add(1);
    if (t.lane_id() != t.thread_rank() % 32) bad.fetch_add(1);
    if (t.global_rank() != t.block_rank() * 70 + t.thread_rank())
      bad.fetch_add(1);
    if (t.sm_id() >= t.device().num_sms()) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Device, Dim3Decode) {
  Dim3 d{4, 3, 2};
  EXPECT_EQ(d.count(), 24u);
  const Dim3 c0 = d.decode(0);
  EXPECT_EQ(c0.x, 0u);
  const Dim3 c5 = d.decode(5);
  EXPECT_EQ(c5.x, 1u);
  EXPECT_EQ(c5.y, 1u);
  EXPECT_EQ(c5.z, 0u);
  const Dim3 last = d.decode(23);
  EXPECT_EQ(last.x, 3u);
  EXPECT_EQ(last.y, 2u);
  EXPECT_EQ(last.z, 1u);
}

TEST(Device, ThreeDimensionalIds) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  dev.launch(Dim3{2, 2, 2}, Dim3{8, 2, 2}, [&](ThreadCtx& t) {
    const Dim3 ti = t.thread_idx();
    const Dim3 bd = t.block_dim();
    if (ti.x >= bd.x || ti.y >= bd.y || ti.z >= bd.z) bad.fetch_add(1);
    const Dim3 bi = t.block_idx();
    const Dim3 gd = t.grid_dim();
    if (bi.x >= gd.x || bi.y >= gd.y || bi.z >= gd.z) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Device, WaveExecutionBeyondResidency) {
  // Grid far larger than residency: 2 SMs x 512 = 1024 resident, grid 16k.
  Device dev(test::small_device(2, 512, 1));
  std::atomic<std::uint64_t> count{0};
  dev.launch_linear(16384, 128, [&](ThreadCtx& t) {
    t.yield();  // force scheduler interleaving
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 16384u);
  EXPECT_GE(dev.stats().blocks_executed, 128u);
}

TEST(Device, KernelExceptionPropagates) {
  Device dev(test::small_device());
  EXPECT_THROW(
      dev.launch(Dim3{1}, Dim3{32},
                 [&](ThreadCtx& t) {
                   if (t.thread_rank() == 7) throw std::runtime_error("boom");
                 }),
      std::runtime_error);
}

TEST(Device, SharedMemoryPerBlock) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  dev.launch(Dim3{8}, Dim3{64}, [&](ThreadCtx& t) {
    auto* slots = static_cast<std::atomic<std::uint32_t>*>(t.shared_mem());
    // Each thread publishes into shared memory; thread 0 sums after a
    // barrier. Shared memory is zeroed at block start.
    slots[t.thread_rank()].store(1, std::memory_order_relaxed);
    t.sync_block();
    if (t.thread_rank() == 0) {
      std::uint32_t sum = 0;
      for (std::uint32_t i = 0; i < 64; ++i) sum += slots[i].load();
      if (sum != 64) bad.fetch_add(1);
    }
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(Device, YieldPreservesForwardProgress) {
  // A thread yielding in a loop must not starve others on the same SM:
  // thread 0 spins until every other thread of its block sets a flag.
  Device dev(test::small_device(1, 256, 1));
  std::atomic<int> done_blocks{0};
  dev.launch(Dim3{4}, Dim3{64}, [&](ThreadCtx& t) {
    auto* flags = static_cast<std::atomic<std::uint32_t>*>(t.shared_mem());
    if (t.thread_rank() == 0) {
      for (;;) {
        std::uint32_t sum = 0;
        for (std::uint32_t i = 1; i < 64; ++i) sum += flags[i].load();
        if (sum == 63) break;
        t.yield();
      }
      done_blocks.fetch_add(1);
    } else {
      flags[t.thread_rank()].store(1);
    }
  });
  EXPECT_EQ(done_blocks.load(), 4);
}

TEST(Device, MultiWorkerLaunch) {
  // Even on a single-core host this exercises the multi-worker code path.
  Device dev(test::small_device(4, 256, 2));
  std::atomic<std::uint64_t> count{0};
  dev.launch_linear(4096, 64, [&](ThreadCtx& t) {
    t.yield();
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 4096u);
}

TEST(Device, RngIsPerThreadAndSeedStable) {
  Device dev(test::small_device());
  std::atomic<std::uint64_t> sum1{0}, sum2{0};
  auto kernel = [](std::atomic<std::uint64_t>& sum) {
    return [&sum](ThreadCtx& t) {
      sum.fetch_add(t.rng().next(), std::memory_order_relaxed);
    };
  };
  dev.launch(Dim3{4}, Dim3{64}, kernel(sum1));
  dev.launch(Dim3{4}, Dim3{64}, kernel(sum2));
  // Same grid, same per-thread seeds: identical aggregate.
  EXPECT_EQ(sum1.load(), sum2.load());
  EXPECT_NE(sum1.load(), 0u);
}

TEST(ThisThread, OutsideKernelFallbacks) {
  EXPECT_FALSE(this_thread::in_kernel());
  EXPECT_EQ(this_thread::current(), nullptr);
  this_thread::yield();  // must not crash
  const std::uint64_t a = this_thread::scatter_seed();
  const std::uint64_t b = this_thread::scatter_seed();
  EXPECT_NE(a, b);
  EXPECT_LT(this_thread::sm_id_or_hash(8), 8u);
}

TEST(ThisThread, InsideKernelIdentity) {
  Device dev(test::small_device());
  std::atomic<int> bad{0};
  dev.launch(Dim3{2}, Dim3{32}, [&](ThreadCtx& t) {
    if (!this_thread::in_kernel()) bad.fetch_add(1);
    if (this_thread::current() != &t) bad.fetch_add(1);
    if (this_thread::sm_id_or_hash(t.device().num_sms()) != t.sm_id())
      bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_FALSE(this_thread::in_kernel());
}

}  // namespace
}  // namespace toma::gpu
