#include "gpusim/fiber.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace toma::gpu {
namespace {

struct PingPong {
  Fiber fiber;
  int counter = 0;
  static void entry(void* arg) {
    auto* self = static_cast<PingPong*>(arg);
    for (int i = 0; i < 5; ++i) {
      ++self->counter;
      self->fiber.suspend();
    }
    self->fiber.mark_finished();
    self->fiber.suspend();
  }
};

TEST(Fiber, ResumeSuspendRoundTrip) {
  StackPool pool(32 * 1024);
  PingPong pp;
  pp.fiber.reset(pool.acquire(), &PingPong::entry, &pp);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_FALSE(pp.fiber.finished());
    pp.fiber.resume();
    EXPECT_EQ(pp.counter, i);
  }
  pp.fiber.resume();  // runs to completion
  EXPECT_TRUE(pp.fiber.finished());
  pool.release(pp.fiber.take_stack());
  EXPECT_EQ(pool.pooled(), 1u);
}

TEST(Fiber, ManyFibersInterleave) {
  StackPool pool(32 * 1024);
  constexpr int kN = 64;
  struct Worker {
    Fiber fiber;
    int step = 0;
    static void entry(void* arg) {
      auto* w = static_cast<Worker*>(arg);
      for (int i = 0; i < 10; ++i) {
        ++w->step;
        w->fiber.suspend();
      }
      w->fiber.mark_finished();
      w->fiber.suspend();
    }
  };
  std::vector<Worker> ws(kN);
  for (auto& w : ws) w.fiber.reset(pool.acquire(), &Worker::entry, &w);
  // Round-robin: all fibers advance in lockstep.
  for (int round = 1; round <= 10; ++round) {
    for (auto& w : ws) {
      w.fiber.resume();
      EXPECT_EQ(w.step, round);
    }
  }
  for (auto& w : ws) {
    w.fiber.resume();
    EXPECT_TRUE(w.fiber.finished());
    pool.release(w.fiber.take_stack());
  }
  EXPECT_EQ(pool.pooled(), static_cast<std::size_t>(kN));
}

TEST(Fiber, RecycleFiberForNewEntry) {
  StackPool pool(32 * 1024);
  PingPong pp;
  pp.fiber.reset(pool.acquire(), &PingPong::entry, &pp);
  while (!pp.fiber.finished()) pp.fiber.resume();
  EXPECT_EQ(pp.counter, 5);
  // Reuse the same Fiber object with a fresh stack and state.
  pp.counter = 0;
  pool.release(pp.fiber.take_stack());
  pp.fiber.reset(pool.acquire(), &PingPong::entry, &pp);
  while (!pp.fiber.finished()) pp.fiber.resume();
  EXPECT_EQ(pp.counter, 5);
}

TEST(Stack, GuardPageAndAlignment) {
  Stack s(16 * 1024);
  ASSERT_TRUE(s.valid());
  EXPECT_GE(s.usable_bytes(), 16u * 1024);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.top()) % 16, 0u);
}

TEST(StackPool, Reuse) {
  StackPool pool(16 * 1024);
  Stack s1 = pool.acquire();
  void* top = s1.top();
  pool.release(std::move(s1));
  Stack s2 = pool.acquire();
  EXPECT_EQ(s2.top(), top);  // same stack came back
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(Fiber, DeepStackUse) {
  // Recurse enough to exercise a good chunk of the stack without
  // overflowing: validates the stack is genuinely usable memory.
  StackPool pool(64 * 1024);
  struct Deep {
    Fiber fiber;
    int result = 0;
    static int rec(int n) {
      volatile char pad[512];
      pad[0] = static_cast<char>(n);
      if (n == 0) return pad[0];
      return rec(n - 1) + 1;
    }
    static void entry(void* arg) {
      auto* d = static_cast<Deep*>(arg);
      d->result = rec(64);  // ~32 KB of frames
      d->fiber.mark_finished();
      d->fiber.suspend();
    }
  };
  Deep d;
  d.fiber.reset(pool.acquire(), &Deep::entry, &d);
  d.fiber.resume();
  EXPECT_TRUE(d.fiber.finished());
  EXPECT_EQ(d.result, 64);
}

}  // namespace
}  // namespace toma::gpu
