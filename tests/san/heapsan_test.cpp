// HeapSan subsystem tests (docs/INTERNALS.md §5).
//
// The negative tests inject one bug of each class — double-free, OOB
// write, use-after-free, leak — and assert HeapSan reports it precisely,
// with the magazine and quicklist fast paths explicitly ENABLED: the
// quarantine must compose with the caching front-ends, not require them
// off. A capturing report handler stands in for the default
// print-and-abort handler so the binary keeps running after a detection.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "alloc/alloc.hpp"
#include "gpusim/gpusim.hpp"
#include "obs/telemetry.hpp"
#include "san/heapsan.hpp"
#include "san/report.hpp"
#include "support/test_support.hpp"

namespace toma::alloc {
namespace {

std::mutex g_reports_mu;
std::vector<san::BugReport> g_reports;

void capture_report(const san::BugReport& r) {
  std::lock_guard<std::mutex> g(g_reports_mu);
  g_reports.push_back(r);
}

std::size_t reports_of(san::BugKind kind) {
  std::lock_guard<std::mutex> g(g_reports_mu);
  std::size_t n = 0;
  for (const san::BugReport& r : g_reports) {
    if (r.kind == kind) ++n;
  }
  return n;
}

san::BugReport first_of(san::BugKind kind) {
  std::lock_guard<std::mutex> g(g_reports_mu);
  for (const san::BugReport& r : g_reports) {
    if (r.kind == kind) return r;
  }
  ADD_FAILURE() << "no report of kind " << san::bug_kind_name(kind);
  return {};
}

class HeapSanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      std::lock_guard<std::mutex> g(g_reports_mu);
      g_reports.clear();
    }
    prev_ = san::set_report_handler(&capture_report);
  }
  void TearDown() override { san::set_report_handler(prev_); }

  /// Allocator with HeapSan on and both caching fast paths forced ON
  /// (whatever the build's compile-time defaults), per the acceptance
  /// criteria: detection must work *through* magazines and quicklists.
  static std::unique_ptr<GpuAllocator> make_ga(
      std::size_t pool_bytes = 32 * 1024 * 1024, std::uint32_t arenas = 2) {
    auto ga = std::make_unique<GpuAllocator>(pool_bytes, arenas);
    ga->set_heapsan(true);
    ga->ualloc().set_magazines(true);
    ga->buddy().set_quicklist(true);
    return ga;
  }

  san::ReportHandler prev_ = nullptr;
};

TEST_F(HeapSanTest, LifecycleIsCleanAndSizesAreExact) {
  auto ga = make_ga();
  auto* p = static_cast<unsigned char*>(ga->malloc(50));
  ASSERT_NE(p, nullptr);
  // usable_size is the requested size exactly: the class slack is redzone.
  EXPECT_EQ(ga->usable_size(p), 50u);
  // Alloc poison is visible before first write.
  EXPECT_EQ(p[0], san::HeapSan::kAllocPoison);
  EXPECT_EQ(p[49], san::HeapSan::kAllocPoison);
  std::memset(p, 0x11, 50);  // write every requested byte: legal
  void* big = ga->malloc(5000);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(ga->usable_size(big), 5000u);
  ga->free(p);
  ga->free(big);
  const auto st = ga->stats();
  EXPECT_TRUE(st.heapsan.enabled);
  EXPECT_EQ(st.heapsan.live_blocks, 0u);
  EXPECT_EQ(st.heapsan.quarantine_pushes, 2u);
  EXPECT_GE(st.heapsan.redzone_checks, 2u);
  EXPECT_TRUE(ga->check_consistency());
  ga->trim();
  EXPECT_EQ(ga->buddy().largest_free_block(), ga->pool_bytes());
  ga.reset();
  std::lock_guard<std::mutex> g(g_reports_mu);
  EXPECT_TRUE(g_reports.empty()) << "clean lifecycle must not report";
}

TEST_F(HeapSanTest, FreePoisonIsReadableWhileQuarantined) {
  auto ga = make_ga();
  auto* p = static_cast<unsigned char*>(ga->malloc(64));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x77, 64);
  ga->free(p);
  // The block sits in quarantine: its memory is still mapped and now
  // carries the free poison — reads of freed memory are detectable.
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(p[i], san::HeapSan::kFreePoison) << "byte " << i;
  }
  EXPECT_GE(ga->stats().heapsan.quarantined_blocks, 1u);
}

TEST_F(HeapSanTest, QuarantineDelaysReuse) {
  auto ga = make_ga();
  void* p = ga->malloc(32);
  ASSERT_NE(p, nullptr);
  ga->free(p);
  // While quarantined, the block's base is never handed back, so no malloc
  // can return the same user pointer — even through the magazines.
  std::vector<void*> got;
  for (int i = 0; i < 16; ++i) {
    void* q = ga->malloc(32);
    ASSERT_NE(q, nullptr);
    EXPECT_NE(q, p) << "quarantined block was reissued";
    got.push_back(q);
  }
  for (void* q : got) ga->free(q);
  EXPECT_GT(ga->stats().heapsan.quarantined_blocks, 0u);
  ga->trim();  // drains quarantine
  EXPECT_EQ(ga->stats().heapsan.quarantined_blocks, 0u);
  EXPECT_EQ(ga->buddy().largest_free_block(), ga->pool_bytes());
}

TEST_F(HeapSanTest, DetectsDoubleFreeSmallBlock) {
  auto ga = make_ga();
  void* p = ga->malloc(64);
  ASSERT_NE(p, nullptr);
  ga->free(p);
  ga->free(p);  // bug: second free of a quarantined block
  EXPECT_EQ(reports_of(san::BugKind::kDoubleFree), 1u);
  const san::BugReport r = first_of(san::BugKind::kDoubleFree);
  EXPECT_EQ(r.user_ptr, p);
  EXPECT_EQ(r.user_size, 64u);
  // The duplicate free was dropped, not double-counted into the allocator.
  EXPECT_TRUE(ga->check_consistency());
  ga->trim();
  EXPECT_EQ(ga->buddy().largest_free_block(), ga->pool_bytes());
}

TEST_F(HeapSanTest, DetectsDoubleFreeBuddyBlock) {
  auto ga = make_ga();
  void* p = ga->malloc(8192);
  ASSERT_NE(p, nullptr);
  ga->free(p);
  ga->free(p);
  EXPECT_EQ(reports_of(san::BugKind::kDoubleFree), 1u);
  EXPECT_TRUE(ga->check_consistency());
}

TEST_F(HeapSanTest, DetectsOutOfBoundsWriteRight) {
  auto ga = make_ga();
  auto* p = static_cast<unsigned char*>(ga->malloc(48));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x22, 48);
  p[48] = 0x99;  // bug: one byte past the requested size
  ga->free(p);
  EXPECT_EQ(reports_of(san::BugKind::kOob), 1u);
  const san::BugReport r = first_of(san::BugKind::kOob);
  EXPECT_EQ(r.bad_offset, 48);
  EXPECT_EQ(r.found, 0x99);
  EXPECT_EQ(r.expected, san::HeapSan::kRedzoneRight);
  // A reported OOB still completes the free; nothing leaks.
  ga->trim();
  EXPECT_EQ(ga->stats().heapsan.live_blocks, 0u);
}

TEST_F(HeapSanTest, DetectsOutOfBoundsWriteLeft) {
  auto ga = make_ga();
  auto* p = static_cast<unsigned char*>(ga->malloc(48));
  ASSERT_NE(p, nullptr);
  p[-1] = 0x55;  // bug: underflow into the left redzone
  ga->free(p);
  EXPECT_EQ(reports_of(san::BugKind::kOob), 1u);
  const san::BugReport r = first_of(san::BugKind::kOob);
  EXPECT_EQ(r.bad_offset, -1);
  EXPECT_EQ(r.expected, san::HeapSan::kRedzoneLeft);
}

TEST_F(HeapSanTest, DetectsUseAfterFreeOnEviction) {
  auto ga = make_ga();
  auto* p = static_cast<unsigned char*>(ga->malloc(128));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x33, 128);
  ga->free(p);
  p[5] = 0xEE;  // bug: write through a dangling pointer
  // Poison is re-verified when the block leaves quarantine.
  ga->heapsan().flush_quarantine();
  EXPECT_EQ(reports_of(san::BugKind::kUaf), 1u);
  const san::BugReport r = first_of(san::BugKind::kUaf);
  EXPECT_EQ(r.bad_offset, 5);
  EXPECT_EQ(r.found, 0xEE);
  EXPECT_EQ(r.expected, san::HeapSan::kFreePoison);
}

TEST_F(HeapSanTest, DetectsLeakAtTeardown) {
  auto ga = make_ga();
  void* leaked = ga->malloc(77);
  ASSERT_NE(leaked, nullptr);
  void* freed = ga->malloc(64);
  ASSERT_NE(freed, nullptr);
  ga->free(freed);
  ga.reset();  // teardown: the live block must be reported
  EXPECT_EQ(reports_of(san::BugKind::kLeak), 1u);
  const san::BugReport r = first_of(san::BugKind::kLeak);
  EXPECT_EQ(r.user_ptr, leaked);
  EXPECT_EQ(r.user_size, 77u);
}

TEST_F(HeapSanTest, PoolPressureFlushesQuarantineBeforeOom) {
  // 2 MB pool; ~1 MB blocks. After p1 is freed it sits in quarantine
  // (exactly at the byte cap, so it is NOT evicted), pinning half the
  // pool. The third allocation cannot be served until malloc's pressure
  // path drains the quarantine — OOM here would mean the flush is missing.
  auto ga = make_ga(2 * 1024 * 1024, 1);
  const std::size_t big = (1u << 20) - 64;
  void* p1 = ga->malloc(big);
  void* p2 = ga->malloc(big);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  ga->free(p1);
  EXPECT_EQ(ga->stats().heapsan.quarantined_blocks, 1u);
  void* p3 = ga->malloc(big);
  EXPECT_NE(p3, nullptr) << "pool pressure must flush the quarantine";
  EXPECT_GE(ga->stats().heapsan.quarantine_flushes, 1u);
  ga->free(p2);
  ga->free(p3);
  ga->trim();
  EXPECT_EQ(ga->buddy().largest_free_block(), ga->pool_bytes());
}

TEST_F(HeapSanTest, ReallocMovesAndResizesInPlace) {
  auto ga = make_ga();
  auto* p = static_cast<unsigned char*>(ga->malloc(40));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, 40);
  // 40 and 56 wrap to the same 128 B class slot: in place.
  auto* q = static_cast<unsigned char*>(ga->realloc(p, 56));
  EXPECT_EQ(q, p);
  EXPECT_EQ(ga->usable_size(q), 56u);
  for (int i = 0; i < 40; ++i) ASSERT_EQ(q[i], 0x5A);
  // Writing the grown tail is legal now; the old right redzone moved.
  q[55] = 0x42;
  // Cross-capacity: moves, preserves contents, old block is quarantined.
  auto* r = static_cast<unsigned char*>(ga->realloc(q, 5000));
  ASSERT_NE(r, nullptr);
  EXPECT_NE(r, q);
  for (int i = 0; i < 40; ++i) ASSERT_EQ(r[i], 0x5A);
  EXPECT_EQ(r[55], 0x42);
  const auto st = ga->stats();
  EXPECT_EQ(st.reallocs, 2u);
  EXPECT_EQ(st.reallocs_inplace, 1u);
  ga->free(r);
  ga->trim();
  EXPECT_EQ(ga->buddy().largest_free_block(), ga->pool_bytes());
  std::lock_guard<std::mutex> g(g_reports_mu);
  EXPECT_TRUE(g_reports.empty());
}

TEST_F(HeapSanTest, DisableMidRunKeepsTrackingOldBlocks) {
  auto ga = make_ga();
  void* sanitized = ga->malloc(100);
  ASSERT_NE(sanitized, nullptr);
  ga->set_heapsan(false);
  void* raw = ga->malloc(100);  // unsanitized: class capacity is usable
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(ga->usable_size(sanitized), 100u);
  EXPECT_EQ(ga->usable_size(raw), 128u);
  ga->free(sanitized);  // still routed through the shadow table
  ga->free(raw);        // falls through to raw routing
  EXPECT_TRUE(ga->check_consistency());
  ga->trim();
  EXPECT_EQ(ga->buddy().largest_free_block(), ga->pool_bytes());
  std::lock_guard<std::mutex> g(g_reports_mu);
  EXPECT_TRUE(g_reports.empty());
}

TEST_F(HeapSanTest, KernelChurnStaysCleanUnderHeapSan) {
  gpu::Device dev(test::small_device(4, 256, 1));
  auto ga = make_ga(64 * 1024 * 1024, 4);
  std::atomic<std::uint64_t> completed{0};
  dev.launch_linear(4096, 128, [&](gpu::ThreadCtx& t) {
    auto& rng = t.rng();
    const std::size_t size = std::size_t{8} << rng.next_below(11);  // ..8KB
    auto* p = static_cast<unsigned char*>(ga->malloc(size));
    if (p != nullptr) {
      p[0] = 0x42;
      p[size - 1] = 0x24;
      t.yield();
      if (p[0] != 0x42 || p[size - 1] != 0x24) std::abort();
      ga->free(p);
    }
    completed.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(completed.load(), 4096u);
  EXPECT_TRUE(ga->check_consistency());
  ga->trim();
  EXPECT_EQ(ga->buddy().largest_free_block(), ga->pool_bytes());
  const auto st = ga->stats();
  EXPECT_EQ(st.mallocs, st.frees + st.failed_mallocs);
  EXPECT_EQ(st.heapsan.live_blocks, 0u);
  std::lock_guard<std::mutex> g(g_reports_mu);
  EXPECT_TRUE(g_reports.empty()) << "clean kernel churn must not report";
}

#if TOMA_TELEMETRY
TEST_F(HeapSanTest, ExportsSanCounters) {
  const obs::Snapshot before = obs::registry().snapshot();
  auto ga = make_ga();
  void* p = ga->malloc(64);
  ASSERT_NE(p, nullptr);
  ga->free(p);
  ga->heapsan().flush_quarantine();
  const obs::Snapshot delta = obs::registry().snapshot().diff_since(before);
  const auto ctr = [&](const char* name) -> std::uint64_t {
    const auto it = delta.counters.find(name);
    return it == delta.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(ctr("san.quarantine.push"), 1u);
  EXPECT_EQ(ctr("san.quarantine.evict"), 1u);
  EXPECT_EQ(ctr("san.quarantine.flush"), 1u);
  EXPECT_GE(ctr("san.redzone_check"), 1u);
  EXPECT_GE(ctr("san.poison_check"), 1u);
}
#endif

}  // namespace
}  // namespace toma::alloc
