// High-concurrency stress: many waves of threads hammering the allocator
// with mixed sizes, cross-thread frees, and full quiescent verification
// between phases. Sized to stay minutes-fast on a single-core host while
// still driving tens of thousands of logical threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "alloc/alloc.hpp"
#include "gpusim/gpusim.hpp"
#include "obs/telemetry.hpp"
#include "support/test_support.hpp"

namespace toma {
namespace {

TEST(Stress, ManyWavesMixedSizes) {
  gpu::Device dev(test::small_device(4, 512, 1));
  alloc::GpuAllocator ga(64 * 1024 * 1024, dev.num_sms());
  constexpr std::uint64_t kThreads = 20000;
  std::atomic<std::uint64_t> completed{0};
#if TOMA_TELEMETRY
  const obs::Snapshot obs_before = obs::registry().snapshot();
#endif

  dev.launch_linear(kThreads, 128, [&](gpu::ThreadCtx& t) {
    if (t.global_rank() >= kThreads) return;
    auto& rng = t.rng();
    void* held[2] = {};
    std::size_t sizes[2] = {};
    for (int round = 0; round < 4; ++round) {
      const int slot = static_cast<int>(rng.next() & 1);
      if (held[slot] != nullptr) {
        auto* c = static_cast<unsigned char*>(held[slot]);
        if (c[0] != 0x42 || c[sizes[slot] - 1] != 0x24) std::abort();
        ga.free(held[slot]);
        held[slot] = nullptr;
      }
      const std::size_t size = std::size_t{8} << rng.next_below(13);  // ..32KB
      void* p = ga.malloc(size);
      if (p != nullptr) {
        auto* c = static_cast<unsigned char*>(p);
        c[0] = 0x42;
        c[size - 1] = 0x24;
        held[slot] = p;
        sizes[slot] = size;
      }
      t.yield();
    }
    for (int s = 0; s < 2; ++s) {
      if (held[s] != nullptr) ga.free(held[s]);
    }
    completed.fetch_add(1, std::memory_order_relaxed);
  });

  EXPECT_EQ(completed.load(), kThreads);
  EXPECT_TRUE(ga.check_consistency());
  // Retirement on the free path is opportunistic; trim() scavenges the
  // bins/chunks whose retirement backed off under contention.
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes())
      << "memory failed to coalesce after full free + trim";
  const auto st = ga.stats();
  EXPECT_EQ(st.mallocs, st.frees + st.failed_mallocs);

  if (ga.ualloc().magazines_enabled()) {
    // trim() flushed the magazines, so every UAlloc free is now accounted
    // for: it either spilled past a full magazine, was re-issued by a pop
    // (hit), or was evicted by the flush — or it was a fixed-lane spill/
    // flush publication, which bumps UAlloc frees without ever touching a
    // magazine. Nothing may still be cached.
    const auto& us = st.ualloc;
    const std::uint64_t lane_published =
        st.lane.spill_blocks + st.lane.flushes;
    EXPECT_EQ(us.magazine_cached, 0u);
    EXPECT_EQ(st.lane.cached, 0u);  // trim() drains the lanes too
    EXPECT_EQ(us.frees - us.magazine_spills - lane_published,
              us.magazine_hits + us.magazine_flushes)
        << "magazine accounting leaked a block";
  }

#if TOMA_TELEMETRY
  // Telemetry invariant: the sharded counters must agree exactly with the
  // allocator's own (exact, atomic) statistics — a lost counter bump means
  // sharding misrouted or a path is uninstrumented. This allocator is the
  // only one live during the launch, so the registry delta is all ours.
  // A counter whose call site never executed is absent, which counts as 0.
  const obs::Snapshot obs_delta =
      obs::registry().snapshot().diff_since(obs_before);
  const auto ctr = [&](const char* name) -> std::uint64_t {
    const auto it = obs_delta.counters.find(name);
    return it == obs_delta.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(ctr("alloc.malloc"), st.mallocs);
  EXPECT_EQ(ctr("alloc.free"), st.frees);
  EXPECT_EQ(ctr("alloc.failed"), st.failed_mallocs);
  EXPECT_EQ(ctr("ualloc.magazine.hit"), st.ualloc.magazine_hits);
  EXPECT_EQ(ctr("ualloc.magazine.miss"), st.ualloc.magazine_misses);
  EXPECT_EQ(ctr("ualloc.magazine.spill"), st.ualloc.magazine_spills);
  EXPECT_EQ(ctr("ualloc.magazine.flush"), st.ualloc.magazine_flushes);
  EXPECT_EQ(ctr("ualloc.lane.hit"), st.lane.hits);
  EXPECT_EQ(ctr("ualloc.lane.miss"), st.lane.misses);
  EXPECT_EQ(ctr("ualloc.lane.refill"), st.lane.refills);
  EXPECT_EQ(ctr("ualloc.lane.refill_blocks"), st.lane.refill_blocks);
  EXPECT_EQ(ctr("ualloc.lane.spill_blocks"), st.lane.spill_blocks);
  EXPECT_EQ(ctr("ualloc.lane.flush"), st.lane.flushes);
  // Every malloc attempt records one latency sample in some size class.
  std::uint64_t hist_samples = 0;
  for (const auto& [name, h] : obs_delta.histograms) {
    if (name.rfind("alloc.malloc_ns[", 0) == 0) hist_samples += h.count;
  }
  EXPECT_EQ(hist_samples, st.mallocs);
  EXPECT_EQ(obs_delta.histograms.at("alloc.free_ns").count, st.frees);
#endif
}

TEST(Stress, SameSizeThundering) {
  // Every thread allocates the same size simultaneously: the worst case
  // for the class semaphore and bin lists.
  gpu::Device dev(test::small_device(4, 512, 1));
  alloc::GpuAllocator ga(64 * 1024 * 1024, dev.num_sms());
  constexpr std::uint64_t kThreads = 30000;
  std::atomic<std::uint64_t> failed{0};
  dev.launch_linear(kThreads, 256, [&](gpu::ThreadCtx& t) {
    if (t.global_rank() >= kThreads) return;
    void* p = ga.malloc(32);
    if (p == nullptr) {
      failed.fetch_add(1);
      return;
    }
    std::memset(p, 7, 32);
    t.yield();
    ga.free(p);
  });
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_TRUE(ga.check_consistency());
  const auto st = ga.stats();
  // Bin recycling must have happened at this scale.
  EXPECT_GT(st.ualloc.bins_created, 0u);
}

TEST(Stress, MultiWorkerTrueParallelism) {
  // Two OS workers drive four SMs: exercises genuine data races under
  // whatever parallelism the host provides.
  gpu::Device dev(test::small_device(4, 256, 2));
  alloc::GpuAllocator ga(32 * 1024 * 1024, dev.num_sms());
  std::atomic<std::uint64_t> completed{0};
  dev.launch_linear(8000, 128, [&](gpu::ThreadCtx& t) {
    if (t.global_rank() >= 8000) return;  // grid rounds up to whole blocks
    auto& rng = t.rng();
    const std::size_t size = std::size_t{8} << rng.next_below(10);
    void* p = ga.malloc(size);
    if (p != nullptr) {
      static_cast<unsigned char*>(p)[0] = 1;
      t.yield();
      ga.free(p);
    }
    completed.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(completed.load(), 8000u);
  EXPECT_TRUE(ga.check_consistency());
}

TEST(Stress, AllocateHoldExhaustFreeRepeat) {
  // Saturating waves: allocate until OOM, then free everything; repeat.
  // Verifies the allocator fully recovers from exhaustion.
  gpu::Device dev(test::small_device(2, 512, 1));
  alloc::GpuAllocator ga(8 * 1024 * 1024, dev.num_sms());
  for (int wave = 0; wave < 3; ++wave) {
    std::vector<std::atomic<void*>> held(4096);
    std::atomic<std::uint64_t> got{0};
    dev.launch_linear(4096, 128, [&](gpu::ThreadCtx& t) {
      void* p = ga.malloc(2048);  // degenerate class -> 4 KB pages
      if (p != nullptr) {
        held[t.global_rank()].store(p);
        got.fetch_add(1);
      }
    });
    // 8 MB / 4 KB = 2048 pages: exactly half the threads can win.
    EXPECT_EQ(got.load(), 2048u) << "wave " << wave;
    for (auto& h : held) {
      if (void* p = h.load()) ga.free(p);
    }
    ASSERT_TRUE(ga.check_consistency()) << "wave " << wave;
    ga.trim();  // flush the buddy quicklists so the freed pages coalesce
    ASSERT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
  }
}

}  // namespace
}  // namespace toma
