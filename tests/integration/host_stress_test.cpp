// OS-thread-only allocator stress. Unlike stress_test.cpp this file never
// constructs a gpu::Device: the simulator's hand-rolled fiber context
// switching is invisible to ThreadSanitizer (it cannot track stack swaps),
// so this binary is the one the TSan CI job runs. Everything here executes
// on plain std::threads via the allocator's host fallback paths (arena
// selection by thread-id hash), which share all the concurrency machinery
// — semaphores, RCU lists, parked units, magazines — with the device path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "alloc/alloc.hpp"
#include "support/test_support.hpp"
#include "util/prng.hpp"

namespace toma {
namespace {

TEST(HostStress, MixedSizeChurn) {
  alloc::GpuAllocator ga(32 * 1024 * 1024, /*num_arenas=*/4);
  test::run_os_threads(8, [&](unsigned tid) {
    util::Xorshift rng(tid * 7919 + 1);
    void* held[4] = {};
    std::size_t sizes[4] = {};
    for (int i = 0; i < 4000; ++i) {
      const int slot = static_cast<int>(rng.next_below(4));
      if (held[slot] != nullptr) {
        auto* c = static_cast<unsigned char*>(held[slot]);
        ASSERT_EQ(c[0], 0x42);
        ASSERT_EQ(c[sizes[slot] - 1], 0x24);
        ga.free(held[slot]);
        held[slot] = nullptr;
      }
      const std::size_t size = std::size_t{8} << rng.next_below(11);  // ..8KB
      void* p = ga.malloc(size);
      if (p != nullptr) {
        auto* c = static_cast<unsigned char*>(p);
        c[0] = 0x42;
        c[size - 1] = 0x24;
        held[slot] = p;
        sizes[slot] = size;
      }
    }
    for (void* p : held) {
      if (p != nullptr) ga.free(p);
    }
  });
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
  const auto st = ga.stats();
  EXPECT_EQ(st.mallocs, st.frees + st.failed_mallocs);
}

TEST(HostStress, CrossThreadFreeMailboxes) {
  // Producer threads allocate and publish; consumer threads free blocks
  // they never allocated. Every free lands in the *freeing* thread's
  // hash-chosen arena magazine (or spills), exercising the cross-owner
  // paths: chunk-header decode, remote bin publication, magazine bounds.
  alloc::GpuAllocator ga(32 * 1024 * 1024, /*num_arenas=*/4);
  constexpr unsigned kPairs = 4;
  constexpr int kPerThread = 3000;
  struct Mailbox {
    std::vector<std::atomic<void*>> slots{kPerThread};
    std::atomic<int> produced{0};
  };
  std::vector<Mailbox> boxes(kPairs);

  test::run_os_threads(2 * kPairs, [&](unsigned tid) {
    util::Xorshift rng(tid * 31 + 5);
    if (tid < kPairs) {  // producer
      Mailbox& box = boxes[tid];
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t size = std::size_t{8} << rng.next_below(8);
        void* p = ga.malloc(size);
        if (p != nullptr) std::memset(p, 0x6B, size);
        box.slots[i].store(p, std::memory_order_release);
        box.produced.fetch_add(1, std::memory_order_release);
      }
    } else {  // consumer for producer tid - kPairs
      Mailbox& box = boxes[tid - kPairs];
      for (int i = 0; i < kPerThread; ++i) {
        while (box.produced.load(std::memory_order_acquire) <= i) {
          std::this_thread::yield();
        }
        if (void* p = box.slots[i].exchange(nullptr)) ga.free(p);
      }
    }
  });

  EXPECT_TRUE(ga.check_consistency());  // includes magazine-bit integrity
  const auto st = ga.stats();
  EXPECT_EQ(st.mallocs, st.frees + st.failed_mallocs);
  if (ga.ualloc().magazines_enabled()) {
    // Flush the two caches separately so each flush count can be checked
    // against its own layer's accounting.
    ga.fixed_lane().flush();
    const std::size_t flushed = ga.ualloc().release_cached();
    const auto after_all = ga.stats();
    const auto& after = after_all.ualloc;
    EXPECT_EQ(after.magazine_cached, 0u);
    EXPECT_EQ(after_all.lane.cached, 0u);
    EXPECT_EQ(after.magazine_flushes,
              st.ualloc.magazine_flushes + flushed);
    // Lane spill/flush publications bump UAlloc frees without touching a
    // magazine; subtract them from the magazine balance.
    const std::uint64_t lane_published =
        after_all.lane.spill_blocks + after_all.lane.flushes;
    EXPECT_EQ(after.frees - after.magazine_spills - lane_published,
              after.magazine_hits + after.magazine_flushes);
  }
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
}

TEST(HostStress, BuddyQuicklistChurn) {
  // Hammer TBuddy directly from preemptive OS threads so ThreadSanitizer
  // watches the quicklists' lock-free Treiber stacks (push/pop/link
  // traffic) and the optimistic CAS claim racing the locked protocols.
  // One thread concurrently trim()s, racing the flush path against
  // same-order pushes and pops.
  constexpr std::size_t kPool = 16 * 1024 * 1024;
  test::AlignedPool pool(kPool);
  alloc::TBuddy buddy(pool.get(), kPool);
  std::atomic<bool> stop{false};
  test::run_os_threads(6, [&](unsigned tid) {
    if (tid == 0) {  // trimmer
      for (int i = 0; i < 300; ++i) {
        buddy.trim();
        std::this_thread::yield();
      }
      stop.store(true, std::memory_order_release);
      return;
    }
    util::Xorshift rng(tid * 2654435761u + 17);
    std::vector<std::pair<void*, std::uint32_t>> held;
    while (!stop.load(std::memory_order_acquire)) {
      if (!held.empty() && (rng.next() & 1)) {
        const std::size_t k = rng.next_below(held.size());
        buddy.free(held[k].first);
        held[k] = held.back();
        held.pop_back();
      } else {
        const auto order = static_cast<std::uint32_t>(rng.next_below(5));
        if (void* p = buddy.allocate(order)) {
          auto* c = static_cast<unsigned char*>(p);
          c[0] = 0xA5;  // touch across the reuse boundary
          held.emplace_back(p, order);
        }
      }
    }
    for (auto& [p, order] : held) buddy.free(p);
  });
  EXPECT_TRUE(buddy.check_consistency());
  buddy.trim();
  EXPECT_EQ(buddy.free_bytes(), kPool);
  EXPECT_EQ(buddy.largest_free_block(), kPool);
  // Closed cache accounting at quiescence: every free either entered a
  // quicklist (later popped as a hit or evicted by a flush) or took the
  // merging path directly past a full list (one per spill event). allocs
  // need not equal frees — it also counts the internal splitter claims.
  const auto st = buddy.stats();
  EXPECT_EQ(st.quicklist_cached, 0u);
  if (buddy.quicklist_enabled()) {
    EXPECT_EQ(st.frees - st.quicklist_spills,
              st.quicklist_hits + st.quicklist_flushes);
  }
}

TEST(HostStress, QuicklistToggleRace) {
  // Flip the quicklist and CAS-claim switches while other threads churn:
  // like the magazine toggle, the switches only gate *entry* into the
  // fast paths, so every interleaving must keep the semaphore/tree
  // accounting closed.
  constexpr std::size_t kPool = 8 * 1024 * 1024;
  test::AlignedPool pool(kPool);
  alloc::TBuddy buddy(pool.get(), kPool);
  std::atomic<bool> stop{false};
  test::run_os_threads(5, [&](unsigned tid) {
    if (tid == 0) {  // toggler
      for (int i = 0; i < 200; ++i) {
        buddy.set_quicklist(i % 2 == 0);
        buddy.set_cas_claim(i % 3 != 0);
        std::this_thread::yield();
      }
      buddy.set_quicklist(true);
      buddy.set_cas_claim(true);
      stop.store(true, std::memory_order_release);
      return;
    }
    util::Xorshift rng(tid);
    std::vector<void*> held;
    while (!stop.load(std::memory_order_acquire)) {
      if (!held.empty() && (rng.next() & 1)) {
        buddy.free(held.back());
        held.pop_back();
      } else {
        const auto order = static_cast<std::uint32_t>(rng.next_below(4));
        if (void* p = buddy.allocate(order)) held.push_back(p);
      }
    }
    for (void* p : held) buddy.free(p);
  });
  EXPECT_TRUE(buddy.check_consistency());
  buddy.trim();
  EXPECT_EQ(buddy.free_bytes(), kPool);
  EXPECT_EQ(buddy.largest_free_block(), kPool);
}

TEST(HostStress, FixedLaneToggleRace) {
  // Flip the fixed lane while other threads churn lane-served sizes: the
  // toggle's disable path flush()es concurrently with pushes, pops, and
  // slab refills, so TSan watches the lane lock protocol and the
  // claimed-while-cached handoff under preemptive threads.
  alloc::GpuAllocator ga(16 * 1024 * 1024, /*num_arenas=*/2);
  std::atomic<bool> stop{false};
  test::run_os_threads(5, [&](unsigned tid) {
    if (tid == 0) {  // toggler
      for (int i = 0; i < 200; ++i) {
        ga.set_fixed_lane(i % 2 == 0);
        std::this_thread::yield();
      }
      ga.set_fixed_lane(true);
      stop.store(true, std::memory_order_release);
      return;
    }
    util::Xorshift rng(tid * 131 + 7);
    std::vector<void*> held;
    while (!stop.load(std::memory_order_acquire)) {
      if (!held.empty() && (rng.next() & 1)) {
        ga.free(held.back());
        held.pop_back();
      } else {
        // Lane-served sizes only (8..64 B) so every op contends the lane.
        const std::size_t size = std::size_t{8} << rng.next_below(4);
        if (void* p = ga.malloc(size)) held.push_back(p);
      }
    }
    for (void* p : held) ga.free(p);
  });
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();
  EXPECT_EQ(ga.stats().lane.cached, 0u);
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
  const auto st = ga.stats();
  EXPECT_EQ(st.mallocs, st.frees + st.failed_mallocs);
}

TEST(HostStress, MagazineToggleRace) {
  // Flip the magazine switch while other threads churn: the toggle only
  // gates *entry* into the cache, so every configuration interleaving must
  // keep the accounting closed and the structures consistent.
  alloc::GpuAllocator ga(16 * 1024 * 1024, /*num_arenas=*/2);
  std::atomic<bool> stop{false};
  test::run_os_threads(5, [&](unsigned tid) {
    if (tid == 0) {  // toggler
      for (int i = 0; i < 200; ++i) {
        ga.ualloc().set_magazines(i % 2 == 0);
        std::this_thread::yield();
      }
      ga.ualloc().set_magazines(true);
      stop.store(true, std::memory_order_release);
      return;
    }
    util::Xorshift rng(tid);
    std::vector<void*> held;
    while (!stop.load(std::memory_order_acquire)) {
      if (!held.empty() && (rng.next() & 1)) {
        ga.free(held.back());
        held.pop_back();
      } else {
        const std::size_t size = std::size_t{8} << rng.next_below(8);
        if (void* p = ga.malloc(size)) held.push_back(p);
      }
    }
    for (void* p : held) ga.free(p);
  });
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
  EXPECT_TRUE(ga.check_consistency());
}

}  // namespace
}  // namespace toma
