// End-to-end integration: realistic kernels using the full GpuAllocator
// through the simulated device, mirroring how device code would call the
// standard malloc/free interface.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "alloc/alloc.hpp"
#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma {
namespace {

TEST(Integration, LinkedListPerThread) {
  // Each thread builds a private linked list with malloc, walks it, then
  // frees it — dynamic data structures in device code.
  gpu::Device dev(test::small_device());
  alloc::GpuAllocator ga(32 * 1024 * 1024, dev.num_sms());
  struct Node {
    Node* next;
    std::uint64_t value;
  };
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::uint64_t> oom{0};
  dev.launch_linear(1024, 128, [&](gpu::ThreadCtx& t) {
    Node* head = nullptr;
    const int n = 1 + static_cast<int>(t.global_rank() % 8);
    for (int i = 0; i < n; ++i) {
      auto* node = static_cast<Node*>(ga.malloc(sizeof(Node)));
      if (node == nullptr) {
        oom.fetch_add(1);
        break;
      }
      node->next = head;
      node->value = t.global_rank() + i;
      head = node;
      t.yield();
    }
    std::uint64_t sum = 0;
    for (Node* cur = head; cur != nullptr; cur = cur->next) sum += cur->value;
    total.fetch_add(sum, std::memory_order_relaxed);
    while (head != nullptr) {
      Node* next = head->next;
      ga.free(head);
      head = next;
    }
  });
  EXPECT_EQ(oom.load(), 0u);
  EXPECT_GT(total.load(), 0u);
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
}

TEST(Integration, ProducerConsumerHandoff) {
  // Producers allocate and publish; consumers (other blocks, possibly on
  // other SMs) verify content and free. Exercises cross-arena frees.
  gpu::Device dev(test::small_device(4, 256, 1));
  alloc::GpuAllocator ga(32 * 1024 * 1024, dev.num_sms());
  constexpr std::uint32_t kItems = 512;
  std::vector<std::atomic<void*>> mailbox(kItems);
  std::atomic<std::uint32_t> consumed{0};

  dev.launch_linear(2 * kItems, 64, [&](gpu::ThreadCtx& t) {
    const std::uint64_t id = t.global_rank();
    if (id < kItems) {
      auto* buf = static_cast<std::uint32_t*>(ga.malloc(64));
      ASSERT_NE(buf, nullptr);
      for (int i = 0; i < 16; ++i) buf[i] = static_cast<std::uint32_t>(id);
      mailbox[id].store(buf, std::memory_order_release);
    } else {
      const std::uint32_t slot = static_cast<std::uint32_t>(id - kItems);
      void* p;
      while ((p = mailbox[slot].load(std::memory_order_acquire)) == nullptr) {
        t.yield();
      }
      auto* buf = static_cast<std::uint32_t*>(p);
      for (int i = 0; i < 16; ++i) {
        if (buf[i] != slot) std::abort();
      }
      ga.free(p);
      consumed.fetch_add(1);
    }
  });
  EXPECT_EQ(consumed.load(), kItems);
  EXPECT_TRUE(ga.check_consistency());
}

TEST(Integration, BlockSharedScratchAllocation) {
  // One thread per block allocates a shared scratch buffer (the paper's
  // warp/block-coalesced pattern); the block barriers, uses it, frees it.
  gpu::Device dev(test::small_device());
  alloc::GpuAllocator ga(32 * 1024 * 1024, dev.num_sms());
  std::atomic<std::uint64_t> checks{0};
  dev.launch(gpu::Dim3{16}, gpu::Dim3{64}, [&](gpu::ThreadCtx& t) {
    auto** slot = static_cast<std::uint32_t**>(t.shared_mem());
    if (t.thread_rank() == 0) {
      *slot = static_cast<std::uint32_t*>(ga.malloc(64 * sizeof(std::uint32_t)));
      ASSERT_NE(*slot, nullptr);
    }
    t.sync_block();
    std::uint32_t* scratch = *slot;
    scratch[t.thread_rank()] = t.thread_rank();
    t.sync_block();
    if (t.thread_rank() == 0) {
      std::uint32_t sum = 0;
      for (int i = 0; i < 64; ++i) sum += scratch[i];
      if (sum == 64 * 63 / 2) checks.fetch_add(1);
      ga.free(scratch);
    }
  });
  EXPECT_EQ(checks.load(), 16u);
  EXPECT_TRUE(ga.check_consistency());
}

TEST(Integration, PoolExhaustionBehaviour) {
  // Run exactly enough threads to exhaust the pool with 4 KB allocations
  // (the Figure 7 protocol at one size): every allocation must succeed
  // because the buddy range has zero fragmentation.
  gpu::Device dev(test::small_device());
  constexpr std::size_t kPoolBytes = 8 * 1024 * 1024;
  alloc::GpuAllocator ga(kPoolBytes, dev.num_sms());
  // Under HeapSan a 4 KB request carries redzones and occupies the next
  // order up; size the thread count to the block's true pool footprint so
  // the pool is exactly exhausted in either mode.
  const std::size_t footprint = alloc::GpuAllocator::effective_size(
      ga.heapsan_enabled() ? ga.heapsan().wrap_size(4096) : 4096);
  const std::uint64_t n = kPoolBytes / footprint;
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::atomic<void*>> held(n);
  dev.launch_linear(n, 128, [&](gpu::ThreadCtx& t) {
    if (t.global_rank() >= n) return;
    void* p = ga.malloc(4096);
    if (p == nullptr) {
      failed.fetch_add(1);
    } else {
      held[t.global_rank()].store(p);
    }
  });
  EXPECT_EQ(failed.load(), 0u);
  EXPECT_EQ(ga.buddy().free_bytes(), 0u);
  for (auto& h : held) {
    if (void* p = h.load()) ga.free(p);
  }
  EXPECT_TRUE(ga.check_consistency());
  ga.trim();  // flush the buddy quicklists so the freed pages coalesce
  EXPECT_EQ(ga.buddy().largest_free_block(), kPoolBytes);
}

TEST(Integration, RepeatedLaunchesReuseState) {
  // The allocator survives many kernel launches with full recycling.
  gpu::Device dev(test::small_device());
  alloc::GpuAllocator ga(16 * 1024 * 1024, dev.num_sms());
  for (int launch = 0; launch < 5; ++launch) {
    dev.launch_linear(512, 64, [&](gpu::ThreadCtx& t) {
      void* p = ga.malloc(8 << (t.global_rank() % 6));
      if (p != nullptr) {
        t.yield();
        ga.free(p);
      }
    });
    ASSERT_TRUE(ga.check_consistency()) << "after launch " << launch;
  }
  ga.trim();
  EXPECT_EQ(ga.buddy().largest_free_block(), ga.pool_bytes());
}

}  // namespace
}  // namespace toma
