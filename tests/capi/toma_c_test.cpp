// Exercises the stable C facade (include/toma/toma.h) end to end. The
// assertions go through the C surface only — pools, streams, statuses —
// so this doubles as a compile-time check that the header stays usable
// without any C++ toma headers.
#include "toma/toma.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace {

constexpr size_t kMiB = 1024 * 1024;

toma_pool_config_t small_cfg() {
  toma_pool_config_t cfg = toma_pool_config_default();
  cfg.pool_bytes = 4 * kMiB;
  cfg.num_arenas = 2;
  return cfg;
}

TEST(TomaC, StatusStrings) {
  EXPECT_STREQ(toma_status_str(TOMA_OK), "TOMA_OK");
  EXPECT_STREQ(toma_status_str(TOMA_ERR_QUOTA), "TOMA_ERR_QUOTA");
  EXPECT_STREQ(toma_status_str(TOMA_ERR_OOM), "TOMA_ERR_OOM");
}

TEST(TomaC, ConfigDefaultsAreLibraryDefaults) {
  const toma_pool_config_t cfg = toma_pool_config_default();
  EXPECT_GT(cfg.pool_bytes, 0u);
  EXPECT_GT(cfg.num_arenas, 0u);
  EXPECT_EQ(cfg.quota_bytes, 0u);                             // unlimited
  EXPECT_EQ(cfg.release_threshold, TOMA_RELEASE_RETAIN_ALL);  // retain
  EXPECT_EQ(cfg.heapsan, -1);                                 // build default
  EXPECT_EQ(cfg.stream_async, -1);
}

TEST(TomaC, PoolLifecycle) {
  toma_pool_config_t cfg = small_cfg();
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-basic", &cfg, &pool), TOMA_OK);
  ASSERT_NE(pool, nullptr);
  EXPECT_STREQ(toma_pool_name(pool), "capi-basic");
  EXPECT_EQ(toma_pool_find("capi-basic"), pool);

  toma_pool_t dup = nullptr;
  EXPECT_EQ(toma_pool_create("capi-basic", &cfg, &dup), TOMA_ERR_EXISTS);
  EXPECT_EQ(dup, nullptr);

  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
  EXPECT_EQ(toma_pool_find("capi-basic"), nullptr);
}

TEST(TomaC, CreateRejectsBadArguments) {
  toma_pool_config_t cfg = small_cfg();
  toma_pool_t pool = nullptr;
  EXPECT_EQ(toma_pool_create(nullptr, &cfg, &pool), TOMA_ERR_INVALID);
  EXPECT_EQ(toma_pool_create("", &cfg, &pool), TOMA_ERR_INVALID);
  cfg.pool_bytes = 12345;  // not a power of two
  EXPECT_EQ(toma_pool_create("capi-bad", &cfg, &pool), TOMA_ERR_INVALID);
  EXPECT_EQ(pool, nullptr);
  EXPECT_EQ(toma_pool_destroy(nullptr), TOMA_ERR_INVALID);
}

TEST(TomaC, DefaultPoolCannotBeDestroyed) {
  toma_pool_t def = toma_default_pool();
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(toma_pool_destroy(def), TOMA_ERR_INVALID);
  EXPECT_EQ(toma_default_pool(), def);
}

TEST(TomaC, MallocFreeWithStatus) {
  toma_pool_config_t cfg = small_cfg();
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-mf", &cfg, &pool), TOMA_OK);

  toma_status_t st = TOMA_ERR_OOM;
  void* p = toma_malloc(pool, 256, &st);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(st, TOMA_OK);
  EXPECT_GE(toma_usable_size(pool, p), 256u);
  EXPECT_EQ(toma_pool_bytes_in_use(pool), 256u);
  toma_free(pool, p);
  EXPECT_EQ(toma_pool_bytes_in_use(pool), 0u);

  EXPECT_EQ(toma_malloc(pool, 0, &st), nullptr);
  EXPECT_EQ(st, TOMA_ERR_INVALID);
  toma_free(pool, nullptr);  // no-op, must not crash

  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
}

TEST(TomaC, CallocZeroesAndReallocPreserves) {
  toma_pool_config_t cfg = small_cfg();
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-cr", &cfg, &pool), TOMA_OK);

  auto* p = static_cast<unsigned char*>(toma_calloc(pool, 16, 8, nullptr));
  ASSERT_NE(p, nullptr);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(p[i], 0u);
  std::memset(p, 0xab, 128);

  auto* q = static_cast<unsigned char*>(toma_realloc(pool, p, 4096, nullptr));
  ASSERT_NE(q, nullptr);
  for (int i = 0; i < 128; ++i) EXPECT_EQ(q[i], 0xab);

  toma_status_t st = TOMA_OK;
  EXPECT_EQ(toma_calloc(pool, SIZE_MAX, 2, &st), nullptr);  // overflow
  EXPECT_EQ(st, TOMA_ERR_INVALID);

  toma_free(pool, q);
  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
}

TEST(TomaC, QuotaSurfacesAsQuotaStatus) {
  toma_pool_config_t cfg = small_cfg();
  cfg.quota_bytes = 16 * 1024;
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-quota", &cfg, &pool), TOMA_OK);
  EXPECT_EQ(toma_pool_quota(pool), 16u * 1024u);

  std::vector<void*> held;
  toma_status_t st = TOMA_OK;
  for (;;) {
    void* p = toma_malloc(pool, 1024, &st);
    if (p == nullptr) break;
    held.push_back(p);
  }
  EXPECT_EQ(st, TOMA_ERR_QUOTA);  // not TOMA_ERR_OOM: the pool has room
  EXPECT_EQ(held.size(), 16u);

  toma_pool_set_quota(pool, 0);  // lift the quota -> admits again
  void* p = toma_malloc(pool, 1024, &st);
  EXPECT_NE(p, nullptr);
  toma_free(pool, p);

  for (void* q : held) toma_free(pool, q);
  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
}

TEST(TomaC, StreamOrderedAllocAndSync) {
  toma_pool_config_t cfg = small_cfg();
  cfg.stream_async = 1;  // deferral is required; don't rely on build default
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-stream", &cfg, &pool), TOMA_OK);

  toma_stream_t s = toma_stream_create();
  ASSERT_NE(s, nullptr);

  void* p = toma_malloc_async(pool, 256, s, nullptr);
  ASSERT_NE(p, nullptr);
  toma_free_async(pool, p, s);
  // Same-stream reuse: the pending block comes straight back.
  void* q = toma_malloc_async(pool, 256, s, nullptr);
  EXPECT_EQ(q, p);
  toma_free_async(pool, q, s);
  EXPECT_EQ(toma_pool_sync(pool, s), 1u);
  EXPECT_EQ(toma_pool_bytes_in_use(pool), 0u);

  // stream_sync drains the stream across every pool (128 B: above the
  // fixed-lane threshold, so the free actually defers).
  void* r = toma_malloc_async(pool, 128, s, nullptr);
  toma_free_async(pool, r, s);
  EXPECT_EQ(toma_stream_sync(s), 1u);

  toma_stream_destroy(s);
  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
}

TEST(TomaC, NullPoolAndNullStreamMeanDefaults) {
  // NULL pool routes to the default pool; NULL stream to the default
  // stream. The legacy device heap and this path share one heap.
  toma_status_t st = TOMA_ERR_OOM;
  void* p = toma_malloc(nullptr, 128, &st);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(st, TOMA_OK);
  toma_free(nullptr, p);

  void* q = toma_malloc_async(nullptr, 128, nullptr, &st);
  ASSERT_NE(q, nullptr);
  toma_free_async(nullptr, q, nullptr);
  toma_stream_sync(nullptr);
  EXPECT_EQ(toma_pool_bytes_in_use(nullptr), 0u);
}

TEST(TomaC, ReleaseThresholdAndTrim) {
  toma_pool_config_t cfg = small_cfg();
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-trim", &cfg, &pool), TOMA_OK);
  EXPECT_EQ(toma_pool_release_threshold(pool), TOMA_RELEASE_RETAIN_ALL);
  toma_pool_set_release_threshold(pool, 0);
  EXPECT_EQ(toma_pool_release_threshold(pool), 0u);

  void* p = toma_malloc(pool, 64, nullptr);
  toma_free(pool, p);
  toma_trim(pool);  // must be callable at any point
  EXPECT_EQ(toma_pool_bytes_in_use(pool), 0u);
  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
}

TEST(TomaC, SyncAllDrainsEveryStream) {
  toma_pool_config_t cfg = small_cfg();
  cfg.stream_async = 1;
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-syncall", &cfg, &pool), TOMA_OK);
  toma_stream_t s1 = toma_stream_create();
  toma_stream_t s2 = toma_stream_create();
  void* a = toma_malloc_async(pool, 128, s1, nullptr);
  void* b = toma_malloc_async(pool, 128, s2, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  toma_free_async(pool, a, s1);
  toma_free_async(pool, b, s2);
  EXPECT_EQ(toma_pool_sync_all(pool), 2u);
  EXPECT_EQ(toma_pool_bytes_in_use(pool), 0u);
  EXPECT_EQ(toma_pool_sync_all(pool), 0u) << "second sweep finds nothing";
  toma_stream_destroy(s1);
  toma_stream_destroy(s2);
  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
}

TEST(TomaC, SloTargetAccessors) {
  toma_pool_config_t cfg = small_cfg();
  cfg.slo_latency_ns = 5000;
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-slo", &cfg, &pool), TOMA_OK);
  EXPECT_EQ(toma_pool_slo(pool), 5000u);
  toma_pool_set_slo(pool, 250);
  EXPECT_EQ(toma_pool_slo(pool), 250u);
  // Violations only accumulate in telemetry builds; through the C surface
  // we can only require the counter to exist and never run backwards.
  const uint64_t before = toma_pool_slo_violations(pool);
  void* p = toma_malloc(pool, 256, nullptr);
  toma_free(pool, p);
  EXPECT_GE(toma_pool_slo_violations(pool), before);
  toma_pool_set_slo(pool, 0);  // 0 disables SLO tracking
  EXPECT_EQ(toma_pool_slo(pool), 0u);
  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
}

TEST(TomaC, FlightRecorderSession) {
  ASSERT_EQ(toma_record_start(0), TOMA_OK);
  EXPECT_EQ(toma_record_active(), 1);
  EXPECT_EQ(toma_record_start(0), TOMA_ERR_EXISTS) << "double start";

  toma_pool_config_t cfg = small_cfg();
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-rec", &cfg, &pool), TOMA_OK);
  void* p = toma_malloc(pool, 512, nullptr);
  ASSERT_NE(p, nullptr);
  toma_free(pool, p);
  toma_record_stop();
  EXPECT_EQ(toma_record_active(), 0);
  EXPECT_EQ(toma_record_event_count(), 2u) << "one malloc + one free";
  EXPECT_EQ(toma_record_dropped(), 0u);

  const std::string path = testing::TempDir() + "capi.tomarec";
  EXPECT_EQ(toma_record_dump(nullptr), TOMA_ERR_INVALID);
  EXPECT_EQ(toma_record_dump(""), TOMA_ERR_INVALID);
  ASSERT_EQ(toma_record_dump(path.c_str()), TOMA_OK);

  // The dump carries the versioned magic; the binary layout itself is
  // covered by the recorder round-trip tests.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[8] = {};
  ASSERT_EQ(std::fread(magic, 1, 8, f), 8u);
  std::fclose(f);
  EXPECT_EQ(0, std::memcmp(magic, "TOMAREC\x1a", 8));
  std::remove(path.c_str());
  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
}

TEST(TomaC, MetricsExportBothFormats) {
  // Touch a pool so telemetry builds have something to export.
  toma_pool_config_t cfg = small_cfg();
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-metrics", &cfg, &pool), TOMA_OK);
  void* p = toma_malloc(pool, 128, nullptr);
  toma_free(pool, p);

  EXPECT_EQ(toma_metrics_export(nullptr, TOMA_METRICS_PROMETHEUS),
            TOMA_ERR_INVALID);
  EXPECT_EQ(toma_metrics_export("", TOMA_METRICS_JSON), TOMA_ERR_INVALID);

  const std::string prom = testing::TempDir() + "capi_metrics.prom";
  const std::string json = testing::TempDir() + "capi_metrics.json";
  ASSERT_EQ(toma_metrics_export(prom.c_str(), TOMA_METRICS_PROMETHEUS),
            TOMA_OK);
  ASSERT_EQ(toma_metrics_export(json.c_str(), TOMA_METRICS_JSON), TOMA_OK);

  // JSON always carries the schema envelope, even from an empty registry.
  std::FILE* f = std::fopen(json.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char head[32] = {};
  const size_t n = std::fread(head, 1, sizeof(head) - 1, f);
  std::fclose(f);
  ASSERT_GT(n, 0u);
  EXPECT_NE(std::strstr(head, "\"schema_version\""), nullptr);
  std::remove(prom.c_str());
  std::remove(json.c_str());
  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
}

TEST(TomaC, StreamAsyncToggleInConfig) {
  toma_pool_config_t cfg = small_cfg();
  cfg.stream_async = 0;  // force the front-end off for this pool
  toma_pool_t pool = nullptr;
  ASSERT_EQ(toma_pool_create("capi-sync-only", &cfg, &pool), TOMA_OK);
  toma_stream_t s = toma_stream_create();
  void* p = toma_malloc_async(pool, 128, s, nullptr);
  ASSERT_NE(p, nullptr);
  toma_free_async(pool, p, s);
  // With the front-end off the free completed immediately.
  EXPECT_EQ(toma_pool_bytes_in_use(pool), 0u);
  EXPECT_EQ(toma_pool_sync(pool, s), 0u);
  toma_stream_destroy(s);
  EXPECT_EQ(toma_pool_destroy(pool), TOMA_OK);
}

}  // namespace
