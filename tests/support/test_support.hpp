// Shared helpers for the toma test suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "gpusim/gpusim.hpp"

namespace toma::test {

/// A small simulated device suitable for unit tests (fast to construct,
/// enough concurrency to expose races). One OS worker keeps runs
/// deterministic-ish; pass workers > 1 to add true parallelism.
gpu::DeviceConfig small_device(std::uint32_t num_sms = 2,
                               std::uint32_t threads_per_sm = 512,
                               std::uint32_t workers = 1);

/// Run `fn` concurrently on `nthreads` plain OS threads (for testing the
/// primitives' host-side fallback paths).
void run_os_threads(unsigned nthreads,
                    const std::function<void(unsigned)>& fn);

/// Aligned scratch pool for allocator tests (freed automatically).
class AlignedPool {
 public:
  explicit AlignedPool(std::size_t bytes, std::size_t alignment = 0);
  ~AlignedPool();
  AlignedPool(const AlignedPool&) = delete;
  AlignedPool& operator=(const AlignedPool&) = delete;

  void* get() const { return p_; }
  std::size_t size() const { return bytes_; }

 private:
  void* p_;
  std::size_t bytes_;
};

}  // namespace toma::test
