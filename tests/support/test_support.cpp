#include "support/test_support.hpp"

#include <cstdlib>

#include "util/assert.hpp"

namespace toma::test {

gpu::DeviceConfig small_device(std::uint32_t num_sms,
                               std::uint32_t threads_per_sm,
                               std::uint32_t workers) {
  gpu::DeviceConfig cfg;
  cfg.num_sms = num_sms;
  cfg.max_threads_per_sm = threads_per_sm;
  cfg.num_workers = workers;
  cfg.stack_bytes = 32 * 1024;
  return cfg;
}

void run_os_threads(unsigned nthreads,
                    const std::function<void(unsigned)>& fn) {
  std::vector<std::thread> ts;
  ts.reserve(nthreads);
  for (unsigned i = 0; i < nthreads; ++i) ts.emplace_back(fn, i);
  for (auto& t : ts) t.join();
}

AlignedPool::AlignedPool(std::size_t bytes, std::size_t alignment)
    : bytes_(bytes) {
  if (alignment == 0) alignment = bytes;
  p_ = std::aligned_alloc(alignment, bytes);
  TOMA_ASSERT(p_ != nullptr);
}

AlignedPool::~AlignedPool() { std::free(p_); }

}  // namespace toma::test
