#include "sync/rcu_list.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::sync {
namespace {

struct Elem {
  RcuListNode node;
  RcuCallback cb;
  int tag = 0;
  std::atomic<bool> reclaimed{false};
};

Elem* elem_of(RcuListNode* n) {
  return reinterpret_cast<Elem*>(reinterpret_cast<char*>(n) -
                                 offsetof(Elem, node));
}

TEST(RcuList, PushAndTraverse) {
  SrcuDomain d;
  RcuList list(d);
  std::vector<Elem> elems(5);
  list.writer_lock();
  for (int i = 0; i < 5; ++i) {
    elems[i].tag = i;
    list.push_back_locked(&elems[i].node);
  }
  list.writer_unlock();

  std::vector<int> seen;
  RcuReadGuard g(d);
  for (RcuListNode* n = list.reader_begin(); !list.is_end(n);
       n = RcuList::reader_next(n)) {
    seen.push_back(elem_of(n)->tag);
  }
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RcuList, PushFrontOrder) {
  SrcuDomain d;
  RcuList list(d);
  std::vector<Elem> elems(3);
  list.writer_lock();
  for (int i = 0; i < 3; ++i) {
    elems[i].tag = i;
    list.push_front_locked(&elems[i].node);
  }
  list.writer_unlock();
  std::vector<int> seen;
  for (RcuListNode* n = list.reader_begin(); !list.is_end(n);
       n = RcuList::reader_next(n)) {
    seen.push_back(elem_of(n)->tag);
  }
  EXPECT_EQ(seen, (std::vector<int>{2, 1, 0}));
}

TEST(RcuList, UnlinkPreservesNodePointers) {
  SrcuDomain d;
  RcuList list(d);
  std::vector<Elem> elems(3);
  list.writer_lock();
  for (int i = 0; i < 3; ++i) list.push_back_locked(&elems[i].node);
  list.writer_unlock();

  list.writer_lock();
  list.unlink_locked(&elems[1].node);
  list.writer_unlock();

  // A reader standing on the removed node still reaches the rest.
  RcuListNode* after = RcuList::reader_next(&elems[1].node);
  EXPECT_EQ(after, &elems[2].node);
  // And the list no longer contains it.
  int count = 0;
  for (RcuListNode* n = list.reader_begin(); !list.is_end(n);
       n = RcuList::reader_next(n)) {
    EXPECT_NE(n, &elems[1].node);
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(RcuList, FindReader) {
  SrcuDomain d;
  RcuList list(d);
  std::vector<Elem> elems(4);
  list.writer_lock();
  for (int i = 0; i < 4; ++i) {
    elems[i].tag = i * 10;
    list.push_back_locked(&elems[i].node);
  }
  list.writer_unlock();
  RcuListNode* hit =
      list.find_reader([](RcuListNode* n) { return elem_of(n)->tag == 20; });
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(elem_of(hit)->tag, 20);
  EXPECT_EQ(list.find_reader([](RcuListNode*) { return false; }), nullptr);
}

TEST(RcuList, ConcurrentReadersSurviveRemoval) {
  // The Figure 6 workload in miniature: GPU threads traverse the list
  // looking for their tag; one thread per element removes it under RCU
  // and reclaims it through a conditional barrier.
  gpu::Device dev(test::small_device());
  SrcuDomain d;
  RcuList list(d);
  constexpr int kElems = 32;
  constexpr int kThreads = 512;
  std::vector<Elem> elems(kElems);
  list.writer_lock();
  for (int i = 0; i < kElems; ++i) {
    elems[i].tag = i;
    list.push_back_locked(&elems[i].node);
  }
  list.writer_unlock();

  std::atomic<int> found{0}, removed{0};
  dev.launch_linear(kThreads, 64, [&](gpu::ThreadCtx& t) {
    const int my = static_cast<int>(t.global_rank());
    if (my < kElems) {
      // Writer: remove element `my`.
      list.writer_lock();
      list.unlink_locked(&elems[my].node);
      list.writer_unlock();
      elems[my].cb.fn = [](RcuCallback* cb) {
        reinterpret_cast<Elem*>(reinterpret_cast<char*>(cb) -
                                offsetof(Elem, cb))
            ->reclaimed.store(true);
      };
      d.barrier_conditional(&elems[my].cb);
      removed.fetch_add(1);
    } else {
      // Reader: traverse searching for a tag (may or may not be there).
      const int target = my % kElems;
      RcuReadGuard g(d);
      for (RcuListNode* n = list.reader_begin(); !list.is_end(n);
           n = RcuList::reader_next(n)) {
        t.yield();  // stretch the read-side critical section
        if (elem_of(n)->tag == target) {
          found.fetch_add(1);
          break;
        }
      }
    }
  });

  EXPECT_EQ(removed.load(), kElems);
  // Flush any delegated callbacks still queued.
  d.synchronize();
  for (auto& e : elems) EXPECT_TRUE(e.reclaimed.load());
  // List is empty.
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(d.readers(0), 0);
  EXPECT_EQ(d.readers(1), 0);
}

TEST(RcuList, RelinkAfterGracePeriod) {
  SrcuDomain d;
  RcuList list(d);
  Elem e;
  list.writer_lock();
  list.push_back_locked(&e.node);
  list.writer_unlock();

  list.writer_lock();
  list.unlink_locked(&e.node);
  list.writer_unlock();
  d.synchronize();  // grace period: e is now reusable

  list.writer_lock();
  list.push_front_locked(&e.node);
  list.writer_unlock();
  int count = 0;
  for (RcuListNode* n = list.reader_begin(); !list.is_end(n);
       n = RcuList::reader_next(n)) {
    ++count;
  }
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace toma::sync
