#include "sync/rcu.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::sync {
namespace {

struct CountingCb : RcuCallback {
  static std::atomic<int> fired;
  CountingCb() {
    fn = [](RcuCallback*) { fired.fetch_add(1); };
  }
};
std::atomic<int> CountingCb::fired{0};

TEST(Srcu, ReadLockUnlockBalances) {
  SrcuDomain d;
  const unsigned idx = d.read_lock();
  EXPECT_EQ(d.readers(idx), 1);
  d.read_unlock(idx);
  EXPECT_EQ(d.readers(idx), 0);
}

TEST(Srcu, SynchronizeWithNoReadersCompletes) {
  SrcuDomain d;
  const std::uint64_t e0 = d.epoch();
  d.synchronize();
  EXPECT_EQ(d.epoch(), e0 + 1);
  EXPECT_EQ(d.full_barriers(), 1u);
}

TEST(Srcu, CallbackRunsAfterGracePeriod) {
  SrcuDomain d;
  CountingCb::fired = 0;
  CountingCb cb;
  d.call(&cb);
  EXPECT_EQ(CountingCb::fired.load(), 0);  // call() does not run anything
  d.synchronize();
  EXPECT_EQ(CountingCb::fired.load(), 1);
}

TEST(Srcu, SynchronizeWaitsForReader) {
  SrcuDomain d;
  std::atomic<bool> reader_in{false}, reader_release{false};
  std::atomic<bool> synced{false};
  test::run_os_threads(2, [&](unsigned tid) {
    if (tid == 0) {
      const unsigned idx = d.read_lock();
      reader_in.store(true);
      while (!reader_release.load()) std::this_thread::yield();
      // The writer must still be inside synchronize() at this point.
      EXPECT_FALSE(synced.load());
      d.read_unlock(idx);
    } else {
      while (!reader_in.load()) std::this_thread::yield();
      reader_release.store(true);  // release first, THEN synchronize can end
      d.synchronize();
      synced.store(true);
    }
  });
  EXPECT_TRUE(synced.load());
}

TEST(Srcu, ReaderSpanningFlipIsWaitedFor) {
  // A reader that entered before the flip must block the grace period
  // even as new readers come and go in the new epoch.
  SrcuDomain d;
  const unsigned old_idx = d.read_lock();
  std::atomic<bool> done{false};
  std::thread writer([&] {
    d.synchronize();
    done.store(true);
  });
  // Give the writer time to flip and start waiting.
  for (int i = 0; i < 1000 && d.epoch() == 0; ++i) std::this_thread::yield();
  // New-epoch readers do not unblock it.
  const unsigned new_idx = d.read_lock();
  d.read_unlock(new_idx);
  EXPECT_FALSE(done.load());
  d.read_unlock(old_idx);
  writer.join();
  EXPECT_TRUE(done.load());
}

TEST(Srcu, ConditionalBarrierDelegatesToPendingBarrier) {
  // The paper's Figure 4(b) scenario, staged deterministically:
  //   barrier A holds the writer mutex, waiting out a reader;
  //   barrier B is queued behind A (pending, yet to flip the epoch);
  //   conditional barrier C sees B pending -> delegates and returns
  //   immediately, while A is still blocked.
  SrcuDomain d;
  CountingCb::fired = 0;
  CountingCb cb_a, cb_c;

  std::atomic<bool> c_returned{false};
  std::atomic<bool> a_done{false}, b_done{false};

  test::run_os_threads(3, [&](unsigned tid) {
    if (tid == 0) {
      // Orchestrator + reader.
      const unsigned idx = d.read_lock();
      // (A) starts once we are inside the read-side critical section.
      // Wait for A to flip the epoch: it now holds the mutex, waiting us.
      while (d.epoch() == 0) std::this_thread::yield();
      // Wait for B to queue behind A.
      while (d.pending_barriers() == 0) std::this_thread::yield();
      // (C) can now delegate; wait for it to return.
      while (!c_returned.load()) std::this_thread::yield();
      EXPECT_EQ(d.delegated_barriers(), 1u);
      EXPECT_FALSE(a_done.load());
      EXPECT_EQ(CountingCb::fired.load(), 0);  // grace period still open
      d.read_unlock(idx);
    } else if (tid == 1) {
      // Barrier A.
      d.call(&cb_a);
      d.synchronize();
      a_done.store(true);
    } else {
      // Wait until A flipped (holds the mutex), then issue barrier B in a
      // helper thread and barrier C here.
      while (d.epoch() == 0) std::this_thread::yield();
      std::thread b([&] {
        d.synchronize();  // queues behind A: pending until A finishes
        b_done.store(true);
      });
      while (d.pending_barriers() == 0) std::this_thread::yield();
      d.barrier_conditional(&cb_c);  // must delegate to B
      c_returned.store(true);
      b.join();
    }
  });
  EXPECT_TRUE(a_done.load());
  EXPECT_TRUE(b_done.load());
  // cb_a ran under A's grace period; cb_c was delegated and ran under B's.
  EXPECT_EQ(CountingCb::fired.load(), 2);
  EXPECT_EQ(d.delegated_barriers(), 1u);
}

TEST(Srcu, ManyWritersManyReadersGpu) {
  gpu::Device dev(test::small_device());
  SrcuDomain d;
  std::atomic<int> cb_runs{0};
  struct Cb : RcuCallback {
    std::atomic<int>* counter;
  };
  std::vector<Cb> cbs(64);
  for (auto& cb : cbs) {
    cb.counter = &cb_runs;
    cb.fn = [](RcuCallback* c) {
      static_cast<Cb*>(c)->counter->fetch_add(1);
    };
  }
  std::atomic<std::uint32_t> next_cb{0};

  dev.launch(gpu::Dim3{4}, gpu::Dim3{64}, [&](gpu::ThreadCtx& t) {
    if (t.thread_rank() % 4 == 0) {
      // Writer: enqueue a callback through a conditional barrier.
      const std::uint32_t i = next_cb.fetch_add(1);
      if (i < cbs.size()) {
        d.barrier_conditional(&cbs[i]);
      } else {
        d.barrier_conditional(nullptr);
      }
    } else {
      // Reader: enter/exit read-side critical sections.
      for (int r = 0; r < 4; ++r) {
        RcuReadGuard g(d);
        t.yield();
      }
    }
  });
  // Every enqueued callback ran exactly once once a final full barrier
  // flushes stragglers.
  d.synchronize();
  EXPECT_EQ(cb_runs.load(), 64);
  EXPECT_EQ(d.readers(0), 0);
  EXPECT_EQ(d.readers(1), 0);
  EXPECT_GT(d.full_barriers(), 0u);
}

TEST(Srcu, DelegationHappensUnderContention) {
  gpu::Device dev(test::small_device());
  SrcuDomain d;
  dev.launch(gpu::Dim3{8}, gpu::Dim3{64}, [&](gpu::ThreadCtx& t) {
    if (t.thread_rank() % 8 == 0) {
      d.barrier_conditional(nullptr);
    } else {
      RcuReadGuard g(d);
      t.yield();
      t.yield();
    }
  });
  // With 64 concurrent barriers and many readers, a healthy fraction must
  // have been delegated rather than serialized.
  EXPECT_GT(d.delegated_barriers(), 0u);
}

}  // namespace
}  // namespace toma::sync
