#include "sync/spin_mutex.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::sync {
namespace {

TEST(SpinMutex, LockUnlock) {
  SpinMutex m;
  m.lock();
  EXPECT_FALSE(m.try_lock());
  m.unlock();
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST(SpinMutex, MutualExclusionOsThreads) {
  SpinMutex m;
  long long counter = 0;  // deliberately non-atomic
  test::run_os_threads(4, [&](unsigned) {
    for (int i = 0; i < 20000; ++i) {
      LockGuard<SpinMutex> g(m);
      ++counter;
    }
  });
  EXPECT_EQ(counter, 4 * 20000);
}

TEST(SpinMutex, MutualExclusionGpuThreads) {
  gpu::Device dev(test::small_device());
  SpinMutex m;
  long long counter = 0;
  std::atomic<int> max_inside{0};
  std::atomic<int> inside{0};
  dev.launch(gpu::Dim3{8}, gpu::Dim3{64}, [&](gpu::ThreadCtx& t) {
    for (int i = 0; i < 5; ++i) {
      m.lock();
      const int now = inside.fetch_add(1) + 1;
      int cur = max_inside.load();
      while (now > cur && !max_inside.compare_exchange_weak(cur, now)) {
      }
      ++counter;
      t.yield();  // hold the lock across a scheduling point
      inside.fetch_sub(1);
      m.unlock();
    }
  });
  EXPECT_EQ(counter, 512 * 5);
  EXPECT_EQ(max_inside.load(), 1);
}

TEST(SpinMutex, TryLockContention) {
  gpu::Device dev(test::small_device());
  SpinMutex m;
  std::atomic<int> acquisitions{0};
  dev.launch(gpu::Dim3{4}, gpu::Dim3{32}, [&](gpu::ThreadCtx& t) {
    for (int i = 0; i < 10; ++i) {
      if (m.try_lock()) {
        acquisitions.fetch_add(1);
        t.yield();
        m.unlock();
      } else {
        t.yield();
      }
    }
  });
  EXPECT_GT(acquisitions.load(), 0);
  EXPECT_TRUE(m.try_lock());  // released at the end
  m.unlock();
}

}  // namespace
}  // namespace toma::sync
