#include "sync/counting_semaphore.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::sync {
namespace {

TEST(CountingSemaphore, WaitTakesWhenAvailable) {
  CountingSemaphore sem(5);
  EXPECT_EQ(sem.wait(3), 3);
  EXPECT_EQ(sem.value(), 2);
  EXPECT_EQ(sem.wait(2), 2);
  EXPECT_EQ(sem.value(), 0);
}

TEST(CountingSemaphore, WaitElectsGrowerWhenShort) {
  CountingSemaphore sem(2);
  // Requesting 5 with only 2 available: caller becomes the grower and
  // receives the residual 2; the value drops to -1 to block others.
  EXPECT_EQ(sem.wait(5), 2);
  EXPECT_EQ(sem.value(), -1);
}

TEST(CountingSemaphore, SignalAfterGrowKeepsOneImplicitly) {
  // The Figure 1(a) walk-through: S=0; grower gets 0, signals batch 4;
  // S becomes 3 (grower keeps one of the four).
  CountingSemaphore sem(0);
  EXPECT_EQ(sem.wait(1), 0);
  EXPECT_EQ(sem.value(), -1);
  sem.signal(4);
  EXPECT_EQ(sem.value(), 3);
  EXPECT_EQ(sem.wait(1), 1);
  EXPECT_EQ(sem.wait(1), 1);
  EXPECT_EQ(sem.wait(1), 1);
  EXPECT_EQ(sem.value(), 0);
  EXPECT_EQ(sem.wait(1), 0);  // next thread grows again
}

TEST(CountingSemaphore, TryWait) {
  CountingSemaphore sem(3);
  EXPECT_TRUE(sem.try_wait(2));
  EXPECT_FALSE(sem.try_wait(2));
  EXPECT_TRUE(sem.try_wait(1));
  EXPECT_FALSE(sem.try_wait(1));
  EXPECT_EQ(sem.value(), 0);
}

TEST(CountingSemaphore, BlockedWaiterWakesOnSignal) {
  CountingSemaphore sem(0);
  std::atomic<int> acquired{0};
  test::run_os_threads(2, [&](unsigned tid) {
    if (tid == 0) {
      const std::int64_t got = sem.wait(1);
      if (got == 0) {
        // We are the grower: produce a batch.
        sem.signal(4);
        acquired.fetch_add(1);
      } else {
        acquired.fetch_add(1);
      }
    } else {
      const std::int64_t got = sem.wait(1);
      // Either took a unit from the batch, or became the next grower.
      if (got == 0) sem.signal(4);
      acquired.fetch_add(1);
    }
  });
  EXPECT_EQ(acquired.load(), 2);
}

TEST(CountingSemaphore, SingleGrowerSerializesArrivalsOnGpu) {
  // The scalability barrier the paper describes: while one thread grows,
  // every arriving thread blocks. Functional check: all threads complete
  // and the total accounting balances.
  gpu::Device dev(test::small_device());
  CountingSemaphore sem(0);
  constexpr std::int64_t kBatch = 32;
  std::atomic<std::int64_t> produced{0}, consumed{0};
  dev.launch(gpu::Dim3{8}, gpu::Dim3{64}, [&](gpu::ThreadCtx&) {
    const std::int64_t got = sem.wait(1);
    if (got < 1) {
      produced.fetch_add(kBatch);
      sem.signal(kBatch - got);  // deliver the rest of the batch
      consumed.fetch_add(got + 1);
    } else {
      consumed.fetch_add(1);
    }
  });
  // Every thread consumed exactly one unit.
  EXPECT_EQ(consumed.load(), 512);
  // All production happened in batches.
  EXPECT_EQ(produced.load() % kBatch, 0);
  // Whatever was produced and not consumed must still be in the semaphore
  // (possibly plus growers' residual bookkeeping).
  EXPECT_GE(sem.value(), 0);
}

}  // namespace
}  // namespace toma::sync
