#include "sync/collective_mutex.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::sync {
namespace {

TEST(CollectiveMutex, PlainLockActsAsMutex) {
  CollectiveMutex m;
  long long counter = 0;
  test::run_os_threads(4, [&](unsigned) {
    for (int i = 0; i < 10000; ++i) {
      m.lock();
      ++counter;
      m.unlock();
    }
  });
  EXPECT_EQ(counter, 4 * 10000);
}

TEST(CollectiveMutex, SingletonGroupLock) {
  CollectiveMutex m;
  auto g = gpu::CoalescedGroup::singleton(123);
  m.lock(g);
  m.unlock(g);
  // Mutex is free again.
  m.lock();
  m.unlock();
}

TEST(CollectiveMutex, WholeGroupEntersTogether) {
  gpu::Device dev(test::small_device());
  CollectiveMutex m;
  std::atomic<int> inside{0};
  std::atomic<int> max_groups_inside{0};
  std::atomic<std::uint64_t> current_token{0};
  std::atomic<int> bad{0};
  int tag;

  dev.launch(gpu::Dim3{4}, gpu::Dim3{64}, [&](gpu::ThreadCtx& t) {
    gpu::CoalescedGroup g = gpu::coalesce_warp(t, &tag);
    m.lock(g);
    // Everyone inside must belong to the same group (token check).
    std::uint64_t expected = 0;
    if (!current_token.compare_exchange_strong(expected, g.token())) {
      if (expected != g.token()) bad.fetch_add(1);
    }
    inside.fetch_add(1);
    t.yield();
    const int now = inside.load();
    int cur = max_groups_inside.load();
    while (now > cur && !max_groups_inside.compare_exchange_weak(cur, now)) {
    }
    if (inside.fetch_sub(1) == 1) {
      current_token.store(0);  // last one out clears the token
    }
    m.unlock(g);
  });

  EXPECT_EQ(bad.load(), 0) << "threads of different groups overlapped";
  // Parallelism inside the critical section is the whole point: at least
  // one group should have had >1 member inside simultaneously.
  EXPECT_GT(max_groups_inside.load(), 1);
}

TEST(CollectiveMutex, MembersPartitionWorkByRank) {
  // The paper's chunk-allocation idiom: each member processes the element
  // at its rank, the leader handles shared bookkeeping.
  gpu::Device dev(test::small_device());
  CollectiveMutex m;
  constexpr int kSlots = 32;
  std::atomic<int> slots[kSlots] = {};
  std::atomic<int> claim_errors{0};
  int tag;

  dev.launch(gpu::Dim3{1}, gpu::Dim3{32}, [&](gpu::ThreadCtx& t) {
    gpu::CoalescedGroup g = gpu::coalesce_warp(t, &tag);
    CollectiveLockGuard lock(m, g);
    // Each member claims the slot matching its rank; ranks are dense so
    // there are no collisions within the group.
    if (slots[g.rank()].fetch_add(1) != 0) claim_errors.fetch_add(1);
  });
  EXPECT_EQ(claim_errors.load(), 0);
  int total = 0;
  for (auto& s : slots) total += s.load();
  EXPECT_EQ(total, 32);
}

TEST(CollectiveMutex, SequentialGroupsSerialize) {
  gpu::Device dev(test::small_device());
  CollectiveMutex m;
  long long shared_counter = 0;  // non-atomic: only safe under the mutex
  int tag;
  dev.launch(gpu::Dim3{8}, gpu::Dim3{96}, [&](gpu::ThreadCtx& t) {
    gpu::CoalescedGroup g = gpu::coalesce_warp(t, &tag);
    m.lock(g);
    if (g.is_leader()) {
      // Only the leader mutates: exercises leader election under load.
      shared_counter += g.size();
    }
    m.unlock(g);
  });
  EXPECT_EQ(shared_counter, 8 * 96);
}

TEST(CollectiveMutex, MixedCollectiveAndPlain) {
  gpu::Device dev(test::small_device());
  CollectiveMutex m;
  long long counter = 0;
  int tag;
  dev.launch(gpu::Dim3{4}, gpu::Dim3{64}, [&](gpu::ThreadCtx& t) {
    if (t.thread_rank() % 2 == 0) {
      gpu::CoalescedGroup g = gpu::coalesce_warp(t, &tag);
      m.lock(g);
      if (g.is_leader()) counter += g.size();
      m.unlock(g);
    } else {
      m.lock();
      counter += 1;
      m.unlock();
    }
  });
  EXPECT_EQ(counter, 4 * 64);
}

}  // namespace
}  // namespace toma::sync
