#include "sync/treiber_stack.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::sync {
namespace {

std::unique_ptr<std::atomic<std::uint32_t>[]> make_links(std::size_t n) {
  return std::make_unique<std::atomic<std::uint32_t>[]>(n);
}

TEST(TreiberStack, StartsEmpty) {
  TreiberStack s;
  auto links = make_links(4);
  s.set_capacity(4);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.peek(), TreiberStack::kNil);
  EXPECT_EQ(s.try_pop(links.get()), TreiberStack::kNil);
}

TEST(TreiberStack, PushPopIsLifo) {
  TreiberStack s;
  auto links = make_links(8);
  s.set_capacity(8);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(s.try_push(links.get(), i));
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_EQ(s.peek(), 4u);
  for (std::uint32_t i = 5; i-- > 0;) {
    EXPECT_EQ(s.try_pop(links.get()), i);
  }
  EXPECT_TRUE(s.empty());
}

TEST(TreiberStack, CapacityBoundsPushes) {
  TreiberStack s;
  auto links = make_links(8);
  s.set_capacity(3);
  EXPECT_TRUE(s.try_push(links.get(), 0));
  EXPECT_TRUE(s.try_push(links.get(), 1));
  EXPECT_TRUE(s.try_push(links.get(), 2));
  EXPECT_FALSE(s.try_push(links.get(), 3)) << "push past capacity succeeded";
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.try_pop(links.get()), 2u);
  EXPECT_TRUE(s.try_push(links.get(), 3)) << "pop did not free a slot";
}

TEST(TreiberStack, ZeroCapacityRejectsEverything) {
  TreiberStack s;
  auto links = make_links(2);
  s.set_capacity(0);
  EXPECT_FALSE(s.try_push(links.get(), 0));
  EXPECT_TRUE(s.empty());
}

TEST(TreiberStack, ReusePreservesDistinctness) {
  // Elements cycle in and out; at every moment each element is in the
  // stack at most once, so the peek()-walk must never see duplicates.
  TreiberStack s;
  constexpr std::uint32_t kN = 16;
  auto links = make_links(kN);
  s.set_capacity(kN);
  for (int round = 0; round < 100; ++round) {
    for (std::uint32_t i = 0; i < kN; ++i) {
      ASSERT_TRUE(s.try_push(links.get(), (i + round) % kN));
    }
    std::vector<bool> seen(kN, false);
    for (std::uint32_t i = s.peek(); i != TreiberStack::kNil;
         i = links[i].load()) {
      ASSERT_FALSE(seen[i]) << "element " << i << " twice in the stack";
      seen[i] = true;
    }
    for (std::uint32_t i = 0; i < kN; ++i) {
      ASSERT_NE(s.try_pop(links.get()), TreiberStack::kNil);
    }
  }
}

TEST(TreiberStack, ConcurrentChurnOsThreads) {
  // Each thread owns a disjoint set of elements and repeatedly pushes
  // then pops; whatever it pops it stamps. No element may ever be held
  // by two threads at once (stamp mismatch would show corruption from
  // ABA or a lost update).
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kPerThread = 64;
  constexpr std::uint32_t kN = kThreads * kPerThread;
  TreiberStack s;
  auto links = make_links(kN);
  s.set_capacity(kN);
  std::vector<std::atomic<int>> owner(kN);
  for (auto& o : owner) o.store(-1);

  test::run_os_threads(kThreads, [&](unsigned tid) {
    std::vector<std::uint32_t> held;
    held.reserve(kPerThread);
    for (std::uint32_t i = 0; i < kPerThread; ++i) {
      held.push_back(tid * kPerThread + i);
    }
    for (int iter = 0; iter < 20000; ++iter) {
      if (!held.empty() && (iter & 1)) {
        const std::uint32_t e = held.back();
        held.pop_back();
        owner[e].store(-1, std::memory_order_relaxed);
        ASSERT_TRUE(s.try_push(links.get(), e));
      } else {
        const std::uint32_t e = s.try_pop(links.get());
        if (e == TreiberStack::kNil) continue;
        const int prev = owner[e].exchange(static_cast<int>(tid),
                                           std::memory_order_relaxed);
        ASSERT_EQ(prev, -1) << "element " << e << " popped while owned by "
                            << prev;
        held.push_back(e);
      }
    }
    // Drain what we still hold back into the stack.
    for (std::uint32_t e : held) {
      owner[e].store(-1, std::memory_order_relaxed);
      ASSERT_TRUE(s.try_push(links.get(), e));
    }
  });

  // Quiescent: all kN elements are in the stack exactly once.
  EXPECT_EQ(s.count(), kN);
  std::vector<bool> seen(kN, false);
  std::uint32_t walked = 0;
  for (std::uint32_t i = s.peek(); i != TreiberStack::kNil;
       i = links[i].load()) {
    ASSERT_FALSE(seen[i]);
    seen[i] = true;
    ++walked;
  }
  EXPECT_EQ(walked, kN);
}

TEST(TreiberStack, ConcurrentChurnGpuThreads) {
  // Same ownership-transfer contract under the cooperative simulator,
  // where fibers interleave at yield points instead of preemptively.
  gpu::Device dev(test::small_device());
  constexpr std::uint32_t kN = 256;
  TreiberStack s;
  auto links = make_links(kN);
  s.set_capacity(kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(s.try_push(links.get(), i));
  }
  std::atomic<std::uint64_t> pops{0};
  dev.launch(gpu::Dim3{4}, gpu::Dim3{64}, [&](gpu::ThreadCtx& t) {
    for (int iter = 0; iter < 50; ++iter) {
      const std::uint32_t e = s.try_pop(links.get());
      if (e == TreiberStack::kNil) continue;
      pops.fetch_add(1, std::memory_order_relaxed);
      t.yield();  // hold the element across a scheduling point
      ASSERT_TRUE(s.try_push(links.get(), e));
    }
  });
  EXPECT_GT(pops.load(), 0u);
  EXPECT_EQ(s.count(), kN);
}

}  // namespace
}  // namespace toma::sync
