#include "sync/bulk_semaphore.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "gpusim/gpusim.hpp"
#include "support/test_support.hpp"

namespace toma::sync {
namespace {

using WaitResult = BulkSemaphore::WaitResult;

TEST(BulkSemaphore, InitialValue) {
  BulkSemaphore sem(7);
  EXPECT_EQ(sem.value(), 7u);
  EXPECT_EQ(sem.expected(), 0u);
  EXPECT_EQ(sem.reserved(), 0u);
}

TEST(BulkSemaphore, AcquireFromValue) {
  BulkSemaphore sem(4);
  EXPECT_EQ(sem.wait(1, 8), WaitResult::kAcquired);
  EXPECT_EQ(sem.wait(3, 8), WaitResult::kAcquired);
  EXPECT_EQ(sem.value(), 0u);
}

TEST(BulkSemaphore, ElectsGrowerAndTracksExpected) {
  BulkSemaphore sem(0);
  EXPECT_EQ(sem.wait(1, 4), WaitResult::kMustGrow);
  // Algorithm 1: E += B - N.
  EXPECT_EQ(sem.expected(), 3u);
  EXPECT_EQ(sem.value(), 0u);
}

TEST(BulkSemaphore, ConcurrentGrowersBothElected) {
  // The defining difference from counting semaphores (Figure 1(b)):
  // once a batch's expected units are fully reserved, the next arrival
  // becomes ANOTHER grower instead of blocking.
  BulkSemaphore sem(0);
  EXPECT_EQ(sem.wait(1, 4), WaitResult::kMustGrow);  // thread #0: E=3
  // Threads #1..#3 would reserve (covered by E=3). Thread #4 must grow.
  // Simulate the reservations directly: we cannot block here, so check
  // the decision arithmetic via expected availability.
  // C+E-R = 3 with three reservations -> 0, so a fourth wait grows:
  // emulate by consuming the expectation with a grower's failure signals.
  sem.signal(0, 3);  // grow failed: E back to 0
  EXPECT_EQ(sem.wait(1, 4), WaitResult::kMustGrow);
  EXPECT_EQ(sem.expected(), 3u);
}

TEST(BulkSemaphore, GrowerPublishesBatch) {
  BulkSemaphore sem(0);
  ASSERT_EQ(sem.wait(1, 4), WaitResult::kMustGrow);
  // Grower produced 4 units, keeps 1: signal(3, 3).
  sem.signal(3, 3);
  EXPECT_EQ(sem.value(), 3u);
  EXPECT_EQ(sem.expected(), 0u);
  EXPECT_EQ(sem.wait(3, 4), WaitResult::kAcquired);
  EXPECT_EQ(sem.value(), 0u);
}

TEST(BulkSemaphore, FailedGrowthSignalsCondition) {
  BulkSemaphore sem(0);
  ASSERT_EQ(sem.wait(1, 4), WaitResult::kMustGrow);
  EXPECT_EQ(sem.expected(), 3u);
  sem.signal(0, 3);  // nothing produced
  EXPECT_EQ(sem.expected(), 0u);
  EXPECT_EQ(sem.value(), 0u);
}

TEST(BulkSemaphore, TryWait) {
  BulkSemaphore sem(2);
  EXPECT_TRUE(sem.try_wait(1));
  EXPECT_TRUE(sem.try_wait(1));
  EXPECT_FALSE(sem.try_wait(1));
  // try_wait never grows and never reserves.
  EXPECT_EQ(sem.expected(), 0u);
  EXPECT_EQ(sem.reserved(), 0u);
}

TEST(BulkSemaphore, SignalIsPlainRelease) {
  BulkSemaphore sem(0);
  sem.signal(5, 0);
  EXPECT_EQ(sem.value(), 5u);
}

TEST(BulkSemaphore, CountingSemanticsWhenBatchZero) {
  // With B == 0 ... bulk semaphores degenerate to counting semaphores
  // (paper §3.3). N == B is the smallest legal call; value-only flows:
  BulkSemaphore sem(3);
  EXPECT_EQ(sem.wait(2, 2), WaitResult::kAcquired);
  sem.signal(2, 0);
  EXPECT_EQ(sem.value(), 3u);
}

// --- concurrent batch-allocation protocol, on simulated GPU threads ------

struct BatchProtocolParam {
  std::uint32_t threads;
  std::uint32_t batch;
};

class BulkSemaphoreProtocol
    : public ::testing::TestWithParam<BatchProtocolParam> {};

TEST_P(BulkSemaphoreProtocol, EveryThreadGetsOneUnit) {
  const auto [threads, batch] = GetParam();
  gpu::Device dev(test::small_device(2, 1024, 1));
  BulkSemaphore sem(0);
  std::atomic<std::uint64_t> batches{0}, acquired{0};

  dev.launch_linear(threads, 128, [&](gpu::ThreadCtx& t) {
    if (t.global_rank() >= threads) return;
    const auto r = sem.wait(1, batch);
    if (r == WaitResult::kMustGrow) {
      batches.fetch_add(1, std::memory_order_relaxed);
      sem.signal(batch - 1, batch - 1);  // produce batch, keep one unit
    }
    acquired.fetch_add(1, std::memory_order_relaxed);
  });

  EXPECT_EQ(acquired.load(), threads);
  // Conservation: units produced - units consumed == semaphore value.
  const std::uint64_t produced = batches.load() * batch;
  EXPECT_EQ(sem.value(), produced - threads);
  EXPECT_EQ(sem.expected(), 0u);
  EXPECT_EQ(sem.reserved(), 0u);
  // At least ceil(threads/batch) batches were needed.
  EXPECT_GE(batches.load(), (threads + batch - 1) / batch);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BulkSemaphoreProtocol,
    ::testing::Values(BatchProtocolParam{64, 4}, BatchProtocolParam{256, 16},
                      BatchProtocolParam{1024, 32},
                      BatchProtocolParam{1000, 7},
                      BatchProtocolParam{4096, 512},
                      BatchProtocolParam{333, 2}));

TEST(BulkSemaphore, MixedProducersConsumersOnGpu) {
  // Producer/consumer flow without growth: producers signal, consumers
  // wait; totals must balance.
  gpu::Device dev(test::small_device());
  BulkSemaphore sem(0);
  const std::uint32_t pairs = 512;
  std::atomic<std::uint64_t> consumed{0};
  dev.launch(gpu::Dim3{8}, gpu::Dim3{128}, [&](gpu::ThreadCtx& t) {
    if (t.global_rank() % 2 == 0) {
      sem.signal(1, 0);
    } else {
      // Consumers use try_wait polling (plain consumers, not two-stage).
      while (!sem.try_wait(1)) t.yield();
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(consumed.load(), pairs);
  EXPECT_EQ(sem.value(), 0u);
}

TEST(BulkSemaphore, HostThreadsProtocol) {
  // Same protocol exercised by preemptive OS threads (fallback paths).
  BulkSemaphore sem(0);
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kIters = 2000;
  constexpr std::uint32_t kBatch = 16;
  std::atomic<std::uint64_t> batches{0};
  test::run_os_threads(kThreads, [&](unsigned) {
    for (std::uint32_t i = 0; i < kIters; ++i) {
      if (sem.wait(1, kBatch) == WaitResult::kMustGrow) {
        batches.fetch_add(1, std::memory_order_relaxed);
        sem.signal(kBatch - 1, kBatch - 1);
      }
    }
  });
  const std::uint64_t produced = batches.load() * kBatch;
  EXPECT_EQ(sem.value(), produced - kThreads * kIters);
  EXPECT_EQ(sem.expected(), 0u);
  EXPECT_EQ(sem.reserved(), 0u);
}

}  // namespace
}  // namespace toma::sync
